//! Integration: the complete dual design flow of Fig. 3.
//!
//! The same base P4 program compiles down both paths — p4c→PISA and
//! p4c→rp4fc→rp4bc→IPSA — and both devices must forward identical traffic
//! identically.

use rp4::prelude::*;

/// Compiles `programs/base.p4` through rp4fc into rP4 and checks semantic
/// validity + roundtrip.
#[test]
fn p4_to_rp4_translation_is_valid() {
    let ast = p4_lang::parse_p4(controller::programs::BASE_P4).unwrap();
    let hlir = p4_lang::build_hlir(&ast).unwrap();
    let prog = rp4c::rp4fc(&hlir, "base");
    rp4_lang::check(&prog, None).expect("rp4fc output is semantically valid");
    // Printer/parser fixpoint on the generated base design.
    let printed = rp4_lang::print(&prog);
    assert_eq!(rp4_lang::parse(&printed).unwrap(), prog);
    // One stage per guarded table application.
    assert_eq!(prog.stages().count(), hlir.apply_count());
}

/// One packet set, two architectures, identical forwarding decisions.
#[test]
fn pisa_and_ipsa_forward_identically() {
    // --- IPSA path: rP4 source -> ipbm ---
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).unwrap();
    let target = rp4c::CompilerTarget::ipbm();
    let compilation = rp4c::full_compile(&prog, &target).unwrap();
    let device = IpbmSwitch::new(IpbmConfig::default());
    let (mut ipsa, _) = Rp4Flow::install(device, compilation, target).unwrap();
    ipsa.run_script(
        &rp4::demo::base_population_script(),
        &controller::programs::bundled_sources,
    )
    .unwrap();

    // --- PISA path: P4 source -> pisa-bm, with the same entries ---
    // The P4 base applies dmac in ingress? No — it matches our rP4 layout:
    // forwarding decided in ingress. Populate the PISA tables identically.
    let (mut pisa, _, _) = P4Flow::new(
        PisaSwitch::new(CostModel::software()),
        controller::programs::BASE_P4,
        PisaTarget::bmv2(),
    )
    .unwrap();
    for p in 0..8u128 {
        pisa.table_add(
            "port_map",
            "set_ifindex",
            &[KeyToken::Exact(p)],
            &[10 + p],
            0,
        )
        .unwrap();
        pisa.table_add(
            "bd_vrf",
            "set_bd_vrf",
            &[KeyToken::Exact(10 + p)],
            &[1, 1],
            0,
        )
        .unwrap();
    }
    pisa.table_add(
        "fwd_mode",
        "set_l3",
        &[KeyToken::Exact(1), KeyToken::Exact(rp4::demo::ROUTER_MAC)],
        &[],
        0,
    )
    .unwrap();
    pisa.table_add(
        "ipv4_lpm",
        "set_nexthop",
        &[
            KeyToken::Exact(1),
            KeyToken::Lpm {
                value: 0x0a01_0000,
                prefix_len: 16,
            },
        ],
        &[7],
        0,
    )
    .unwrap();
    pisa.table_add(
        "ipv6_lpm",
        "set_nexthop",
        &[
            KeyToken::Exact(1),
            KeyToken::Lpm {
                value: 0xfc01_u128 << 112,
                prefix_len: 16,
            },
        ],
        &[9],
        0,
    )
    .unwrap();
    pisa.table_add(
        "nexthop",
        "set_bd_dmac",
        &[KeyToken::Exact(7)],
        &[2, rp4::demo::NH_MAC_V4],
        0,
    )
    .unwrap();
    pisa.table_add(
        "nexthop",
        "set_bd_dmac",
        &[KeyToken::Exact(9)],
        &[3, rp4::demo::NH_MAC_V6],
        0,
    )
    .unwrap();
    pisa.table_add(
        "dmac",
        "set_port",
        &[KeyToken::Exact(2), KeyToken::Exact(rp4::demo::NH_MAC_V4)],
        &[2],
        0,
    )
    .unwrap();
    pisa.table_add(
        "dmac",
        "set_port",
        &[KeyToken::Exact(3), KeyToken::Exact(rp4::demo::NH_MAC_V6)],
        &[3],
        0,
    )
    .unwrap();
    pisa.table_add(
        "l2_l3_rewrite",
        "rewrite_l3",
        &[KeyToken::Exact(2)],
        &[rp4::demo::SRC_MAC],
        0,
    )
    .unwrap();
    pisa.table_add(
        "l2_l3_rewrite",
        "rewrite_l3",
        &[KeyToken::Exact(3)],
        &[rp4::demo::SRC_MAC],
        0,
    )
    .unwrap();

    // --- identical traffic through both ---
    let mut gen = TrafficGen::new(99).with_v6_percent(40).with_flows(32);
    let batch = gen.batch(300);
    for p in &batch {
        ipsa.device.inject(p.clone());
        pisa.device.inject(p.clone());
    }
    let out_ipsa = ipsa.device.run();
    let out_pisa = pisa.device.run();
    assert_eq!(out_ipsa.len(), out_pisa.len());
    assert_eq!(out_ipsa.len(), 300);
    // ipbm collects TX per-port while pisa-bm emits in processing order;
    // compare as multisets of (egress port, rewritten bytes).
    let canon = |v: &[Packet]| {
        let mut c: Vec<(Option<u16>, Vec<u8>)> = v
            .iter()
            .map(|p| (p.meta.egress_port, p.data.clone()))
            .collect();
        c.sort();
        c
    };
    assert_eq!(
        canon(&out_ipsa),
        canon(&out_pisa),
        "identical rewrites (dmac, smac, ttl, checksum) and ports"
    );
    // Architectural difference is observable in the parse work: PISA's
    // front parser extracted everything; ipbm's distributed parsers only
    // touched what stages needed.
    assert!(pisa.device.stats.front_parse_extractions >= 3 * 300);
}

/// The full rp4bc JSON artifact round-trips and validates.
#[test]
fn design_json_artifact_roundtrip() {
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).unwrap();
    let c = rp4c::full_compile(&prog, &rp4c::CompilerTarget::ipbm()).unwrap();
    let json = c.design.to_json();
    let back = CompiledDesign::from_json(&json).unwrap();
    assert_eq!(back, c.design);
    back.validate().unwrap();
    // And it installs cleanly on a fresh device.
    let mut sw = IpbmSwitch::new(IpbmConfig::default());
    sw.install(&back).unwrap();
}

/// The FPGA targets fit the base design and all three use cases.
#[test]
fn fpga_targets_fit_all_use_cases() {
    // IPSA side.
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).unwrap();
    let target = rp4c::CompilerTarget::fpga();
    let compilation = rp4c::full_compile(&prog, &target).unwrap();
    let device = IpbmSwitch::new(IpbmConfig {
        slots: target.slots,
        sram_blocks: target.sram_blocks,
        tcam_blocks: target.tcam_blocks,
        ..IpbmConfig::default()
    });
    let (mut flow, _) = Rp4Flow::install(device, compilation, target).unwrap();
    for (case, _, script, _) in controller::programs::use_cases() {
        let out = flow
            .run_script(script, &controller::programs::bundled_sources)
            .unwrap_or_else(|e| panic!("{case}: {e}"));
        assert!(out.update_stats.is_some(), "{case}");
    }
    // PISA side: each integrated variant compiles for the FPGA-PISA chip.
    for (case, _, _, p4) in controller::programs::use_cases() {
        let ast = p4_lang::parse_p4(p4).unwrap_or_else(|e| panic!("{case}: {e}"));
        let hlir = p4_lang::build_hlir(&ast).unwrap();
        pisa_bm::pisa_compile(&hlir, &PisaTarget::fpga()).unwrap_or_else(|e| panic!("{case}: {e}"));
    }
}
