//! Seeded-schedule torture test for the sharded runtime's epoch barrier
//! (`ipbm::sharded`).
//!
//! No deterministic thread-schedule explorer is vendored, so instead of
//! loom-style exhaustive interleavings this drives many *seeded* schedules
//! of the operations that race in production — packet injection, batch
//! drains, `Drain`/`Resume` windows, and table rewrites that force an epoch
//! barrier mid-stream — and checks the invariants the barrier guarantees:
//!
//! 1. **Conservation** — every injected packet is emitted exactly once
//!    (unique sequence numbers: none lost, none duplicated), with the
//!    device fully drained at the end.
//! 2. **No stale epoch** — every emitted packet leaves through the port
//!    the routing table pointed at when its batch ran, never a port from
//!    an already-replaced epoch.
//! 3. **Drain discipline** — while draining, batches release nothing and
//!    the backlog is held; `Resume` releases it without loss.
//! 4. **Per-flow order** — sequence numbers within a flow emit in
//!    injection order.

use ipbm::{IpbmConfig, ShardedSwitch};
use ipsa_core::action::{ActionDef, Primitive};
use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::pipeline_cfg::SelectorConfig;
use ipsa_core::predicate::Predicate;
use ipsa_core::table::{ActionCall, KeyField, KeyMatch, MatchKind, TableDef, TableEntry};
use ipsa_core::template::{MatcherBranch, TspTemplate};
use ipsa_core::value::ValueRef;
use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// One-stage L3 design: route 10.0.0.0/8 to a parameterised port.
fn l3_msgs(port: u16) -> Vec<ControlMsg> {
    vec![
        ControlMsg::Drain,
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ethernet()),
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv4()),
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::udp()),
        ControlMsg::SetFirstHeader("ethernet".into()),
        ControlMsg::DefineAction(ActionDef {
            name: "fwd".into(),
            params: vec![("port".into(), 16)],
            body: vec![Primitive::Forward {
                port: ValueRef::Param(0),
            }],
        }),
        ControlMsg::CreateTable {
            def: TableDef {
                name: "route".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["fwd".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            blocks: vec![0],
        },
        ControlMsg::WriteTemplate {
            slot: 0,
            template: TspTemplate {
                stage_name: "route_s".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: Predicate::IsValid("ipv4".into()),
                    table: Some("route".into()),
                }],
                executor: vec![(1, ActionCall::new("fwd", vec![]))],
                default_action: ActionCall::no_action(),
            },
        },
        ControlMsg::ConnectCrossbar {
            slot: 0,
            blocks: vec![0],
        },
        ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
        ControlMsg::Resume,
        route_msg(port),
    ]
}

/// Re-points the 10/8 route (same key, so the entry is replaced in place —
/// this is the epoch-changing table write the schedules race against
/// batches).
fn route_msg(port: u16) -> ControlMsg {
    ControlMsg::AddEntry {
        table: "route".into(),
        entry: TableEntry {
            key: vec![KeyMatch::Lpm {
                value: 0x0a00_0000,
                prefix_len: 8,
            }],
            priority: 0,
            action: ActionCall::new("fwd", vec![port as u128]),
            counter: 0,
        },
    }
}

/// A packet of `flow` carrying a unique sequence number in its payload.
fn seq_packet(flow: u32, seq: u64) -> ipsa_netpkt::packet::Packet {
    ipv4_udp_packet(&Ipv4UdpSpec {
        src_ip: 0x0a00_0a00 + flow,
        dst_ip: 0x0a01_0000 + flow,
        payload: seq.to_be_bytes().to_vec(),
        ..Default::default()
    })
}

fn seq_of(p: &ipsa_netpkt::packet::Packet) -> u64 {
    let n = p.data.len();
    u64::from_be_bytes(p.data[n - 8..].try_into().unwrap())
}

fn torture_schedule(seed: u64, shards: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = ShardedSwitch::new(IpbmConfig::default(), shards);
    sw.apply(&l3_msgs(1)).unwrap();

    let flows = 8u32;
    let mut next_seq = 0u64;
    let mut injected = 0u64;
    let mut current_port = 1u16;
    let mut draining = false;
    let mut emitted: Vec<(u64, u16)> = Vec::new(); // (seq, egress port)
    let mut flow_last: HashMap<u32, u64> = HashMap::new();

    let absorb = |out: Vec<ipsa_netpkt::packet::Packet>,
                  port_now: u16,
                  emitted: &mut Vec<(u64, u16)>,
                  flow_last: &mut HashMap<u32, u64>| {
        for p in out {
            let seq = seq_of(&p);
            let port = p.meta.egress_port.expect("routed packet has a port");
            assert_eq!(
                port, port_now,
                "seq {seq} exited port {port} but the epoch in force routes to {port_now} \
                 (stale-epoch processing)"
            );
            let flow = u32::from_be_bytes(p.data[30..34].try_into().unwrap()) - 0x0a01_0000;
            if let Some(prev) = flow_last.insert(flow, seq) {
                assert!(
                    prev < seq,
                    "flow {flow}: seq {seq} after {prev} (reordered)"
                );
            }
            emitted.push((seq, port));
        }
    };

    for _ in 0..400 {
        match rng.random_range(0u32..10) {
            // Inject a burst (any time, draining or not).
            0..=3 => {
                for _ in 0..rng.random_range(1usize..8) {
                    let flow = rng.random_range(0u32..flows);
                    sw.inject(seq_packet(flow, next_seq));
                    next_seq += 1;
                    injected += 1;
                }
            }
            // Drain a batch through the shards.
            4..=6 => {
                let out = sw.run_batch();
                if draining {
                    assert!(out.is_empty(), "drain must hold traffic");
                } else {
                    absorb(out, current_port, &mut emitted, &mut flow_last);
                }
            }
            // Interpreter reference path (exercises the dirty/republish
            // handoff between the two execution modes).
            7 => {
                let out = sw.run();
                if draining {
                    assert!(out.is_empty(), "drain must hold traffic");
                } else {
                    absorb(out, current_port, &mut emitted, &mut flow_last);
                }
            }
            // Epoch-changing table write racing the batches above.
            8 => {
                let port = rng.random_range(1u16..7);
                sw.apply(&[route_msg(port)]).unwrap();
                current_port = port;
            }
            // Toggle the Drain/Resume window.
            _ => {
                if draining {
                    sw.apply(&[ControlMsg::Resume]).unwrap();
                } else {
                    sw.apply(&[ControlMsg::Drain]).unwrap();
                }
                draining = !draining;
            }
        }
    }

    // Final drain: everything still pending must come out, under the
    // current epoch.
    if draining {
        sw.apply(&[ControlMsg::Resume]).unwrap();
    }
    absorb(sw.run_batch(), current_port, &mut emitted, &mut flow_last);
    assert_eq!(sw.pending(), 0, "device fully drained");

    // Conservation: exactly the injected sequence numbers, each once.
    assert_eq!(emitted.len() as u64, injected, "lost or duplicated packets");
    let mut seqs: Vec<u64> = emitted.iter().map(|(s, _)| *s).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len() as u64, injected, "duplicated sequence numbers");
    assert_eq!(seqs, (0..next_seq).collect::<Vec<_>>());

    // The fold-merged stats agree with conservation.
    let rep = sw.report();
    assert_eq!(rep.pipeline.received, injected);
    assert_eq!(rep.pipeline.emitted, injected);
    assert_eq!(rep.tm.tail_drops, 0);
}

/// Regression (elastic indexing sweep): grow → crash of a *grown* shard →
/// quarantine/rehash → respawn → shrink, with packet conservation
/// throughout. The collect/fold path once sized its per-barrier reply
/// buffer and `busy_ns` table from the construction-time shard count, so
/// a reply or stat delta from a shard index created by an elastic grow
/// (here shard 3 of a switch built with 2) indexed past the end.
#[test]
fn elastic_grow_crash_respawn_shrink_conserves_packets() {
    use ipbm::{AutoscaleConfig, FaultPlan};

    let mut sw = ShardedSwitch::new(IpbmConfig::default(), 2);
    sw.apply(&l3_msgs(1)).unwrap();
    sw.set_autoscale(Some(AutoscaleConfig {
        min_shards: 1,
        max_shards: 4,
        // Thresholds far above any real debug-build per-batch busy time:
        // only injected spikes read as overload, unspiked batches as idle.
        grow_busy_ns: 50_000_000,
        shrink_busy_ns: 10_000_000,
        grow_after: 1,
        shrink_after: 2,
    }))
    .unwrap();

    let flows = 8u32;
    let mut next_seq = 0u64;
    let mut injected = 0u64;
    let mut emitted: Vec<u64> = Vec::new();
    let mut flow_last: HashMap<u32, u64> = HashMap::new();
    let absorb = |out: Vec<ipsa_netpkt::packet::Packet>,
                  emitted: &mut Vec<u64>,
                  flow_last: &mut HashMap<u32, u64>| {
        for p in out {
            let seq = seq_of(&p);
            let flow = u32::from_be_bytes(p.data[30..34].try_into().unwrap()) - 0x0a01_0000;
            if let Some(prev) = flow_last.insert(flow, seq) {
                assert!(prev < seq, "flow {flow}: seq {seq} after {prev}");
            }
            emitted.push(seq);
        }
    };
    // Every phase below recomputes the barrier base per batch: a dirty
    // republish adds its own quiesce barrier before the batch's, so the
    // directives cover a small window instead of one exact coordinate.
    let batch = |sw: &mut ShardedSwitch,
                 plan: &dyn Fn(u64) -> FaultPlan,
                 next_seq: &mut u64,
                 injected: &mut u64,
                 emitted: &mut Vec<u64>,
                 flow_last: &mut HashMap<u32, u64>| {
        sw.set_fault_plan(plan(sw.barriers()));
        for _ in 0..8 {
            let flow = (*next_seq % flows as u64) as u32;
            sw.inject(seq_packet(flow, *next_seq));
            *next_seq += 1;
            *injected += 1;
        }
        let out = sw.run_batch();
        absorb(out, emitted, flow_last);
    };
    let spikes = |b: u64| {
        let mut plan = FaultPlan::default();
        for barrier in b + 1..=b + 4 {
            for shard in 0..4 {
                plan.spike_busy.push((shard, barrier, 200_000_000));
            }
        }
        plan
    };

    // Phase 1: sustained synthetic overload grows 2 -> 4 live shards.
    let mut rounds = 0;
    while sw.live_shards() < 4 {
        batch(
            &mut sw,
            &spikes,
            &mut next_seq,
            &mut injected,
            &mut emitted,
            &mut flow_last,
        );
        rounds += 1;
        assert!(rounds <= 8, "autoscaler failed to reach max_shards");
    }
    assert_eq!(sw.shard_busy_ns().len(), 4, "busy table covers grown slots");

    // Phase 2: crash shard 3 — a slot that exists only because of the
    // grow — while spikes keep the target at 4, so the slot respawns.
    batch(
        &mut sw,
        &|b| {
            let mut plan = spikes(b);
            plan.kill_at_barrier.push((3, b + 1));
            plan.kill_at_barrier.push((3, b + 2));
            plan
        },
        &mut next_seq,
        &mut injected,
        &mut emitted,
        &mut flow_last,
    );
    // Two more spiked batches: the target stays at 4, so the next epoch
    // publish respawns the quarantined slot.
    for _ in 0..2 {
        batch(
            &mut sw,
            &spikes,
            &mut next_seq,
            &mut injected,
            &mut emitted,
            &mut flow_last,
        );
    }
    let faults = sw.take_shard_faults();
    assert!(
        faults.iter().any(|f| f.shard == 3),
        "expected a logged fault for the grown shard, got {faults:?}"
    );
    assert!(
        sw.supervisor_stats().respawned >= 1,
        "crashed slot respawned"
    );
    assert_eq!(sw.live_shards(), 4, "back at full strength after respawn");

    // Phase 3: idle traffic shrinks back to min_shards hitlessly.
    rounds = 0;
    while sw.live_shards() > 1 {
        batch(
            &mut sw,
            &|_| FaultPlan::default(),
            &mut next_seq,
            &mut injected,
            &mut emitted,
            &mut flow_last,
        );
        rounds += 1;
        assert!(rounds <= 16, "autoscaler failed to shrink back to min");
    }
    absorb(sw.run_batch(), &mut emitted, &mut flow_last);
    assert_eq!(sw.pending(), 0, "device fully drained");

    // Conservation across the whole grow/crash/respawn/shrink lifecycle:
    // the crash may lose that batch's in-flight packets (charged to the
    // supervisor), everything else is emitted exactly once, in flow order.
    let lost = sw.supervisor_stats().lost_packets;
    assert_eq!(
        emitted.len() as u64 + lost,
        injected,
        "lost+emitted != injected"
    );
    let mut seqs = emitted.clone();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), emitted.len(), "duplicated sequence numbers");

    let s = sw.scale_stats();
    assert!(s.grows >= 2, "grows: {s:?}");
    assert!(s.shrinks >= 3 && s.retired >= 3, "shrinks: {s:?}");
    assert_eq!(sw.shard_busy_ns().len(), 4, "slots park, never shrink");
    assert_eq!(sw.report().pipeline.emitted, emitted.len() as u64);
    assert!(sw.on_compiled_path());
}

#[test]
fn epoch_barrier_survives_seeded_schedules() {
    for seed in 0..12 {
        torture_schedule(seed, 4);
    }
}

#[test]
fn epoch_barrier_survives_schedules_on_one_and_many_shards() {
    for &shards in &[1usize, 2, 7] {
        torture_schedule(1000 + shards as u64, shards);
    }
}
