//! Property-based integration tests: the compiled-and-installed base design
//! must agree with a direct Rust reference implementation of its forwarding
//! semantics over randomized route tables and traffic.

use proptest::prelude::*;
use rp4::demo;
use rp4::prelude::*;

/// Reference model of the base design's IPv4 path given the demo
/// population plus extra /24 routes: returns the expected egress port.
fn reference_forward(
    routes: &[(u32, u128)], // (/24 prefix base, nexthop)
    dst: u32,
    dst_mac: u128,
) -> Option<u16> {
    if dst_mac != demo::ROUTER_MAC {
        return None; // not routed; no L2 entries installed for these MACs
    }
    // Longest prefix: /24 specials win over the demo /16 (10.1/16 -> nh 7).
    let nh = routes
        .iter()
        .find(|(p, _)| dst & 0xFFFF_FF00 == *p)
        .map(|(_, nh)| *nh)
        .or(if dst & 0xFFFF_0000 == 0x0a01_0000 {
            Some(7)
        } else {
            None
        })?;
    match nh {
        7 => Some(2), // demo: nh 7 -> bd 2 -> NH_MAC_V4 -> port 2
        9 => Some(3), // demo: nh 9 -> bd 3 -> NH_MAC_V6 -> port 3
        _ => None,    // unknown nexthop: dmac misses, TM drops
    }
}

/// The concurrent traffic rig drives a fully populated switch: producer
/// and pipeline overlap, counts reconcile, nothing is lost.
#[test]
fn concurrent_rig_on_populated_base() {
    let flow = demo::populated_base_flow().unwrap();
    let (sw, report) = rp4::ipbm::rig::run_concurrent(flow.device, 23, 25, 32, 5_000, 128);
    assert_eq!(report.offered, 5_000);
    // Every generated flow is routable in the demo topology.
    assert_eq!(report.forwarded, 5_000);
    assert!(report.rate_pps > 0.0);
    let dev = sw.report();
    assert_eq!(dev.pipeline.received, 5_000);
    assert_eq!(dev.pipeline.emitted, 5_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random /24 routes + random destinations: the switch agrees with the
    /// reference model packet-for-packet.
    #[test]
    fn switch_matches_reference_model(
        route_thirds in proptest::collection::vec((0u8..200, prop_oneof![Just(7u128), Just(9u128), Just(55u128)]), 0..8),
        probes in proptest::collection::vec((0u8..200, any::<u8>()), 1..24),
    ) {
        let mut flow = demo::populated_base_flow().unwrap();
        // Install the random routes (all inside 10.2.X.0/24 so they don't
        // collide with the demo 10.1/16 route).
        let mut routes = Vec::new();
        for (third, nh) in &route_thirds {
            let prefix = 0x0a02_0000u32 | ((*third as u32) << 8);
            if routes.iter().any(|(p, _)| *p == prefix) {
                continue;
            }
            routes.push((prefix, *nh));
            flow.run_script(
                &format!("table_add ipv4_lpm set_nexthop 1 {prefix:#x}/24 => {nh}"),
                &rp4::controller::programs::bundled_sources,
            )
            .unwrap();
        }

        // Probe with destinations inside and outside the routed space,
        // alternating router-MAC and foreign-MAC frames.
        use rp4::netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};
        let mut expected = Vec::new();
        for (i, (third, last)) in probes.iter().enumerate() {
            let dst = 0x0a02_0000u32 | ((*third as u32) << 8) | *last as u32;
            let dst_mac = if i % 3 == 2 { 0x0202_9999_0000u128 } else { demo::ROUTER_MAC };
            expected.push(reference_forward(&routes, dst, dst_mac));
            flow.device.inject(ipv4_udp_packet(&Ipv4UdpSpec {
                dst_ip: dst,
                dst_mac: dst_mac as u64,
                src_port: 1000 + i as u16,
                ..Ipv4UdpSpec::default()
            }));
        }
        let forwarded = flow.device.run();
        // The switch emits only the packets the reference forwards, on the
        // same ports, in order.
        let want: Vec<u16> = expected.iter().flatten().copied().collect();
        // ipbm groups TX by port; compare as multisets.
        let mut got: Vec<u16> = forwarded.iter().filter_map(|p| p.meta.egress_port).collect();
        let mut want_sorted = want.clone();
        got.sort_unstable();
        want_sorted.sort_unstable();
        prop_assert_eq!(got, want_sorted);
    }

    /// In-situ updates never lose packets: inject, update mid-stream,
    /// inject more — everything routable comes out.
    #[test]
    fn updates_are_lossless(
        pre in 1usize..40,
        post in 1usize..40,
        which in 0usize..3,
    ) {
        let mut flow = demo::populated_base_flow().unwrap();
        let mut gen = TrafficGen::new(7).with_flows(16).with_v6_percent(25);
        for p in gen.batch(pre) {
            flow.device.inject(p);
        }
        let (_, _, script, _) = rp4::controller::programs::use_cases()[which];
        flow.run_script(script, &rp4::controller::programs::bundled_sources).unwrap();
        if which == 0 {
            // ECMP replaced the nexthop stage; install members so v4 still
            // routes.
            flow.run_script(
                &demo::ecmp_population_script(),
                &rp4::controller::programs::bundled_sources,
            )
            .unwrap();
        }
        for p in gen.batch(post) {
            flow.device.inject(p);
        }
        let out = flow.device.run();
        prop_assert_eq!(out.len(), pre + post, "which={}", which);
    }

    /// Failback soundness under arbitrary update sequences: between any two
    /// designs reached by the shipped scripts, applying `design_diff(from,
    /// to)` to `from` yields a design the equivalence checker accepts as
    /// identical to `to`, and the forward/backward diff pair is a proven
    /// round-trip identity.
    #[test]
    fn design_diff_round_trips(
        picks in proptest::collection::vec(0usize..3, 0..4),
    ) {
        // Each function loads at most once: keep first occurrences only.
        let mut order = Vec::new();
        for w in picks {
            if !order.contains(&w) {
                order.push(w);
            }
        }
        use rp4::controller::{parse_script, ScriptCmd};
        use rp4::rp4c::{self, UpdateCmd};

        let structural_cmds = |script: &str| -> Vec<UpdateCmd> {
            parse_script(script)
                .unwrap()
                .into_iter()
                .filter_map(|cmd| match cmd {
                    ScriptCmd::Load { file, func } => {
                        let src = rp4::controller::programs::bundled_sources(&file).unwrap();
                        let snippet = rp4::rp4_lang::parse(&src).unwrap();
                        Some(UpdateCmd::Load { snippet, func })
                    }
                    ScriptCmd::AddLink { from, to } => Some(UpdateCmd::AddLink { from, to }),
                    ScriptCmd::DelLink { from, to } => Some(UpdateCmd::DelLink { from, to }),
                    ScriptCmd::LinkHeader { pre, next, tag } => {
                        Some(UpdateCmd::LinkHeader { pre, next, tag })
                    }
                    ScriptCmd::UnlinkHeader { pre, next } => {
                        Some(UpdateCmd::UnlinkHeader { pre, next })
                    }
                    _ => None, // table operations are runtime-only
                })
                .collect()
        };

        let target = rp4c::CompilerTarget::ipbm();
        let base = rp4c::full_compile(
            &rp4::rp4_lang::parse(rp4::controller::programs::BASE_RP4).unwrap(),
            &target,
        )
        .unwrap();
        let mut designs = vec![base.design.clone()];
        let mut design = base.design;
        let mut program = base.program;
        for which in order {
            let (name, _, script, _) = rp4::controller::programs::use_cases()[which];
            let cmds = structural_cmds(script);
            let plan =
                rp4c::incremental_compile(&design, &program, &cmds, &target, rp4c::LayoutAlgo::Dp)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            design = plan.design;
            program = plan.program;
            designs.push(design.clone());
        }

        for from in &designs {
            for to in &designs {
                let fwd = rp4c::design_diff(from, to);
                let moved = rp4::rp4_equiv::apply::apply_msgs(from, &fwd);
                let diags = rp4::rp4_equiv::apply::roundtrip_diags(to, &moved);
                prop_assert!(
                    diags.is_empty(),
                    "diff does not land on the target design: {:?}",
                    diags.iter().map(|d| d.header()).collect::<Vec<_>>()
                );
                let back = rp4c::design_diff(to, from);
                let diags = rp4::rp4_equiv::check_roundtrip(from, &fwd, &back);
                prop_assert!(
                    diags.is_empty(),
                    "failback pair is not an identity: {:?}",
                    diags.iter().map(|d| d.header()).collect::<Vec<_>>()
                );
            }
        }
    }

    /// Fact-guided compilation is exact: with the controller-installed
    /// `ProgramFacts` driving the epoch compiler (parse elision, arm
    /// pruning, dead-store no-ops, header-locator memoization), the fast
    /// path's outputs AND statistics stay bit-identical to the
    /// interpreter — across every bundled program and across a mid-stream
    /// in-situ update, which clears the facts and reinstalls a freshly
    /// recomputed artifact.
    #[test]
    fn fact_guided_fast_path_matches_interpreter(
        seed in 0u64..500,
        v6 in 0u8..=40,
        flows in 1u16..64,
        n1 in 1usize..120,
        n2 in 1usize..120,
        which in proptest::option::of(0usize..3),
    ) {
        let sources = rp4::controller::programs::bundled_sources;
        let mut interp = demo::populated_base_flow().unwrap();
        let mut fast = demo::populated_base_flow().unwrap();
        prop_assert!(
            fast.device.pm.has_facts(),
            "controller must install dataflow facts alongside the design"
        );

        let mut gen_i = TrafficGen::new(seed).with_flows(flows as u32).with_v6_percent(v6);
        let mut gen_f = TrafficGen::new(seed).with_flows(flows as u32).with_v6_percent(v6);
        let mut out_i = Vec::new();
        let mut out_f = Vec::new();
        for p in gen_i.batch(n1) { interp.device.inject(p); }
        for p in gen_f.batch(n1) { fast.device.inject(p); }
        out_i.extend(interp.device.run());
        out_f.extend(fast.device.run_batch());
        prop_assert!(fast.device.pm.has_compiled(), "fast path must compile, not fall back");

        if let Some(which) = which {
            // In-situ update through the controller: structural messages
            // drop the old facts on-device, and the controller reinstalls
            // an artifact recomputed against the updated design.
            let (_, _, script, _) = rp4::controller::programs::use_cases()[which];
            interp.run_script(script, &sources).unwrap();
            fast.run_script(script, &sources).unwrap();
            if which == 0 {
                interp.run_script(&demo::ecmp_population_script(), &sources).unwrap();
                fast.run_script(&demo::ecmp_population_script(), &sources).unwrap();
            }
            prop_assert!(
                fast.device.pm.has_facts(),
                "facts must be reinstalled after the in-situ update"
            );
        }

        for p in gen_i.batch(n2) { interp.device.inject(p); }
        for p in gen_f.batch(n2) { fast.device.inject(p); }
        out_i.extend(interp.device.run());
        out_f.extend(fast.device.run_batch());

        prop_assert_eq!(&out_i, &out_f, "emitted packets must be byte-identical");
        prop_assert_eq!(interp.device.pm.stats, fast.device.pm.stats);
        prop_assert_eq!(interp.device.pm.tm.stats, fast.device.pm.tm.stats);
        let slots_i: Vec<_> = interp.device.pm.slots.iter().map(|s| s.stats).collect();
        let slots_f: Vec<_> = fast.device.pm.slots.iter().map(|s| s.stats).collect();
        prop_assert_eq!(slots_i, slots_f);
        prop_assert_eq!(interp.device.sm.mem_accesses, fast.device.sm.mem_accesses);
    }

    /// TTL handling: any forwarded v4 packet leaves with TTL decremented by
    /// exactly one and a valid checksum, regardless of input TTL ≥ 2.
    #[test]
    fn ttl_and_checksum_invariant(ttl in 2u8.., sport in any::<u16>()) {
        use rp4::netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};
        let mut flow = demo::populated_base_flow().unwrap();
        flow.device.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a01_0042,
            ttl,
            src_port: sport,
            ..Ipv4UdpSpec::default()
        }));
        let out = flow.device.run();
        prop_assert_eq!(out.len(), 1);
        let p = &out[0];
        let linkage = &flow.device.linkage;
        prop_assert_eq!(p.get_field(linkage, "ipv4", "ttl").unwrap(), (ttl - 1) as u128);
        prop_assert!(rp4::netpkt::checksum::ipv4_checksum_ok(&p.data[14..34]));
        prop_assert_eq!(
            p.get_field(linkage, "ethernet", "src_addr").unwrap(),
            demo::SRC_MAC
        );
    }
}
