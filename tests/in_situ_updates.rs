//! Integration: the three in-situ use cases end-to-end, with live traffic
//! and the invariants the paper claims — near-zero service impact, only
//! incremental state touched, functions removable.

use rp4::demo;
use rp4::prelude::*;

/// Use case C1 full lifecycle, asserting the incremental-update invariants.
#[test]
fn c1_ecmp_lifecycle() {
    let mut flow = demo::populated_base_flow().unwrap();
    let mut gen = TrafficGen::new(21).with_flows(64);

    // Pre-update traffic and the untouched-entry invariant: entries of
    // untouched tables survive an in-situ update (PISA would lose them).
    for p in gen.ecmp_batch(100, 0x0a01_0005) {
        flow.device.inject(p);
    }
    assert_eq!(flow.device.run().len(), 100);
    let fib_entries_before = flow.device.sm.table("ipv4_lpm").unwrap().table.len();

    let outcome = flow
        .run_script(
            controller::programs::ECMP_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .unwrap();
    flow.run_script(
        &demo::ecmp_population_script(),
        &controller::programs::bundled_sources,
    )
    .unwrap();

    // Invariant: untouched tables keep their entries across the update.
    assert_eq!(
        flow.device.sm.table("ipv4_lpm").unwrap().table.len(),
        fib_entries_before
    );
    // Invariant: the update only created the new tables.
    assert_eq!(outcome.report.entries_written, 0);
    // Invariant: nexthop's memory was recycled.
    assert!(flow.device.sm.table("nexthop").is_none());

    // Post-update traffic spreads.
    let mut ports = std::collections::BTreeSet::new();
    for p in gen.ecmp_batch(400, 0x0a01_0005) {
        flow.device.inject(p);
    }
    for p in flow.device.run() {
        ports.insert(p.meta.egress_port.unwrap());
    }
    assert!(ports.len() >= 3, "{ports:?}");
}

/// Use case C2: runtime protocol introduction with tunnels in and out.
#[test]
fn c2_srv6_end_to_end() {
    let mut flow = demo::populated_base_flow().unwrap();
    flow.run_script(
        controller::programs::SRV6_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();

    let sid: u128 = 0xfc01_0000_0000_0000_0000_0000_0000_0011;
    let seg2: u128 = 0xfc01_0000_0000_0000_0000_0000_0000_0022;
    flow.run_script(
        &format!("table_add local_sid srv6_end {sid:#x} =>"),
        &controller::programs::bundled_sources,
    )
    .unwrap();

    // Three-segment packet: two advances happen on consecutive visits.
    use rp4::netpkt::builder::{srv6_packet, Ipv6UdpSpec};
    let pkt = srv6_packet(
        &Ipv6UdpSpec {
            dst_ip: sid,
            ..Ipv6UdpSpec::default()
        },
        &[seg2, sid],
    );
    flow.device.inject(pkt);
    let out = flow.device.run();
    assert_eq!(out.len(), 1);
    let linkage = flow.device.linkage.clone();
    assert_eq!(
        out[0].get_field(&linkage, "ipv6", "dst_addr").unwrap(),
        seg2
    );
    assert_eq!(out[0].meta.egress_port, Some(3));

    // Unloading SRv6 removes its tables but keeps the spliced parse edges
    // (headers are device state; removing the function does not undo
    // link_header — the controller would issue unlink_header explicitly).
    flow.run_script(
        "unload --func_name srv6",
        &controller::programs::bundled_sources,
    )
    .unwrap();
    assert!(flow.device.sm.table("local_sid").is_none());
    flow.run_script(
        "unlink_header --pre ipv6 --next srh",
        &controller::programs::bundled_sources,
    )
    .unwrap();
    assert!(!flow
        .design
        .linkage
        .edges()
        .iter()
        .any(|(p, _, n)| p == "ipv6" && n == "srh"));
}

/// Use case C3 with per-flow thresholds and counter visibility.
#[test]
fn c3_probe_thresholds_per_flow() {
    let mut flow = demo::populated_base_flow().unwrap();
    flow.run_script(
        controller::programs::FLOWPROBE_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
    // Two monitored flows with different thresholds.
    flow.run_script(
        "table_add flow_probe probe_count 0x0a000000 0x0a010000 => 10\n\
         table_add flow_probe probe_count 0x0a000001 0x0a010001 => 30",
        &controller::programs::bundled_sources,
    )
    .unwrap();

    let gen = TrafficGen::new(2).with_flows(8);
    // 40 packets each for flows 0 and 1.
    for i in [0u32, 1] {
        for _ in 0..40 {
            flow.device
                .inject(gen.flow_packet(rp4::netpkt::traffic::FlowId {
                    index: i,
                    v6: false,
                }));
        }
    }
    let out = flow.device.run();
    assert_eq!(out.len(), 80);
    let linkage = flow.device.linkage.clone();
    let marked = |src: u128| {
        out.iter()
            .filter(|p| {
                p.get_field(&linkage, "ipv4", "src_addr").unwrap() == src && p.meta.mark == 1
            })
            .count()
    };
    assert_eq!(marked(0x0a00_0000), 30, "threshold 10 -> 30 of 40 marked");
    assert_eq!(marked(0x0a00_0001), 10, "threshold 30 -> 10 of 40 marked");
}

/// The `update` script command: one-shot in-place replacement of a loaded
/// function (the paper's "function update" case), preserving the splice
/// position without re-issuing link commands.
#[test]
fn update_command_replaces_in_one_window() {
    let mut flow = demo::populated_base_flow().unwrap();
    flow.run_script(
        controller::programs::FLOWPROBE_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
    let slots_before: Vec<(usize, String)> = flow
        .design
        .programmed()
        .map(|(s, t)| (s, t.stage_name.clone()))
        .collect();

    // Revised probe: bigger table, same stage name, one `update` command.
    let revised = controller::programs::FLOWPROBE_RP4.replace("size = 1024;", "size = 4096;");
    let sources = move |name: &str| {
        if name == "probe_v2.rp4" {
            Some(revised.clone())
        } else {
            controller::programs::bundled_sources(name)
        }
    };
    let out = flow
        .run_script("update probe_v2.rp4 --func_name probe", &sources)
        .unwrap();
    let stats = out.update_stats.unwrap();
    // In place: the probe keeps its slot; no other stage moved.
    let slots_after: Vec<(usize, String)> = flow
        .design
        .programmed()
        .map(|(s, t)| (s, t.stage_name.clone()))
        .collect();
    assert_eq!(slots_before, slots_after);
    // The template content is identical, so no TSP is rewritten; the table
    // is recreated at its new size — on the controller AND the device.
    assert_eq!(stats.template_writes, 0, "{stats:?}");
    assert!(
        stats.new_tables.contains(&"flow_probe".to_string()),
        "{stats:?}"
    );
    assert_eq!(flow.design.tables["flow_probe"].size, 4096);
    assert_eq!(
        flow.device.sm.table("flow_probe").unwrap().table.def.size,
        4096,
        "device-side schema updated"
    );
    // The revised probe still sits between bd_vrf and fwd_mode: traffic
    // flows and the probe observes it.
    flow.run_script(
        "table_add flow_probe probe_count 0x0a000000 0x0a010000 => 5",
        &sources,
    )
    .unwrap();
    let gen = TrafficGen::new(8).with_flows(4);
    for _ in 0..10 {
        flow.device
            .inject(gen.flow_packet(rp4::netpkt::traffic::FlowId {
                index: 0,
                v6: false,
            }));
    }
    let out = flow.device.run();
    assert_eq!(out.len(), 10);
    assert_eq!(out.iter().filter(|p| p.meta.mark == 1).count(), 5);
}

/// Function *update*: re-loading a function replaces its stages/tables.
#[test]
fn function_update_replaces_in_place() {
    let mut flow = demo::populated_base_flow().unwrap();
    flow.run_script(
        controller::programs::FLOWPROBE_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
    let slots_before = flow.design.programmed().count();

    // Update = unload + load of a revised probe (bigger table).
    let revised = controller::programs::FLOWPROBE_RP4.replace("size = 1024;", "size = 2048;");
    let sources = move |name: &str| {
        if name == "flowprobe2.rp4" {
            Some(revised.clone())
        } else {
            controller::programs::bundled_sources(name)
        }
    };
    flow.run_script("unload --func_name probe", &sources)
        .unwrap();
    flow.run_script(
        "load flowprobe2.rp4 --func_name probe\n\
         add_link bd_vrf flow_probe_s\n\
         add_link flow_probe_s fwd_mode\n\
         del_link bd_vrf fwd_mode",
        &sources,
    )
    .unwrap();
    assert_eq!(flow.design.programmed().count(), slots_before);
    assert_eq!(flow.design.tables["flow_probe"].size, 2048);
    // The bigger table takes more blocks.
    assert!(
        flow.device
            .sm
            .table("flow_probe")
            .unwrap()
            .map
            .block_ids
            .len()
            >= 2
    );
}

/// The drain window loses nothing: packets injected mid-update are held
/// and forwarded after resume, across all three use cases applied in
/// sequence.
#[test]
fn sequential_updates_zero_loss() {
    let mut flow = demo::populated_base_flow().unwrap();
    let mut gen = TrafficGen::new(77).with_v6_percent(20).with_flows(32);
    let mut total_in = 0usize;
    let mut total_out = 0usize;

    for (_, _, script, _) in controller::programs::use_cases() {
        for p in gen.batch(60) {
            flow.device.inject(p);
            total_in += 1;
        }
        flow.run_script(script, &controller::programs::bundled_sources)
            .unwrap();
        // C1 needs members before held v4 traffic can route again.
        if flow.design.tables.contains_key("ecmp_ipv4")
            && flow.device.sm.table("ecmp_ipv4").unwrap().table.is_empty()
        {
            flow.run_script(
                &demo::ecmp_population_script(),
                &controller::programs::bundled_sources,
            )
            .unwrap();
        }
        total_out += flow.device.run().len();
    }
    for p in gen.batch(60) {
        flow.device.inject(p);
        total_in += 1;
    }
    total_out += flow.device.run().len();
    assert_eq!(total_in, total_out, "no packet lost across three updates");
    // All three functions coexist.
    let funcs: Vec<&str> = flow.design.funcs.iter().map(|f| f.name.as_str()).collect();
    assert!(funcs.contains(&"ecmp"), "{funcs:?}");
    assert!(funcs.contains(&"srv6"), "{funcs:?}");
    assert!(funcs.contains(&"probe"), "{funcs:?}");
}
