//! Integration: deterministic chaos suite for the sharded runtime's
//! supervisor. Every scenario is seeded and scheduled through
//! [`FaultPlan`] — kill shard N at barrier K, delay a reply past the drain
//! timeout, defer respawns, poison a compile — so failures reproduce
//! exactly. Environment knobs:
//!
//! * `SHARDS=<n>` — run at one shard count (default: both 2 and 4);
//! * `CHAOS_SEEDS=<a,b,...>` — victim-selection seeds (default: `0,1`).
//!
//! Invariants checked throughout: packet conservation (`emitted +
//! supervisor.lost_packets == injected`), per-flow order for surviving
//! flows, quarantine without process panic, and recovery to the full shard
//! count within two epoch publishes.

use std::collections::HashMap;
use std::time::Duration;

use rp4::core::action::{ActionDef, Primitive};
use rp4::core::pipeline_cfg::SelectorConfig;
use rp4::core::table::{KeyField, MatchKind, TableDef};
use rp4::core::template::{MatcherBranch, TspTemplate};
use rp4::core::value::ValueRef;
use rp4::ipbm::{FaultPlan, ShardFaultKind, ShardedSwitch};
use rp4::prelude::*;

fn shard_counts() -> Vec<usize> {
    match std::env::var("SHARDS").ok().and_then(|s| s.parse().ok()) {
        Some(n) => vec![n],
        None => vec![2, 4],
    }
}

fn seeds() -> Vec<u64> {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![0, 1])
}

/// One-stage L3 program routing 10/8 to `port`, as a raw message batch.
fn l3_msgs(port: u16) -> Vec<ControlMsg> {
    vec![
        ControlMsg::Drain,
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::ethernet()),
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::ipv4()),
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::udp()),
        ControlMsg::SetFirstHeader("ethernet".into()),
        ControlMsg::DefineAction(ActionDef {
            name: "fwd".into(),
            params: vec![("port".into(), 16)],
            body: vec![Primitive::Forward {
                port: ValueRef::Param(0),
            }],
        }),
        ControlMsg::CreateTable {
            def: TableDef {
                name: "route".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["fwd".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            blocks: vec![0],
        },
        ControlMsg::WriteTemplate {
            slot: 0,
            template: TspTemplate {
                stage_name: "route_s".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: rp4::core::predicate::Predicate::IsValid("ipv4".into()),
                    table: Some("route".into()),
                }],
                executor: vec![(1, ActionCall::new("fwd", vec![]))],
                default_action: ActionCall::no_action(),
            },
        },
        ControlMsg::ConnectCrossbar {
            slot: 0,
            blocks: vec![0],
        },
        ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
        ControlMsg::Resume,
        ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![KeyMatch::Lpm {
                    value: 0x0a00_0000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![port as u128]),
                counter: 0,
            },
        },
    ]
}

/// A routable packet for `flow` carrying per-flow sequence number `seq` in
/// its payload (big-endian).
fn seq_packet(flow: u32, seq: u32) -> Packet {
    rp4::netpkt::builder::ipv4_udp_packet(&rp4::netpkt::builder::Ipv4UdpSpec {
        src_ip: 0x0a00_0a00 + flow,
        dst_ip: 0x0a01_0000 + flow,
        payload: seq.to_be_bytes().to_vec(),
        ..Default::default()
    })
}

fn flow_of(p: &Packet) -> u32 {
    u32::from_be_bytes(p.data[30..34].try_into().unwrap()) - 0x0a01_0000
}

fn seq_of(p: &Packet) -> u32 {
    let n = p.data.len();
    u32::from_be_bytes(p.data[n - 4..].try_into().unwrap())
}

/// Injects `per_flow` sequenced packets for each of `flows` flows,
/// interleaved, starting at sequence `base`. Returns the injected count.
fn inject_sequenced(sw: &mut ShardedSwitch, flows: u32, per_flow: u32, base: u32) -> u64 {
    for seq in base..base + per_flow {
        for f in 0..flows {
            sw.inject(seq_packet(f, seq));
        }
    }
    (flows * per_flow) as u64
}

/// Asserts per-flow sequence monotonicity and no duplicates across one or
/// more output batches (concatenated in emission order).
fn assert_flow_order(batches: &[&[Packet]]) {
    let mut last: HashMap<u32, u32> = HashMap::new();
    for batch in batches {
        for p in *batch {
            let f = flow_of(p);
            let s = seq_of(p);
            if let Some(prev) = last.get(&f) {
                assert!(s > *prev, "flow {f}: seq {s} after {prev}");
            }
            last.insert(f, s);
        }
    }
}

/// Builds a ready switch: program installed, first epoch published (one
/// warm-up batch), short drain timeout for fast fault detection.
fn ready_switch(shards: usize) -> ShardedSwitch {
    let mut sw = ShardedSwitch::new(IpbmConfig::default(), shards);
    sw.set_drain_timeout(Duration::from_millis(500));
    sw.apply(&l3_msgs(4)).unwrap();
    inject_sequenced(&mut sw, shards as u32 * 2, 1, 0);
    let out = sw.run_batch();
    assert_eq!(out.len(), shards * 2, "warm-up batch must fully forward");
    assert!(sw.on_compiled_path());
    sw
}

/// A worker killed mid-batch: quarantined without panic, surviving shards
/// lose nothing, per-flow order holds, and the switch is back to full
/// shard count (with full conservation) on the very next batch.
#[test]
fn killed_worker_is_quarantined_and_respawned() {
    for shards in shard_counts() {
        for seed in seeds() {
            let mut sw = ready_switch(shards);
            let flows = shards as u32 * 2;
            let victim = (seed as usize) % shards;
            sw.set_fault_plan(FaultPlan {
                kill_at_barrier: vec![(victim, sw.barriers() + 1)],
                ..Default::default()
            });

            let injected = inject_sequenced(&mut sw, flows, 8, 1);
            let out = sw.run_batch();
            let stats = sw.supervisor_stats();
            assert_eq!(stats.quarantined, 1, "shards={shards} seed={seed}");
            assert_eq!(sw.live_shards(), shards - 1);
            assert_eq!(
                out.len() as u64 + stats.lost_packets,
                injected,
                "conservation: every packet is emitted or charged lost"
            );
            let faults = sw.take_shard_faults();
            assert_eq!(faults.len(), 1);
            assert_eq!(faults[0].shard, victim);
            assert!(
                matches!(faults[0].kind, ShardFaultKind::DrainTimeout(_)),
                "a silent death is detected by the timeout: {}",
                faults[0].kind
            );

            // Next batch: replacement respawned at the epoch publish, full
            // shard count, zero loss.
            let injected2 = inject_sequenced(&mut sw, flows, 8, 9);
            let out2 = sw.run_batch();
            assert_eq!(sw.live_shards(), shards, "recovered to full strength");
            assert_eq!(sw.supervisor_stats().respawned, 1);
            assert_eq!(out2.len() as u64, injected2, "no loss after recovery");
            assert_flow_order(&[&out, &out2]);
        }
    }
}

/// With respawn deferred one publish, the next batch runs degraded: the
/// dead shard's flows rehash deterministically across the survivors with
/// zero loss, and the publish after that restores the full shard count —
/// i.e. recovery completes within two epoch publishes.
#[test]
fn rehash_over_survivors_then_recovery_within_two_epochs() {
    for shards in shard_counts() {
        if shards < 2 {
            continue;
        }
        for seed in seeds() {
            let mut sw = ready_switch(shards);
            let flows = shards as u32 * 2;
            let victim = (seed as usize) % shards;
            sw.set_fault_plan(FaultPlan {
                kill_at_barrier: vec![(victim, sw.barriers() + 1)],
                defer_respawns: 1,
                ..Default::default()
            });

            let injected = inject_sequenced(&mut sw, flows, 4, 1);
            let out = sw.run_batch();
            assert_eq!(sw.live_shards(), shards - 1);
            assert_eq!(
                out.len() as u64 + sw.supervisor_stats().lost_packets,
                injected
            );

            // Epoch publish 1: respawn deferred — the batch runs on the
            // survivors, rehashed, losing nothing.
            let injected2 = inject_sequenced(&mut sw, flows, 4, 5);
            let out2 = sw.run_batch();
            assert_eq!(sw.live_shards(), shards - 1, "still degraded");
            assert_eq!(
                out2.len() as u64,
                injected2,
                "rehashed dispatch over survivors loses nothing"
            );

            // Epoch publish 2: replacement respawned, full strength.
            let injected3 = inject_sequenced(&mut sw, flows, 4, 9);
            let out3 = sw.run_batch();
            assert_eq!(
                sw.live_shards(),
                shards,
                "full shard count within two epochs"
            );
            assert_eq!(out3.len() as u64, injected3);
            assert_flow_order(&[&out, &out2, &out3]);
        }
    }
}

/// A reply delayed past the drain timeout quarantines the worker; when the
/// late reply finally lands it is discarded by the generation check (never
/// double-counted), and traffic continues with no duplicate packets.
#[test]
fn delayed_reply_times_out_and_late_answer_is_discarded() {
    for shards in shard_counts() {
        for seed in seeds() {
            let mut sw = ready_switch(shards);
            sw.set_drain_timeout(Duration::from_millis(100));
            let flows = shards as u32 * 2;
            let victim = (seed as usize) % shards;
            sw.set_fault_plan(FaultPlan {
                delay_reply: vec![(victim, sw.barriers() + 1, Duration::from_millis(400))],
                ..Default::default()
            });

            let injected = inject_sequenced(&mut sw, flows, 6, 1);
            let out = sw.run_batch();
            let stats = sw.supervisor_stats();
            assert_eq!(stats.quarantined, 1);
            assert!(sw
                .take_shard_faults()
                .iter()
                .any(|f| matches!(f.kind, ShardFaultKind::DrainTimeout(_))));
            assert_eq!(out.len() as u64 + stats.lost_packets, injected);

            // Let the delayed worker wake, send its stale reply, and exit.
            std::thread::sleep(Duration::from_millis(500));

            let injected2 = inject_sequenced(&mut sw, flows, 6, 7);
            let out2 = sw.run_batch();
            assert_eq!(sw.live_shards(), shards);
            assert_eq!(out2.len() as u64, injected2);
            assert!(
                sw.supervisor_stats().stale_replies >= 1,
                "the late reply must be discarded as stale, not folded"
            );
            // A double-folded reply would emit duplicate (flow, seq) pairs.
            assert_flow_order(&[&out, &out2]);
        }
    }
}

/// Every worker lost and respawn deferred: the master interpreter carries
/// the traffic (same degradation as a failed compile), then the switch
/// recovers to the full shard count once respawns resume.
#[test]
fn all_workers_lost_degrades_to_interpreter_then_recovers() {
    for shards in shard_counts() {
        let mut sw = ready_switch(shards);
        let flows = shards as u32 * 2;
        let next = sw.barriers() + 1;
        sw.set_fault_plan(FaultPlan {
            kill_at_barrier: (0..shards).map(|s| (s, next)).collect(),
            defer_respawns: 1,
            ..Default::default()
        });

        let injected = inject_sequenced(&mut sw, flows, 4, 1);
        let out = sw.run_batch();
        assert_eq!(sw.live_shards(), 0, "every worker quarantined");
        assert_eq!(
            out.len() as u64 + sw.supervisor_stats().lost_packets,
            injected
        );

        // Respawn deferred: the interpreter carries this batch whole.
        let injected2 = inject_sequenced(&mut sw, flows, 4, 5);
        let out2 = sw.run_batch();
        assert_eq!(out2.len() as u64, injected2, "interpreter loses nothing");
        assert!(sw.supervisor_stats().degraded_batches >= 1);

        // Respawns resume: full shard count, sharded dispatch again.
        let injected3 = inject_sequenced(&mut sw, flows, 4, 9);
        let out3 = sw.run_batch();
        assert_eq!(sw.live_shards(), shards, "recovered from total loss");
        assert_eq!(sw.supervisor_stats().respawned as usize, shards);
        assert_eq!(out3.len() as u64, injected3);
        assert_flow_order(&[&out, &out2, &out3]);
    }
}

/// A poisoned compile forces the interpreter fallback (traffic flows, just
/// slower); the next control-plane epoch compiles again and the shards take
/// back over.
#[test]
fn poisoned_compile_falls_back_then_recompiles() {
    for shards in shard_counts() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), shards);
        sw.apply(&l3_msgs(4)).unwrap();
        let flows = shards as u32 * 2;
        sw.set_fault_plan(FaultPlan {
            poison_compile_at_epoch: Some(sw.master.pm.epoch()),
            ..Default::default()
        });

        let injected = inject_sequenced(&mut sw, flows, 4, 0);
        let out = sw.run_batch();
        assert!(!sw.on_compiled_path(), "poisoned epoch must not publish");
        assert_eq!(
            out.len() as u64,
            injected,
            "interpreter fallback is lossless"
        );

        // Any control batch opens a new (unpoisoned) epoch.
        sw.apply(&[ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![KeyMatch::Lpm {
                    value: 0x0b00_0000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![5]),
                counter: 0,
            },
        }])
        .unwrap();
        let injected2 = inject_sequenced(&mut sw, flows, 4, 4);
        let out2 = sw.run_batch();
        assert!(sw.on_compiled_path(), "next epoch compiles and publishes");
        assert_eq!(out2.len() as u64, injected2);
        assert_flow_order(&[&out, &out2]);
    }
}

/// Chaos under elastic scaling: synthetic overload grows the live set
/// while the fault plan kills a worker mid-scale-up (the seeded victim
/// ranges over all four slots, including ones that exist only once
/// grown). The supervisor quarantines and respawns inside the overload
/// phase, the live set never leaves the configured bounds, and once the
/// overload clears the autoscaler shrinks back to `min_shards` with no
/// further loss — conservation (`emitted + lost == injected`) holds over
/// the whole run.
#[test]
fn autoscaler_survives_kill_during_scale_up() {
    use rp4::ipbm::AutoscaleConfig;
    for seed in seeds() {
        let mut sw = ready_switch(2);
        sw.set_autoscale(Some(AutoscaleConfig {
            min_shards: 1,
            max_shards: 4,
            // ms-scale thresholds: only injected spikes read as overload.
            grow_busy_ns: 50_000_000,
            shrink_busy_ns: 10_000_000,
            grow_after: 1,
            shrink_after: 2,
        }))
        .unwrap();
        let warmed = sw.report().pipeline.emitted;

        let flows = 8u32;
        let victim = (seed as usize) % 4;
        let mut injected = 0u64;
        let mut outs: Vec<Vec<Packet>> = Vec::new();
        for k in 0u32..5 {
            let b = sw.barriers();
            let mut plan = FaultPlan::default();
            for barrier in b + 1..=b + 4 {
                for shard in 0..4 {
                    plan.spike_busy.push((shard, barrier, 200_000_000));
                }
            }
            if k == 2 {
                // Race the kill against the scale-up: by now the target
                // is max_shards and the grown slots carry traffic.
                plan.kill_at_barrier.push((victim, b + 1));
                plan.kill_at_barrier.push((victim, b + 2));
            }
            sw.set_fault_plan(plan);
            injected += inject_sequenced(&mut sw, flows, 4, 1 + k * 4);
            outs.push(sw.run_batch());
            let live = sw.live_shards();
            assert!((1..=4).contains(&live), "live {live} out of bounds");
        }
        assert!(sw.supervisor_stats().quarantined >= 1, "seed {seed}");
        assert!(sw.supervisor_stats().respawned >= 1, "seed {seed}");
        assert_eq!(sw.live_shards(), 4, "overload holds the live set at max");
        let lost_under_fire = sw.supervisor_stats().lost_packets;

        // Overload clears: shrink back to min, hitlessly.
        sw.set_fault_plan(FaultPlan::default());
        for k in 0u32..10 {
            injected += inject_sequenced(&mut sw, flows, 2, 100 + k * 2);
            outs.push(sw.run_batch());
        }
        assert_eq!(sw.live_shards(), 1, "idle traffic shrinks back to min");
        assert_eq!(
            sw.supervisor_stats().lost_packets,
            lost_under_fire,
            "elastic shrink must lose nothing"
        );
        let s = sw.scale_stats();
        assert!(s.grows >= 2 && s.shrinks >= 3 && s.retired >= 3, "{s:?}");

        let emitted: u64 = outs.iter().map(|o| o.len() as u64).sum();
        assert_eq!(
            emitted + sw.supervisor_stats().lost_packets,
            injected,
            "conservation across grow/kill/respawn/shrink (seed {seed})"
        );
        assert_eq!(sw.report().pipeline.emitted - warmed, emitted);
        let refs: Vec<&[Packet]> = outs.iter().map(|o| o.as_slice()).collect();
        assert_flow_order(&refs);
        assert!(sw.on_compiled_path());
    }
}

/// A rejected control batch on the sharded switch: the master rolls back,
/// no new epoch opens, and traffic keeps flowing on the already-published
/// compiled path.
#[test]
fn rejected_apply_on_sharded_switch_keeps_traffic_flowing() {
    use rp4::core::error::CoreError;
    for shards in shard_counts() {
        let mut sw = ready_switch(shards);
        let epoch = sw.master.pm.epoch();
        let e = sw
            .apply(&[ControlMsg::Drain, ControlMsg::ClearSlot { slot: 9999 }])
            .unwrap_err();
        assert!(matches!(e, CoreError::RolledBack { index: 1, .. }), "{e}");
        assert_eq!(sw.master.pm.epoch(), epoch, "no epoch opened");
        assert!(!sw.master.pm.draining, "the Drain rolled back too");

        let flows = shards as u32 * 2;
        let injected = inject_sequenced(&mut sw, flows, 4, 1);
        let out = sw.run_batch();
        assert!(sw.on_compiled_path());
        assert_eq!(out.len() as u64, injected);
    }
}
