//! Integration: failure injection. A production data plane must degrade
//! loudly at the control plane and gracefully at the data plane.

use rp4::demo;
use rp4::prelude::*;

/// Malformed traffic (truncated, corrupted, empty) never wedges the
/// pipeline; well-formed packets around it still forward.
#[test]
fn malformed_packets_do_not_wedge_the_pipeline() {
    use rand::{RngExt, SeedableRng};
    let mut flow = demo::populated_base_flow().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let mut gen = TrafficGen::new(9).with_flows(16);

    let mut good_in = 0;
    for i in 0..400 {
        if i % 4 == 0 {
            // Inject garbage: truncated/corrupted/empty frames.
            let mut p = gen.next_mixed().0;
            match i % 3 {
                0 => p.data.truncate(rng.random_range(0..20)),
                1 => {
                    let n = p.data.len();
                    p.data[rng.random_range(0..n)] ^= 0xFF;
                }
                _ => p.data.clear(),
            }
            flow.device.inject(p);
        } else {
            flow.device.inject(gen.next_mixed().0);
            good_in += 1;
        }
    }
    let out = flow.device.run();
    // Every well-formed packet made it; garbage either forwarded (if the
    // corruption missed load-bearing fields) or dropped — never panicked.
    assert!(
        out.len() >= good_in - 120,
        "out {} good {}",
        out.len(),
        good_in
    );
    assert_eq!(flow.device.pending(), 0);
}

/// Table overflow surfaces as a typed error, leaves the table consistent.
#[test]
fn table_full_is_loud_and_recoverable() {
    let mut flow = demo::populated_base_flow().unwrap();
    // port_map has size 64; 8 entries already installed.
    let mut errs = 0;
    for i in 0..70u128 {
        let r = flow.run_script(
            &format!("table_add port_map set_ifindex {} => 1", 100 + i),
            &controller::programs::bundled_sources,
        );
        if r.is_err() {
            errs += 1;
        }
    }
    assert!(errs >= 14, "beyond-capacity inserts must fail ({errs})");
    assert_eq!(flow.device.sm.table("port_map").unwrap().table.len(), 64);
    // The device still forwards.
    let mut gen = TrafficGen::new(4).with_flows(8);
    for p in gen.batch(20) {
        flow.device.inject(p);
    }
    assert_eq!(flow.device.run().len(), 20);
}

/// Compiler-level failures reject the script before the device changes.
#[test]
fn invalid_scripts_leave_device_untouched() {
    let mut flow = demo::populated_base_flow().unwrap();
    let snapshot = flow.design.clone();
    let cases = [
        // Unknown stage in a link.
        "add_link ghost_stage dmac",
        // Cycle.
        "add_link dmac port_map",
        // Unknown snippet file.
        "load missing.rp4 --func_name f",
        // Semantically broken snippet (resolved via sources below).
        "load broken.rp4 --func_name f\nadd_link bd_vrf broken_s",
    ];
    let sources = |name: &str| {
        match name {
        "broken.rp4" => Some(
            "stage broken_s { parser { mystery_header; } matcher { } executor { default: NoAction; } }"
                .to_string(),
        ),
        other => controller::programs::bundled_sources(other),
    }
    };
    for script in cases {
        let e = flow.run_script(script, &sources);
        assert!(e.is_err(), "script must fail: {script}");
        assert_eq!(flow.design, snapshot, "device/design untouched: {script}");
    }
}

/// Pool exhaustion during an in-situ load is a compile-time error, not a
/// half-configured device.
#[test]
fn pool_exhaustion_rejected_at_compile_time() {
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).unwrap();
    let mut target = rp4c::CompilerTarget::ipbm();
    target.sram_blocks = 16; // base fits (~15 blocks), ECMP (+12) cannot
    let compilation = rp4c::full_compile(&prog, &target).unwrap();
    let device = IpbmSwitch::new(IpbmConfig {
        sram_blocks: 16,
        ..IpbmConfig::default()
    });
    let (mut flow, _) = Rp4Flow::install(device, compilation, target).unwrap();
    let before = flow.design.clone();
    let e = flow
        .run_script(
            controller::programs::ECMP_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .unwrap_err();
    assert!(
        matches!(
            e,
            controller::ControllerError::Compile(rp4c::CompileError::Pack(_))
        ),
        "{e}"
    );
    assert_eq!(flow.design, before);
}

/// Slot exhaustion: a pipeline too small for an insertion fails cleanly.
#[test]
fn slot_exhaustion_rejected() {
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).unwrap();
    let mut target = rp4c::CompilerTarget::ipbm();
    target.slots = 8; // exactly the base design's footprint
    let compilation = rp4c::full_compile(&prog, &target).unwrap();
    let device = IpbmSwitch::new(IpbmConfig {
        slots: 8,
        ..IpbmConfig::default()
    });
    let (mut flow, _) = Rp4Flow::install(device, compilation, target).unwrap();
    // The probe *adds* a stage: no free slot -> layout error.
    let e = flow
        .run_script(
            controller::programs::FLOWPROBE_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .unwrap_err();
    assert!(
        matches!(
            e,
            controller::ControllerError::Compile(rp4c::CompileError::Layout(_))
        ),
        "{e}"
    );
    // ECMP *replaces* a stage: still fits.
    flow.run_script(
        controller::programs::ECMP_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
}

/// Ternary/LPM/width violations in table commands are caught by the API
/// layer with precise messages.
#[test]
fn table_command_validation_messages() {
    let mut flow = demo::populated_base_flow().unwrap();
    for (script, needle) in [
        (
            "table_add port_map set_ifindex 0x1ffff => 1",
            "exceeds 16 bits",
        ),
        ("table_add ipv4_lpm set_nexthop 1 0x0a000000/40 => 1", "/40"),
        ("table_add port_map ghost 1 => 1", "does not offer"),
        ("table_add port_map set_ifindex 1 => 1 2", "takes 1 args"),
        ("table_add ghost_table a 1 =>", "unknown table"),
    ] {
        let e = flow
            .run_script(script, &controller::programs::bundled_sources)
            .unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains(needle), "`{script}` -> `{msg}`");
    }
}
