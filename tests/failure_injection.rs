//! Integration: failure injection. A production data plane must degrade
//! loudly at the control plane and gracefully at the data plane.

use rp4::demo;
use rp4::prelude::*;

/// Malformed traffic (truncated, corrupted, empty) never wedges the
/// pipeline; well-formed packets around it still forward.
#[test]
fn malformed_packets_do_not_wedge_the_pipeline() {
    use rand::{RngExt, SeedableRng};
    let mut flow = demo::populated_base_flow().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let mut gen = TrafficGen::new(9).with_flows(16);

    let mut good_in = 0;
    for i in 0..400 {
        if i % 4 == 0 {
            // Inject garbage: truncated/corrupted/empty frames.
            let mut p = gen.next_mixed().0;
            match i % 3 {
                0 => p.data.truncate(rng.random_range(0..20)),
                1 => {
                    let n = p.data.len();
                    p.data[rng.random_range(0..n)] ^= 0xFF;
                }
                _ => p.data.clear(),
            }
            flow.device.inject(p);
        } else {
            flow.device.inject(gen.next_mixed().0);
            good_in += 1;
        }
    }
    let out = flow.device.run();
    // Every well-formed packet made it; garbage either forwarded (if the
    // corruption missed load-bearing fields) or dropped — never panicked.
    assert!(
        out.len() >= good_in - 120,
        "out {} good {}",
        out.len(),
        good_in
    );
    assert_eq!(flow.device.pending(), 0);
}

/// Table overflow surfaces as a typed error, leaves the table consistent.
#[test]
fn table_full_is_loud_and_recoverable() {
    let mut flow = demo::populated_base_flow().unwrap();
    // port_map has size 64; 8 entries already installed.
    let mut errs = 0;
    for i in 0..70u128 {
        let r = flow.run_script(
            &format!("table_add port_map set_ifindex {} => 1", 100 + i),
            &controller::programs::bundled_sources,
        );
        if r.is_err() {
            errs += 1;
        }
    }
    assert!(errs >= 14, "beyond-capacity inserts must fail ({errs})");
    assert_eq!(flow.device.sm.table("port_map").unwrap().table.len(), 64);
    // The device still forwards.
    let mut gen = TrafficGen::new(4).with_flows(8);
    for p in gen.batch(20) {
        flow.device.inject(p);
    }
    assert_eq!(flow.device.run().len(), 20);
}

/// Compiler-level failures reject the script before the device changes.
#[test]
fn invalid_scripts_leave_device_untouched() {
    let mut flow = demo::populated_base_flow().unwrap();
    let snapshot = flow.design.clone();
    let cases = [
        // Unknown stage in a link.
        "add_link ghost_stage dmac",
        // Cycle.
        "add_link dmac port_map",
        // Unknown snippet file.
        "load missing.rp4 --func_name f",
        // Semantically broken snippet (resolved via sources below).
        "load broken.rp4 --func_name f\nadd_link bd_vrf broken_s",
    ];
    let sources = |name: &str| {
        match name {
        "broken.rp4" => Some(
            "stage broken_s { parser { mystery_header; } matcher { } executor { default: NoAction; } }"
                .to_string(),
        ),
        other => controller::programs::bundled_sources(other),
    }
    };
    for script in cases {
        let e = flow.run_script(script, &sources);
        assert!(e.is_err(), "script must fail: {script}");
        assert_eq!(flow.design, snapshot, "device/design untouched: {script}");
    }
}

/// Pool exhaustion during an in-situ load is a compile-time error, not a
/// half-configured device.
#[test]
fn pool_exhaustion_rejected_at_compile_time() {
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).unwrap();
    let mut target = rp4c::CompilerTarget::ipbm();
    target.sram_blocks = 16; // base fits (~15 blocks), ECMP (+12) cannot
    let compilation = rp4c::full_compile(&prog, &target).unwrap();
    let device = IpbmSwitch::new(IpbmConfig {
        sram_blocks: 16,
        ..IpbmConfig::default()
    });
    let (mut flow, _) = Rp4Flow::install(device, compilation, target).unwrap();
    let before = flow.design.clone();
    let e = flow
        .run_script(
            controller::programs::ECMP_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .unwrap_err();
    assert!(
        matches!(
            e,
            controller::ControllerError::Compile(rp4c::CompileError::Pack(_))
        ),
        "{e}"
    );
    assert_eq!(flow.design, before);
}

/// Slot exhaustion: a pipeline too small for an insertion fails cleanly.
#[test]
fn slot_exhaustion_rejected() {
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).unwrap();
    let mut target = rp4c::CompilerTarget::ipbm();
    target.slots = 8; // exactly the base design's footprint
    let compilation = rp4c::full_compile(&prog, &target).unwrap();
    let device = IpbmSwitch::new(IpbmConfig {
        slots: 8,
        ..IpbmConfig::default()
    });
    let (mut flow, _) = Rp4Flow::install(device, compilation, target).unwrap();
    // The probe *adds* a stage: no free slot -> layout error.
    let e = flow
        .run_script(
            controller::programs::FLOWPROBE_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .unwrap_err();
    assert!(
        matches!(
            e,
            controller::ControllerError::Compile(rp4c::CompileError::Layout(_))
        ),
        "{e}"
    );
    // ECMP *replaces* a stage: still fits.
    flow.run_script(
        controller::programs::ECMP_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
}

/// Ternary/LPM/width violations in table commands are caught by the API
/// layer with precise messages.
#[test]
fn table_command_validation_messages() {
    let mut flow = demo::populated_base_flow().unwrap();
    for (script, needle) in [
        (
            "table_add port_map set_ifindex 0x1ffff => 1",
            "exceeds 16 bits",
        ),
        ("table_add ipv4_lpm set_nexthop 1 0x0a000000/40 => 1", "/40"),
        ("table_add port_map ghost 1 => 1", "does not offer"),
        ("table_add port_map set_ifindex 1 => 1 2", "takes 1 args"),
        ("table_add ghost_table a 1 =>", "unknown table"),
    ] {
        let e = flow
            .run_script(script, &controller::programs::bundled_sources)
            .unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains(needle), "`{script}` -> `{msg}`");
    }
}

// ---------------------------------------------------------------------------
// Transactional apply: a batch that fails at ANY message index must leave
// the device byte-identical to its pre-batch checkpoint.
// ---------------------------------------------------------------------------

/// A deterministic, byte-level digest of every control-plane component a
/// `ControlMsg` can mutate: slot templates, selector, crossbar, drain flag,
/// header linkage, metadata, actions, table schemas + rows + block
/// placement, and the raw memory-pool bytes (ownership included).
fn fingerprint(sw: &IpbmSwitch) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "epoch:{}", sw.pm.epoch()).unwrap();
    writeln!(s, "draining:{}", sw.pm.draining).unwrap();
    for (i, slot) in sw.pm.slots.iter().enumerate() {
        writeln!(
            s,
            "slot{i}:{}",
            serde_json::to_string(&slot.template).unwrap()
        )
        .unwrap();
    }
    writeln!(
        s,
        "selector:{}",
        serde_json::to_string(&sw.pm.selector).unwrap()
    )
    .unwrap();
    writeln!(
        s,
        "crossbar:{}",
        serde_json::to_string(&sw.pm.crossbar).unwrap()
    )
    .unwrap();
    let mut headers: Vec<String> = sw
        .linkage
        .iter()
        .map(|h| serde_json::to_string(h).unwrap())
        .collect();
    headers.sort();
    writeln!(s, "headers:{headers:?}").unwrap();
    writeln!(s, "first:{:?}", sw.linkage.first()).unwrap();
    let mut edges = sw.linkage.edges();
    edges.sort();
    writeln!(s, "edges:{edges:?}").unwrap();
    writeln!(s, "metadata:{:?}", sw.sm.metadata).unwrap();
    let mut actions: Vec<(String, String)> = sw
        .sm
        .actions
        .iter()
        .map(|(k, v)| (k.clone(), serde_json::to_string(v).unwrap()))
        .collect();
    actions.sort();
    writeln!(s, "actions:{actions:?}").unwrap();
    let mut names = sw.sm.table_names();
    names.sort();
    for name in names {
        let store = sw.sm.table(&name).unwrap();
        writeln!(
            s,
            "table:{name}:{}",
            serde_json::to_string(&store.table.def).unwrap()
        )
        .unwrap();
        for (row, e) in store.table.iter() {
            writeln!(s, "  row{row}:{}", serde_json::to_string(e).unwrap()).unwrap();
        }
        writeln!(s, "  blocks:{:?}", sw.sm.blocks_of(&name)).unwrap();
    }
    writeln!(s, "pool:{}", serde_json::to_string(&sw.sm.pool).unwrap()).unwrap();
    s
}

/// A batch in which every message is valid and collectively touches every
/// journaled component, so an injected failure at index M proves rollback
/// undoes messages 0..M exactly.
fn rich_batch() -> Vec<ControlMsg> {
    use rp4::core::action::ActionDef;
    use rp4::core::template::TspTemplate;
    use rp4::netpkt::header::{FieldDef, HeaderType};
    vec![
        ControlMsg::Drain,
        ControlMsg::DefineMetadata(vec![("mx".into(), 8)]),
        ControlMsg::DefineAction(ActionDef {
            name: "noop2".into(),
            params: vec![],
            body: vec![],
        }),
        ControlMsg::RegisterHeader(HeaderType::new(
            "probe",
            vec![FieldDef {
                name: "tag".into(),
                bits: 16,
            }],
        )),
        ControlMsg::SetFirstHeader("ethernet".into()),
        ControlMsg::WriteTemplate {
            slot: 2,
            template: TspTemplate::passthrough("p2"),
        },
        ControlMsg::ConnectCrossbar {
            slot: 2,
            blocks: vec![],
        },
        ControlMsg::AddEntry {
            table: "t".into(),
            entry: TableEntry::exact(vec![2], ActionCall::no_action()),
        },
        ControlMsg::SetDefaultAction {
            table: "t".into(),
            action: ActionCall::new("noop2", vec![]),
        },
        ControlMsg::DelEntry {
            table: "t".into(),
            key: vec![KeyMatch::Exact(1)],
        },
        ControlMsg::MigrateTable {
            table: "t".into(),
            blocks: vec![1],
        },
        ControlMsg::UnregisterHeader("vlan".into()),
        ControlMsg::ClearSlot { slot: 2 },
        ControlMsg::Resume,
    ]
}

/// The tentpole guarantee, exercised at every batch position: fail message
/// M (for all M), and the whole device state — templates, selector,
/// crossbar, linkage, actions, metadata, tables, pool bytes and block
/// ownership — is byte-identical to the checkpoint.
#[test]
fn rollback_at_every_index_is_byte_identical() {
    use rp4::core::error::CoreError;
    use rp4::core::table::{KeyField, MatchKind, TableDef};
    use rp4::core::value::ValueRef;
    use rp4::ipbm::FaultPlan;

    let mut sw = IpbmSwitch::new(IpbmConfig::default());
    sw.apply(&[
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::ethernet()),
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::vlan()),
        ControlMsg::SetFirstHeader("ethernet".into()),
        ControlMsg::CreateTable {
            def: TableDef {
                name: "t".into(),
                key: vec![KeyField {
                    source: ValueRef::Meta("x".into()),
                    bits: 16,
                    kind: MatchKind::Exact,
                }],
                size: 16,
                actions: vec![],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            blocks: vec![0],
        },
        ControlMsg::AddEntry {
            table: "t".into(),
            entry: TableEntry::exact(vec![1], ActionCall::no_action()),
        },
    ])
    .unwrap();
    let checkpoint = fingerprint(&sw);

    let batch = rich_batch();
    for m in 0..batch.len() {
        sw.set_fault_plan(FaultPlan {
            fail_msg_at: Some(m),
            ..Default::default()
        });
        let e = sw.apply(&batch).unwrap_err();
        assert!(
            matches!(e, CoreError::RolledBack { index, .. } if index == m),
            "index {m}: {e}"
        );
        assert_eq!(
            fingerprint(&sw),
            checkpoint,
            "failure at message {m} must leave the device byte-identical"
        );
    }

    // Clearing the plan, the same batch applies cleanly end-to-end — the
    // failures above were purely injected, and rollback left no residue
    // that could break the real application.
    sw.clear_fault_plan();
    sw.apply(&batch).unwrap();
    assert_ne!(
        fingerprint(&sw),
        checkpoint,
        "the clean batch really applies"
    );
}

/// A minimal one-stage L3 program as a raw message batch (the same shape
/// the sharded tests use), so the fast path has something to compile.
fn l3_program(port: u16) -> Vec<ControlMsg> {
    use rp4::core::action::{ActionDef, Primitive};
    use rp4::core::pipeline_cfg::SelectorConfig;
    use rp4::core::table::{KeyField, MatchKind, TableDef};
    use rp4::core::template::{MatcherBranch, TspTemplate};
    use rp4::core::value::ValueRef;
    vec![
        ControlMsg::Drain,
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::ethernet()),
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::ipv4()),
        ControlMsg::RegisterHeader(rp4::netpkt::protocols::udp()),
        ControlMsg::SetFirstHeader("ethernet".into()),
        ControlMsg::DefineAction(ActionDef {
            name: "fwd".into(),
            params: vec![("port".into(), 16)],
            body: vec![Primitive::Forward {
                port: ValueRef::Param(0),
            }],
        }),
        ControlMsg::CreateTable {
            def: TableDef {
                name: "route".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["fwd".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            blocks: vec![0],
        },
        ControlMsg::WriteTemplate {
            slot: 0,
            template: TspTemplate {
                stage_name: "route_s".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: rp4::core::predicate::Predicate::IsValid("ipv4".into()),
                    table: Some("route".into()),
                }],
                executor: vec![(1, ActionCall::new("fwd", vec![]))],
                default_action: ActionCall::no_action(),
            },
        },
        ControlMsg::ConnectCrossbar {
            slot: 0,
            blocks: vec![0],
        },
        ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
        ControlMsg::Resume,
        ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![KeyMatch::Lpm {
                    value: 0x0a00_0000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![port as u128]),
                counter: 0,
            },
        },
    ]
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Interleave failing and succeeding control batches on two devices —
    /// one running the interpreter, one the compiled fast path — and the
    /// two must stay packet-for-packet equivalent after every round: a
    /// rolled-back batch leaves both in lockstep, and a clean batch
    /// advances both identically.
    #[test]
    fn interleaved_failing_batches_keep_paths_equivalent(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec((proptest::prelude::any::<u8>(), 1u16..9), 1..4),
                proptest::option::of(0usize..16),
            ),
            1..5,
        ),
    ) {
        use proptest::prelude::prop_assert_eq;
        use rp4::ipbm::FaultPlan;
        use rp4::netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

        let mut interp = IpbmSwitch::new(IpbmConfig::default());
        interp.apply(&l3_program(4)).unwrap();
        let mut fast = IpbmSwitch::new(IpbmConfig::default());
        fast.apply(&l3_program(4)).unwrap();

        for (round, (entries, fail_at)) in rounds.into_iter().enumerate() {
            let batch: Vec<ControlMsg> = entries
                .iter()
                .map(|(b, port)| ControlMsg::AddEntry {
                    table: "route".into(),
                    entry: TableEntry {
                        key: vec![KeyMatch::Lpm {
                            value: 0x0a01_0000 + ((*b as u128) << 8),
                            prefix_len: 24,
                        }],
                        priority: 0,
                        action: ActionCall::new("fwd", vec![*port as u128]),
                        counter: 0,
                    },
                })
                .collect();
            match fail_at {
                Some(m) => {
                    let plan = FaultPlan {
                        fail_msg_at: Some(m % batch.len()),
                        ..Default::default()
                    };
                    interp.set_fault_plan(plan.clone());
                    fast.set_fault_plan(plan);
                    prop_assert_eq!(
                        interp.apply(&batch).is_err(),
                        fast.apply(&batch).is_err()
                    );
                    interp.clear_fault_plan();
                    fast.clear_fault_plan();
                }
                None => {
                    interp.apply(&batch).unwrap();
                    fast.apply(&batch).unwrap();
                }
            }
            for i in 0..24u32 {
                let p = ipv4_udp_packet(&Ipv4UdpSpec {
                    src_ip: 0x0a00_0a00 + i % 5,
                    dst_ip: 0x0a01_0000 + (i << 6),
                    ..Default::default()
                });
                interp.inject(p.clone());
                fast.inject(p);
            }
            let a = interp.run();
            let b = fast.run_batch();
            prop_assert_eq!(a, b, "round {}: paths diverged", round);
        }
    }
}
