//! Integration: live trials with reliable failback (the paper's second
//! motivating application) and pre-compiled update plans (Sec. 4.3's
//! "in cases the incremental updates can be pre-compiled, t_L will
//! dominate").

use rp4::demo;
use rp4::prelude::*;

/// Trial a function on live traffic, decide against it, roll back —
/// entries of untouched tables survive, traffic never stops.
#[test]
fn live_trial_with_failback() {
    let mut flow = demo::populated_base_flow().unwrap();
    let mut gen = TrafficGen::new(31).with_flows(32).with_v6_percent(0);

    // Baseline traffic.
    for p in gen.batch(100) {
        flow.device.inject(p);
    }
    assert_eq!(flow.device.run().len(), 100);
    let cp = flow.checkpoint();
    let slots_before = flow.design.programmed().count();
    let fib_entries = flow.device.sm.table("ipv4_lpm").unwrap().table.len();

    // Trial: the flow probe goes live.
    flow.run_script(
        controller::programs::FLOWPROBE_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
    flow.run_script(
        "table_add flow_probe probe_count 0x0a000000 0x0a010000 => 10",
        &controller::programs::bundled_sources,
    )
    .unwrap();
    for p in gen.batch(100) {
        flow.device.inject(p);
    }
    assert_eq!(
        flow.device.run().len(),
        100,
        "traffic flows during the trial"
    );
    assert!(flow.device.sm.table("flow_probe").is_some());

    // Failback: a structural diff back to the checkpoint — smaller than a
    // full reinstall (the probe sat early in the pipeline, so the stages
    // behind it shift back, but headers/actions/other tables are
    // untouched).
    let full_reinstall = rp4::core::control::full_install_msgs(&flow.design).len();
    let report = flow.rollback(&cp).unwrap();
    assert!(
        report.msgs < full_reinstall,
        "rollback ({} msgs) must undercut a reinstall ({full_reinstall} msgs)",
        report.msgs
    );
    assert_eq!(flow.design.programmed().count(), slots_before);
    assert!(
        flow.device.sm.table("flow_probe").is_none(),
        "trial state recycled"
    );
    assert_eq!(
        flow.device.sm.table("ipv4_lpm").unwrap().table.len(),
        fib_entries,
        "untouched tables keep their entries"
    );

    // Traffic unaffected after failback.
    for p in gen.batch(100) {
        flow.device.inject(p);
    }
    let out = flow.device.run();
    assert_eq!(out.len(), 100);
    assert!(out.iter().all(|p| p.meta.mark == 0), "probe really gone");
}

/// Pre-compile the update plan ahead of the maintenance window; applying
/// it later pays only t_L.
#[test]
fn precompiled_plan_pays_only_load_time() {
    let mut flow = demo::populated_base_flow().unwrap();

    // Plan offline (device untouched).
    let plan = flow
        .plan_script(
            controller::programs::FLOWPROBE_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .unwrap();
    assert!(
        flow.device.sm.table("flow_probe").is_none(),
        "planning is pure"
    );
    assert!(plan.stats.template_writes >= 1);

    // Apply in the window.
    let report = flow.apply_plan(plan).unwrap();
    assert!(report.load_us > 0.0);
    assert!(flow.device.sm.table("flow_probe").is_some());
    flow.design.validate().unwrap();

    // Table ops are rejected at plan time (they are runtime operations).
    let e = flow
        .plan_script("table_add port_map set_ifindex 9 => 9", &|_| None)
        .unwrap_err();
    assert!(matches!(e, controller::ControllerError::Script(_)), "{e}");
}

/// A tampered plan that silently changes an untouched function's behavior
/// is refused by the translation-validation gate — unless the operator
/// forces it through.
#[test]
fn tampered_plan_is_refused_by_equivalence_gate() {
    fn tampered(flow: &rp4::controller::Rp4Flow<rp4::ipbm::IpbmSwitch>) -> rp4::rp4c::UpdatePlan {
        let mut plan = flow
            .plan_script(
                controller::programs::FLOWPROBE_SCRIPT,
                &controller::programs::bundled_sources,
            )
            .unwrap();
        // Miscompile simulation on a function the plan does not touch:
        // the egress port choice silently becomes a drop.
        if let Some(a) = plan.design.actions.get_mut("set_port") {
            a.body = vec![rp4::core::action::Primitive::Drop];
        }
        plan
    }
    let mut flow = demo::populated_base_flow().unwrap();
    let plan = tampered(&flow);
    let err = flow.apply_plan(plan).unwrap_err();
    assert!(
        matches!(err, controller::ControllerError::Verify(_)),
        "{err}"
    );
    assert!(
        flow.device.sm.table("flow_probe").is_none(),
        "refused plan never reaches the device"
    );

    flow.force = true;
    let plan = tampered(&flow);
    flow.apply_plan(plan).unwrap();
    assert!(flow.device.sm.table("flow_probe").is_some());
}

/// Nested trials: checkpoint, stack two functions, roll back both in one
/// step.
#[test]
fn rollback_across_multiple_updates() {
    let mut flow = demo::populated_base_flow().unwrap();
    let cp = flow.checkpoint();
    flow.run_script(
        controller::programs::FLOWPROBE_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
    flow.run_script(
        controller::programs::SRV6_SCRIPT,
        &controller::programs::bundled_sources,
    )
    .unwrap();
    assert!(flow.design.funcs.iter().any(|f| f.name == "srv6"));

    flow.rollback(&cp).unwrap();
    assert!(flow.design.funcs.iter().all(|f| f.name != "srv6"));
    assert!(flow.design.funcs.iter().all(|f| f.name != "probe"));
    assert!(flow.device.sm.table("local_sid").is_none());
    // Runtime header links from the SRv6 script are rolled back too (the
    // checkpointed ipv6 header had no SRH transition).
    assert!(!flow
        .device
        .linkage
        .edges()
        .iter()
        .any(|(p, _, n)| p == "ipv6" && n == "srh"));
}
