// Base design + C2 (SRv6) integrated, for the conventional flow.
// The SRH is modeled with its fixed 8-byte part here (the P4 subset has
// no varbit); the PISA baseline is only compiled/loaded for the Table 1
// comparison and never carries SRv6 traffic.
// The base L2/L3 design in P4-16 (the conventional flow's source).
// Compiled by the p4-lang front end + PISA back end for the bmv2/FPGA-PISA
// baselines, and by rp4fc + rp4bc for IPSA targets (Fig. 3's dual path).

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ethertype;
}
header vlan_t {
    bit<3> pcp;
    bit<1> dei;
    bit<12> vid;
    bit<16> ethertype;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<6> dscp;
    bit<2> ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}
header ipv6_t {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}
header srh_t {
    bit<8> next_header;
    bit<8> hdr_ext_len;
    bit<8> routing_type;
    bit<8> segments_left;
    bit<8> last_entry;
    bit<8> flags;
    bit<16> tag;
}
header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> reserved;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}
header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

struct metadata {
    bit<16> ifindex;
    bit<16> bd;
    bit<16> vrf;
    bit<8> l3;
    bit<16> nexthop;
}

struct headers {
    ethernet_t ethernet;
    vlan_t vlan;
    ipv4_t ipv4;
    ipv6_t ipv6;
    srh_t srh;
    tcp_t tcp;
    udp_t udp;
}

parser BaseParser(packet_in packet, out headers hdr, inout metadata meta) {
    state start { transition parse_ethernet; }
    state parse_ethernet {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.ethertype) {
            0x8100: parse_vlan;
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan {
        packet.extract(hdr.vlan);
        transition select(hdr.vlan.ethertype) {
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        packet.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            43: parse_srh;
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_srh { packet.extract(hdr.srh); transition accept; }
    state parse_tcp { packet.extract(hdr.tcp); transition accept; }
    state parse_udp { packet.extract(hdr.udp); transition accept; }
}

control BaseIngress(inout headers hdr, inout metadata meta) {
    action set_ifindex(bit<16> ifindex) { meta.ifindex = ifindex; }
    action set_bd_vrf(bit<16> bd, bit<16> vrf) { meta.bd = bd; meta.vrf = vrf; }
    action set_l3() { meta.l3 = 1; }
    action set_nexthop(bit<16> nh) { meta.nexthop = nh; }
    action set_bd_dmac(bit<16> bd, bit<48> dmac) {
        meta.bd = bd;
        hdr.ethernet.dst_addr = dmac;
    }
    action set_port(bit<16> port) { standard_metadata.egress_spec = port; }

    table port_map {
        key = { standard_metadata.ingress_port: exact; }
        actions = { set_ifindex; NoAction; }
        size = 64;
    }
    table bd_vrf {
        key = { meta.ifindex: exact; }
        actions = { set_bd_vrf; NoAction; }
        size = 256;
    }
    table fwd_mode {
        key = { meta.bd: exact; hdr.ethernet.dst_addr: exact; }
        actions = { set_l3; NoAction; }
        size = 256;
    }
    action srv6_end() { srv6_advance(); }
    table local_sid {
        key = { hdr.ipv6.dst_addr: exact; }
        actions = { srv6_end; NoAction; }
        size = 256;
    }
    table end_transit {
        key = { hdr.ipv6.dst_addr: lpm; }
        actions = { set_nexthop; NoAction; }
        size = 512;
    }
    table ipv4_lpm {
        key = { meta.vrf: exact; hdr.ipv4.dst_addr: lpm; }
        actions = { set_nexthop; NoAction; }
        size = 2048;
    }
    table ipv6_lpm {
        key = { meta.vrf: exact; hdr.ipv6.dst_addr: lpm; }
        actions = { set_nexthop; NoAction; }
        size = 1024;
    }
    table ipv4_host {
        key = { meta.vrf: exact; hdr.ipv4.dst_addr: exact; }
        actions = { set_nexthop; NoAction; }
        size = 1024;
    }
    table ipv6_host {
        key = { meta.vrf: exact; hdr.ipv6.dst_addr: exact; }
        actions = { set_nexthop; NoAction; }
        size = 512;
    }
    table nexthop {
        key = { meta.nexthop: exact; }
        actions = { set_bd_dmac; NoAction; }
        size = 1024;
    }
    table dmac {
        key = { meta.bd: exact; hdr.ethernet.dst_addr: exact; }
        actions = { set_port; NoAction; }
        size = 4096;
    }

    apply {
        port_map.apply();
        bd_vrf.apply();
        fwd_mode.apply();
        if (hdr.srh.isValid() && meta.l3 == 1) {
            local_sid.apply();
        }
        if (hdr.srh.isValid() && meta.l3 == 1) {
            end_transit.apply();
        }
        if (hdr.ipv4.isValid() && meta.l3 == 1) {
            ipv4_lpm.apply();
        } else if (hdr.ipv6.isValid() && meta.l3 == 1) {
            ipv6_lpm.apply();
        }
        if (hdr.ipv4.isValid() && meta.l3 == 1) {
            ipv4_host.apply();
        } else if (hdr.ipv6.isValid() && meta.l3 == 1) {
            ipv6_host.apply();
        }
        if (meta.l3 == 1) {
            nexthop.apply();
        }
        dmac.apply();
    }
}

control BaseEgress(inout headers hdr, inout metadata meta) {
    action rewrite_l3(bit<48> smac) {
        hdr.ethernet.src_addr = smac;
        dec_ttl_v4();
        dec_hop_limit_v6();
    }
    table l2_l3_rewrite {
        key = { meta.bd: exact; }
        actions = { rewrite_l3; NoAction; }
        size = 256;
    }
    apply {
        if (meta.l3 == 1) {
            l2_l3_rewrite.apply();
        }
    }
}

V1Switch(BaseParser(), BaseIngress(), BaseEgress()) main;
