//! Use case C1: load Equal-Cost Multi-Path routing **at runtime** while
//! traffic keeps flowing (Fig. 5(a)/(b)).
//!
//! Shows the essence of in-situ programming: the ECMP function compiles
//! incrementally (only the snippet), patches in with a couple of template
//! writes during a short drain window, covers and therefore replaces the
//! nexthop stage, and immediately spreads flows over four members.
//!
//! ```sh
//! cargo run --example runtime_ecmp
//! ```

use std::collections::BTreeMap;

use rp4::demo;
use rp4::prelude::*;

fn egress_histogram(pkts: &[Packet]) -> BTreeMap<u16, usize> {
    let mut h = BTreeMap::new();
    for p in pkts {
        *h.entry(p.meta.egress_port.unwrap_or(u16::MAX)).or_insert(0) += 1;
    }
    h
}

fn main() {
    let mut flow = demo::populated_base_flow().expect("base design up");
    let mut gen = TrafficGen::new(7).with_flows(64);

    // Phase 1: traffic through the base design — everything to 10.1/16
    // leaves on the single nexthop port.
    for pkt in gen.ecmp_batch(400, 0x0a01_0042) {
        flow.device.inject(pkt);
    }
    let before = flow.device.run();
    println!(
        "before ECMP: egress histogram {:?}",
        egress_histogram(&before)
    );
    assert!(egress_histogram(&before).len() == 1);

    // Phase 2: in-situ update. Traffic injected during the drain window is
    // held, not lost.
    for pkt in gen.ecmp_batch(50, 0x0a01_0042) {
        flow.device.inject(pkt);
    }
    let outcome = flow
        .run_script(
            controller::programs::ECMP_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .expect("ECMP loads");
    let stats = outcome.update_stats.as_ref().unwrap();
    println!(
        "\nin-situ ECMP load: compile {:.1} ms, load {:.1} ms, stall {:.1} ms",
        outcome.compile_us / 1000.0,
        outcome.report.load_us / 1000.0,
        outcome.report.stall_us / 1000.0
    );
    println!(
        "  template writes: {}, slots cleared: {}, new tables: {:?}, removed: {:?}",
        stats.template_writes, stats.slot_clears, stats.new_tables, stats.removed_tables
    );
    assert!(stats.template_writes <= 3, "incremental, not a redeploy");

    // Populate the ECMP members; the held packets then drain.
    flow.run_script(
        &demo::ecmp_population_script(),
        &controller::programs::bundled_sources,
    )
    .expect("members installed");
    let held = flow.device.run();
    println!(
        "  {} packets held across the update were forwarded",
        held.len()
    );
    assert_eq!(held.len(), 50, "zero loss across the drain window");

    // Phase 3: flows now spread over the four members (ports 2..=5).
    for pkt in gen.ecmp_batch(800, 0x0a01_0042) {
        flow.device.inject(pkt);
    }
    let after = flow.device.run();
    let hist = egress_histogram(&after);
    println!("\nafter ECMP: egress histogram {hist:?}");
    assert!(hist.len() >= 3, "flows must spread: {hist:?}");

    // Per-flow stability: identical packets pick identical members.
    let probe = gen.ecmp_batch(1, 0x0a01_0042).pop().unwrap();
    let mut ports = std::collections::BTreeSet::new();
    for _ in 0..5 {
        flow.device.inject(probe.clone());
        for p in flow.device.run() {
            ports.insert(p.meta.egress_port.unwrap());
        }
    }
    assert_eq!(ports.len(), 1, "per-flow hashing is stable");
    println!("\nOK: ECMP loaded in-situ, zero packets lost, flows spread & stable");
}
