//! Live trial with reliable failback — the paper's second motivating
//! application: "Live trials in production networks can be conducted with
//! reliable failback procedure, and stable features can be made permanent
//! without a network overhaul."
//!
//! The operator checkpoints the running design, trials the flow probe on
//! live traffic, inspects what it caught, decides against keeping it, and
//! rolls back — a minimal structural diff that leaves every pre-trial
//! table entry in place.
//!
//! ```sh
//! cargo run --example live_trial
//! ```

use rp4::demo;
use rp4::prelude::*;

fn main() {
    let mut flow = demo::populated_base_flow().expect("base design up");
    let mut gen = TrafficGen::new(13).with_flows(24).with_v6_percent(0);

    // Production traffic is flowing.
    for p in gen.batch(300) {
        flow.device.inject(p);
    }
    assert_eq!(flow.device.run().len(), 300);
    println!("baseline: 300/300 packets forwarded");

    // ---- checkpoint, then trial ----
    let checkpoint = flow.checkpoint();
    let outcome = flow
        .run_script(
            controller::programs::FLOWPROBE_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .expect("probe loads");
    flow.run_script(
        "table_add flow_probe probe_count 0x0a000000 0x0a010000 => 50",
        &controller::programs::bundled_sources,
    )
    .expect("probe armed");
    println!(
        "trial deployed in-situ: {} template writes, stall {:.2} ms",
        outcome.update_stats.as_ref().unwrap().template_writes,
        outcome.report.stall_us / 1000.0
    );

    // Traffic continues through the trial; the probe observes.
    let batch = gen.probe_batch(400, 60);
    for (p, _) in batch {
        flow.device.inject(p);
    }
    let during = flow.device.run();
    let marked = during.iter().filter(|p| p.meta.mark == 1).count();
    let counter = flow
        .device
        .sm
        .table("flow_probe")
        .unwrap()
        .table
        .iter()
        .map(|(_, e)| e.counter)
        .max()
        .unwrap_or(0);
    println!(
        "during trial: {}/400 forwarded, probe counted {counter} packets, {marked} marked",
        during.len()
    );

    // ---- verdict: not keeping it; fail back ----
    let report = flow.rollback(&checkpoint).expect("rollback applies");
    println!(
        "failback: {} control messages, {:.2} ms simulated load",
        report.msgs,
        report.load_us / 1000.0
    );
    assert!(flow.device.sm.table("flow_probe").is_none());

    // Production unaffected: same traffic, zero marks, all forwarded.
    for p in gen.batch(300) {
        flow.device.inject(p);
    }
    let after = flow.device.run();
    assert_eq!(after.len(), 300);
    assert!(after.iter().all(|p| p.meta.mark == 0));
    println!("after failback: 300/300 forwarded, no marks — trial fully erased");

    // Had the verdict been "keep", the operator would simply not roll back:
    // the trialed function IS the deployment. No overhaul either way.
    println!("\nOK: trial deployed, observed, and reverted without service impact");
}
