//! Quickstart: compile the base L2/L3 design with rp4bc, install it on an
//! ipbm software switch, populate the tables through the controller, and
//! forward a mixed IPv4/IPv6 traffic batch.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rp4::demo;
use rp4::prelude::*;

fn main() {
    // Compile: rP4 source -> semantic check -> lowering -> stage merging ->
    // table packing -> slot layout -> CompiledDesign (JSON-able).
    let prog = rp4_lang::parse(controller::programs::BASE_RP4).expect("base design parses");
    let target = rp4c::CompilerTarget::ipbm();
    let compilation = rp4c::full_compile(&prog, &target).expect("base design compiles");
    println!("== rp4bc compile report ==");
    println!(
        "  logical stages: {} -> TSPs used: {} (merged: {:?})",
        compilation.report.merge.before,
        compilation.report.tsps_used,
        compilation.report.merge.merged_groups,
    );
    println!(
        "  memory blocks allocated: {} (fragmentation {})",
        compilation.report.blocks_used, compilation.report.pack_fragmentation,
    );

    // Show the TSP mapping rp4bc computed.
    println!("\n== TSP mapping ==");
    for (slot, t) in compilation.design.programmed() {
        println!(
            "  slot {slot:>2} [{:?}]: {} (tables: {:?})",
            compilation.design.selector.roles[slot],
            t.stage_name,
            t.tables()
        );
    }

    // Install on a fresh device and populate via controller scripts.
    let device = IpbmSwitch::new(IpbmConfig::default());
    let (mut flow, install) =
        Rp4Flow::install(device, compilation, target).expect("install succeeds");
    println!(
        "\ninstalled: {} control messages, {:.1} ms simulated load time",
        install.msgs,
        install.load_us / 1000.0
    );
    flow.run_script(
        &demo::base_population_script(),
        &controller::programs::bundled_sources,
    )
    .expect("population script runs");

    // Traffic: 1000 packets, 30% IPv6.
    let mut gen = TrafficGen::new(42).with_v6_percent(30).with_flows(64);
    for pkt in gen.batch(1000) {
        flow.device.inject(pkt);
    }
    let out = flow.device.run();

    let report = flow.device.report();
    println!("\n== forwarding report ==");
    println!(
        "  received {} / emitted {} / no-route drops {}",
        report.pipeline.received, report.pipeline.emitted, report.tm.no_route_drops
    );
    for (i, p) in report.ports.iter().enumerate() {
        if p.tx > 0 {
            println!("  port {i}: {} packets out", p.tx);
        }
    }
    println!("\n== per-TSP activity ==");
    for (slot, name, stats) in &report.slots {
        println!(
            "  slot {slot:>2} {name:<22} pkts {:>5} hits {:>5} parse-extractions {:>5}",
            stats.packets, stats.hits, stats.parse_extractions
        );
    }
    assert_eq!(out.len(), 1000);
    println!("\nOK: all {} packets forwarded", out.len());
}
