//! Use case C2: load IPv6 Segment Routing at runtime (Fig. 5(c)).
//!
//! SRv6 introduces a **brand-new protocol header** — the SRH — which the
//! base design has never heard of. The load script registers the header
//! type and splices it into the live parse graph with `link_header`
//! commands; the endpoint stage then executes RFC 8754 "End" behavior
//! (advance the segment list, rewrite `ipv6.dst_addr`), and the existing
//! FIB routes on the *new* destination. Plain IPv6 keeps working: "the
//! linkage between routable and ipvx is reserved".
//!
//! ```sh
//! cargo run --example srv6_update
//! ```

use rp4::demo;
use rp4::netpkt::builder::{srv6_packet, Ipv6UdpSpec};
use rp4::prelude::*;

fn main() {
    let mut flow = demo::populated_base_flow().expect("base design up");

    // The SID we will act as an SRv6 endpoint for, plus the segment the
    // packet should continue to afterwards (inside fc01::/16 so the FIB
    // routes it to port 3).
    let local_sid: u128 = 0xfc01_0000_0000_0000_0000_0000_0000_00aa;
    let next_seg: u128 = 0xfc01_0000_0000_0000_0000_0000_0000_00bb;

    let mk_srv6 = || {
        srv6_packet(
            &Ipv6UdpSpec {
                dst_ip: local_sid, // active segment = our SID
                ..Ipv6UdpSpec::default()
            },
            // segments[0] is the last segment; segments_left starts at 1.
            &[next_seg, local_sid],
        )
    };

    // Phase 1: before the update the switch cannot walk past the unknown
    // SRH, but plain v6 still routes.
    let mut gen = TrafficGen::new(3).with_v6_percent(100).with_flows(16);
    flow.device.inject(mk_srv6());
    for p in gen.batch(50) {
        flow.device.inject(p);
    }
    let before = flow.device.run();
    println!(
        "before SRv6: {} packets out (the SRv6 packet routes on its outer \
         dst only; no endpoint behavior)",
        before.len()
    );
    let outer_only = before
        .iter()
        .any(|p| p.is_valid("ipv6") && !p.is_valid("srh"));
    assert!(outer_only);

    // Phase 2: the in-situ update of Fig. 5(c).
    let outcome = flow
        .run_script(
            controller::programs::SRV6_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .expect("SRv6 loads");
    println!(
        "\nSRv6 load: compile {:.1} ms, load {:.1} ms, stall {:.1} ms, new tables {:?}",
        outcome.compile_us / 1000.0,
        outcome.report.load_us / 1000.0,
        outcome.report.stall_us / 1000.0,
        outcome.update_stats.as_ref().unwrap().new_tables,
    );
    // Endpoint entry: packets addressed to our SID advance their segment
    // list.
    flow.run_script(
        &format!("table_add local_sid srv6_end {local_sid:#x} =>"),
        &controller::programs::bundled_sources,
    )
    .expect("SID installed");

    // Phase 3: the same SRv6 packet now gets End-processed: segments_left
    // 1 -> 0, dst_addr rewritten to the next segment, then routed by the
    // regular v6 FIB.
    flow.device.inject(mk_srv6());
    let out = flow.device.run();
    assert_eq!(out.len(), 1);
    let p = &out[0];
    let linkage = &flow.device.linkage;
    assert!(p.is_valid("srh"), "SRH parsed after link_header");
    assert_eq!(
        p.get_field(linkage, "srh", "segments_left").unwrap(),
        0,
        "segment list advanced"
    );
    assert_eq!(
        p.get_field(linkage, "ipv6", "dst_addr").unwrap(),
        next_seg,
        "destination rewritten to the next segment"
    );
    assert_eq!(p.meta.egress_port, Some(3), "routed by the ordinary v6 FIB");
    println!(
        "\nSRv6 endpoint: segments_left 1 -> 0, dst rewritten to {:#x}, egress port {}",
        next_seg, 3
    );

    // Plain v6 unaffected.
    for p in gen.batch(50) {
        flow.device.inject(p);
    }
    let plain = flow.device.run();
    assert_eq!(plain.len(), 50, "plain L3 forwarding reserved");
    println!("plain IPv6 still forwards: {} packets", plain.len());
    println!("\nOK: a new protocol was introduced to a running switch");
}
