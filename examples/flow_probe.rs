//! Use case C3: an event-triggered flow probe, installed at runtime.
//!
//! "A user installs a custom probe that counts the packets for a
//! particular IPv4 flow. Once the counter exceeds a threshold, the flow
//! packets are marked for further processing (e.g., the controller may
//! apply some ACL or QoS rules to the flow)."
//!
//! ```sh
//! cargo run --example flow_probe
//! ```

use rp4::demo;
use rp4::prelude::*;

fn main() {
    let mut flow = demo::populated_base_flow().expect("base design up");
    let mut gen = TrafficGen::new(5).with_flows(16);

    // Install the probe in-situ, then arm it for the heavy flow (flow 0 of
    // the generator: 10.0.0.0 -> 10.1.0.0) with a threshold of 100 packets.
    let outcome = flow
        .run_script(
            controller::programs::FLOWPROBE_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .expect("probe loads");
    println!(
        "probe load: compile {:.1} ms, load {:.1} ms, {} template writes",
        outcome.compile_us / 1000.0,
        outcome.report.load_us / 1000.0,
        outcome.update_stats.as_ref().unwrap().template_writes,
    );
    flow.run_script(
        "table_add flow_probe probe_count 0x0a000000 0x0a010000 => 100",
        &controller::programs::bundled_sources,
    )
    .expect("probe armed");

    // A skewed mix: the heavy flow takes ~70% of 600 packets, so it
    // crosses the threshold partway through.
    let batch = gen.probe_batch(600, 70);
    let heavy_sent = batch.iter().filter(|(_, id)| id.index == 0).count();
    for (p, _) in batch {
        flow.device.inject(p);
    }
    let out = flow.device.run();

    let linkage = flow.device.linkage.clone();
    let (mut heavy_marked, mut heavy_unmarked, mut others_marked) = (0, 0, 0);
    for p in &out {
        let is_heavy = p.get_field(&linkage, "ipv4", "src_addr").unwrap() == 0x0a00_0000;
        match (is_heavy, p.meta.mark) {
            (true, 1) => heavy_marked += 1,
            (true, _) => heavy_unmarked += 1,
            (false, m) if m != 0 => others_marked += 1,
            _ => {}
        }
    }
    println!(
        "\nheavy flow: {heavy_sent} sent, {heavy_unmarked} below threshold, {heavy_marked} marked"
    );
    println!("other flows marked: {others_marked}");
    assert_eq!(heavy_unmarked, 100, "exactly the first 100 pass unmarked");
    assert_eq!(heavy_marked, heavy_sent - 100, "everything after is marked");
    assert_eq!(others_marked, 0, "unmonitored flows never marked");

    // The per-entry counter lives in the probe's table — readable by the
    // controller.
    let counter = flow
        .device
        .sm
        .table("flow_probe")
        .unwrap()
        .table
        .iter()
        .map(|(_, e)| e.counter)
        .max()
        .unwrap();
    println!("probe entry counter: {counter}");
    assert_eq!(counter as usize, heavy_sent);

    // Offload the probe when the investigation is done; its table's blocks
    // recycle.
    let free_before = flow.device.sm.pool.free_count(rp4::core::BlockKind::Sram);
    flow.run_script(
        "unload --func_name probe",
        &controller::programs::bundled_sources,
    )
    .expect("probe unloads");
    let free_after = flow.device.sm.pool.free_count(rp4::core::BlockKind::Sram);
    println!(
        "\nprobe offloaded: {} SRAM blocks recycled",
        free_after - free_before
    );
    assert!(free_after > free_before);
    println!("OK: event-triggered probe installed, fired, and offloaded");
}
