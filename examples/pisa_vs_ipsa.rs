//! Side-by-side: the same functional update (add ECMP) on the conventional
//! P4/PISA flow versus the in-situ rP4/IPSA flow — the Table 1 story in
//! one runnable program.
//!
//! ```sh
//! cargo run --example pisa_vs_ipsa
//! ```

use rp4::demo;
use rp4::prelude::*;

fn main() {
    // ---------------- conventional flow (PISA / bmv2-analog) -------------
    let (mut p4, t_c0, _) = P4Flow::new(
        PisaSwitch::new(CostModel::software()),
        controller::programs::BASE_P4,
        PisaTarget::bmv2(),
    )
    .expect("base P4 compiles");
    println!(
        "PISA flow: initial compile+load t_C = {:.1} ms",
        t_c0 / 1000.0
    );

    // The operator has populated a realistic number of entries…
    for i in 0..200u32 {
        p4.table_add(
            "dmac",
            "set_port",
            &[
                KeyToken::Exact(1),
                KeyToken::Exact(0x0200_0000_0000 + i as u128),
            ],
            &[(i % 8) as u128],
            0,
        )
        .expect("entry installs");
    }
    println!("PISA flow: {} entries installed", p4.tracked_entries());

    // …and now wants ECMP. The whole program recompiles, the design swaps,
    // and every entry is repopulated.
    let (pisa_tc, pisa_report) = p4
        .update_source(controller::programs::BASE_ECMP_P4.to_string())
        .expect("ECMP variant compiles");
    println!(
        "PISA flow: ECMP update  t_C = {:.1} ms (full recompile), \
         t_L = {:.1} ms ({} msgs, {} entries repopulated, stall {:.1} ms)",
        pisa_tc / 1000.0,
        pisa_report.load_us / 1000.0,
        pisa_report.msgs,
        pisa_report.entries_written,
        pisa_report.stall_us / 1000.0,
    );

    // ---------------- in-situ flow (IPSA / ipbm) -------------------------
    let mut flow = demo::populated_base_flow().expect("base design up");
    for i in 0..200u32 {
        flow.run_script(
            &format!(
                "table_add dmac set_port 1 {:#x} => {}",
                0x0200_0000_0000u128 + i as u128,
                i % 8
            ),
            &controller::programs::bundled_sources,
        )
        .expect("entry installs");
    }
    let outcome = flow
        .run_script(
            controller::programs::ECMP_SCRIPT,
            &controller::programs::bundled_sources,
        )
        .expect("ECMP loads in-situ");
    let stats = outcome.update_stats.as_ref().unwrap();
    println!(
        "IPSA flow: ECMP update  t_C = {:.1} ms (snippet only), \
         t_L = {:.1} ms ({} msgs, {} template writes, stall {:.1} ms)",
        outcome.compile_us / 1000.0,
        outcome.report.load_us / 1000.0,
        outcome.report.msgs,
        stats.template_writes,
        outcome.report.stall_us / 1000.0,
    );

    // ---------------- the punchline --------------------------------------
    let tl_ratio = outcome.report.load_us / pisa_report.load_us;
    println!(
        "\nIPSA t_L is {:.1}% of PISA's; IPSA repopulated only the new \
         tables, PISA replayed all {} entries.",
        tl_ratio * 100.0,
        pisa_report.entries_written
    );
    assert!(
        tl_ratio < 0.25,
        "in-situ load must be a small fraction of a full redeploy"
    );
    assert_eq!(outcome.report.entries_written, 0);
    assert_eq!(pisa_report.entries_written, 200);

    // And the PISA device architecturally cannot take the shortcut:
    let err = p4
        .device
        .apply(&[ControlMsg::WriteTemplate {
            slot: 0,
            template: rp4::core::TspTemplate::passthrough("ecmp"),
        }])
        .unwrap_err();
    println!("\nPISA device on a runtime template write: {err}");
}
