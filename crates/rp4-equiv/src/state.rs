//! The symbolic packet state and the primitive semantics shared by both
//! evaluators.
//!
//! Header validity starts undetermined and is decided by the oracle on
//! first use ("was this header on the wire?"); `insert`/`remove_header`
//! override it. Field and metadata valuations are [`Term`]s; unwritten
//! fields read as their wire symbol, unwritten metadata as zero, exactly
//! like the concrete machine. The fixed-function primitives (TTL
//! decrement, SRv6 advance, checksum refresh, counter marking) are
//! implemented once here and invoked from both evaluators, so their term
//! shapes are structurally identical by construction — only `Set`/`Alu`/
//! `Hash`/`Forward`/`Mark`, whose operands come from side-specific
//! expression languages, are evaluated per side.

use std::collections::BTreeMap;

use crate::oracle::{CmpKind, Oracle};
use crate::term::{alu, trunc, SymAluOp, Term};

/// Side-specific width/layout information (the AST side answers from the
/// checked environment, the design side from the header linkage).
pub trait Widths {
    /// Declared width of `header.field` in bits (128 when unknown).
    fn field_width(&self, header: &str, field: &str) -> usize;
    /// Declared width of a metadata field in bits (128 when unknown,
    /// matching `CompiledDesign::meta_width`).
    fn meta_width(&self, name: &str) -> usize;
    /// Declared field names of a header, in order (empty when unknown).
    fn header_fields(&self, header: &str) -> Vec<String>;
}

/// What finally happened to the packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Emitted on the given port.
    Forwarded(Term),
    /// Dropped by an action (`drop()`, TTL/hop-limit expiry, drop mark).
    DroppedByAction,
    /// Dropped by the traffic manager: no egress port was chosen.
    DroppedNoRoute,
    /// The concrete machine would abort this packet with an error (e.g.
    /// an action operand reads a header that is not present).
    RuntimeError(String),
}

/// Symbolic per-packet state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SymState {
    /// Explicit validity overrides from header insertion/removal. Headers
    /// not listed here keep their oracle-decided wire validity.
    pub validity: BTreeMap<String, bool>,
    /// Written header fields.
    pub fields: BTreeMap<(String, String), Term>,
    /// Written user metadata (plus an `ingress_port` override if set).
    pub meta: BTreeMap<String, Term>,
    /// `meta.mark` (None = untouched = 0).
    pub mark: Option<Term>,
    /// Chosen egress port.
    pub egress: Option<Term>,
    /// Drop flag.
    pub drop: bool,
}

impl SymState {
    /// Effective validity of a header in the current world.
    pub fn is_valid(&self, oracle: &mut Oracle, header: &str) -> bool {
        match self.validity.get(header) {
            Some(&v) => v,
            None => oracle.validity(header),
        }
    }

    /// Reads a header field; `None` when the header is absent (predicates
    /// treat that as a failed comparison, actions as a runtime error).
    pub fn read_field(&self, oracle: &mut Oracle, header: &str, field: &str) -> Option<Term> {
        if !self.is_valid(oracle, header) {
            return None;
        }
        Some(
            self.fields
                .get(&(header.to_string(), field.to_string()))
                .cloned()
                .unwrap_or_else(|| Term::Field(header.to_string(), field.to_string())),
        )
    }

    /// Writes a header field (truncated to its declared width). Errors when
    /// the header is absent, as the concrete `set_field` would.
    pub fn write_field(
        &mut self,
        oracle: &mut Oracle,
        widths: &dyn Widths,
        header: &str,
        field: &str,
        value: Term,
    ) -> Result<(), String> {
        if !self.is_valid(oracle, header) {
            return Err(format!("write to absent header `{header}`"));
        }
        let w = widths.field_width(header, field);
        self.fields
            .insert((header.to_string(), field.to_string()), trunc(w, value));
        Ok(())
    }

    /// Reads a metadata field, intrinsics included (mirrors
    /// `PacketMeta::get`).
    pub fn read_meta(&self, name: &str) -> Term {
        match name {
            "egress_port" => self.egress.clone().unwrap_or(Term::Const(0)),
            "drop" => Term::Const(self.drop as u128),
            "mark" => self.mark.clone().unwrap_or(Term::Const(0)),
            "ingress_port" => self.meta.get(name).cloned().unwrap_or(Term::IngressPort),
            _ => self.meta.get(name).cloned().unwrap_or(Term::Const(0)),
        }
    }

    /// Writes a metadata field through a `Set`-style assignment: truncate
    /// to the declared width, then route intrinsics (mirrors
    /// `PacketMeta::set`).
    pub fn write_meta(
        &mut self,
        oracle: &mut Oracle,
        widths: &dyn Widths,
        name: &str,
        value: Term,
    ) {
        let v = trunc(widths.meta_width(name), value);
        match name {
            "egress_port" => self.egress = Some(trunc(16, v)),
            "drop" => {
                self.drop = match v.as_const() {
                    Some(c) => c != 0,
                    None => !oracle.eq_const(v, 0),
                }
            }
            "mark" => self.mark = Some(v),
            _ => {
                self.meta.insert(name.to_string(), v);
            }
        }
    }
}

/// A comparison decision shared by both predicate languages: constants
/// fold, everything else goes through the oracle with `==`/`!=` routed
/// through the same equality key so exclusivity forcing applies.
pub fn decide_cmp(
    oracle: &mut Oracle,
    op: ipsa_core::predicate::CmpOp,
    lhs: Term,
    rhs: Term,
) -> bool {
    use ipsa_core::predicate::CmpOp;
    if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
        return match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
    }
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            // Canonicalize so `x == c` and `c == x` share a key.
            let eq = match (lhs.as_const(), rhs.as_const()) {
                (None, Some(c)) => oracle.eq_const(lhs, c),
                (Some(c), None) => oracle.eq_const(rhs, c),
                _ => {
                    oracle.cmp(CmpKind::Le, lhs.clone(), rhs.clone())
                        && oracle.cmp(CmpKind::Ge, lhs, rhs)
                }
            };
            if op == CmpOp::Eq {
                eq
            } else {
                !eq
            }
        }
        CmpOp::Lt => oracle.cmp(CmpKind::Lt, lhs, rhs),
        CmpOp::Le => oracle.cmp(CmpKind::Le, lhs, rhs),
        CmpOp::Gt => oracle.cmp(CmpKind::Gt, lhs, rhs),
        CmpOp::Ge => oracle.cmp(CmpKind::Ge, lhs, rhs),
    }
}

/// `forward(port)`: `meta.egress_port = port as u16`.
pub fn prim_forward(st: &mut SymState, port: Term) {
    st.egress = Some(trunc(16, port));
}

/// `mark(value)`: unlike a `Set` to `meta.mark`, no width truncation.
pub fn prim_mark(st: &mut SymState, value: Term) {
    st.mark = Some(value);
}

/// `mark_if_count_over(threshold)`.
pub fn prim_mark_if_counter_over(
    st: &mut SymState,
    oracle: &mut Oracle,
    counter: Option<Term>,
    threshold: Term,
) {
    let c = counter.unwrap_or(Term::Const(0));
    let over = match (c.as_const(), threshold.as_const()) {
        (Some(a), Some(b)) => a > b,
        _ => oracle.cmp(CmpKind::Gt, c, threshold),
    };
    if over {
        st.mark = Some(Term::Const(1));
    }
}

/// `dec_ttl_v4()`.
pub fn prim_dec_ttl_v4(st: &mut SymState, oracle: &mut Oracle, widths: &dyn Widths) {
    if !st.is_valid(oracle, "ipv4") {
        return;
    }
    let ttl = st.read_field(oracle, "ipv4", "ttl").expect("ipv4 valid");
    let expired = match ttl.as_const() {
        Some(v) => v == 0,
        None => oracle.eq_const(ttl.clone(), 0),
    };
    if expired {
        st.drop = true;
        return;
    }
    let proto = st
        .read_field(oracle, "ipv4", "protocol")
        .expect("ipv4 valid");
    let old_ck = st
        .read_field(oracle, "ipv4", "hdr_checksum")
        .expect("ipv4 valid");
    let new_ck = Term::IncrCksum {
        old: Box::new(old_ck),
        ttl: Box::new(ttl.clone()),
        proto: Box::new(proto),
    };
    let new_ttl = alu(SymAluOp::Sub, ttl, Term::Const(1));
    st.write_field(oracle, widths, "ipv4", "ttl", new_ttl)
        .expect("ipv4 valid");
    st.write_field(oracle, widths, "ipv4", "hdr_checksum", new_ck)
        .expect("ipv4 valid");
}

/// `dec_hop_limit_v6()`.
pub fn prim_dec_hop_limit_v6(st: &mut SymState, oracle: &mut Oracle, widths: &dyn Widths) {
    if !st.is_valid(oracle, "ipv6") {
        return;
    }
    let hl = st
        .read_field(oracle, "ipv6", "hop_limit")
        .expect("ipv6 valid");
    let expired = match hl.as_const() {
        Some(v) => v == 0,
        None => oracle.eq_const(hl.clone(), 0),
    };
    if expired {
        st.drop = true;
        return;
    }
    let new_hl = alu(SymAluOp::Sub, hl, Term::Const(1));
    st.write_field(oracle, widths, "ipv6", "hop_limit", new_hl)
        .expect("ipv6 valid");
}

/// `refresh_ipv4_checksum()`: errors when ipv4 is absent, like the VM.
pub fn prim_refresh_ipv4_checksum(
    st: &mut SymState,
    oracle: &mut Oracle,
    widths: &dyn Widths,
) -> Result<(), String> {
    if !st.is_valid(oracle, "ipv4") {
        return Err("refresh_ipv4_checksum on absent ipv4 header".to_string());
    }
    let mut inputs = Vec::new();
    for f in widths.header_fields("ipv4") {
        if f == "hdr_checksum" {
            continue;
        }
        let v = st.read_field(oracle, "ipv4", &f).expect("ipv4 valid");
        inputs.push((f, v));
    }
    st.write_field(oracle, widths, "ipv4", "hdr_checksum", Term::Cksum4(inputs))
}

/// `srv6_advance()`.
pub fn prim_srv6_advance(st: &mut SymState, oracle: &mut Oracle, widths: &dyn Widths) {
    if !st.is_valid(oracle, "srh") {
        return;
    }
    let sl = st
        .read_field(oracle, "srh", "segments_left")
        .expect("srh valid");
    let advancing = match sl.as_const() {
        Some(v) => v > 0,
        None => oracle.cmp(CmpKind::Gt, sl.clone(), Term::Const(0)),
    };
    if !advancing || !st.is_valid(oracle, "ipv6") {
        return;
    }
    let new_sl = alu(SymAluOp::Sub, sl, Term::Const(1));
    st.write_field(oracle, widths, "srh", "segments_left", new_sl.clone())
        .expect("srh valid");
    st.write_field(
        oracle,
        widths,
        "ipv6",
        "dst_addr",
        Term::SrhSegment(Box::new(new_sl)),
    )
    .expect("ipv6 valid");
}

/// `remove_header(h)`.
pub fn prim_remove_header(st: &mut SymState, header: &str) {
    st.validity.insert(header.to_string(), false);
}
