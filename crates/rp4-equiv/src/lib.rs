//! rp4-equiv — symbolic translation validation for the rP4 compiler and
//! in-situ update plans.
//!
//! The rP4 toolchain compiles checked programs to TSP templates
//! (`rp4c::full_compile`), patches live designs incrementally
//! (`incremental_compile`), and rolls trials back via structural diffs
//! (`design_diff`). Each transformation is a place for a miscompile to
//! hide. This crate proves, per compile and per update plan, that the two
//! sides of a seam *behave identically*:
//!
//! * a **symbolic packet** leaves header presence, field values, and table
//!   outcomes open as decisions of a shared [`oracle::Oracle`];
//! * two evaluators execute over it — [`eval_ast`] interprets the checked
//!   rP4 AST directly, [`eval_design`] mirrors the `ipbm` device
//!   slot-by-slot over a [`CompiledDesign`](ipsa_core::template::CompiledDesign);
//! * the [`check`] module enumerates every world within a budget,
//!   compares final header/metadata/egress state, and reports divergences
//!   as spanned `RP42xx` diagnostics through the shared rustc-style
//!   renderer;
//! * each divergence is additionally [concretized](witness) into a real
//!   packet and cross-checked against an `ipbm` device, so the validator's
//!   own model is differentially tested on exactly the paths it complains
//!   about;
//! * the [`apply`] module models control-message application so failback
//!   plans (`diff(A→B)` then `diff(B→A)`) can be proven round-trip
//!   identities before anything touches a device.
//!
//! Diagnostic codes: `RP4201` (state/write divergence), `RP4202` (outcome
//! divergence), `RP4203` (header-validity divergence), `RP4204`
//! (structural table mismatch), `RP4205` (path budget exhausted,
//! warning), `RP4206` (failback non-identity).

pub mod apply;
pub mod check;
pub mod eval_ast;
pub mod eval_design;
pub mod oracle;
pub mod state;
pub mod term;
pub mod witness;

pub use check::{check_design_design, check_program_design, check_roundtrip, codes, EquivOptions};
pub use eval_ast::{eval_ast, AstRun, AstWidths};
pub use eval_design::{eval_design, DesignRun, DesignWidths, TableHitTrace};
pub use oracle::{CmpKind, Key, Oracle};
pub use state::{Outcome, SymState, Widths};
pub use term::{SymAluOp, Term};
pub use witness::{concretize_world, PathWitness, Skip, SkipKind};
