//! A pure model of control-message application, used to prove failback
//! round-trips: `apply(apply(A, diff(A→B)), diff(B→A))` must land back on
//! a design indistinguishable from `A`.
//!
//! The model mirrors the device-side `ccm` handler but operates on a
//! [`CompiledDesign`] value instead of live modules, so the round-trip can
//! be checked before any message reaches hardware. Entry operations
//! (`AddEntry`/`DelEntry`) are outside the design value and are ignored
//! here; `DefineMetadata` is additive, matching device semantics.

use ipsa_core::control::ControlMsg;
use ipsa_core::template::CompiledDesign;
use rp4_lang::Diagnostic;

use crate::check::codes;

/// Applies a batch of control messages to a design value, returning the
/// resulting design. Unknown-reference edits (e.g. removing an action that
/// does not exist) are no-ops, as on the device.
pub fn apply_msgs(base: &CompiledDesign, msgs: &[ControlMsg]) -> CompiledDesign {
    let mut d = base.clone();
    for m in msgs {
        match m {
            ControlMsg::Drain | ControlMsg::Resume => {}
            ControlMsg::WriteTemplate { slot, template } => {
                if d.templates.len() <= *slot {
                    d.templates.resize(*slot + 1, None);
                }
                d.templates[*slot] = Some(template.clone());
            }
            ControlMsg::ClearSlot { slot } => {
                if let Some(t) = d.templates.get_mut(*slot) {
                    *t = None;
                }
            }
            ControlMsg::SetSelector(s) => d.selector = s.clone(),
            ControlMsg::ConnectCrossbar { slot, blocks } => {
                if blocks.is_empty() {
                    d.crossbar.remove(slot);
                } else {
                    d.crossbar.insert(*slot, blocks.clone());
                }
            }
            ControlMsg::RegisterHeader(ty) => d.linkage.register(ty.clone()),
            ControlMsg::SetFirstHeader(n) => {
                let _ = d.linkage.set_first(n);
            }
            ControlMsg::UnregisterHeader(n) => {
                d.linkage.unregister(n);
            }
            ControlMsg::LinkHeader { pre, next, tag } => {
                let _ = d.linkage.link(pre, next, *tag);
            }
            ControlMsg::UnlinkHeader { pre, next } => {
                let _ = d.linkage.unlink(pre, next);
            }
            ControlMsg::DefineAction(a) => {
                d.actions.insert(a.name.clone(), a.clone());
            }
            ControlMsg::RemoveAction(n) => {
                d.actions.remove(n);
            }
            ControlMsg::DefineMetadata(fields) => {
                for (n, b) in fields {
                    if !d.metadata.iter().any(|(m, _)| m == n) {
                        d.metadata.push((n.clone(), *b));
                    }
                }
            }
            ControlMsg::CreateTable { def, blocks } => {
                d.tables.insert(def.name.clone(), def.clone());
                d.table_alloc.insert(def.name.clone(), blocks.clone());
            }
            ControlMsg::DestroyTable(n) => {
                d.tables.remove(n);
                d.table_alloc.remove(n);
            }
            ControlMsg::MigrateTable { table, blocks } => {
                d.table_alloc.insert(table.clone(), blocks.clone());
            }
            ControlMsg::SetDefaultAction { table, action } => {
                if let Some(t) = d.tables.get_mut(table) {
                    t.default_action = action.clone();
                }
            }
            ControlMsg::AddEntry { .. } | ControlMsg::DelEntry { .. } => {}
            ControlMsg::LoadFullDesign(nd) => d = (**nd).clone(),
        }
    }
    d
}

/// RP4206 diagnostics for a failed round-trip: compares a restored design
/// against the original, component by component. Extra *metadata* fields
/// in the restored design are tolerated — `DefineMetadata` is additive on
/// devices, the surplus names are only referenced by the rolled-back
/// function, and an undeclared name behaves identically anyway.
pub fn roundtrip_diags(original: &CompiledDesign, restored: &CompiledDesign) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut err = |what: String| {
        diags.push(
            Diagnostic::error(
                codes::FAILBACK_NONIDENTITY,
                format!("failback round-trip does not restore the original design: {what}"),
            )
            .with_note("rolling back this update would leave the device in a different state"),
        );
    };

    if original.linkage != restored.linkage {
        err("header registry / parse linkage differs".into());
    }
    for (n, b) in &original.metadata {
        match restored.metadata.iter().find(|(m, _)| m == n) {
            None => err(format!("metadata field `{n}` is gone")),
            Some((_, rb)) if rb != b => {
                err(format!("metadata field `{n}` changed width: {b} -> {rb}"));
            }
            _ => {}
        }
    }
    for (n, a) in &original.actions {
        if restored.actions.get(n) != Some(a) {
            err(format!("action `{n}` differs or is gone"));
        }
    }
    for n in restored.actions.keys() {
        if !original.actions.contains_key(n) {
            err(format!("stray action `{n}` remains"));
        }
    }
    for (n, t) in &original.tables {
        if restored.tables.get(n) != Some(t) {
            err(format!("table `{n}` differs or is gone"));
        } else if restored.table_alloc.get(n) != original.table_alloc.get(n) {
            err(format!("table `{n}` moved to different memory blocks"));
        }
    }
    for n in restored.tables.keys() {
        if !original.tables.contains_key(n) {
            err(format!("stray table `{n}` remains"));
        }
    }
    let slots = original.templates.len().max(restored.templates.len());
    for slot in 0..slots {
        let a = original.templates.get(slot).and_then(|t| t.as_ref());
        let b = restored.templates.get(slot).and_then(|t| t.as_ref());
        if a != b {
            err(format!("slot {slot} template differs"));
        }
        if original.crossbar.get(&slot) != restored.crossbar.get(&slot) {
            err(format!("slot {slot} crossbar connections differ"));
        }
    }
    if original.selector != restored.selector {
        err("selector configuration differs".into());
    }
    diags
}
