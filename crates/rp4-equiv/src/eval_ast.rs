//! Symbolic evaluator over the checked rP4 AST: the "what the program
//! means" side of the equivalence check.
//!
//! This is an independent interpretation of the source — it never calls
//! into the compiler's lowering. Stages run in declaration order (ingress,
//! then the Traffic Manager's no-route drop, then egress); each stage's
//! matcher takes the first arm whose guard holds; table outcomes come from
//! the shared oracle; the executor dispatches on the hit tag with the
//! entry-args-win rule; and builtins map to the shared primitive
//! semantics. Expressions evaluate over full 128-bit intermediates with a
//! single truncation at the destination width — exactly what the
//! compiler's scratch-metadata spilling computes, so a correct compilation
//! yields structurally identical terms (see `crate::term`).

use rp4_lang::ast::{
    ActionDecl, BinOp, CmpOpAst, ExecTag, Expr, PredExpr, Program, StageDecl, Stmt,
};
use rp4_lang::semantic::Env;

use crate::eval_design::TableHitTrace;
use crate::oracle::Oracle;
use crate::state::{
    decide_cmp, prim_dec_hop_limit_v6, prim_dec_ttl_v4, prim_forward, prim_mark,
    prim_mark_if_counter_over, prim_refresh_ipv4_checksum, prim_remove_header, prim_srv6_advance,
    Outcome, SymState, Widths,
};
use crate::term::{alu, hash, trunc, Term};
use ipsa_core::predicate::CmpOp;
use ipsa_core::table::MatchKind;

/// Width/layout answers from the checked semantic environment.
pub struct AstWidths<'a>(pub &'a Env);

impl Widths for AstWidths<'_> {
    fn field_width(&self, header: &str, field: &str) -> usize {
        self.0
            .headers
            .get(header)
            .and_then(|fs| fs.iter().find(|(n, _)| n == field))
            .map(|(_, b)| *b)
            .unwrap_or(128)
    }

    fn meta_width(&self, name: &str) -> usize {
        self.0.meta_fields.get(name).copied().unwrap_or(128)
    }

    fn header_fields(&self, header: &str) -> Vec<String> {
        self.0
            .headers
            .get(header)
            .map(|fs| fs.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default()
    }
}

/// Result of one symbolic run of a program.
#[derive(Debug)]
pub struct AstRun {
    /// Final packet state.
    pub state: SymState,
    /// What happened to the packet.
    pub outcome: Outcome,
}

/// Parameter bindings of the executing action.
enum Args<'a> {
    Entry { table: &'a str, tag: u32, n: usize },
    Immediate(&'a [u128]),
}

impl Args<'_> {
    fn get(&self, decl: &ActionDecl, name: &str) -> Result<Term, String> {
        let i = decl
            .params
            .iter()
            .position(|(p, _)| p == name)
            .ok_or_else(|| format!("`{name}` is not a parameter of `{}`", decl.name))?;
        match self {
            Args::Entry { table, tag, n } => {
                if i < *n {
                    Ok(Term::EntryData {
                        table: table.to_string(),
                        tag: *tag,
                        index: i,
                    })
                } else {
                    Err(format!("action data index {i} out of range ({n} words)"))
                }
            }
            Args::Immediate(args) => args.get(i).map(|v| Term::Const(*v)).ok_or_else(|| {
                format!("action data index {i} out of range ({} words)", args.len())
            }),
        }
    }
}

/// Runs one symbolic packet through `prog` under the decisions of
/// `oracle`. The program must have passed `rp4_lang::semantic::check` (the
/// `env`) — in particular RP4101 (use-before-parse) cleanliness is what
/// makes "header validity = wire presence" a faithful model of the
/// device's parse-on-demand behavior.
pub fn eval_ast(prog: &Program, env: &Env, oracle: &mut Oracle) -> AstRun {
    let widths = AstWidths(env);
    let mut st = SymState::default();
    let mut hits = Vec::new();

    for stage in &prog.ingress {
        if let Err(e) = eval_stage(prog, env, &widths, stage, &mut st, oracle, &mut hits) {
            return AstRun {
                state: st,
                outcome: Outcome::RuntimeError(e),
            };
        }
        if st.drop {
            return AstRun {
                state: st,
                outcome: Outcome::DroppedByAction,
            };
        }
    }
    if st.egress.is_none() {
        return AstRun {
            state: st,
            outcome: Outcome::DroppedNoRoute,
        };
    }
    for stage in &prog.egress {
        if let Err(e) = eval_stage(prog, env, &widths, stage, &mut st, oracle, &mut hits) {
            return AstRun {
                state: st,
                outcome: Outcome::RuntimeError(e),
            };
        }
        if st.drop {
            return AstRun {
                state: st,
                outcome: Outcome::DroppedByAction,
            };
        }
    }
    let port = st.egress.clone().expect("checked before egress");
    AstRun {
        state: st,
        outcome: Outcome::Forwarded(port),
    }
}

fn eval_stage(
    prog: &Program,
    env: &Env,
    widths: &AstWidths<'_>,
    stage: &StageDecl,
    st: &mut SymState,
    oracle: &mut Oracle,
    hits: &mut Vec<TableHitTrace>,
) -> Result<(), String> {
    // Matcher: first arm whose guard holds (no guard = unconditional).
    let mut chosen: Option<&str> = None;
    for arm in &stage.matcher {
        let holds = match &arm.guard {
            Some(g) => eval_guard(env, g, st, oracle)?,
            None => true,
        };
        if holds {
            chosen = arm.table.as_deref();
            break;
        }
    }
    let Some(table) = chosen else {
        return Ok(()); // pass-through
    };
    let decl = env
        .tables
        .get(table)
        .ok_or_else(|| format!("unknown table `{table}`"))?;

    // Key read: a key touching an absent header can never match.
    let mut keys = Some(Vec::with_capacity(decl.key.len()));
    for (e, kind) in &decl.key {
        match read_key_operand(env, e, st, oracle)? {
            Some(v) => {
                let bits = key_width(env, e);
                if let Some(ks) = keys.as_mut() {
                    ks.push((lower_kind(kind), bits, trunc(bits, v)));
                }
            }
            None => {
                keys = None;
                break;
            }
        }
    }

    let hit = match keys {
        None => None,
        Some(ks) => oracle.table(table).map(|tag| (tag, ks)),
    };

    match hit {
        Some((tag, ks)) => {
            hits.push(TableHitTrace {
                table: table.to_string(),
                tag,
                keys: ks,
            });
            // Executor dispatch: the arm for this tag, else the default arm.
            let (action, imm_args) = executor_arm(stage, Some(tag));
            // The matched entry's args win when it carries any; an entry
            // carries args exactly when its bound action has parameters.
            let entry_params = decl
                .actions
                .get((tag as usize).saturating_sub(1))
                .and_then(|a| env.actions.get(a))
                .map(|ps| ps.len())
                .unwrap_or(0);
            let args = if entry_params > 0 {
                Args::Entry {
                    table,
                    tag,
                    n: entry_params,
                }
            } else {
                Args::Immediate(imm_args)
            };
            let counter = decl.counters.then(|| Term::EntryCounter {
                table: table.to_string(),
                tag,
            });
            run_action(prog, env, widths, action, &args, &counter, st, oracle)
        }
        None => {
            // Miss: the table's declared default action (NoAction absent).
            match &decl.default_action {
                Some((a, args)) => run_action(
                    prog,
                    env,
                    widths,
                    a,
                    &Args::Immediate(args),
                    &None,
                    st,
                    oracle,
                ),
                None => Ok(()),
            }
        }
    }
}

/// The executor arm for a hit tag: explicit `tag:` arm first, then the
/// `default:` arm, then `NoAction` — mirroring `action_for_tag` over the
/// lowered template.
fn executor_arm(stage: &StageDecl, tag: Option<u32>) -> (&str, &[u128]) {
    if let Some(t) = tag {
        if let Some((_, a, args)) = stage
            .executor
            .iter()
            .find(|(et, _, _)| matches!(et, ExecTag::Tag(n) if *n == t))
        {
            return (a, args);
        }
    }
    stage
        .executor
        .iter()
        .find(|(et, _, _)| matches!(et, ExecTag::Default))
        .map(|(_, a, args)| (a.as_str(), args.as_slice()))
        .unwrap_or(("NoAction", &[]))
}

fn lower_kind(k: &rp4_lang::ast::KeyKind) -> MatchKind {
    match k {
        rp4_lang::ast::KeyKind::Exact => MatchKind::Exact,
        rp4_lang::ast::KeyKind::Lpm => MatchKind::Lpm,
        rp4_lang::ast::KeyKind::Ternary => MatchKind::Ternary,
        rp4_lang::ast::KeyKind::Hash => MatchKind::Hash,
    }
}

fn key_width(env: &Env, e: &Expr) -> usize {
    match e {
        Expr::Qualified(scope, field) => env.width_of(scope, field).unwrap_or(128),
        _ => 128,
    }
}

/// Reads an operand-shaped expression in guard/key context: `None` means
/// "field of an absent header" (failed comparison / forced miss).
fn read_key_operand(
    env: &Env,
    e: &Expr,
    st: &SymState,
    oracle: &mut Oracle,
) -> Result<Option<Term>, String> {
    match e {
        Expr::Int(v) => Ok(Some(Term::Const(*v))),
        Expr::Qualified(scope, field) => {
            if scope == &env.meta_alias {
                Ok(Some(st.read_meta(field)))
            } else {
                Ok(st.read_field(oracle, scope, field))
            }
        }
        other => Err(format!(
            "operand too complex in guard/key context: {other:?}"
        )),
    }
}

fn eval_guard(
    env: &Env,
    g: &PredExpr,
    st: &mut SymState,
    oracle: &mut Oracle,
) -> Result<bool, String> {
    Ok(match g {
        PredExpr::IsValid(h) => st.is_valid(oracle, h),
        PredExpr::Not(x) => !eval_guard(env, x, st, oracle)?,
        PredExpr::And(a, b) => eval_guard(env, a, st, oracle)? && eval_guard(env, b, st, oracle)?,
        PredExpr::Or(a, b) => eval_guard(env, a, st, oracle)? || eval_guard(env, b, st, oracle)?,
        PredExpr::Cmp { lhs, op, rhs } => {
            // Both operands are read before the comparison, like the VM.
            let a = read_key_operand(env, lhs, &*st, oracle)?;
            let b = read_key_operand(env, rhs, &*st, oracle)?;
            match (a, b) {
                (Some(a), Some(b)) => decide_cmp(oracle, lower_cmp(op), a, b),
                _ => false,
            }
        }
    })
}

fn lower_cmp(op: &CmpOpAst) -> CmpOp {
    match op {
        CmpOpAst::Eq => CmpOp::Eq,
        CmpOpAst::Ne => CmpOp::Ne,
        CmpOpAst::Lt => CmpOp::Lt,
        CmpOpAst::Le => CmpOp::Le,
        CmpOpAst::Gt => CmpOp::Gt,
        CmpOpAst::Ge => CmpOp::Ge,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_action(
    prog: &Program,
    env: &Env,
    widths: &AstWidths<'_>,
    name: &str,
    args: &Args<'_>,
    counter: &Option<Term>,
    st: &mut SymState,
    oracle: &mut Oracle,
) -> Result<(), String> {
    if name == "NoAction" {
        return Ok(());
    }
    let decl = prog
        .actions
        .iter()
        .find(|a| a.name == name)
        .ok_or_else(|| format!("unknown action `{name}`"))?;
    for stmt in &decl.body {
        exec_stmt(env, widths, decl, stmt, args, counter, st, oracle)?;
        if st.drop {
            break;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn exec_stmt(
    env: &Env,
    widths: &AstWidths<'_>,
    decl: &ActionDecl,
    stmt: &Stmt,
    args: &Args<'_>,
    counter: &Option<Term>,
    st: &mut SymState,
    oracle: &mut Oracle,
) -> Result<(), String> {
    match stmt {
        Stmt::Assign { lval, expr } => {
            let v = eval_expr(env, decl, expr, args, st, oracle)?;
            if lval.scope == env.meta_alias {
                st.write_meta(oracle, widths, &lval.field, v);
                Ok(())
            } else {
                st.write_field(oracle, widths, &lval.scope, &lval.field, v)
            }
        }
        Stmt::Call {
            name,
            args: call_args,
        } => {
            let operand = |i: usize, st: &SymState, oracle: &mut Oracle| -> Result<Term, String> {
                eval_expr(env, decl, &call_args[i], args, st, oracle)
            };
            match name.as_str() {
                "drop" => {
                    st.drop = true;
                    Ok(())
                }
                "forward" => {
                    let v = operand(0, st, oracle)?;
                    prim_forward(st, v);
                    Ok(())
                }
                "mark" => {
                    let v = operand(0, st, oracle)?;
                    prim_mark(st, v);
                    Ok(())
                }
                "mark_if_count_over" => {
                    let t = operand(0, st, oracle)?;
                    prim_mark_if_counter_over(st, oracle, counter.clone(), t);
                    Ok(())
                }
                "dec_ttl_v4" => {
                    prim_dec_ttl_v4(st, oracle, widths);
                    Ok(())
                }
                "dec_hop_limit_v6" => {
                    prim_dec_hop_limit_v6(st, oracle, widths);
                    Ok(())
                }
                "refresh_ipv4_checksum" => prim_refresh_ipv4_checksum(st, oracle, widths),
                "srv6_advance" => {
                    prim_srv6_advance(st, oracle, widths);
                    Ok(())
                }
                "count" => Ok(()), // the per-entry counter increments at lookup
                "remove_header" => match call_args.first() {
                    Some(Expr::Ident(h)) => {
                        if !st.is_valid(oracle, h) {
                            return Err(format!("remove of absent header `{h}`"));
                        }
                        prim_remove_header(st, h);
                        Ok(())
                    }
                    other => Err(format!("remove_header needs a header name, got {other:?}")),
                },
                other => Err(format!("unknown builtin `{other}`")),
            }
        }
    }
}

/// Evaluates an expression in action context (absent-header reads are
/// runtime errors, as in the VM). Intermediates are full 128-bit;
/// `hash(..) % N` fuses into a reduced hash term at any nesting level.
fn eval_expr(
    env: &Env,
    decl: &ActionDecl,
    e: &Expr,
    args: &Args<'_>,
    st: &SymState,
    oracle: &mut Oracle,
) -> Result<Term, String> {
    match e {
        Expr::Int(v) => Ok(Term::Const(*v)),
        Expr::Qualified(scope, field) => {
            if scope == &env.meta_alias {
                Ok(st.read_meta(field))
            } else {
                st.read_field(oracle, scope, field)
                    .ok_or_else(|| format!("action reads `{scope}.{field}` of an absent header"))
            }
        }
        Expr::Ident(name) => args.get(decl, name),
        Expr::Hash(inputs) => {
            let mut ins = Vec::with_capacity(inputs.len());
            for i in inputs {
                ins.push(eval_expr(env, decl, i, args, st, oracle)?);
            }
            Ok(hash(ins, 0))
        }
        Expr::Bin { op, lhs, rhs } => {
            if *op == BinOp::Mod {
                // `hash(...) % N` fuses into the hash primitive.
                if let (Expr::Hash(inputs), Expr::Int(m)) = (&**lhs, &**rhs) {
                    let mut ins = Vec::with_capacity(inputs.len());
                    for i in inputs {
                        ins.push(eval_expr(env, decl, i, args, st, oracle)?);
                    }
                    return Ok(hash(ins, *m as u64));
                }
                return Err("general `%` unsupported outside hash reduction".to_string());
            }
            let a = eval_expr(env, decl, lhs, args, st, oracle)?;
            let b = eval_expr(env, decl, rhs, args, st, oracle)?;
            let sop = match op {
                BinOp::Add => crate::term::SymAluOp::Add,
                BinOp::Sub => crate::term::SymAluOp::Sub,
                BinOp::And => crate::term::SymAluOp::And,
                BinOp::Or => crate::term::SymAluOp::Or,
                BinOp::Xor => crate::term::SymAluOp::Xor,
                BinOp::Shl => crate::term::SymAluOp::Shl,
                BinOp::Shr => crate::term::SymAluOp::Shr,
                BinOp::Mod => unreachable!("handled above"),
            };
            Ok(alu(sop, a, b))
        }
    }
}
