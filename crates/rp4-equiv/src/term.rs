//! The symbolic value language shared by both evaluators.
//!
//! A [`Term`] stands for a 128-bit value whose origin is the wire packet,
//! installed table entries, or arithmetic over those. Both evaluators build
//! terms through the same smart constructors, so a correct compilation
//! produces *structurally identical* terms on both sides and equivalence
//! reduces to `==` on final states. The constructors normalize just enough
//! for that to hold across the compiler's value-spilling rewrites:
//! truncation to 128 bits is the identity (scratch metadata is 128 bits
//! wide), constants fold with the exact wrapping semantics of
//! [`AluOp::apply`], and a reduced hash already fits its destination.

use std::fmt;

use ipsa_core::action::AluOp;
use ipsa_netpkt::bitfield::truncate_to_width;

/// A symbolic 128-bit value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A literal.
    Const(u128),
    /// The value a header field had on the wire (before any rewrite).
    Field(String, String),
    /// The packet's ingress port.
    IngressPort,
    /// Action-data word `index` of the entry matched in `table` whose
    /// action tag is `tag`.
    EntryData {
        /// Table name.
        table: String,
        /// Matched action tag (1-based).
        tag: u32,
        /// Parameter index.
        index: usize,
    },
    /// The post-increment packet counter of the entry matched in `table`.
    EntryCounter {
        /// Table name.
        table: String,
        /// Matched action tag (1-based).
        tag: u32,
    },
    /// `a <op> b` with 128-bit wrapping semantics.
    Alu {
        /// Operation.
        op: SymAluOp,
        /// Left operand.
        a: Box<Term>,
        /// Right operand.
        b: Box<Term>,
    },
    /// `hash(inputs) % modulo` (`modulo == 0` means no reduction).
    Hash {
        /// Hash inputs in order.
        inputs: Vec<Term>,
        /// Optional modulus.
        modulo: u64,
    },
    /// The low `bits` bits of `of`.
    Trunc {
        /// Kept width.
        bits: usize,
        /// Inner value.
        of: Box<Term>,
    },
    /// A from-scratch IPv4 header checksum over the given field values
    /// (sorted by field name, `hdr_checksum` excluded). Opaque: only
    /// structural equality matters.
    Cksum4(Vec<(String, Term)>),
    /// An RFC 1624 incremental checksum update after a TTL decrement,
    /// folding the old checksum with the old TTL (the protocol byte
    /// cancels out structurally).
    IncrCksum {
        /// Old checksum value.
        old: Box<Term>,
        /// Old TTL value.
        ttl: Box<Term>,
        /// Old protocol value (part of the rewritten 16-bit word).
        proto: Box<Term>,
    },
    /// The 128-bit SRH segment at (1-based-from-end) index `sl`.
    SrhSegment(Box<Term>),
}

/// ALU operations, mirroring [`AluOp`] but hashable/orderable so terms can
/// serve as decision keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SymAluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl From<AluOp> for SymAluOp {
    fn from(op: AluOp) -> Self {
        match op {
            AluOp::Add => SymAluOp::Add,
            AluOp::Sub => SymAluOp::Sub,
            AluOp::And => SymAluOp::And,
            AluOp::Or => SymAluOp::Or,
            AluOp::Xor => SymAluOp::Xor,
            AluOp::Shl => SymAluOp::Shl,
            AluOp::Shr => SymAluOp::Shr,
        }
    }
}

impl SymAluOp {
    /// Concrete semantics; must stay bit-identical to `AluOp::apply`.
    pub fn apply(self, a: u128, b: u128) -> u128 {
        match self {
            SymAluOp::Add => a.wrapping_add(b),
            SymAluOp::Sub => a.wrapping_sub(b),
            SymAluOp::And => a & b,
            SymAluOp::Or => a | b,
            SymAluOp::Xor => a ^ b,
            SymAluOp::Shl => a.wrapping_shl((b as u32).min(127)),
            SymAluOp::Shr => a.wrapping_shr((b as u32).min(127)),
        }
    }
}

impl Term {
    /// The constant value, if this term is a literal.
    pub fn as_const(&self) -> Option<u128> {
        match self {
            Term::Const(v) => Some(*v),
            _ => None,
        }
    }
}

/// `a <op> b`, folding constants with the VM's exact wrapping semantics.
pub fn alu(op: SymAluOp, a: Term, b: Term) -> Term {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Term::Const(op.apply(x, y));
    }
    Term::Alu {
        op,
        a: Box::new(a),
        b: Box::new(b),
    }
}

/// `hash(inputs) % modulo`, folding all-constant inputs.
pub fn hash(inputs: Vec<Term>, modulo: u64) -> Term {
    let consts: Option<Vec<u128>> = inputs.iter().map(Term::as_const).collect();
    if let Some(vals) = consts {
        let mut h = ipsa_core::hash::hash_values(&vals) as u128;
        if modulo > 0 {
            h %= modulo as u128;
        }
        return Term::Const(h);
    }
    Term::Hash { inputs, modulo }
}

/// The low `bits` bits of `t`. Normalizes so that the compiler's habit of
/// spilling intermediates through 128-bit scratch metadata is invisible:
/// `trunc(128, t) == t`, nested truncations collapse to the narrowest, and
/// a modulo-reduced hash that already fits passes through.
pub fn trunc(bits: usize, t: Term) -> Term {
    if bits >= 128 {
        return t;
    }
    match t {
        Term::Const(v) => Term::Const(truncate_to_width(v, bits)),
        Term::Trunc { bits: inner, of } if inner <= bits => Term::Trunc { bits: inner, of },
        Term::Trunc { of, .. } => Term::Trunc { bits, of },
        Term::Hash { inputs, modulo } if modulo > 0 && (modulo as u128) <= (1u128 << bits) => {
            Term::Hash { inputs, modulo }
        }
        other => Term::Trunc {
            bits,
            of: Box::new(other),
        },
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v:#x}"),
            Term::Field(h, fl) => write!(f, "{h}.{fl}"),
            Term::IngressPort => write!(f, "ingress_port"),
            Term::EntryData { table, tag, index } => {
                write!(f, "entry[{table}#{tag}].arg{index}")
            }
            Term::EntryCounter { table, tag } => write!(f, "counter[{table}#{tag}]"),
            Term::Alu { op, a, b } => write!(f, "({a} {op:?} {b})"),
            Term::Hash { inputs, modulo } => {
                write!(f, "hash(")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")?;
                if *modulo > 0 {
                    write!(f, " % {modulo}")?;
                }
                Ok(())
            }
            Term::Trunc { bits, of } => write!(f, "{of}[{bits}b]"),
            Term::Cksum4(_) => write!(f, "cksum4(..)"),
            Term::IncrCksum { .. } => write!(f, "incr_cksum(..)"),
            Term::SrhSegment(sl) => write!(f, "srh.segment[{sl}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trunc_128_is_identity() {
        let t = Term::Field("ipv4".into(), "ttl".into());
        assert_eq!(trunc(128, t.clone()), t);
    }

    #[test]
    fn trunc_collapses_and_folds() {
        let t = Term::Field("a".into(), "b".into());
        let inner = trunc(8, t.clone());
        assert_eq!(trunc(16, inner.clone()), inner);
        assert_eq!(
            trunc(8, trunc(16, t.clone())),
            Term::Trunc {
                bits: 8,
                of: Box::new(t)
            }
        );
        assert_eq!(trunc(4, Term::Const(0x1ff)), Term::Const(0xf));
    }

    #[test]
    fn spill_shape_matches_direct_shape() {
        // (hash(x) % 4) + 1 built directly vs through a 128-bit spill.
        let x = Term::Field("ipv4".into(), "src_addr".into());
        let direct = alu(SymAluOp::Add, hash(vec![x.clone()], 4), Term::Const(1));
        let spilled = alu(SymAluOp::Add, trunc(128, hash(vec![x], 4)), Term::Const(1));
        assert_eq!(direct, spilled);
    }

    #[test]
    fn alu_folds_with_vm_semantics() {
        assert_eq!(
            alu(SymAluOp::Sub, Term::Const(0), Term::Const(1)),
            Term::Const(u128::MAX)
        );
    }
}
