//! Symbolic evaluator over a compiled design (`CompiledDesign`): the
//! "what the device will actually do" side of the equivalence check.
//!
//! Mirrors `ipbm`'s pipeline module step for step — selector-ordered
//! ingress slots, the Traffic Manager's no-route drop, then egress slots —
//! and the TSP triad within each slot: first matching branch, crossbar
//! reachability, key read (an absent header forces a miss), oracle-decided
//! lookup outcome, executor dispatch on the hit tag with the
//! entry-args-win rule, and the action VM's primitives with a drop check
//! after every primitive.

use std::collections::HashSet;

use ipsa_core::action::{ActionDef, Primitive};
use ipsa_core::pipeline_cfg::SlotRole;
use ipsa_core::predicate::Predicate;
use ipsa_core::table::MatchKind;
use ipsa_core::template::{CompiledDesign, TspTemplate};
use ipsa_core::timing::PathWork;
use ipsa_core::value::{LValueRef, ValueRef};

use crate::oracle::Oracle;
use crate::state::{
    decide_cmp, prim_dec_hop_limit_v6, prim_dec_ttl_v4, prim_forward, prim_mark,
    prim_mark_if_counter_over, prim_refresh_ipv4_checksum, prim_remove_header, prim_srv6_advance,
    Outcome, SymState, Widths,
};
use crate::term::{alu, hash, trunc, Term};

/// Width/layout answers from a compiled design (header linkage + declared
/// metadata).
pub struct DesignWidths<'a>(&'a CompiledDesign);

impl Widths for DesignWidths<'_> {
    fn field_width(&self, header: &str, field: &str) -> usize {
        self.0
            .linkage
            .get(header)
            .and_then(|t| t.fields.iter().find(|f| f.name == field))
            .map(|f| f.bits)
            .unwrap_or(128)
    }

    fn meta_width(&self, name: &str) -> usize {
        self.0.meta_width(name)
    }

    fn header_fields(&self, header: &str) -> Vec<String> {
        self.0
            .linkage
            .get(header)
            .map(|t| t.fields.iter().map(|f| f.name.clone()).collect())
            .unwrap_or_default()
    }
}

/// Where an executing action's parameters come from.
#[derive(Debug, Clone)]
enum ArgsSource {
    /// Bound from the matched entry's action data.
    Entry { table: String, tag: u32, n: usize },
    /// Immediate arguments from the executor arm / default action.
    Immediate(Vec<u128>),
}

impl ArgsSource {
    fn param(&self, i: usize) -> Result<Term, String> {
        match self {
            ArgsSource::Entry { table, tag, n } => {
                if i < *n {
                    Ok(Term::EntryData {
                        table: table.clone(),
                        tag: *tag,
                        index: i,
                    })
                } else {
                    Err(format!("action data index {i} out of range ({n} words)"))
                }
            }
            ArgsSource::Immediate(args) => args.get(i).map(|v| Term::Const(*v)).ok_or_else(|| {
                format!("action data index {i} out of range ({} words)", args.len())
            }),
        }
    }
}

/// One symbolic table hit observed during evaluation — enough for the
/// witness generator to synthesize a concrete entry that reproduces it.
#[derive(Debug, Clone)]
pub struct TableHitTrace {
    /// Table name.
    pub table: String,
    /// Hit action tag (1-based).
    pub tag: u32,
    /// Key terms in field order, each already truncated to the key width,
    /// paired with the field's match kind.
    pub keys: Vec<(MatchKind, usize, Term)>,
}

/// Result of one symbolic run of a design.
#[derive(Debug)]
pub struct DesignRun {
    /// Final packet state.
    pub state: SymState,
    /// What happened to the packet.
    pub outcome: Outcome,
    /// Table hits along the taken path (for witness concretization).
    pub hits: Vec<TableHitTrace>,
    /// Work performed along the path (slots, lookups, primitives), priced
    /// by `rp4-cover`'s static cost bounds. `parsed_headers` is left 0 —
    /// the caller derives it from the world's validity decisions.
    pub work: PathWork,
    /// Matcher arms taken, as `(stage_name, arm index)` — the hook
    /// `rp4-cover` uses to prune paths through arms `rp4-dfa` proved
    /// unreachable.
    pub arms: Vec<(String, usize)>,
}

/// Runs one symbolic packet through `design` under the decisions of
/// `oracle`. When `allowed_stages` is given, a template is evaluated only
/// if *every* `+`-joined member of its `stage_name` is in the set (used to
/// restrict a pre/post incremental comparison to untouched functions).
pub fn eval_design(
    design: &CompiledDesign,
    oracle: &mut Oracle,
    allowed_stages: Option<&HashSet<String>>,
) -> DesignRun {
    let widths = DesignWidths(design);
    let mut st = SymState::default();
    let mut tr = Trace::default();
    let included = |t: &TspTemplate| -> bool {
        match allowed_stages {
            Some(set) => t.stage_name.split('+').all(|s| set.contains(s)),
            None => true,
        }
    };

    for side in [SlotRole::Ingress, SlotRole::Egress] {
        if side == SlotRole::Egress {
            // Traffic Manager: packets without an egress decision drop here.
            if st.egress.is_none() {
                return tr.finish(st, Outcome::DroppedNoRoute);
            }
        }
        for slot in design.selector.slots_with(side) {
            let Some(template) = design.templates.get(slot).and_then(|t| t.as_ref()) else {
                continue;
            };
            if !included(template) {
                continue;
            }
            tr.work.slots += 1;
            if let Err(e) = eval_template(design, &widths, slot, template, &mut st, oracle, &mut tr)
            {
                return tr.finish(st, Outcome::RuntimeError(e));
            }
            if st.drop {
                return tr.finish(st, Outcome::DroppedByAction);
            }
        }
    }
    let port = st.egress.clone().expect("checked before egress");
    tr.finish(st, Outcome::Forwarded(port))
}

/// Accumulated per-path trace: table hits, work counters, and taken arms.
#[derive(Default)]
struct Trace {
    hits: Vec<TableHitTrace>,
    work: PathWork,
    arms: Vec<(String, usize)>,
}

impl Trace {
    fn finish(self, state: SymState, outcome: Outcome) -> DesignRun {
        DesignRun {
            state,
            outcome,
            hits: self.hits,
            work: self.work,
            arms: self.arms,
        }
    }
}

fn eval_template(
    design: &CompiledDesign,
    widths: &DesignWidths<'_>,
    slot: usize,
    template: &TspTemplate,
    st: &mut SymState,
    oracle: &mut Oracle,
    tr: &mut Trace,
) -> Result<(), String> {
    // Matcher: first branch whose predicate holds.
    let mut chosen: Option<&str> = None;
    for (arm_idx, b) in template.branches.iter().enumerate() {
        if eval_pred(&b.pred, st, oracle)? {
            tr.arms.push((template.stage_name.clone(), arm_idx));
            chosen = b.table.as_deref();
            break;
        }
    }
    let Some(table) = chosen else {
        return Ok(()); // pass-through
    };

    // Crossbar reachability (a configuration bug the device reports loudly).
    if let Some(blocks) = design.table_alloc.get(table) {
        let reachable = design.crossbar.get(&slot);
        for block in blocks {
            if !reachable.is_some_and(|c| c.contains(block)) {
                return Err(format!(
                    "slot {slot} cannot reach block {block} of table `{table}`"
                ));
            }
        }
    }

    let def = design
        .tables
        .get(table)
        .ok_or_else(|| format!("unknown table `{table}`"))?;

    // Key read: a key touching an absent header can never match.
    let mut keys = Some(Vec::with_capacity(def.key.len()));
    for k in &def.key {
        match read_value(&k.source, st, oracle, None, &None)? {
            Some(v) => {
                if let Some(ks) = keys.as_mut() {
                    ks.push((k.kind, k.bits, trunc(k.bits, v)));
                }
            }
            None => {
                keys = None;
                break;
            }
        }
    }

    tr.work.lookups += 1;
    let hit = match keys {
        None => None,
        Some(ks) => oracle.table(table).map(|tag| (tag, ks)),
    };

    let (call, args, counter) = match hit {
        Some((tag, ks)) => {
            tr.hits.push(TableHitTrace {
                table: table.to_string(),
                tag,
                keys: ks,
            });
            let call = template.action_for_tag(tag);
            // The matched entry's args win when it carries any; an entry
            // carries args exactly when its bound action has parameters.
            let entry_params = def
                .actions
                .get((tag as usize).saturating_sub(1))
                .and_then(|a| design.actions.get(a))
                .map(|a| a.params.len())
                .unwrap_or(0);
            let args = if entry_params > 0 {
                ArgsSource::Entry {
                    table: table.to_string(),
                    tag,
                    n: entry_params,
                }
            } else {
                ArgsSource::Immediate(call.args.clone())
            };
            let counter = if def.with_counters {
                Some(Term::EntryCounter {
                    table: table.to_string(),
                    tag,
                })
            } else {
                None
            };
            (call, args, counter)
        }
        None => {
            let call = &template.default_action;
            (call, ArgsSource::Immediate(call.args.clone()), None)
        }
    };

    let action = design
        .actions
        .get(&call.action)
        .ok_or_else(|| format!("unknown action `{}`", call.action))?;
    run_action(widths, action, &args, &counter, st, oracle, &mut tr.work)
}

fn eval_pred(p: &Predicate, st: &mut SymState, oracle: &mut Oracle) -> Result<bool, String> {
    Ok(match p {
        Predicate::True => true,
        Predicate::IsValid(h) => st.is_valid(oracle, h),
        Predicate::Not(x) => !eval_pred(x, st, oracle)?,
        Predicate::And(a, b) => eval_pred(a, st, oracle)? && eval_pred(b, st, oracle)?,
        Predicate::Or(a, b) => eval_pred(a, st, oracle)? || eval_pred(b, st, oracle)?,
        Predicate::Cmp { lhs, op, rhs } => {
            // Both operands are read before the comparison, like the VM.
            let a = read_value(lhs, st, oracle, None, &None)?;
            let b = read_value(rhs, st, oracle, None, &None)?;
            match (a, b) {
                (Some(a), Some(b)) => decide_cmp(oracle, *op, a, b),
                _ => false,
            }
        }
    })
}

/// Reads a `ValueRef`. `None` means "field of an absent header" — a failed
/// comparison in predicate/key context, a runtime error in action context.
fn read_value(
    src: &ValueRef,
    st: &SymState,
    oracle: &mut Oracle,
    args: Option<&ArgsSource>,
    counter: &Option<Term>,
) -> Result<Option<Term>, String> {
    Ok(match src {
        ValueRef::Const(c) => Some(Term::Const(*c)),
        ValueRef::Meta(name) => Some(st.read_meta(name)),
        ValueRef::Field { header, field } => st.read_field(oracle, header, field),
        ValueRef::Param(i) => match args {
            Some(a) => Some(a.param(*i)?),
            None => return Err(format!("parameter {i} read outside action context")),
        },
        ValueRef::EntryCounter => Some(counter.clone().unwrap_or(Term::Const(0))),
    })
}

fn read_operand(
    src: &ValueRef,
    st: &SymState,
    oracle: &mut Oracle,
    args: &ArgsSource,
    counter: &Option<Term>,
) -> Result<Term, String> {
    read_value(src, st, oracle, Some(args), counter)?
        .ok_or_else(|| format!("action reads a field of an absent header ({src:?})"))
}

fn run_action(
    widths: &DesignWidths<'_>,
    action: &ActionDef,
    args: &ArgsSource,
    counter: &Option<Term>,
    st: &mut SymState,
    oracle: &mut Oracle,
    work: &mut PathWork,
) -> Result<(), String> {
    for prim in &action.body {
        work.prims += 1;
        exec_primitive(widths, prim, args, counter, st, oracle)?;
        if st.drop {
            break;
        }
    }
    Ok(())
}

fn write_lval(
    widths: &DesignWidths<'_>,
    dst: &LValueRef,
    value: Term,
    st: &mut SymState,
    oracle: &mut Oracle,
) -> Result<(), String> {
    match dst {
        LValueRef::Meta(name) => {
            st.write_meta(oracle, widths, name, value);
            Ok(())
        }
        LValueRef::Field { header, field } => st.write_field(oracle, widths, header, field, value),
    }
}

fn exec_primitive(
    widths: &DesignWidths<'_>,
    prim: &Primitive,
    args: &ArgsSource,
    counter: &Option<Term>,
    st: &mut SymState,
    oracle: &mut Oracle,
) -> Result<(), String> {
    match prim {
        Primitive::Set { dst, src } => {
            let v = read_operand(src, st, oracle, args, counter)?;
            write_lval(widths, dst, v, st, oracle)
        }
        Primitive::Alu { op, dst, a, b } => {
            let va = read_operand(a, st, oracle, args, counter)?;
            let vb = read_operand(b, st, oracle, args, counter)?;
            write_lval(widths, dst, alu((*op).into(), va, vb), st, oracle)
        }
        Primitive::Hash {
            dst,
            inputs,
            modulo,
        } => {
            let mut ins = Vec::with_capacity(inputs.len());
            for i in inputs {
                ins.push(read_operand(i, st, oracle, args, counter)?);
            }
            write_lval(widths, dst, hash(ins, *modulo), st, oracle)
        }
        Primitive::Forward { port } => {
            let v = read_operand(port, st, oracle, args, counter)?;
            prim_forward(st, v);
            Ok(())
        }
        Primitive::Drop => {
            st.drop = true;
            Ok(())
        }
        Primitive::Mark { value } => {
            let v = read_operand(value, st, oracle, args, counter)?;
            prim_mark(st, v);
            Ok(())
        }
        Primitive::MarkIfCounterOver { threshold } => {
            let t = read_operand(threshold, st, oracle, args, counter)?;
            prim_mark_if_counter_over(st, oracle, counter.clone(), t);
            Ok(())
        }
        Primitive::InsertHeaderAfter {
            after,
            header,
            fields,
            extra_words,
        } => {
            if !st.is_valid(oracle, after) {
                return Err(format!("insert after absent header `{after}`"));
            }
            st.validity.insert(header.clone(), true);
            // Every declared field gets a definite value: given or zero.
            let given: Vec<(&str, Term)> = {
                let mut g = Vec::with_capacity(fields.len());
                for (name, src) in fields {
                    g.push((name.as_str(), read_operand(src, st, oracle, args, counter)?));
                }
                g
            };
            for f in widths.header_fields(header) {
                let v = given
                    .iter()
                    .find(|(n, _)| *n == f)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Term::Const(0));
                st.write_field(oracle, widths, header, &f, v)?;
            }
            for (i, w) in extra_words.iter().enumerate() {
                let v = read_operand(w, st, oracle, args, counter)?;
                st.fields.insert((header.clone(), format!("__extra{i}")), v);
            }
            Ok(())
        }
        Primitive::RemoveHeader { header } => {
            if !st.is_valid(oracle, header) {
                return Err(format!("remove of absent header `{header}`"));
            }
            prim_remove_header(st, header);
            Ok(())
        }
        Primitive::Srv6Advance => {
            prim_srv6_advance(st, oracle, widths);
            Ok(())
        }
        Primitive::DecTtlV4 => {
            prim_dec_ttl_v4(st, oracle, widths);
            Ok(())
        }
        Primitive::DecHopLimitV6 => {
            prim_dec_hop_limit_v6(st, oracle, widths);
            Ok(())
        }
        Primitive::RefreshIpv4Checksum => prim_refresh_ipv4_checksum(st, oracle, widths),
        Primitive::NoAction => Ok(()),
    }
}
