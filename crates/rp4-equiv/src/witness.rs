//! Witness concretization: turn a divergent symbolic world into a real
//! packet + table entries, run it through an `ipbm` device, and check that
//! the device behaves as the design-side model predicted.
//!
//! This is a differential cross-check of the *model*, not of the compiler:
//! a divergence diagnosis is only trustworthy if the design evaluator
//! actually mirrors the device. Concretization is best-effort — worlds
//! that need exotic traffic shapes or unresolvable constraints are
//! skipped with an explanatory note rather than guessed at.

use std::collections::{BTreeMap, BTreeSet};

use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::hash::hash_values;
use ipsa_core::table::{ActionCall, KeyMatch, MatchKind, TableEntry};
use ipsa_core::template::CompiledDesign;
use ipsa_netpkt::bitfield::width_mask;
use ipsa_netpkt::builder::{
    ipv4_udp_packet, ipv6_udp_packet, srv6_packet, Ipv4UdpSpec, Ipv6UdpSpec,
};
use ipsa_netpkt::packet::Packet;

use crate::eval_design::TableHitTrace;
use crate::oracle::{CmpKind, Key};
use crate::state::{Outcome, SymState};
use crate::term::Term;

/// Maximum SRH segments we are willing to synthesize.
const MAX_SEGMENTS: usize = 8;
/// Maximum injections (for counter-threshold worlds).
const MAX_INJECTIONS: usize = 64;

/// Why a symbolic world could not be concretized into a witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipKind {
    /// The world's constraints are mutually contradictory: no wire packet
    /// can take this path on any device. Path enumerators prune these.
    Infeasible,
    /// The path may well be feasible, but the witness generator cannot
    /// build a packet for it (builder gaps, synthesis budgets, constraints
    /// it does not solve). Path enumerators report these (RP4402).
    Uncoverable,
}

/// A skipped world: classification plus a human-readable reason.
#[derive(Debug, Clone)]
pub struct Skip {
    /// Whether the path is provably infeasible or merely uncoverable.
    pub kind: SkipKind,
    /// Human-readable reason, suitable for a diagnostic note.
    pub reason: String,
}

fn infeasible(reason: impl Into<String>) -> Skip {
    Skip {
        kind: SkipKind::Infeasible,
        reason: reason.into(),
    }
}

fn uncoverable(reason: impl Into<String>) -> Skip {
    Skip {
        kind: SkipKind::Uncoverable,
        reason: reason.into(),
    }
}

/// A concretized execution-path witness: a wire packet plus the minimal
/// table-entry setup that drives a real device down the same path the
/// symbolic world took. This is the unit of `rp4-cover`'s coverage corpus
/// and the golden-compare oracle planned for the native codegen backend.
#[derive(Debug, Clone)]
pub struct PathWitness {
    /// The witness packet, unparsed, exactly as it would arrive on the
    /// wire (ingress port set in its metadata).
    pub packet: Packet,
    /// `AddEntry` messages making each traced table hit actually hit.
    pub entries: Vec<ControlMsg>,
    /// How many copies of the packet must be injected — counter-threshold
    /// worlds need threshold+1 hits before the guarded path opens.
    pub injections: usize,
}

/// Concretizes one symbolic world (its oracle decisions plus the design
/// side's table-hit trace) into a [`PathWitness`]. `Err` classifies the
/// world as provably [`SkipKind::Infeasible`] or merely
/// [`SkipKind::Uncoverable`].
pub fn concretize_world(
    design: &CompiledDesign,
    decisions: &[(Key, usize)],
    hits: &[TableHitTrace],
) -> Result<PathWitness, Skip> {
    let conc = concretize(design, decisions, hits)?;
    let entries = synth_entries(design, hits, &conc).map_err(uncoverable)?;
    Ok(PathWitness {
        packet: conc.packet,
        entries,
        injections: conc.injections,
    })
}

/// Per-term value constraints gathered from the world's decisions.
#[derive(Default)]
struct Constraint {
    must_eq: Option<u128>,
    avoid: BTreeSet<u128>,
    /// `(op, constant, decided)` with the term on the left.
    ranges: Vec<(CmpKind, u128, bool)>,
    contradictory: bool,
}

impl Constraint {
    fn admits(&self, v: u128) -> bool {
        if let Some(c) = self.must_eq {
            if v != c {
                return false;
            }
        }
        if self.avoid.contains(&v) {
            return false;
        }
        self.ranges.iter().all(|&(op, c, decided)| {
            let holds = match op {
                CmpKind::Lt => v < c,
                CmpKind::Le => v <= c,
                CmpKind::Gt => v > c,
                CmpKind::Ge => v >= c,
            };
            holds == decided
        })
    }

    fn pick(&self, bits: usize) -> Option<u128> {
        let mask = width_mask(bits);
        let mut cands: Vec<u128> = vec![0, 1];
        if let Some(c) = self.must_eq {
            cands = vec![c];
        } else {
            for &(_, c, _) in &self.ranges {
                cands.extend([c.saturating_sub(1), c, c.saturating_add(1)]);
            }
            for &a in &self.avoid {
                cands.push(a.saturating_add(1));
            }
        }
        cands
            .into_iter()
            .map(|v| v & mask)
            .find(|&v| self.admits(v) && v & !mask == 0)
    }
}

/// Everything the run needs, concretized from the decisions; `Err` carries
/// a human-readable skip reason.
struct Concrete {
    packet: Packet,
    /// Parsed view of the same packet for reading wire fields back.
    parsed: Packet,
    entry_args: BTreeMap<(String, u32, usize), u128>,
    segments: Vec<u128>,
    injections: usize,
}

/// Runs the divergent world on an `ipbm` device and reports whether the
/// device agrees with the design-side model. Returns note lines for the
/// diagnostic.
pub fn cross_check(
    design: &CompiledDesign,
    decisions: &[(Key, usize)],
    hits: &[TableHitTrace],
    predicted: &Outcome,
    predicted_state: &SymState,
) -> Vec<String> {
    match try_cross_check(design, decisions, hits, predicted, predicted_state) {
        Ok(lines) => lines,
        Err(reason) => vec![format!("witness skipped: {reason}")],
    }
}

fn try_cross_check(
    design: &CompiledDesign,
    decisions: &[(Key, usize)],
    hits: &[TableHitTrace],
    predicted: &Outcome,
    predicted_state: &SymState,
) -> Result<Vec<String>, String> {
    let conc = concretize(design, decisions, hits).map_err(|s| s.reason)?;

    let mut sw = ipbm::IpbmSwitch::new(ipbm::IpbmConfig::default());
    sw.install(design)
        .map_err(|e| format!("design rejected by device: {e}"))?;
    let entries = synth_entries(design, hits, &conc)?;
    if !entries.is_empty() {
        sw.apply(&entries)
            .map_err(|e| format!("device rejected synthesized entries: {e}"))?;
    }

    let mut last: Result<Option<Packet>, String> = Ok(None);
    for _ in 0..conc.injections {
        sw.inject(conc.packet.clone());
        last = match sw.step() {
            Ok(true) => Ok(sw.cm.collect_tx().pop()),
            Ok(false) => Ok(None),
            Err(e) => Err(e.to_string()),
        };
    }
    let resolve = |t: &Term| resolve_term(t, &conc, design);

    let mut lines = Vec::new();
    let agree = match (predicted, &last) {
        (Outcome::Forwarded(port), Ok(Some(out))) => {
            let Some(p) = resolve(port) else {
                return Err("egress port term not concretizable".into());
            };
            if out.meta.egress_port == Some(p as u16) {
                lines.push(format!(
                    "witness packet confirmed on device: forwarded to port {p} as the design model predicts"
                ));
                check_state(&mut lines, out, predicted_state, design, &conc);
                true
            } else {
                lines.push(format!(
                    "witness packet DISAGREES with the design model: predicted port {p}, device chose {:?}",
                    out.meta.egress_port
                ));
                false
            }
        }
        (Outcome::DroppedByAction | Outcome::DroppedNoRoute, Ok(None)) => {
            lines.push(
                "witness packet confirmed on device: dropped as the design model predicts".into(),
            );
            true
        }
        (Outcome::RuntimeError(_), Err(e)) => {
            lines.push(format!(
                "witness packet confirmed on device: aborted with `{e}` as the design model predicts"
            ));
            true
        }
        (want, got) => {
            lines.push(format!(
                "witness packet DISAGREES with the design model: predicted {want:?}, device produced {got:?}"
            ));
            false
        }
    };
    if !agree {
        lines.push(
            "the equivalence model itself mispredicted this path; treat the divergence with care"
                .into(),
        );
    }
    Ok(lines)
}

/// Compares resolvable pieces of the predicted final state against the
/// emitted packet.
fn check_state(
    lines: &mut Vec<String>,
    out: &Packet,
    state: &SymState,
    design: &CompiledDesign,
    conc: &Concrete,
) {
    let want_mark = match &state.mark {
        None => Some(0),
        Some(t) => resolve_term(t, conc, design),
    };
    if let Some(want) = want_mark {
        if out.meta.mark != want {
            lines.push(format!(
                "witness mark mismatch: model predicts {want}, device left {}",
                out.meta.mark
            ));
        }
    }
    let mut parsed = out.clone();
    for ((h, f), t) in &state.fields {
        if f.starts_with("__extra") {
            continue;
        }
        let Some(want) = resolve_term(t, conc, design) else {
            continue;
        };
        if parsed.ensure_parsed(&design.linkage, h) != Ok(true) {
            continue;
        }
        if let Ok(got) = parsed.get_field(&design.linkage, h, f) {
            if got != want {
                lines.push(format!(
                    "witness field mismatch on `{h}.{f}`: model predicts {want:#x}, device left {got:#x}"
                ));
            }
        }
    }
}

/// Per-term constraints, decided header validity, and the injection count
/// a world demands (counter thresholds need threshold+1 packets).
type WorldConstraints = (BTreeMap<Term, Constraint>, BTreeMap<String, bool>, usize);

fn constraints_of(decisions: &[(Key, usize)]) -> Result<WorldConstraints, Skip> {
    let mut by_term: BTreeMap<Term, Constraint> = BTreeMap::new();
    let mut validity: BTreeMap<String, bool> = BTreeMap::new();
    let mut injections = 1usize;
    // Counter-vs-entry-arg comparisons constrain the (freely pickable)
    // entry argument against the *final* injection count, so they resolve
    // after the loop fixes `injections`.
    let mut deferred: Vec<(CmpKind, Term, bool)> = Vec::new();
    for (key, idx) in decisions {
        let decided = *idx == 0;
        match key {
            Key::Validity(h) => {
                validity.insert(h.clone(), decided);
            }
            Key::Table(_) => {}
            Key::EqConst { lhs, val } => {
                let c = by_term.entry(lhs.clone()).or_default();
                if decided {
                    if c.must_eq.is_some_and(|m| m != *val) {
                        c.contradictory = true;
                    }
                    c.must_eq = Some(*val);
                } else {
                    c.avoid.insert(*val);
                }
            }
            Key::Cmp { op, lhs, rhs } => match (lhs, rhs.as_const()) {
                (Term::EntryCounter { .. }, Some(thr)) => {
                    // The counter equals the injection count at the last
                    // packet (one hit per injection).
                    let need = match (op, decided) {
                        (CmpKind::Gt, true) => thr as usize + 1,
                        (CmpKind::Ge, true) => (thr as usize).max(1),
                        (CmpKind::Gt | CmpKind::Ge, false) if thr == 0 => {
                            return Err(infeasible(
                                "world requires an un-hit counter on a hit entry",
                            ))
                        }
                        _ => 1,
                    };
                    if need > MAX_INJECTIONS {
                        return Err(uncoverable(format!(
                            "world needs {need} injections to trip a counter"
                        )));
                    }
                    injections = injections.max(need);
                }
                (_, Some(c)) => {
                    by_term
                        .entry(lhs.clone())
                        .or_default()
                        .ranges
                        .push((*op, c, decided));
                }
                (Term::EntryCounter { .. }, None) if matches!(rhs, Term::EntryData { .. }) => {
                    // `counter <op> arg` at the last injection, where the
                    // counter equals the injection count and the entry
                    // argument is ours to pick: flip the comparison onto
                    // the argument (`counter > arg` ⇔ `arg < counter`).
                    let flipped = match op {
                        CmpKind::Lt => CmpKind::Gt,
                        CmpKind::Le => CmpKind::Ge,
                        CmpKind::Gt => CmpKind::Lt,
                        CmpKind::Ge => CmpKind::Le,
                    };
                    deferred.push((flipped, rhs.clone(), decided));
                }
                _ => {
                    if let Term::EntryData { .. } = lhs {
                        if matches!(rhs, Term::EntryCounter { .. }) {
                            // `arg <op> counter`: same deferral, no flip.
                            deferred.push((*op, lhs.clone(), decided));
                            continue;
                        }
                    }
                    return Err(uncoverable(format!(
                        "comparison between two non-constant terms ({lhs} vs {rhs}) is not concretizable"
                    )));
                }
            },
        }
    }
    for (op, term, decided) in deferred {
        by_term
            .entry(term)
            .or_default()
            .ranges
            .push((op, injections as u128, decided));
    }
    Ok((by_term, validity, injections))
}

fn concretize(
    design: &CompiledDesign,
    decisions: &[(Key, usize)],
    hits: &[TableHitTrace],
) -> Result<Concrete, Skip> {
    let (by_term, validity, injections) = constraints_of(decisions)?;
    for (t, c) in &by_term {
        if c.contradictory {
            return Err(infeasible(format!(
                "contradictory equality constraints on {t}"
            )));
        }
    }

    // --- traffic shape from the validity decisions ---
    let valid: BTreeSet<&str> = validity
        .iter()
        .filter(|(_, &v)| v)
        .map(|(h, _)| h.as_str())
        .collect();
    let absent: BTreeSet<&str> = validity
        .iter()
        .filter(|(_, &v)| !v)
        .map(|(h, _)| h.as_str())
        .collect();
    for h in &valid {
        if !matches!(*h, "ethernet" | "ipv4" | "ipv6" | "udp" | "srh") {
            return Err(uncoverable(format!(
                "no packet builder covers header `{h}`"
            )));
        }
    }

    // SRH segment count from segments_left constraints.
    let sl_term = Term::Field("srh".into(), "segments_left".into());
    let mut segments_needed = 2usize;
    if let Some(c) = by_term.get(&sl_term) {
        let sl = c
            .pick(8)
            .ok_or_else(|| uncoverable("unsatisfiable segments_left constraints"))?;
        if sl as usize + 1 > MAX_SEGMENTS {
            return Err(uncoverable(format!("world needs {} SRH segments", sl + 1)));
        }
        segments_needed = sl as usize + 1;
    }
    let segments: Vec<u128> = (0..segments_needed)
        .map(|i| 0xfc00_0000_0000_0000_0000_0000_0000_0100 + i as u128)
        .collect();

    // Shapes are tried in order, fullest first so worlds that never query
    // a deeper header get the richest packet. The `-raw` variants rewrite
    // one parser-selector field to a value no parse rule claims, which
    // truncates the parse chain there — that is what makes "header absent"
    // worlds (e.g. an IPv4 packet that does not carry UDP) concretizable.
    type Fixup = Option<(&'static str, &'static str, u128)>;
    let shapes: [(&str, &[&str], Fixup); 7] = [
        ("ipv4", &["ethernet", "ipv4", "udp"], None),
        ("ipv6", &["ethernet", "ipv6", "udp"], None),
        ("srv6", &["ethernet", "ipv6", "srh", "udp"], None),
        (
            "ipv4",
            &["ethernet", "ipv4"],
            Some(("ipv4", "protocol", 253)),
        ),
        (
            "ipv6",
            &["ethernet", "ipv6"],
            Some(("ipv6", "next_hdr", 59)),
        ),
        (
            "srv6",
            &["ethernet", "ipv6", "srh"],
            Some(("srh", "next_header", 59)),
        ),
        (
            "ipv4",
            &["ethernet"],
            Some(("ethernet", "ethertype", 0x88b5)),
        ),
    ];
    let (shape, fixup) = shapes
        .iter()
        .find(|(_, hs, _)| {
            valid.iter().all(|h| hs.contains(h)) && absent.iter().all(|h| !hs.contains(h))
        })
        .map(|(n, _, f)| (*n, *f))
        .ok_or_else(|| {
            // The shape list enumerates every truncation of the standard
            // parse chains, so a validity assignment over the standard
            // headers that fits none of them contradicts the parser
            // structure itself (e.g. IPv4 and IPv6 both present, or SRH
            // without IPv6).
            infeasible(format!(
                "no traffic shape has {valid:?} present and {absent:?} absent"
            ))
        })?;

    // --- ingress port ---
    let port = by_term
        .get(&Term::IngressPort)
        .map(|c| {
            c.pick(16)
                .ok_or_else(|| uncoverable("unsatisfiable ingress-port constraints"))
        })
        .transpose()?
        .unwrap_or(0) as u16;

    let mut pkt = match shape {
        "ipv4" => ipv4_udp_packet(&Ipv4UdpSpec::default()),
        "ipv6" => ipv6_udp_packet(&Ipv6UdpSpec::default()),
        _ => srv6_packet(&Ipv6UdpSpec::default(), &segments),
    };
    pkt.meta.ingress_port = port;
    if let Some((h, f, v)) = fixup {
        pkt.ensure_parsed(&design.linkage, h)
            .map_err(|e| uncoverable(format!("parse failed while truncating the shape: {e}")))
            .and_then(|ok| {
                if ok {
                    Ok(())
                } else {
                    Err(uncoverable(format!(
                        "header `{h}` is not parseable in the chosen traffic shape"
                    )))
                }
            })?;
        pkt.set_field(&design.linkage, h, f, v)
            .map_err(|e| uncoverable(e.to_string()))?;
    }

    // --- field assignments ---
    // Parse the construction copy far enough to write every constrained
    // field, then re-wrap the mutated bytes as a fresh unparsed packet so
    // the device parses exactly what a wire packet would present.
    let selector_fields: BTreeSet<(String, String)> = design
        .linkage
        .iter()
        .flat_map(|ty| {
            ty.parser.iter().flat_map(|p| {
                p.selector_fields
                    .iter()
                    .map(|f| (ty.name.clone(), f.clone()))
            })
        })
        .collect();
    for (term, c) in &by_term {
        let Term::Field(h, f) = term else {
            continue;
        };
        if h == "srh" && f == "segments_left" {
            continue; // encoded via the segment count above
        }
        if !pkt
            .ensure_parsed(&design.linkage, h)
            .map_err(|e| uncoverable(format!("parse failed while assigning fields: {e}")))?
        {
            return Err(uncoverable(format!(
                "constrained header `{h}` is unreachable in the chosen traffic shape"
            )));
        }
        let bits = design
            .linkage
            .get(h)
            .and_then(|ty| ty.fields.iter().find(|fd| fd.name == *f))
            .map(|fd| fd.bits)
            .ok_or_else(|| uncoverable(format!("unknown field `{h}.{f}`")))?;
        let current = pkt
            .get_field(&design.linkage, h, f)
            .map_err(|e| uncoverable(e.to_string()))?;
        if c.admits(current) {
            continue;
        }
        let v = c
            .pick(bits)
            .ok_or_else(|| uncoverable(format!("unsatisfiable constraints on `{h}.{f}`")))?;
        if selector_fields.contains(&(h.clone(), f.clone())) {
            return Err(uncoverable(format!(
                "world constrains parser-selector field `{h}.{f}`; changing it would alter the traffic shape"
            )));
        }
        pkt.set_field(&design.linkage, h, f, v)
            .map_err(|e| uncoverable(e.to_string()))?;
    }

    let fresh = Packet::new(pkt.data.clone(), port);
    let mut parsed = fresh.clone();
    // Parse the reference copy fully so wire fields resolve.
    let _ = parsed.parse_all(&design.linkage);

    // --- entry-data argument choices ---
    let mut entry_args = BTreeMap::new();
    for hit in hits {
        let action = design
            .tables
            .get(&hit.table)
            .and_then(|d| d.actions.get(hit.tag as usize - 1))
            .ok_or_else(|| {
                uncoverable(format!(
                    "hit tag {} out of range for `{}`",
                    hit.tag, hit.table
                ))
            })?;
        let params = design
            .actions
            .get(action)
            .map(|a| a.params.clone())
            .unwrap_or_default();
        for (i, (_, bits)) in params.iter().enumerate() {
            let term = Term::EntryData {
                table: hit.table.clone(),
                tag: hit.tag,
                index: i,
            };
            let v = match by_term.get(&term) {
                Some(c) => c
                    .pick(*bits)
                    .ok_or_else(|| uncoverable(format!("unsatisfiable constraints on {term}")))?,
                None => (i as u128 + 1) & width_mask(*bits),
            };
            entry_args.insert((hit.table.clone(), hit.tag, i), v);
        }
    }

    Ok(Concrete {
        packet: fresh,
        parsed,
        entry_args,
        segments,
        injections,
    })
}

/// Builds `AddEntry` messages that make each traced hit actually hit.
fn synth_entries(
    design: &CompiledDesign,
    hits: &[TableHitTrace],
    conc: &Concrete,
) -> Result<Vec<ControlMsg>, String> {
    let mut msgs = Vec::new();
    for hit in hits {
        let def = design
            .tables
            .get(&hit.table)
            .ok_or_else(|| format!("unknown table `{}`", hit.table))?;
        let action_name = def
            .actions
            .get(hit.tag as usize - 1)
            .ok_or_else(|| format!("hit tag {} out of range for `{}`", hit.tag, hit.table))?;
        let n_params = design
            .actions
            .get(action_name)
            .map(|a| a.params.len())
            .unwrap_or(0);
        let args: Vec<u128> = (0..n_params)
            .map(|i| conc.entry_args[&(hit.table.clone(), hit.tag, i)])
            .collect();
        let action = ActionCall::new(action_name.clone(), args);
        let key: Vec<KeyMatch> = if def.is_selector() {
            // One member: any packet key hashes onto it.
            def.key.iter().map(|_| KeyMatch::Exact(0)).collect()
        } else {
            let mut kms = Vec::new();
            for (kind, bits, term) in &hit.keys {
                let v = resolve_term(term, conc, design)
                    .ok_or_else(|| format!("key of `{}` not concretizable ({term})", hit.table))?
                    & width_mask(*bits);
                kms.push(match kind {
                    MatchKind::Exact | MatchKind::Hash => KeyMatch::Exact(v),
                    MatchKind::Lpm => KeyMatch::Lpm {
                        value: v,
                        prefix_len: *bits,
                    },
                    MatchKind::Ternary => KeyMatch::Ternary {
                        value: v,
                        mask: width_mask(*bits),
                    },
                });
            }
            kms
        };
        msgs.push(ControlMsg::AddEntry {
            table: hit.table.clone(),
            entry: TableEntry {
                key,
                priority: 0,
                action,
                counter: 0,
            },
        });
    }
    Ok(msgs)
}

/// Resolves a term to a concrete value under the chosen packet/entry
/// assignment; `None` when the term involves something we do not model
/// concretely (checksums).
fn resolve_term(term: &Term, conc: &Concrete, design: &CompiledDesign) -> Option<u128> {
    match term {
        Term::Const(c) => Some(*c),
        Term::Field(h, f) => conc.parsed.get_field(&design.linkage, h, f).ok(),
        Term::IngressPort => Some(conc.packet.meta.ingress_port as u128),
        Term::EntryData { table, tag, index } => {
            conc.entry_args.get(&(table.clone(), *tag, *index)).copied()
        }
        Term::EntryCounter { .. } => Some(conc.injections as u128),
        Term::Alu { op, a, b } => Some(op.apply(
            resolve_term(a, conc, design)?,
            resolve_term(b, conc, design)?,
        )),
        Term::Hash { inputs, modulo } => {
            let vals: Option<Vec<u128>> = inputs
                .iter()
                .map(|t| resolve_term(t, conc, design))
                .collect();
            let h = hash_values(&vals?) as u128;
            Some(if *modulo > 0 { h % *modulo as u128 } else { h })
        }
        Term::Trunc { bits, of } => Some(resolve_term(of, conc, design)? & width_mask(*bits)),
        Term::Cksum4(_) | Term::IncrCksum { .. } => None,
        Term::SrhSegment(idx) => {
            let i = resolve_term(idx, conc, design)? as usize;
            conc.segments.get(i).copied()
        }
    }
}
