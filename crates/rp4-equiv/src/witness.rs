//! Witness concretization: turn a divergent symbolic world into a real
//! packet + table entries, run it through an `ipbm` device, and check that
//! the device behaves as the design-side model predicted.
//!
//! This is a differential cross-check of the *model*, not of the compiler:
//! a divergence diagnosis is only trustworthy if the design evaluator
//! actually mirrors the device. Concretization is best-effort — worlds
//! that need exotic traffic shapes or unresolvable constraints are
//! skipped with an explanatory note rather than guessed at.

use std::collections::{BTreeMap, BTreeSet};

use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::hash::hash_values;
use ipsa_core::table::{ActionCall, KeyMatch, MatchKind, TableEntry};
use ipsa_core::template::CompiledDesign;
use ipsa_netpkt::bitfield::width_mask;
use ipsa_netpkt::builder::{
    ipv4_udp_packet, ipv6_udp_packet, srv6_packet, Ipv4UdpSpec, Ipv6UdpSpec,
};
use ipsa_netpkt::packet::Packet;

use crate::eval_design::TableHitTrace;
use crate::oracle::{CmpKind, Key};
use crate::state::{Outcome, SymState};
use crate::term::Term;

/// Maximum SRH segments we are willing to synthesize.
const MAX_SEGMENTS: usize = 8;
/// Maximum injections (for counter-threshold worlds).
const MAX_INJECTIONS: usize = 64;

/// Per-term value constraints gathered from the world's decisions.
#[derive(Default)]
struct Constraint {
    must_eq: Option<u128>,
    avoid: BTreeSet<u128>,
    /// `(op, constant, decided)` with the term on the left.
    ranges: Vec<(CmpKind, u128, bool)>,
    contradictory: bool,
}

impl Constraint {
    fn admits(&self, v: u128) -> bool {
        if let Some(c) = self.must_eq {
            if v != c {
                return false;
            }
        }
        if self.avoid.contains(&v) {
            return false;
        }
        self.ranges.iter().all(|&(op, c, decided)| {
            let holds = match op {
                CmpKind::Lt => v < c,
                CmpKind::Le => v <= c,
                CmpKind::Gt => v > c,
                CmpKind::Ge => v >= c,
            };
            holds == decided
        })
    }

    fn pick(&self, bits: usize) -> Option<u128> {
        let mask = width_mask(bits);
        let mut cands: Vec<u128> = vec![0, 1];
        if let Some(c) = self.must_eq {
            cands = vec![c];
        } else {
            for &(_, c, _) in &self.ranges {
                cands.extend([c.saturating_sub(1), c, c.saturating_add(1)]);
            }
            for &a in &self.avoid {
                cands.push(a.saturating_add(1));
            }
        }
        cands
            .into_iter()
            .map(|v| v & mask)
            .find(|&v| self.admits(v) && v & !mask == 0)
    }
}

/// Everything the run needs, concretized from the decisions; `Err` carries
/// a human-readable skip reason.
struct Concrete {
    packet: Packet,
    /// Parsed view of the same packet for reading wire fields back.
    parsed: Packet,
    entry_args: BTreeMap<(String, u32, usize), u128>,
    segments: Vec<u128>,
    injections: usize,
}

/// Runs the divergent world on an `ipbm` device and reports whether the
/// device agrees with the design-side model. Returns note lines for the
/// diagnostic.
pub fn cross_check(
    design: &CompiledDesign,
    decisions: &[(Key, usize)],
    hits: &[TableHitTrace],
    predicted: &Outcome,
    predicted_state: &SymState,
) -> Vec<String> {
    match try_cross_check(design, decisions, hits, predicted, predicted_state) {
        Ok(lines) => lines,
        Err(reason) => vec![format!("witness skipped: {reason}")],
    }
}

fn try_cross_check(
    design: &CompiledDesign,
    decisions: &[(Key, usize)],
    hits: &[TableHitTrace],
    predicted: &Outcome,
    predicted_state: &SymState,
) -> Result<Vec<String>, String> {
    let conc = concretize(design, decisions, hits)?;

    let mut sw = ipbm::IpbmSwitch::new(ipbm::IpbmConfig::default());
    sw.install(design)
        .map_err(|e| format!("design rejected by device: {e}"))?;
    let entries = synth_entries(design, hits, &conc)?;
    if !entries.is_empty() {
        sw.apply(&entries)
            .map_err(|e| format!("device rejected synthesized entries: {e}"))?;
    }

    let mut last: Result<Option<Packet>, String> = Ok(None);
    for _ in 0..conc.injections {
        sw.inject(conc.packet.clone());
        last = match sw.step() {
            Ok(true) => Ok(sw.cm.collect_tx().pop()),
            Ok(false) => Ok(None),
            Err(e) => Err(e.to_string()),
        };
    }
    let resolve = |t: &Term| resolve_term(t, &conc, design);

    let mut lines = Vec::new();
    let agree = match (predicted, &last) {
        (Outcome::Forwarded(port), Ok(Some(out))) => {
            let Some(p) = resolve(port) else {
                return Err("egress port term not concretizable".into());
            };
            if out.meta.egress_port == Some(p as u16) {
                lines.push(format!(
                    "witness packet confirmed on device: forwarded to port {p} as the design model predicts"
                ));
                check_state(&mut lines, out, predicted_state, design, &conc);
                true
            } else {
                lines.push(format!(
                    "witness packet DISAGREES with the design model: predicted port {p}, device chose {:?}",
                    out.meta.egress_port
                ));
                false
            }
        }
        (Outcome::DroppedByAction | Outcome::DroppedNoRoute, Ok(None)) => {
            lines.push(
                "witness packet confirmed on device: dropped as the design model predicts".into(),
            );
            true
        }
        (Outcome::RuntimeError(_), Err(e)) => {
            lines.push(format!(
                "witness packet confirmed on device: aborted with `{e}` as the design model predicts"
            ));
            true
        }
        (want, got) => {
            lines.push(format!(
                "witness packet DISAGREES with the design model: predicted {want:?}, device produced {got:?}"
            ));
            false
        }
    };
    if !agree {
        lines.push(
            "the equivalence model itself mispredicted this path; treat the divergence with care"
                .into(),
        );
    }
    Ok(lines)
}

/// Compares resolvable pieces of the predicted final state against the
/// emitted packet.
fn check_state(
    lines: &mut Vec<String>,
    out: &Packet,
    state: &SymState,
    design: &CompiledDesign,
    conc: &Concrete,
) {
    let want_mark = match &state.mark {
        None => Some(0),
        Some(t) => resolve_term(t, conc, design),
    };
    if let Some(want) = want_mark {
        if out.meta.mark != want {
            lines.push(format!(
                "witness mark mismatch: model predicts {want}, device left {}",
                out.meta.mark
            ));
        }
    }
    let mut parsed = out.clone();
    for ((h, f), t) in &state.fields {
        if f.starts_with("__extra") {
            continue;
        }
        let Some(want) = resolve_term(t, conc, design) else {
            continue;
        };
        if parsed.ensure_parsed(&design.linkage, h) != Ok(true) {
            continue;
        }
        if let Ok(got) = parsed.get_field(&design.linkage, h, f) {
            if got != want {
                lines.push(format!(
                    "witness field mismatch on `{h}.{f}`: model predicts {want:#x}, device left {got:#x}"
                ));
            }
        }
    }
}

/// Per-term constraints, decided header validity, and the injection count
/// a world demands (counter thresholds need threshold+1 packets).
type WorldConstraints = (BTreeMap<Term, Constraint>, BTreeMap<String, bool>, usize);

fn constraints_of(decisions: &[(Key, usize)]) -> Result<WorldConstraints, String> {
    let mut by_term: BTreeMap<Term, Constraint> = BTreeMap::new();
    let mut validity: BTreeMap<String, bool> = BTreeMap::new();
    let mut injections = 1usize;
    for (key, idx) in decisions {
        let decided = *idx == 0;
        match key {
            Key::Validity(h) => {
                validity.insert(h.clone(), decided);
            }
            Key::Table(_) => {}
            Key::EqConst { lhs, val } => {
                let c = by_term.entry(lhs.clone()).or_default();
                if decided {
                    if c.must_eq.is_some_and(|m| m != *val) {
                        c.contradictory = true;
                    }
                    c.must_eq = Some(*val);
                } else {
                    c.avoid.insert(*val);
                }
            }
            Key::Cmp { op, lhs, rhs } => match (lhs, rhs.as_const()) {
                (Term::EntryCounter { .. }, Some(thr)) => {
                    // The counter equals the injection count at the last
                    // packet (one hit per injection).
                    let need = match (op, decided) {
                        (CmpKind::Gt, true) => thr as usize + 1,
                        (CmpKind::Ge, true) => (thr as usize).max(1),
                        (CmpKind::Gt | CmpKind::Ge, false) if thr == 0 => {
                            return Err(
                                "world requires an un-hit counter on a hit entry".to_string()
                            )
                        }
                        _ => 1,
                    };
                    if need > MAX_INJECTIONS {
                        return Err(format!("world needs {need} injections to trip a counter"));
                    }
                    injections = injections.max(need);
                }
                (_, Some(c)) => {
                    by_term
                        .entry(lhs.clone())
                        .or_default()
                        .ranges
                        .push((*op, c, decided));
                }
                _ => {
                    return Err(format!(
                        "comparison between two non-constant terms ({lhs} vs {rhs}) is not concretizable"
                    ))
                }
            },
        }
    }
    Ok((by_term, validity, injections))
}

fn concretize(
    design: &CompiledDesign,
    decisions: &[(Key, usize)],
    hits: &[TableHitTrace],
) -> Result<Concrete, String> {
    let (by_term, validity, injections) = constraints_of(decisions)?;
    for (t, c) in &by_term {
        if c.contradictory {
            return Err(format!("contradictory equality constraints on {t}"));
        }
    }

    // --- traffic shape from the validity decisions ---
    let valid: BTreeSet<&str> = validity
        .iter()
        .filter(|(_, &v)| v)
        .map(|(h, _)| h.as_str())
        .collect();
    let absent: BTreeSet<&str> = validity
        .iter()
        .filter(|(_, &v)| !v)
        .map(|(h, _)| h.as_str())
        .collect();
    for h in &valid {
        if !matches!(*h, "ethernet" | "ipv4" | "ipv6" | "udp" | "srh") {
            return Err(format!("no packet builder covers header `{h}`"));
        }
    }

    // SRH segment count from segments_left constraints.
    let sl_term = Term::Field("srh".into(), "segments_left".into());
    let mut segments_needed = 2usize;
    if let Some(c) = by_term.get(&sl_term) {
        let sl = c
            .pick(8)
            .ok_or_else(|| "unsatisfiable segments_left constraints".to_string())?;
        if sl as usize + 1 > MAX_SEGMENTS {
            return Err(format!("world needs {} SRH segments", sl + 1));
        }
        segments_needed = sl as usize + 1;
    }
    let segments: Vec<u128> = (0..segments_needed)
        .map(|i| 0xfc00_0000_0000_0000_0000_0000_0000_0100 + i as u128)
        .collect();

    let shapes: [(&str, &[&str]); 3] = [
        ("ipv4", &["ethernet", "ipv4", "udp"]),
        ("ipv6", &["ethernet", "ipv6", "udp"]),
        ("srv6", &["ethernet", "ipv6", "srh", "udp"]),
    ];
    let shape = shapes
        .iter()
        .find(|(_, hs)| {
            valid.iter().all(|h| hs.contains(h)) && absent.iter().all(|h| !hs.contains(h))
        })
        .map(|(n, _)| *n)
        .ok_or_else(|| {
            format!("no supported traffic shape has {valid:?} present and {absent:?} absent")
        })?;

    // --- ingress port ---
    let port = by_term
        .get(&Term::IngressPort)
        .map(|c| {
            c.pick(16)
                .ok_or_else(|| "unsatisfiable ingress-port constraints".to_string())
        })
        .transpose()?
        .unwrap_or(0) as u16;

    let mut pkt = match shape {
        "ipv4" => ipv4_udp_packet(&Ipv4UdpSpec::default()),
        "ipv6" => ipv6_udp_packet(&Ipv6UdpSpec::default()),
        _ => srv6_packet(&Ipv6UdpSpec::default(), &segments),
    };
    pkt.meta.ingress_port = port;

    // --- field assignments ---
    // Parse the construction copy far enough to write every constrained
    // field, then re-wrap the mutated bytes as a fresh unparsed packet so
    // the device parses exactly what a wire packet would present.
    let selector_fields: BTreeSet<(String, String)> = design
        .linkage
        .iter()
        .flat_map(|ty| {
            ty.parser.iter().flat_map(|p| {
                p.selector_fields
                    .iter()
                    .map(|f| (ty.name.clone(), f.clone()))
            })
        })
        .collect();
    for (term, c) in &by_term {
        let Term::Field(h, f) = term else {
            continue;
        };
        if h == "srh" && f == "segments_left" {
            continue; // encoded via the segment count above
        }
        if !pkt
            .ensure_parsed(&design.linkage, h)
            .map_err(|e| format!("parse failed while assigning fields: {e}"))?
        {
            return Err(format!(
                "constrained header `{h}` is unreachable in the chosen traffic shape"
            ));
        }
        let bits = design
            .linkage
            .get(h)
            .and_then(|ty| ty.fields.iter().find(|fd| fd.name == *f))
            .map(|fd| fd.bits)
            .ok_or_else(|| format!("unknown field `{h}.{f}`"))?;
        let current = pkt
            .get_field(&design.linkage, h, f)
            .map_err(|e| e.to_string())?;
        if c.admits(current) {
            continue;
        }
        let v = c
            .pick(bits)
            .ok_or_else(|| format!("unsatisfiable constraints on `{h}.{f}`"))?;
        if selector_fields.contains(&(h.clone(), f.clone())) {
            return Err(format!(
                "world constrains parser-selector field `{h}.{f}`; changing it would alter the traffic shape"
            ));
        }
        pkt.set_field(&design.linkage, h, f, v)
            .map_err(|e| e.to_string())?;
    }

    let fresh = Packet::new(pkt.data.clone(), port);
    let mut parsed = fresh.clone();
    // Parse the reference copy fully so wire fields resolve.
    let _ = parsed.parse_all(&design.linkage);

    // --- entry-data argument choices ---
    let mut entry_args = BTreeMap::new();
    for hit in hits {
        let action = design
            .tables
            .get(&hit.table)
            .and_then(|d| d.actions.get(hit.tag as usize - 1))
            .ok_or_else(|| format!("hit tag {} out of range for `{}`", hit.tag, hit.table))?;
        let params = design
            .actions
            .get(action)
            .map(|a| a.params.clone())
            .unwrap_or_default();
        for (i, (_, bits)) in params.iter().enumerate() {
            let term = Term::EntryData {
                table: hit.table.clone(),
                tag: hit.tag,
                index: i,
            };
            let v = match by_term.get(&term) {
                Some(c) => c
                    .pick(*bits)
                    .ok_or_else(|| format!("unsatisfiable constraints on {term}"))?,
                None => (i as u128 + 1) & width_mask(*bits),
            };
            entry_args.insert((hit.table.clone(), hit.tag, i), v);
        }
    }

    Ok(Concrete {
        packet: fresh,
        parsed,
        entry_args,
        segments,
        injections,
    })
}

/// Builds `AddEntry` messages that make each traced hit actually hit.
fn synth_entries(
    design: &CompiledDesign,
    hits: &[TableHitTrace],
    conc: &Concrete,
) -> Result<Vec<ControlMsg>, String> {
    let mut msgs = Vec::new();
    for hit in hits {
        let def = design
            .tables
            .get(&hit.table)
            .ok_or_else(|| format!("unknown table `{}`", hit.table))?;
        let action_name = def
            .actions
            .get(hit.tag as usize - 1)
            .ok_or_else(|| format!("hit tag {} out of range for `{}`", hit.tag, hit.table))?;
        let n_params = design
            .actions
            .get(action_name)
            .map(|a| a.params.len())
            .unwrap_or(0);
        let args: Vec<u128> = (0..n_params)
            .map(|i| conc.entry_args[&(hit.table.clone(), hit.tag, i)])
            .collect();
        let action = ActionCall::new(action_name.clone(), args);
        let key: Vec<KeyMatch> = if def.is_selector() {
            // One member: any packet key hashes onto it.
            def.key.iter().map(|_| KeyMatch::Exact(0)).collect()
        } else {
            let mut kms = Vec::new();
            for (kind, bits, term) in &hit.keys {
                let v = resolve_term(term, conc, design)
                    .ok_or_else(|| format!("key of `{}` not concretizable ({term})", hit.table))?
                    & width_mask(*bits);
                kms.push(match kind {
                    MatchKind::Exact | MatchKind::Hash => KeyMatch::Exact(v),
                    MatchKind::Lpm => KeyMatch::Lpm {
                        value: v,
                        prefix_len: *bits,
                    },
                    MatchKind::Ternary => KeyMatch::Ternary {
                        value: v,
                        mask: width_mask(*bits),
                    },
                });
            }
            kms
        };
        msgs.push(ControlMsg::AddEntry {
            table: hit.table.clone(),
            entry: TableEntry {
                key,
                priority: 0,
                action,
                counter: 0,
            },
        });
    }
    Ok(msgs)
}

/// Resolves a term to a concrete value under the chosen packet/entry
/// assignment; `None` when the term involves something we do not model
/// concretely (checksums).
fn resolve_term(term: &Term, conc: &Concrete, design: &CompiledDesign) -> Option<u128> {
    match term {
        Term::Const(c) => Some(*c),
        Term::Field(h, f) => conc.parsed.get_field(&design.linkage, h, f).ok(),
        Term::IngressPort => Some(conc.packet.meta.ingress_port as u128),
        Term::EntryData { table, tag, index } => {
            conc.entry_args.get(&(table.clone(), *tag, *index)).copied()
        }
        Term::EntryCounter { .. } => Some(conc.injections as u128),
        Term::Alu { op, a, b } => Some(op.apply(
            resolve_term(a, conc, design)?,
            resolve_term(b, conc, design)?,
        )),
        Term::Hash { inputs, modulo } => {
            let vals: Option<Vec<u128>> = inputs
                .iter()
                .map(|t| resolve_term(t, conc, design))
                .collect();
            let h = hash_values(&vals?) as u128;
            Some(if *modulo > 0 { h % *modulo as u128 } else { h })
        }
        Term::Trunc { bits, of } => Some(resolve_term(of, conc, design)? & width_mask(*bits)),
        Term::Cksum4(_) | Term::IncrCksum { .. } => None,
        Term::SrhSegment(idx) => {
            let i = resolve_term(idx, conc, design)? as usize;
            conc.segments.get(i).copied()
        }
    }
}
