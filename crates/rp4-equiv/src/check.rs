//! The path-equivalence checker: world enumeration, state comparison, and
//! RP42xx diagnostics.
//!
//! Two seams share the machinery:
//!
//! * **program ↔ design** ([`check_program_design`]): the translation
//!   validator behind `rp4c check --equiv`. A structural pre-pass first
//!   proves the table *schemas* match (key sources, widths, match kinds,
//!   action lists, default actions, counters) — those are invisible to the
//!   behavioral phase because table outcomes are free oracle choices — and
//!   then the behavioral phase enumerates worlds, runs both evaluators
//!   against the shared oracle, and compares final states.
//! * **design ↔ design** ([`check_design_design`]): the in-situ update
//!   gate. Evaluation is restricted to the stages of functions present
//!   unchanged in both designs (an update is *supposed* to change the
//!   touched function), with a structural fast path so the common
//!   all-identical case costs nothing.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use ipsa_core::table::{ActionCall, MatchKind, TableDef};
use ipsa_core::template::CompiledDesign;
use ipsa_core::value::ValueRef;
use rp4_lang::ast::{Expr, Program};
use rp4_lang::semantic::Env;
use rp4_lang::{Diagnostic, ItemKind, Span};

use crate::eval_ast::eval_ast;
use crate::eval_design::{eval_design, TableHitTrace};
use crate::oracle::{Key, Oracle};
use crate::state::{Outcome, SymState};
use crate::witness;

/// Stable diagnostic codes of the equivalence checker.
pub mod codes {
    /// A header field or metadata value diverges on a matched path.
    pub const WRITE_DIVERGENCE: &str = "RP4201";
    /// The packet outcome (forward port / drop kind / runtime error)
    /// diverges.
    pub const OUTCOME_DIVERGENCE: &str = "RP4202";
    /// Header validity (presence after insert/remove) diverges.
    pub const VALIDITY_DIVERGENCE: &str = "RP4203";
    /// Table schemas differ between the program and the compiled design.
    pub const STRUCT_MISMATCH: &str = "RP4204";
    /// The world/decision budget was exhausted before full coverage.
    pub const PATH_BUDGET: &str = "RP4205";
    /// A failback round-trip does not restore the original design.
    pub const FAILBACK_NONIDENTITY: &str = "RP4206";
}

/// Tunables of the equivalence checker.
#[derive(Debug, Clone)]
pub struct EquivOptions {
    /// Maximum worlds to enumerate before reporting RP4205.
    pub max_worlds: usize,
    /// Maximum oracle decisions within one world.
    pub max_decisions: usize,
    /// Concretize a witness packet for each divergence and cross-check it
    /// on an `ipbm` device.
    pub witness: bool,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            max_worlds: 65_536,
            max_decisions: 96,
            witness: true,
        }
    }
}

/// Upper bound on reported divergences per check (they repeat across
/// worlds; the first few are the actionable ones).
const MAX_FINDINGS: usize = 8;

struct Divergence {
    diag: Diagnostic,
    /// Oracle decisions of the divergent world (witness input).
    decisions: Vec<(Key, usize)>,
    /// Design-side table hits along the divergent path.
    hits: Vec<TableHitTrace>,
    /// Design-side predicted outcome.
    predicted: Outcome,
    /// Design-side predicted final state.
    predicted_state: SymState,
}

/// Validates a compiled design against its source program. Returns RP42xx
/// diagnostics; empty means the compilation is provably path-equivalent
/// within the enumeration budget.
pub fn check_program_design(
    prog: &Program,
    env: &Env,
    design: &CompiledDesign,
    opts: &EquivOptions,
) -> Vec<Diagnostic> {
    // Structural pre-pass: table schemas. The behavioral phase models
    // lookups as free choices, so a miscompiled key or action list must be
    // caught here — and matching action lists are what make the shared
    // per-table arity sound.
    let mut diags = structural_check(prog, env, design);
    if !diags.is_empty() {
        return diags;
    }

    let mut arity: HashMap<String, usize> = HashMap::new();
    for t in &prog.tables {
        arity.insert(t.name.clone(), t.actions.len());
    }
    for (n, d) in &design.tables {
        let e = arity.entry(n.clone()).or_insert(0);
        *e = (*e).max(d.actions.len());
    }

    let mut oracle = Oracle::new(arity, opts.max_decisions);
    let mut worlds = 0usize;
    let mut found: Vec<Divergence> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    loop {
        worlds += 1;
        let a = eval_ast(prog, env, &mut oracle);
        let d = eval_design(design, &mut oracle, None);
        if oracle.overflowed {
            diags.push(budget_diag(format!(
                "a path needed more than {} decisions",
                opts.max_decisions
            )));
            break;
        }
        collect_divergences(
            &a.state,
            &a.outcome,
            &d.state,
            &d.outcome,
            &mut oracle,
            &d.hits,
            &mut seen,
            &mut found,
        );
        if found.len() >= MAX_FINDINGS {
            break;
        }
        if worlds >= opts.max_worlds {
            diags.push(budget_diag(format!(
                "stopped after {worlds} worlds (budget {})",
                opts.max_worlds
            )));
            break;
        }
        if !oracle.next_world() {
            break;
        }
    }

    for mut dv in found {
        dv.diag.span = span_for(prog, &dv.diag);
        if opts.witness {
            for line in witness::cross_check(
                design,
                &dv.decisions,
                &dv.hits,
                &dv.predicted,
                &dv.predicted_state,
            ) {
                dv.diag.notes.push(line);
            }
        }
        diags.push(dv.diag);
    }
    diags
}

/// Validates that two designs behave identically on the stages of every
/// function that is present, with an identical stage list, in both —
/// the correctness contract of an in-situ update: *untouched* functions
/// must be undisturbed.
pub fn check_design_design(
    pre: &CompiledDesign,
    post: &CompiledDesign,
    opts: &EquivOptions,
) -> Vec<Diagnostic> {
    // Stages of functions unchanged between the designs...
    let mut allowed: HashSet<String> = pre
        .funcs
        .iter()
        .filter(|f| post.funcs.iter().any(|g| g == *f))
        .flat_map(|f| f.stages.iter().cloned())
        .collect();
    // ...shrunk to a fixpoint: if a hosting template (either side) also
    // carries a non-allowed stage, its whole merge group is out, so both
    // sides skip exactly the same logical stages.
    loop {
        let mut dropped = false;
        for d in [pre, post] {
            for (_, t) in d.programmed() {
                let members: Vec<&str> = t.stage_name.split('+').collect();
                if members.iter().any(|m| !allowed.contains(*m))
                    && members.iter().any(|m| allowed.contains(*m))
                {
                    for m in members {
                        dropped |= allowed.remove(m);
                    }
                }
            }
        }
        if !dropped {
            break;
        }
    }

    fn included<'d>(
        d: &'d CompiledDesign,
        allowed: &HashSet<String>,
    ) -> Vec<&'d ipsa_core::template::TspTemplate> {
        d.programmed()
            .filter(|(_, t)| t.stage_name.split('+').all(|s| allowed.contains(s)))
            .map(|(_, t)| t)
            .collect()
    }

    // Structural fast path: identical included templates over identical
    // table/action definitions need no enumeration.
    let pre_inc = included(pre, &allowed);
    let post_inc = included(post, &allowed);
    let mut diags = Vec::new();
    let mut tables_equal = true;
    for t in pre_inc.iter().chain(post_inc.iter()) {
        for name in t.tables() {
            if pre.tables.get(name) != post.tables.get(name) {
                tables_equal = false;
                diags.push(
                    Diagnostic::error(
                        codes::STRUCT_MISMATCH,
                        format!("table `{name}` changed although its function was not updated"),
                    )
                    .with_note("an in-situ update must leave untouched functions' tables intact"),
                );
            }
        }
    }
    diags.sort_by(|a, b| a.message.cmp(&b.message));
    diags.dedup();
    if !tables_equal {
        return diags;
    }
    if pre_inc == post_inc && pre.actions == post.actions && pre.metadata == post.metadata {
        return diags;
    }

    let mut arity: HashMap<String, usize> = HashMap::new();
    for d in [pre, post] {
        for (n, t) in &d.tables {
            let e = arity.entry(n.clone()).or_insert(0);
            *e = (*e).max(t.actions.len());
        }
    }
    let mut oracle = Oracle::new(arity, opts.max_decisions);
    let mut worlds = 0usize;
    let mut found: Vec<Divergence> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    loop {
        worlds += 1;
        let a = eval_design(pre, &mut oracle, Some(&allowed));
        let b = eval_design(post, &mut oracle, Some(&allowed));
        if oracle.overflowed {
            diags.push(budget_diag(format!(
                "a path needed more than {} decisions",
                opts.max_decisions
            )));
            break;
        }
        collect_divergences(
            &a.state,
            &a.outcome,
            &b.state,
            &b.outcome,
            &mut oracle,
            &b.hits,
            &mut seen,
            &mut found,
        );
        if found.len() >= MAX_FINDINGS {
            break;
        }
        if worlds >= opts.max_worlds {
            diags.push(budget_diag(format!(
                "stopped after {worlds} worlds (budget {})",
                opts.max_worlds
            )));
            break;
        }
        if !oracle.next_world() {
            break;
        }
    }
    for mut dv in found {
        dv.diag = dv
            .diag
            .with_note("divergence is on a stage of a function the update does not touch");
        if opts.witness {
            for line in witness::cross_check(
                post,
                &dv.decisions,
                &dv.hits,
                &dv.predicted,
                &dv.predicted_state,
            ) {
                dv.diag.notes.push(line);
            }
        }
        diags.push(dv.diag);
    }
    diags
}

fn budget_diag(detail: String) -> Diagnostic {
    Diagnostic::warning(
        codes::PATH_BUDGET,
        format!("equivalence enumeration incomplete: {detail}"),
    )
    .with_note("paths beyond the budget were not compared; raise the budget or simplify guards")
}

/// Compares two final states + outcomes in the current world and records
/// fresh divergences (deduplicated by code + subject across worlds).
#[allow(clippy::too_many_arguments)]
fn collect_divergences(
    a_state: &SymState,
    a_outcome: &Outcome,
    b_state: &SymState,
    b_outcome: &Outcome,
    oracle: &mut Oracle,
    hits: &[TableHitTrace],
    seen: &mut BTreeSet<(String, String)>,
    found: &mut Vec<Divergence>,
) {
    let world = oracle.describe();
    let mut push = |code: &str, subject: String, message: String, oracle: &Oracle| {
        if seen.insert((code.to_string(), subject)) {
            found.push(Divergence {
                diag: Diagnostic::error(code, message)
                    .with_note(format!("in the world where {world}")),
                decisions: oracle.decisions(),
                hits: hits.to_vec(),
                predicted: b_outcome.clone(),
                predicted_state: b_state.clone(),
            });
        }
    };

    let kind = |o: &Outcome| match o {
        Outcome::Forwarded(_) => "forwarded",
        Outcome::DroppedByAction => "dropped by an action",
        Outcome::DroppedNoRoute => "dropped for lacking a route",
        Outcome::RuntimeError(_) => "aborted with a runtime error",
    };
    match (a_outcome, b_outcome) {
        (Outcome::Forwarded(pa), Outcome::Forwarded(pb)) => {
            if pa != pb {
                push(
                    codes::OUTCOME_DIVERGENCE,
                    "egress_port".into(),
                    format!("egress port diverges: program forwards to {pa}, design to {pb}"),
                    oracle,
                );
            }
        }
        (a, b) if kind(a) == kind(b) => {
            // Same terminal kind; dropped/error paths need no state compare.
            return;
        }
        (a, b) => {
            push(
                codes::OUTCOME_DIVERGENCE,
                "outcome".into(),
                format!(
                    "packet outcome diverges: per the program it is {}, on the device it is {}{}",
                    kind(a),
                    kind(b),
                    match b {
                        Outcome::RuntimeError(e) => format!(" ({e})"),
                        _ => String::new(),
                    }
                ),
                oracle,
            );
            return;
        }
    }

    // Both sides forwarded: compare the observable packet state.
    let headers: BTreeSet<&String> = a_state
        .validity
        .keys()
        .chain(b_state.validity.keys())
        .collect();
    for h in headers {
        let va = a_state.is_valid(oracle, h);
        let vb = b_state.is_valid(oracle, h);
        if va != vb {
            let what = |v: bool| if v { "present" } else { "absent" };
            push(
                codes::VALIDITY_DIVERGENCE,
                format!("validity:{h}"),
                format!(
                    "header `{h}` validity diverges: {} per the program, {} on the device",
                    what(va),
                    what(vb)
                ),
                oracle,
            );
        }
    }

    let fields: BTreeSet<(String, String)> = a_state
        .fields
        .keys()
        .chain(b_state.fields.keys())
        .cloned()
        .collect();
    for (h, f) in fields {
        let va = a_state.is_valid(oracle, &h);
        let vb = b_state.is_valid(oracle, &h);
        if !va || !vb {
            continue; // covered by the validity comparison
        }
        let ta = a_state.read_field(oracle, &h, &f);
        let tb = b_state.read_field(oracle, &h, &f);
        if ta != tb {
            push(
                codes::WRITE_DIVERGENCE,
                format!("field:{h}.{f}"),
                format!(
                    "`{h}.{f}` diverges: program leaves {}, design leaves {}",
                    show(&ta),
                    show(&tb)
                ),
                oracle,
            );
        }
    }

    let metas: BTreeSet<&String> = a_state
        .meta
        .keys()
        .chain(b_state.meta.keys())
        .filter(|n| !n.starts_with("__t"))
        .collect();
    for m in metas {
        let ta = a_state.read_meta(m);
        let tb = b_state.read_meta(m);
        if ta != tb {
            push(
                codes::WRITE_DIVERGENCE,
                format!("meta:{m}"),
                format!("`meta.{m}` diverges: program leaves {ta}, design leaves {tb}"),
                oracle,
            );
        }
    }
    let ma = a_state.read_meta("mark");
    let mb = b_state.read_meta("mark");
    if ma != mb {
        push(
            codes::WRITE_DIVERGENCE,
            "meta:mark".into(),
            format!("`meta.mark` diverges: program leaves {ma}, design leaves {mb}"),
            oracle,
        );
    }
}

fn show(t: &Option<crate::term::Term>) -> String {
    match t {
        Some(t) => format!("{t}"),
        None => "(absent)".to_string(),
    }
}

/// Best-effort span for a divergence: the named header/table/action if the
/// subject carries one, else the first ingress stage.
fn span_for(prog: &Program, diag: &Diagnostic) -> Option<Span> {
    let msg = &diag.message;
    let named = |kind: ItemKind, name: &str| prog.spans.get(kind, name);
    if let Some(h) = msg
        .strip_prefix("header `")
        .and_then(|r| r.split('`').next())
    {
        if let Some(s) = named(ItemKind::Header, h) {
            return Some(s);
        }
    }
    if let Some(rest) = msg.strip_prefix('`') {
        if let Some(subject) = rest.split('`').next() {
            if let Some((scope, _)) = subject.split_once('.') {
                if let Some(s) = named(ItemKind::Header, scope) {
                    return Some(s);
                }
            }
        }
    }
    if let Some(t) = msg
        .strip_prefix("table `")
        .and_then(|r| r.split('`').next())
    {
        if let Some(s) = named(ItemKind::Table, t) {
            return Some(s);
        }
    }
    prog.ingress
        .first()
        .and_then(|st| named(ItemKind::Stage, &st.name))
}

/// Structural pre-pass: every program table must exist in the design with
/// the same key schema, action list, default action, and counter flag.
fn structural_check(prog: &Program, env: &Env, design: &CompiledDesign) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut err = |name: &str, msg: String| {
        diags.push(
            Diagnostic::error(codes::STRUCT_MISMATCH, msg)
                .with_span(prog.spans.get(ItemKind::Table, name)),
        );
    };
    let mut expected_names: BTreeSet<&str> = BTreeSet::new();
    for t in &prog.tables {
        expected_names.insert(&t.name);
        let Some(d) = design.tables.get(&t.name) else {
            err(
                &t.name,
                format!("table `{}` is missing from the compiled design", t.name),
            );
            continue;
        };
        if let Some(msg) = table_mismatch(env, t, d) {
            err(&t.name, format!("table `{}` {msg}", t.name));
        }
    }
    for name in design.tables.keys() {
        if !expected_names.contains(name.as_str()) {
            diags.push(Diagnostic::error(
                codes::STRUCT_MISMATCH,
                format!("design carries table `{name}` that the program never declared"),
            ));
        }
    }
    diags
}

fn table_mismatch(env: &Env, t: &rp4_lang::ast::TableDecl, d: &TableDef) -> Option<String> {
    if t.key.len() != d.key.len() {
        return Some(format!(
            "key has {} fields in the program but {} in the design",
            t.key.len(),
            d.key.len()
        ));
    }
    for (i, ((e, kind), dk)) in t.key.iter().zip(&d.key).enumerate() {
        let (src, bits) = match e {
            Expr::Qualified(scope, field) => {
                let src = if scope == &env.meta_alias {
                    ValueRef::Meta(field.clone())
                } else {
                    ValueRef::field(scope.clone(), field.clone())
                };
                (src, env.width_of(scope, field).unwrap_or(128))
            }
            other => return Some(format!("key field {i} is not a field reference: {other:?}")),
        };
        let want_kind = match kind {
            rp4_lang::ast::KeyKind::Exact => MatchKind::Exact,
            rp4_lang::ast::KeyKind::Lpm => MatchKind::Lpm,
            rp4_lang::ast::KeyKind::Ternary => MatchKind::Ternary,
            rp4_lang::ast::KeyKind::Hash => MatchKind::Hash,
        };
        if dk.source != src || dk.bits != bits || dk.kind != want_kind {
            return Some(format!(
                "key field {i} differs: program wants {src:?}:{bits} ({want_kind:?}), design has {:?}:{} ({:?})",
                dk.source, dk.bits, dk.kind
            ));
        }
    }
    if t.actions != d.actions {
        return Some(format!(
            "action list differs: program declares {:?}, design has {:?}",
            t.actions, d.actions
        ));
    }
    let want_default = match &t.default_action {
        Some((a, args)) => ActionCall::new(a.clone(), args.clone()),
        None => ActionCall::no_action(),
    };
    if want_default != d.default_action {
        return Some(format!(
            "default action differs: program wants `{}`, design has `{}`",
            want_default.action, d.default_action.action
        ));
    }
    if t.counters != d.with_counters {
        return Some("counter flag differs".to_string());
    }
    None
}

/// Round-trip failback check: applying `forward` then `backward` to `a`
/// must land back on a design behaviorally identical to `a`. See
/// [`crate::apply`].
pub fn check_roundtrip(
    a: &CompiledDesign,
    forward: &[ipsa_core::control::ControlMsg],
    backward: &[ipsa_core::control::ControlMsg],
) -> Vec<Diagnostic> {
    let b = crate::apply::apply_msgs(a, forward);
    let back = crate::apply::apply_msgs(&b, backward);
    crate::apply::roundtrip_diags(a, &back)
}

/// Map of table name → action count for oracle arity (exported for tests
/// and the witness generator).
pub fn table_arity(design: &CompiledDesign) -> BTreeMap<String, usize> {
    design
        .tables
        .iter()
        .map(|(n, t)| (n.clone(), t.actions.len()))
        .collect()
}
