//! The decision oracle: one shared source of truth for everything the
//! symbolic packet leaves open.
//!
//! A *world* is an assignment to decision keys: is header `h` present on
//! the wire, does comparison `t <op> u` hold, does table `T` miss or hit
//! with which action tag. Both evaluators run against the same oracle, so
//! a decision either side makes is seen identically by the other — the
//! enumeration aligns paths by *what was asked*, not by where in the
//! pipeline the question arose. Worlds are enumerated by depth-first
//! search over a trail of choice points.
//!
//! ## Why this is enough to validate stage merging
//!
//! `rp4c::merge` only fuses stages whose table guards the verifier proves
//! mutually exclusive, and that proof uses exactly three base facts:
//! `h.isValid()` vs `!h.isValid()`, `x == c1` vs `x == c2` (same operand,
//! different constants), and conjunction/negation structure over those.
//! The oracle reproduces each: validity is a single shared key queried by
//! both polarities, equalities against constants share an operand-indexed
//! binding (deciding `x == c1` true *forces* `x == c2` false), and
//! conjunctions short-circuit through the same sub-keys on both sides.
//! Hence a sound merge never manufactures a spurious divergence, while a
//! merge of genuinely overlapping guards yields a world where the merged
//! template runs one table and the source program runs two.

use std::collections::HashMap;

use crate::term::Term;

/// Comparison operators appearing in decision keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
}

/// A canonical question about the symbolic packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Is this header present on the wire? (true / false)
    Validity(String),
    /// Does `lhs == val` hold? (true / false; equalities on the same
    /// operand force each other's negation)
    EqConst {
        /// Non-constant operand.
        lhs: Term,
        /// Constant compared against.
        val: u128,
    },
    /// Does `lhs <op> rhs` hold? (true / false)
    Cmp {
        /// Operator.
        op: CmpKind,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// Table lookup outcome: choice 0 is a miss, choice `t` is a hit on
    /// action tag `t`.
    Table(String),
}

enum Frame {
    /// A real choice point.
    Choice { key: Key, idx: usize, n: usize },
    /// A decision implied by an earlier choice (no alternatives).
    Forced { key: Key },
    /// Bookkeeping: `lhs` was bound equal to a constant.
    Bind { lhs: Term },
}

/// The shared decision oracle. See the module docs.
pub struct Oracle {
    assigned: HashMap<Key, usize>,
    trail: Vec<Frame>,
    /// Operand → constant it is currently bound equal to.
    eq_true: HashMap<Term, u128>,
    /// Table → number of hit tags to enumerate (1 + max action count).
    arity: HashMap<String, usize>,
    /// Hard cap on decisions per world (guards runaway models).
    max_decisions: usize,
    /// Set when a world exceeded `max_decisions`.
    pub overflowed: bool,
}

impl Oracle {
    /// Creates an oracle enumerating `1 + tags` outcomes per table.
    pub fn new(arity: HashMap<String, usize>, max_decisions: usize) -> Self {
        Oracle {
            assigned: HashMap::new(),
            trail: Vec::new(),
            eq_true: HashMap::new(),
            arity,
            max_decisions,
            overflowed: false,
        }
    }

    fn choose(&mut self, key: Key, n: usize) -> usize {
        if let Some(&c) = self.assigned.get(&key) {
            return c;
        }
        if self.trail.len() >= self.max_decisions {
            self.overflowed = true;
            // Deterministic fallback keeps both sides consistent even past
            // the budget; the checker reports RP4205 and stops.
            return 0;
        }
        self.assigned.insert(key.clone(), 0);
        self.trail.push(Frame::Choice { key, idx: 0, n });
        0
    }

    /// Is header `h` present on the wire in this world?
    pub fn validity(&mut self, header: &str) -> bool {
        self.choose(Key::Validity(header.to_string()), 2) == 0
    }

    /// Does `lhs == val` hold in this world? Constants fold before this is
    /// called. Deciding `x == c` true forces `x == c'` false for `c' != c`.
    pub fn eq_const(&mut self, lhs: Term, val: u128) -> bool {
        let key = Key::EqConst {
            lhs: lhs.clone(),
            val,
        };
        if let Some(&c) = self.assigned.get(&key) {
            return c == 0;
        }
        if let Some(&bound) = self.eq_true.get(&lhs) {
            if bound != val {
                // Implied: lhs is already equal to a different constant.
                self.assigned.insert(key.clone(), 1);
                self.trail.push(Frame::Forced { key });
                return false;
            }
        }
        let c = self.choose(key, 2);
        if c == 0 && !self.eq_true.contains_key(&lhs) {
            self.eq_true.insert(lhs.clone(), val);
            self.trail.push(Frame::Bind { lhs });
        }
        c == 0
    }

    /// Does `lhs <op> rhs` hold in this world?
    pub fn cmp(&mut self, op: CmpKind, lhs: Term, rhs: Term) -> bool {
        self.choose(Key::Cmp { op, lhs, rhs }, 2) == 0
    }

    /// Table lookup outcome: `None` is a miss, `Some(tag)` a hit.
    pub fn table(&mut self, name: &str) -> Option<u32> {
        let n = 1 + self.arity.get(name).copied().unwrap_or(0);
        match self.choose(Key::Table(name.to_string()), n) {
            0 => None,
            t => Some(t as u32),
        }
    }

    /// Advances to the next unexplored world. Returns `false` when the
    /// space is exhausted. The memoized prefix below the flipped choice is
    /// kept so re-evaluation replays deterministically.
    pub fn next_world(&mut self) -> bool {
        self.overflowed = false;
        while let Some(frame) = self.trail.pop() {
            match frame {
                Frame::Bind { lhs } => {
                    self.eq_true.remove(&lhs);
                }
                Frame::Forced { key } => {
                    self.assigned.remove(&key);
                }
                Frame::Choice { key, idx, n } => {
                    if idx + 1 < n {
                        let idx = idx + 1;
                        self.assigned.insert(key.clone(), idx);
                        // Flipping an equality from true to false: the Bind
                        // frame above it was already popped.
                        self.trail.push(Frame::Choice { key, idx, n });
                        return true;
                    }
                    self.assigned.remove(&key);
                }
            }
        }
        false
    }

    /// Human-readable summary of the current world's decisions, for
    /// diagnostics.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for frame in &self.trail {
            let (key, idx) = match frame {
                Frame::Choice { key, idx, .. } => (key, *idx),
                Frame::Forced { key } => (key, *self.assigned.get(key).unwrap_or(&0)),
                Frame::Bind { .. } => continue,
            };
            parts.push(match key {
                Key::Validity(h) => {
                    format!("{h} {}", if idx == 0 { "valid" } else { "absent" })
                }
                Key::EqConst { lhs, val } => {
                    format!("{lhs} == {val:#x} {}", if idx == 0 { "✓" } else { "✗" })
                }
                Key::Cmp { op, lhs, rhs } => {
                    format!("{lhs} {op:?} {rhs} {}", if idx == 0 { "✓" } else { "✗" })
                }
                Key::Table(t) => {
                    if idx == 0 {
                        format!("{t} miss")
                    } else {
                        format!("{t} hit#{idx}")
                    }
                }
            });
        }
        parts.join(", ")
    }

    /// The current world's raw decisions (for witness concretization).
    pub fn decisions(&self) -> Vec<(Key, usize)> {
        self.trail
            .iter()
            .filter_map(|f| match f {
                Frame::Choice { key, idx, .. } => Some((key.clone(), *idx)),
                Frame::Forced { key } => Some((key.clone(), *self.assigned.get(key)?)),
                Frame::Bind { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(n: &str) -> Term {
        Term::Field("h".into(), n.into())
    }

    #[test]
    fn enumerates_all_worlds() {
        let mut o = Oracle::new(HashMap::from([("t".to_string(), 2)]), 64);
        let mut seen = Vec::new();
        loop {
            let v = o.validity("eth");
            let t = if v { o.table("t") } else { None };
            seen.push((v, t));
            if !o.next_world() {
                break;
            }
        }
        // eth valid × {miss, tag1, tag2} + eth absent.
        assert_eq!(
            seen,
            vec![
                (true, None),
                (true, Some(1)),
                (true, Some(2)),
                (false, None)
            ]
        );
    }

    #[test]
    fn eq_const_forces_exclusion() {
        let mut o = Oracle::new(HashMap::new(), 64);
        let mut worlds = Vec::new();
        loop {
            let a = o.eq_const(term("x"), 1);
            let b = o.eq_const(term("x"), 2);
            worlds.push((a, b));
            if !o.next_world() {
                break;
            }
        }
        // (true, true) is never generated.
        assert_eq!(worlds, vec![(true, false), (false, true), (false, false)]);
    }

    #[test]
    fn memoized_within_world() {
        let mut o = Oracle::new(HashMap::new(), 64);
        let a = o.validity("eth");
        let b = o.validity("eth");
        assert_eq!(a, b);
    }
}
