//! Update-plan validation over the shipped incremental scripts: after each
//! in-situ update, the stages of functions the update does not touch must
//! behave identically (seam b), and the failback diff pair must round-trip
//! the design to an exact identity (seam c).

use rp4_equiv::{check_design_design, check_roundtrip, EquivOptions};
use rp4_lang::{Program, Severity};
use rp4c::{design_diff, full_compile, incremental_compile, CompilerTarget, UpdateCmd};

const BASE: &str = include_str!("../../../programs/base.rp4");
const ECMP: &str = include_str!("../../../programs/ecmp.rp4");
const SRV6: &str = include_str!("../../../programs/srv6.rp4");
const FLOWPROBE: &str = include_str!("../../../programs/flowprobe.rp4");

fn snippet(src: &str) -> Program {
    rp4_lang::parse(src).expect("snippet parses")
}

fn link(from: &str, to: &str) -> UpdateCmd {
    UpdateCmd::AddLink {
        from: from.into(),
        to: to.into(),
    }
}

fn unlink(from: &str, to: &str) -> UpdateCmd {
    UpdateCmd::DelLink {
        from: from.into(),
        to: to.into(),
    }
}

/// The three shipped update scripts, as structural command batches.
fn scripts() -> Vec<(&'static str, Vec<UpdateCmd>)> {
    vec![
        (
            "ecmp",
            vec![
                UpdateCmd::Load {
                    snippet: snippet(ECMP),
                    func: "ecmp".into(),
                },
                link("ipv6_host", "ecmp"),
                link("ecmp", "dmac"),
                unlink("ipv6_host", "nexthop"),
                unlink("nexthop", "dmac"),
            ],
        ),
        (
            "srv6",
            vec![
                UpdateCmd::Load {
                    snippet: snippet(SRV6),
                    func: "srv6".into(),
                },
                link("fwd_mode", "srv6_end_s"),
                link("srv6_end_s", "srv6_transit_s"),
                link("srv6_transit_s", "ipv4_lpm"),
                unlink("fwd_mode", "ipv4_lpm"),
                UpdateCmd::LinkHeader {
                    pre: "ipv6".into(),
                    next: "srh".into(),
                    tag: 43,
                },
                UpdateCmd::LinkHeader {
                    pre: "srh".into(),
                    next: "ipv6".into(),
                    tag: 41,
                },
                UpdateCmd::LinkHeader {
                    pre: "srh".into(),
                    next: "ipv4".into(),
                    tag: 4,
                },
                UpdateCmd::LinkHeader {
                    pre: "srh".into(),
                    next: "tcp".into(),
                    tag: 6,
                },
                UpdateCmd::LinkHeader {
                    pre: "srh".into(),
                    next: "udp".into(),
                    tag: 17,
                },
            ],
        ),
        (
            "flowprobe",
            vec![
                UpdateCmd::Load {
                    snippet: snippet(FLOWPROBE),
                    func: "probe".into(),
                },
                link("bd_vrf", "flow_probe_s"),
                link("flow_probe_s", "fwd_mode"),
                unlink("bd_vrf", "fwd_mode"),
            ],
        ),
    ]
}

fn errors(diags: &[rp4_lang::Diagnostic]) -> Vec<String> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{}[{}]: {}", d.severity, d.code, d.message))
        .collect()
}

/// Untouched functions behave identically across every shipped update.
#[test]
fn updates_preserve_untouched_functions() {
    let base_prog = rp4_lang::parse(BASE).unwrap();
    let target = CompilerTarget::ipbm();
    let base = full_compile(&base_prog, &target).unwrap();
    for (name, cmds) in scripts() {
        let plan = incremental_compile(
            &base.design,
            &base.program,
            &cmds,
            &target,
            rp4c::LayoutAlgo::Dp,
        )
        .unwrap_or_else(|e| panic!("{name}: incremental compile failed: {e:?}"));
        let diags = check_design_design(&base.design, &plan.design, &EquivOptions::default());
        let errs = errors(&diags);
        assert!(errs.is_empty(), "{name}: update not equivalent:\n{errs:#?}");
    }
}

/// `diff(A→B)` then `diff(B→A)` provably restores the original design.
#[test]
fn failback_round_trips_to_identity() {
    let base_prog = rp4_lang::parse(BASE).unwrap();
    let target = CompilerTarget::ipbm();
    let base = full_compile(&base_prog, &target).unwrap();
    for (name, cmds) in scripts() {
        let plan = incremental_compile(
            &base.design,
            &base.program,
            &cmds,
            &target,
            rp4c::LayoutAlgo::Dp,
        )
        .unwrap();
        let forward = design_diff(&base.design, &plan.design);
        let backward = design_diff(&plan.design, &base.design);
        let diags = check_roundtrip(&base.design, &forward, &backward);
        let errs = errors(&diags);
        assert!(errs.is_empty(), "{name}: failback not identity:\n{errs:#?}");
    }
}

/// A no-op diff is an empty plan and trivially round-trips.
#[test]
fn identity_diff_round_trips() {
    let base_prog = rp4_lang::parse(BASE).unwrap();
    let target = CompilerTarget::ipbm();
    let base = full_compile(&base_prog, &target).unwrap();
    let fwd = design_diff(&base.design, &base.design);
    assert!(fwd.is_empty());
    let diags = check_roundtrip(&base.design, &fwd, &fwd);
    assert!(errors(&diags).is_empty());
}
