//! Negative validation: every seeded miscompile in `programs/bad/` must be
//! rejected with the expected spanned `RP42xx` diagnostic, and the same
//! program without the fault must validate cleanly. This is what certifies
//! that the green runs in `programs.rs` mean something.

use rp4_equiv::{check_program_design, codes, EquivOptions};
use rp4_lang::Severity;
use rp4c::FaultInjection;

const WRONG_ALU: &str = include_str!("../../../programs/bad/rp4201_wrong_alu.rp4");
const DROPPED_FORWARD: &str = include_str!("../../../programs/bad/rp4202_dropped_forward.rp4");
const DROPPED_REMOVE: &str = include_str!("../../../programs/bad/rp4203_dropped_remove.rp4");
const RETAGGED_TABLE: &str = include_str!("../../../programs/bad/rp4204_retagged_table.rp4");

/// Compiles `src` twice — faulted and clean — and asserts the faulted
/// design is rejected with `code` (spanned, subject matching
/// `subject_frag`) while the clean design validates with zero diagnostics.
fn seed(src: &str, faults: FaultInjection, code: &str, subject_frag: &str) {
    let prog = rp4_lang::parse(src).expect("fixture parses");
    let env = rp4_lang::check(&prog, None).expect("fixture checks");
    let target = rp4c::CompilerTarget::ipbm();

    let clean = rp4c::full_compile(&prog, &target).expect("fixture compiles");
    let clean_diags = check_program_design(&prog, &env, &clean.design, &EquivOptions::default());
    assert!(
        clean_diags.is_empty(),
        "unfaulted fixture must validate cleanly, got:\n{}",
        rp4_lang::render_all(&clean_diags, Some(src), "fixture")
    );

    let bad = rp4c::full_compile_with_faults(&prog, &target, &faults).expect("faulted compiles");
    let diags = check_program_design(&prog, &env, &bad.design, &EquivOptions::default());
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.code == code && d.severity == Severity::Error)
        .collect();
    assert!(
        !hits.is_empty(),
        "expected {code} for the seeded fault, got:\n{}",
        rp4_lang::render_all(&diags, Some(src), "fixture")
    );
    assert!(
        hits.iter().any(|d| d.message.contains(subject_frag)),
        "no {code} diagnostic names `{subject_frag}`:\n{}",
        rp4_lang::render_all(&diags, Some(src), "fixture")
    );
    assert!(
        hits.iter().any(|d| d.span.is_some()),
        "expected at least one spanned {code} diagnostic"
    );
    // The witness cross-check must never conclude the validator itself
    // mispredicted — every concretized packet agrees with the ipbm run.
    for d in &diags {
        for note in &d.notes {
            assert!(
                !note.contains("mispredicted"),
                "witness disagreed with the equivalence model: {note}"
            );
        }
    }
}

#[test]
fn wrong_alu_is_rejected_as_rp4201() {
    seed(
        WRONG_ALU,
        FaultInjection {
            swap_alu_in: Some("bump_ttl".into()),
            ..Default::default()
        },
        codes::WRITE_DIVERGENCE,
        "ipv4.ttl",
    );
}

#[test]
fn dropped_forward_is_rejected_as_rp4202() {
    seed(
        DROPPED_FORWARD,
        FaultInjection {
            drop_last_primitive_in: Some("to_port".into()),
            ..Default::default()
        },
        codes::OUTCOME_DIVERGENCE,
        "outcome",
    );
}

#[test]
fn dropped_remove_is_rejected_as_rp4203() {
    seed(
        DROPPED_REMOVE,
        FaultInjection {
            drop_last_primitive_in: Some("decap".into()),
            ..Default::default()
        },
        codes::VALIDITY_DIVERGENCE,
        "udp",
    );
}

#[test]
fn retagged_table_is_rejected_as_rp4204() {
    seed(
        RETAGGED_TABLE,
        FaultInjection {
            retag_table: Some("acl".into()),
            ..Default::default()
        },
        codes::STRUCT_MISMATCH,
        "acl",
    );
}
