//! Translation validation over every shipped program: the checked AST and
//! the compiled design must agree in every symbolic world, and every
//! divergence the checker *would* report is itself cross-checked against a
//! real `ipbm` device — so a green run here certifies both the compiler
//! and the validator's own model.

use rp4_equiv::{check_program_design, EquivOptions};
use rp4_lang::Program;

const BASE: &str = include_str!("../../../programs/base.rp4");
const ECMP: &str = include_str!("../../../programs/ecmp.rp4");
const SRV6: &str = include_str!("../../../programs/srv6.rp4");
const FLOWPROBE: &str = include_str!("../../../programs/flowprobe.rp4");

/// Parses base, optionally absorbs a snippet, claims orphan stages, checks,
/// compiles, and runs the equivalence checker end to end.
fn prove(snippet: Option<(&str, &str)>) {
    let mut prog: Program = rp4_lang::parse(BASE).expect("base parses");
    if let Some((name, src)) = snippet {
        let snip = rp4_lang::parse(src).expect("snippet parses");
        prog.absorb(&snip);
        prog.claim_unowned_stages(name);
    }
    let env = rp4_lang::check(&prog, None).expect("program checks");
    let target = rp4c::CompilerTarget::ipbm();
    let compilation = rp4c::full_compile(&prog, &target).expect("compiles");
    let diags = check_program_design(&prog, &env, &compilation.design, &EquivOptions::default());
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == rp4_lang::Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "expected equivalence, got divergences:\n{}",
        rp4_lang::render_all(&diags, Some(snippet.map_or(BASE, |(_, s)| s)), "program")
    );
}

#[test]
fn base_is_equivalent() {
    prove(None);
}

#[test]
fn base_with_ecmp_is_equivalent() {
    prove(Some(("ecmp", ECMP)));
}

#[test]
fn base_with_srv6_is_equivalent() {
    prove(Some(("srv6", SRV6)));
}

#[test]
fn base_with_flowprobe_is_equivalent() {
    prove(Some(("flowprobe", FLOWPROBE)));
}
