//! Negative validation of the RP44xx block: every seeded fixture in
//! `programs/bad/` must produce its expected spanned diagnostic, RP4403
//! must deduplicate against the dataflow block, and the RP4404 plan gate
//! must block the WCET-regressing update unless `force` is set.

use ipsa_controller::{ControllerError, Rp4Flow};
use rp4_cover::{check_plan_wcet, codes, cover_design, CoverOptions};
use rp4_lang::Severity;

const PATH_EXPLOSION: &str = include_str!("../../../programs/bad/rp4401_path_explosion.rp4");
const UNCOVERABLE: &str = include_str!("../../../programs/bad/rp4402_uncoverable_path.rp4");
const DEAD_ACTION: &str = include_str!("../../../programs/bad/rp4403_dead_action.rp4");
const WCET_BASE: &str = include_str!("../../../programs/bad/rp4404_wcet_base.rp4");
const WCET_HEAVY: &str = include_str!("../../../programs/bad/rp4404_wcet_heavy.rp4");
const WCET_SCRIPT: &str = include_str!("../../../programs/bad/rp4404_wcet.script");

fn cover(src: &str, opts: &CoverOptions) -> rp4_cover::Coverage {
    let prog = rp4_lang::parse(src).expect("fixture parses");
    rp4_lang::check(&prog, None).expect("fixture checks");
    let target = rp4c::CompilerTarget::ipbm();
    let comp = rp4c::full_compile(&prog, &target).expect("fixture compiles");
    let facts = rp4_dfa::design_facts(&comp.design);
    cover_design(&comp.design, Some(&facts), Some(&comp.program), opts)
}

fn assert_spanned_warning(cov: &rp4_cover::Coverage, code: &str, subject_frag: &str) {
    let hits: Vec<_> = cov.diags.iter().filter(|d| d.code == code).collect();
    assert!(
        !hits.is_empty(),
        "expected {code}, got: {:?}",
        cov.diags.iter().map(|d| &d.code).collect::<Vec<_>>()
    );
    assert!(
        hits.iter().any(|d| d.message.contains(subject_frag)),
        "no {code} diagnostic mentions `{subject_frag}`"
    );
    assert!(
        hits.iter().any(|d| d.span.is_some()),
        "expected at least one spanned {code} diagnostic"
    );
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn path_explosion_is_reported_as_rp4401() {
    // The fixture has 64 feasible paths; a 16-world budget cannot cover
    // them.
    let opts = CoverOptions {
        max_paths: 16,
        ..CoverOptions::default()
    };
    let cov = cover(PATH_EXPLOSION, &opts);
    assert!(cov.overflowed);
    assert!(!cov.fully_covered());
    assert_spanned_warning(&cov, codes::PATH_EXPLOSION, "budget");
    // With the default budget the same program covers fully — the
    // diagnostic is about enumeration cost, not the program.
    let full = cover(PATH_EXPLOSION, &CoverOptions::default());
    assert!(full.fully_covered(), "fixture covers under default budget");
    assert!(full.diags.is_empty());
}

#[test]
fn uncoverable_path_is_reported_as_rp4402() {
    let cov = cover(UNCOVERABLE, &CoverOptions::default());
    assert!(!cov.overflowed);
    assert!(cov.feasible() > cov.covered(), "some path lacks a witness");
    assert_spanned_warning(&cov, codes::UNCOVERABLE_PATH, "non-constant");
}

#[test]
fn dead_action_is_reported_as_rp4403() {
    let cov = cover(DEAD_ACTION, &CoverOptions::default());
    assert!(cov.fully_covered(), "the live paths all concretize");
    assert_spanned_warning(&cov, codes::DEAD_ACTION, "`punt`");
    assert!(
        cov.diags.iter().any(|d| d.message.contains("`shadow`")),
        "RP4403 names the owning table for dedup against RP4304"
    );
}

#[test]
fn dead_action_dedups_against_unreachable_arm() {
    // The same fixture fires RP4304 in the dataflow block (the shadowed
    // arm); after `merge_findings` only the dataflow finding survives.
    let prog = rp4_lang::parse(DEAD_ACTION).expect("fixture parses");
    let env = rp4_lang::check(&prog, None).expect("fixture checks");
    let dfa = rp4_dfa::analyze_program(&prog, &env);
    assert!(dfa.iter().any(|d| d.code == "RP4304"));
    let cov = cover(DEAD_ACTION, &CoverOptions::default());
    let merged = rp4_dfa::merge_findings(&dfa, cov.diags.clone());
    assert!(
        !merged.iter().any(|d| d.code == codes::DEAD_ACTION),
        "RP4403 must be deduplicated against RP4304: {merged:?}"
    );
}

fn wcet_flow() -> (Rp4Flow<ipbm::IpbmSwitch>, rp4c::UpdatePlan) {
    let prog = rp4_lang::parse(WCET_BASE).expect("base parses");
    let target = rp4c::CompilerTarget::ipbm();
    let comp = rp4c::full_compile(&prog, &target).expect("base compiles");
    let device = ipbm::IpbmSwitch::new(ipbm::IpbmConfig::default());
    let (flow, _) = Rp4Flow::install(device, comp, target).expect("base installs");
    let sources = |name: &str| -> Option<String> {
        (name == "rp4404_wcet_heavy.rp4").then(|| WCET_HEAVY.to_string())
    };
    let plan = flow
        .plan_script(WCET_SCRIPT, &sources)
        .expect("plan compiles");
    (flow, plan)
}

#[test]
fn wcet_regressing_plan_is_rejected_as_rp4404() {
    let (mut flow, plan) = wcet_flow();
    // Sanity: the plan really regresses WCET past the slack.
    let diags = check_plan_wcet(
        &flow.design,
        &plan.design,
        Some(&plan.program),
        &CoverOptions::default(),
    );
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::PLAN_WCET_REGRESSION && d.severity == Severity::Error),
        "expected RP4404, got {diags:?}"
    );
    assert!(diags.iter().any(|d| d.span.is_some()));
    // The gate blocks apply_plan...
    match flow.apply_plan(plan) {
        Err(ControllerError::Verify(v)) => {
            assert!(
                v.iter().any(|d| d.code == codes::PLAN_WCET_REGRESSION),
                "gate must report RP4404: {v:?}"
            );
        }
        other => panic!("expected Verify(RP4404) rejection, got {other:?}"),
    }
}

#[test]
fn wcet_regressing_plan_applies_with_force() {
    let (mut flow, plan) = wcet_flow();
    flow.force = true;
    flow.apply_plan(plan).expect("--force overrides RP4404");
    // The update really took: the design now carries the heavy chain.
    assert!(flow.design.tables.contains_key("h5"));
}

#[test]
fn proportionate_plan_passes_the_wcet_gate() {
    // The bundled ECMP load grows the pipeline moderately; it must stay
    // within the slack (no false positive on the paper's Fig. 5 flow).
    let prog = rp4_lang::parse(ipsa_controller::programs::BASE_RP4).unwrap();
    let target = rp4c::CompilerTarget::ipbm();
    let comp = rp4c::full_compile(&prog, &target).unwrap();
    let device = ipbm::IpbmSwitch::new(ipbm::IpbmConfig::default());
    let (mut flow, _) = Rp4Flow::install(device, comp, target).unwrap();
    let plan = flow
        .plan_script(
            ipsa_controller::programs::ECMP_SCRIPT,
            &ipsa_controller::programs::bundled_sources,
        )
        .unwrap();
    let diags = check_plan_wcet(
        &flow.design,
        &plan.design,
        Some(&plan.program),
        &CoverOptions::default(),
    );
    assert!(diags.is_empty(), "ECMP load must pass the gate: {diags:?}");
    flow.apply_plan(plan).expect("ECMP plan applies");
}
