//! Coverage enumeration over the bundled programs: every bundled design
//! must reach 100% feasible-path coverage, and the WCET bound must be
//! finite and positive.

use rp4_cover::{corpus_json, cover_design, CoverOptions};

fn cover(src: &str) -> rp4_cover::Coverage {
    let prog = rp4_lang::parse(src).expect("bundled program parses");
    let target = rp4c::CompilerTarget::ipbm();
    let comp = rp4c::full_compile(&prog, &target).expect("bundled program compiles");
    let facts = rp4_dfa::design_facts(&comp.design);
    cover_design(
        &comp.design,
        Some(&facts),
        Some(&comp.program),
        &CoverOptions::default(),
    )
}

#[test]
fn base_design_fully_covered() {
    let cov = cover(ipsa_controller::programs::BASE_RP4);
    assert!(!cov.overflowed, "base design must enumerate within budget");
    assert!(cov.feasible() > 0, "base design has feasible paths");
    assert!(
        cov.fully_covered(),
        "base design must be fully covered; uncoverable: {:?}",
        cov.paths
            .iter()
            .filter_map(|p| p.skip.as_ref().map(|s| s.reason.clone()))
            .collect::<Vec<_>>()
    );
    assert!(cov.wcet_ns > 0.0);
    assert!(
        cov.diags.is_empty(),
        "bundled base design is diagnostic-free: {:?}",
        cov.diags
    );
}

#[test]
fn corpus_json_roundtrips() {
    let cov = cover(ipsa_controller::programs::BASE_RP4);
    let json = corpus_json(&cov);
    let v: serde_json::Value = serde_json::from_str(&json).expect("corpus JSON parses");
    assert_eq!(
        v["feasible_paths"].as_u128().unwrap() as usize,
        cov.feasible()
    );
    assert_eq!(
        v["covered_paths"].as_u128().unwrap() as usize,
        cov.covered()
    );
    let paths = v["paths"].as_seq().unwrap();
    assert_eq!(paths.len(), cov.feasible());
    for p in paths {
        assert!(p["covered"].as_bool().unwrap());
        let hex = p["packet_hex"].as_str().unwrap();
        assert!(!hex.is_empty() && hex.len() % 2 == 0);
    }
}

#[test]
fn wcet_grows_when_function_loads() {
    // Loading ECMP at runtime deepens the pipeline: the WCET bound must
    // not shrink across the in-situ update.
    let prog = rp4_lang::parse(ipsa_controller::programs::BASE_RP4).unwrap();
    let target = rp4c::CompilerTarget::ipbm();
    let comp = rp4c::full_compile(&prog, &target).unwrap();
    let device = ipbm::IpbmSwitch::new(ipbm::IpbmConfig::default());
    let (mut flow, _) = ipsa_controller::Rp4Flow::install(device, comp, target).unwrap();
    let base = cover_design(&flow.design, None, None, &CoverOptions::default());
    flow.run_script(
        ipsa_controller::programs::ECMP_SCRIPT,
        &ipsa_controller::programs::bundled_sources,
    )
    .unwrap();
    let ecmp = cover_design(&flow.design, None, None, &CoverOptions::default());
    assert!(!base.overflowed && !ecmp.overflowed);
    assert!(
        ecmp.wcet_ns >= base.wcet_ns,
        "ecmp WCET {} must be >= base WCET {}",
        ecmp.wcet_ns,
        base.wcet_ns
    );
}
