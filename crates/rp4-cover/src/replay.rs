//! Witness-corpus replay as a library call.
//!
//! `bench/tests/coverage.rs` proved the corpus claim — "this packet with
//! these entries drives the pipeline down path N" — by replaying every
//! witness against the real runtimes, but the replay loop lived inside the
//! test. The fleet controller needs the same loop as a first-class
//! operation: the canary phase of a rolling in-situ update replays the
//! corpus through the freshly-updated device and compares against oracle
//! outputs computed on a local reference switch *before* any traffic is
//! trusted to the new design. This module is that loop, generic over
//! [`Device`], so interpreter references, compiled switches, sharded
//! runtimes, and remote fleet agents all replay identically.

use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::error::CoreError;
use ipsa_netpkt::packet::Packet;
use rp4_equiv::PathWitness;

use crate::Coverage;

/// How the device under replay drains its traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// [`Device::run`] — interpreter reference semantics (the oracle side).
    Run,
    /// [`Device::run_batch`] — the compiled/batched production path.
    RunBatch,
}

/// Inverse of a witness's entry setup: one `DelEntry` per `AddEntry`, so
/// the table state a witness installed is removed before the next witness
/// replays (witnesses are independent; their entries must not compose).
pub fn teardown_of(entries: &[ControlMsg]) -> Vec<ControlMsg> {
    entries
        .iter()
        .filter_map(|m| match m {
            ControlMsg::AddEntry { table, entry } => Some(ControlMsg::DelEntry {
                table: table.clone(),
                key: entry.key.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// Replays one witness through `dev`: applies its entries, injects the
/// packet the required number of times, drains the device in `mode`, then
/// tears the entries back down. Returns every packet the device emitted,
/// in emission order — the caller compares these bit-identically against
/// an oracle's outputs for the same witness.
pub fn replay_witness<D: Device>(
    dev: &mut D,
    w: &PathWitness,
    mode: ReplayMode,
) -> Result<Vec<Packet>, CoreError> {
    if !w.entries.is_empty() {
        dev.apply(&w.entries)?;
    }
    for _ in 0..w.injections {
        dev.inject(w.packet.clone());
    }
    let out = match mode {
        ReplayMode::Run => dev.run(),
        ReplayMode::RunBatch => dev.run_batch(),
    };
    let teardown = teardown_of(&w.entries);
    if !teardown.is_empty() {
        dev.apply(&teardown)?;
    }
    Ok(out)
}

/// Replays a whole coverage corpus through `dev`, one witness at a time,
/// returning the per-path outputs in path order. Paths without a witness
/// (skipped as infeasible/uncoverable) yield an empty output slot, so the
/// result indexes line up with [`Coverage::paths`] and two corpus replays
/// compare element-wise.
pub fn replay_corpus<D: Device>(
    dev: &mut D,
    cov: &Coverage,
    mode: ReplayMode,
) -> Result<Vec<Vec<Packet>>, CoreError> {
    let mut outputs = Vec::with_capacity(cov.paths.len());
    for path in &cov.paths {
        match &path.witness {
            Some(w) => outputs.push(replay_witness(dev, w, mode)?),
            None => outputs.push(Vec::new()),
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cover_design, CoverOptions};
    use ipbm::{IpbmConfig, IpbmSwitch};
    use rp4c::{full_compile, CompilerTarget};

    const PROG: &str = r#"
        headers {
            header ethernet {
                bit<48> dst_addr; bit<48> src_addr; bit<16> ethertype;
                implicit parser(ethertype) { 0x0800: ipv4; }
            }
            header ipv4 {
                bit<4> version; bit<4> ihl; bit<6> dscp; bit<2> ecn;
                bit<16> total_len; bit<16> identification; bit<3> flags;
                bit<13> frag_offset; bit<8> ttl; bit<8> protocol;
                bit<16> hdr_checksum; bit<32> src_addr; bit<32> dst_addr;
            }
        }
        structs { struct m_t { bit<16> nh; } meta; }
        action fwd(bit<16> port) { forward(port); }
        table fib { key = { ipv4.dst_addr: lpm; } actions = { fwd; } size = 16; }
        control rP4_Ingress {
            stage fib_s {
                parser { ipv4; }
                matcher { if (ipv4.isValid()) fib.apply(); else; }
                executor { 1: fwd; default: NoAction; }
            }
        }
        user_funcs { func base { fib_s } ingress_entry: fib_s; }
    "#;

    fn device() -> (IpbmSwitch, Coverage) {
        let prog = rp4_lang::parse(PROG).expect("program parses");
        let c = full_compile(&prog, &CompilerTarget::ipbm()).expect("compiles");
        let mut sw = IpbmSwitch::new(IpbmConfig::default());
        sw.install(&c.design).expect("installs");
        let cov = cover_design(&c.design, None, None, &CoverOptions::default());
        (sw, cov)
    }

    #[test]
    fn corpus_replay_matches_itself_across_modes() {
        let (mut interp, cov) = device();
        let (mut fast, _) = device();
        assert!(cov.fully_covered());
        assert!(cov.feasible() > 0);
        let a = replay_corpus(&mut interp, &cov, ReplayMode::Run).expect("replay runs");
        let b = replay_corpus(&mut fast, &cov, ReplayMode::RunBatch).expect("replay runs");
        assert_eq!(a, b, "interpreter and batched replay must agree");
        assert!(
            a.iter().any(|out| !out.is_empty()),
            "some path must emit traffic"
        );
    }

    #[test]
    fn replay_tears_its_entries_back_down() {
        let (mut sw, cov) = device();
        let with_entries = cov
            .paths
            .iter()
            .find_map(|p| p.witness.as_ref().filter(|w| !w.entries.is_empty()))
            .expect("a table-hit path exists");
        let before = sw.sm.table("fib").expect("fib exists").table.len();
        replay_witness(&mut sw, with_entries, ReplayMode::Run).expect("replays");
        let after = sw.sm.table("fib").expect("fib exists").table.len();
        assert_eq!(before, after, "witness entries must not leak");
    }
}
