//! rp4-cover — symbolic path enumeration with witness-corpus coverage and
//! static per-packet cost bounds.
//!
//! The differential suites sample execution paths randomly; this crate
//! closes the gap by *enumerating* them. Every feasible execution path
//! through a checked pipeline — parser branch choices, per-table hit/miss
//! × action selection, guard outcomes — is one world of `rp4-equiv`'s
//! shared decision [`Oracle`], and each world is:
//!
//! 1. **pruned** when it is provably infeasible — its constraints are
//!    mutually contradictory, its validity assignment contradicts the
//!    parser structure, or it runs through a matcher arm `rp4-dfa`'s
//!    [`ProgramFacts`] proved unreachable;
//! 2. **concretized** into a witness packet plus the minimal table-entry
//!    setup that drives a real device down the same path (the *coverage
//!    corpus* — also the golden-compare oracle the native codegen backend
//!    will diff against, ROADMAP item 1);
//! 3. **priced** by [`PacketCostModel`] into a static per-path cost bound,
//!    whose maximum is the pipeline's worst-case per-packet bound (WCET).
//!
//! Diagnostics (the RP44xx block, rendered rustc-style like every other
//! block): RP4401 path explosion over budget, RP4402 feasible path with no
//! concretizable witness, RP4403 statically-dead table action, RP4404 plan
//! WCET regression (the [`check_plan_wcet`] gate `apply_plan` runs unless
//! `--force`).
//!
//! [`ProgramFacts`]: ipsa_core::facts::ProgramFacts

use std::collections::{BTreeSet, HashMap};

use ipsa_core::facts::ProgramFacts;
use ipsa_core::template::CompiledDesign;
use ipsa_core::timing::{PacketCostModel, PathWork};
use rp4_equiv::oracle::Key;
use rp4_equiv::witness::SkipKind;
use rp4_equiv::{concretize_world, eval_design, Oracle, Outcome, PathWitness, Skip};
use rp4_lang::ast::Program;
use rp4_lang::{Diagnostic, ItemKind, Span};
use serde::Serialize;

pub mod replay;

pub use replay::{replay_corpus, replay_witness, ReplayMode};

/// Diagnostic codes of the coverage block.
pub mod codes {
    /// Path enumeration exhausted its world/decision budget before full
    /// coverage (warning).
    pub const PATH_EXPLOSION: &str = "RP4401";
    /// A feasible path has no concretizable witness packet (warning).
    pub const UNCOVERABLE_PATH: &str = "RP4402";
    /// A table action no feasible path ever selects (warning).
    pub const DEAD_ACTION: &str = "RP4403";
    /// An update plan regresses the static worst-case per-packet cost
    /// bound beyond the allowed slack (error).
    pub const PLAN_WCET_REGRESSION: &str = "RP4404";
}

/// Upper bound on RP4402 diagnostics per run (uncoverable paths repeat the
/// same builder gap; the first few are the actionable ones). The counts in
/// [`Coverage`] still include every path.
const MAX_UNCOVERABLE_DIAGS: usize = 8;

/// Tunables of the path enumerator.
#[derive(Debug, Clone)]
pub struct CoverOptions {
    /// Maximum worlds to enumerate before reporting RP4401.
    pub max_paths: usize,
    /// Maximum oracle decisions within one world.
    pub max_decisions: usize,
    /// Per-packet cost model pricing each path.
    pub cost: PacketCostModel,
    /// RP4404 fires when the post-plan WCET exceeds the pre-plan WCET by
    /// more than this factor. Loading a new function legitimately deepens
    /// the pipeline, so the gate only blocks *disproportionate* growth.
    pub wcet_slack: f64,
}

impl Default for CoverOptions {
    fn default() -> Self {
        CoverOptions {
            max_paths: 65_536,
            max_decisions: 96,
            cost: PacketCostModel::software(),
            wcet_slack: 4.0,
        }
    }
}

/// One feasible execution path: its condition, outcome, work, cost, and —
/// when concretization succeeded — its witness.
#[derive(Debug)]
pub struct PathReport {
    /// Dense index among feasible paths.
    pub index: usize,
    /// Human-readable path condition (the world's decisions).
    pub description: String,
    /// Terminal outcome, rendered.
    pub outcome: String,
    /// Work performed along the path.
    pub work: PathWork,
    /// Static cost bound of the path, ns.
    pub cost_ns: f64,
    /// The concretized witness; `None` when the path is uncoverable.
    pub witness: Option<PathWitness>,
    /// Why concretization was skipped (set exactly when `witness` is
    /// `None`).
    pub skip: Option<Skip>,
}

/// Result of one coverage run over a design.
#[derive(Debug, Default)]
pub struct Coverage {
    /// Every feasible path, covered or not.
    pub paths: Vec<PathReport>,
    /// Worlds pruned as provably infeasible (contradictory constraints,
    /// parser-structure violations, fact-proven unreachable arms).
    pub pruned_infeasible: usize,
    /// True when enumeration stopped on a budget (RP4401 was reported).
    pub overflowed: bool,
    /// Static worst-case per-packet cost bound: the maximum path cost, ns.
    pub wcet_ns: f64,
    /// RP4401–RP4403 findings.
    pub diags: Vec<Diagnostic>,
}

impl Coverage {
    /// Feasible paths with a concrete witness.
    pub fn covered(&self) -> usize {
        self.paths.iter().filter(|p| p.witness.is_some()).count()
    }

    /// All feasible paths.
    pub fn feasible(&self) -> usize {
        self.paths.len()
    }

    /// 100% feasible-path coverage: every feasible path has a witness and
    /// the enumeration ran to completion.
    pub fn fully_covered(&self) -> bool {
        !self.overflowed && self.covered() == self.feasible()
    }
}

fn outcome_str(o: &Outcome) -> String {
    match o {
        Outcome::Forwarded(port) => format!("forwarded to {port}"),
        Outcome::DroppedByAction => "dropped by an action".into(),
        Outcome::DroppedNoRoute => "dropped for lacking a route".into(),
        Outcome::RuntimeError(e) => format!("aborted: {e}"),
    }
}

/// Headers parsed along a world's path: validity keys decided "present".
fn parsed_headers(decisions: &[(Key, usize)]) -> usize {
    decisions
        .iter()
        .filter(|(k, idx)| matches!(k, Key::Validity(_)) && *idx == 0)
        .count()
}

/// Does the world run through a matcher arm the dataflow analysis proved
/// unreachable? Facts are per merged-slot (`stage_name` keyed), exactly as
/// the fast-path compiler consumes them.
fn fact_pruned(facts: Option<&ProgramFacts>, arms: &[(String, usize)]) -> bool {
    let Some(f) = facts else {
        return false;
    };
    arms.iter().any(|(stage, arm)| {
        f.slot(stage)
            .is_some_and(|sf| sf.unreachable_arms.contains(arm))
    })
}

/// Enumerates every execution path of `design`, prunes the infeasible
/// ones, concretizes a witness per feasible path, and prices each path.
///
/// `facts` (from `rp4_dfa::design_facts`) prunes worlds through proven
/// unreachable arms; `spans` (the checked source program, when available)
/// anchors the diagnostics to source items.
pub fn cover_design(
    design: &CompiledDesign,
    facts: Option<&ProgramFacts>,
    spans: Option<&Program>,
    opts: &CoverOptions,
) -> Coverage {
    let arity: HashMap<String, usize> = design
        .tables
        .iter()
        .map(|(n, t)| (n.clone(), t.actions.len()))
        .collect();
    let mut oracle = Oracle::new(arity, opts.max_decisions);
    let mut cov = Coverage::default();
    // (table, tag) pairs some feasible path selects — the complement is
    // RP4403.
    let mut selected: BTreeSet<(String, u32)> = BTreeSet::new();
    let mut worlds = 0usize;
    let fallback_span = |prog: &Program| -> Option<Span> {
        prog.ingress
            .first()
            .and_then(|st| prog.spans.get(ItemKind::Stage, &st.name))
    };

    loop {
        worlds += 1;
        let mut run = eval_design(design, &mut oracle, None);
        if oracle.overflowed {
            cov.overflowed = true;
            cov.diags.push(
                Diagnostic::warning(
                    codes::PATH_EXPLOSION,
                    format!(
                        "path enumeration over budget: a path needed more than {} decisions",
                        opts.max_decisions
                    ),
                )
                .with_span(spans.and_then(fallback_span))
                .with_note(
                    "paths beyond the budget are uncovered; raise the budget or simplify guards",
                ),
            );
            break;
        }
        let decisions = oracle.decisions();
        run.work.parsed_headers = parsed_headers(&decisions);

        if fact_pruned(facts, &run.arms) {
            cov.pruned_infeasible += 1;
        } else {
            let concretized = concretize_world(design, &decisions, &run.hits);
            if matches!(
                &concretized,
                Err(Skip {
                    kind: SkipKind::Infeasible,
                    ..
                })
            ) {
                cov.pruned_infeasible += 1;
            } else {
                // Feasible: its action selections are live even if no
                // witness exists for it.
                for h in &run.hits {
                    selected.insert((h.table.clone(), h.tag));
                }
                let cost_ns = opts.cost.path_cost_ns(&run.work);
                cov.wcet_ns = cov.wcet_ns.max(cost_ns);
                let (witness, skip) = match concretized {
                    Ok(w) => (Some(w), None),
                    Err(s) => (None, Some(s)),
                };
                if let Some(s) = &skip {
                    if cov.paths.iter().filter(|p| p.skip.is_some()).count() < MAX_UNCOVERABLE_DIAGS
                    {
                        cov.diags.push(
                            Diagnostic::warning(
                                codes::UNCOVERABLE_PATH,
                                format!("feasible path has no concretizable witness: {}", s.reason),
                            )
                            .with_span(spans.and_then(fallback_span))
                            .with_note(format!("in the world where {}", oracle.describe())),
                        );
                    }
                }
                cov.paths.push(PathReport {
                    index: cov.paths.len(),
                    description: oracle.describe(),
                    outcome: outcome_str(&run.outcome),
                    work: run.work,
                    cost_ns,
                    witness,
                    skip,
                });
            }
        }

        if worlds >= opts.max_paths {
            cov.overflowed = true;
            cov.diags.push(
                Diagnostic::warning(
                    codes::PATH_EXPLOSION,
                    format!(
                        "path enumeration over budget: stopped after {worlds} worlds (budget {})",
                        opts.max_paths
                    ),
                )
                .with_span(spans.and_then(fallback_span))
                .with_note(
                    "paths beyond the budget are uncovered; raise the budget or simplify guards",
                ),
            );
            break;
        }
        if !oracle.next_world() {
            break;
        }
    }

    // RP4403: actions no feasible path selects. Skipped when enumeration
    // overflowed — an action may be selected only on paths never visited.
    if !cov.overflowed {
        for (table, def) in &design.tables {
            for (i, action) in def.actions.iter().enumerate() {
                let tag = i as u32 + 1;
                if !selected.contains(&(table.clone(), tag)) {
                    cov.diags.push(
                        Diagnostic::warning(
                            codes::DEAD_ACTION,
                            format!(
                                "action `{action}` of table `{table}` is selected on no feasible path"
                            ),
                        )
                        .with_span(spans.and_then(|p| {
                            p.spans
                                .get(ItemKind::Action, action)
                                .or_else(|| p.spans.get(ItemKind::Table, table))
                        }))
                        .with_note(
                            "every world where the table could hit this action is pruned as infeasible or unreachable",
                        ),
                    );
                }
            }
        }
    }
    cov
}

/// RP4404: does `post` regress the static worst-case per-packet cost bound
/// of `pre` beyond the allowed slack? Mirrors `rp4_dfa::check_plan`
/// (RP4306): only *regressions* error, and `Rp4Flow::apply_plan` runs this
/// unless `--force` is set. `post_prog` (when available) anchors the span.
pub fn check_plan_wcet(
    pre: &CompiledDesign,
    post: &CompiledDesign,
    post_prog: Option<&Program>,
    opts: &CoverOptions,
) -> Vec<Diagnostic> {
    let pre_cov = cover_design(pre, None, None, opts);
    let post_cov = cover_design(post, None, None, opts);
    if pre_cov.overflowed || post_cov.overflowed {
        // An incomplete enumeration cannot prove a regression; the RP4401
        // warning already surfaced through `cover_design` callers.
        return Vec::new();
    }
    let (pre_wcet, post_wcet) = (pre_cov.wcet_ns, post_cov.wcet_ns);
    if pre_wcet > 0.0 && post_wcet > pre_wcet * opts.wcet_slack {
        let span = post_prog.and_then(|p| {
            p.ingress
                .first()
                .and_then(|st| p.spans.get(ItemKind::Stage, &st.name))
        });
        return vec![Diagnostic::error(
            codes::PLAN_WCET_REGRESSION,
            format!(
                "update plan regresses the static worst-case per-packet cost bound: \
                 {pre_wcet:.0} ns before, {post_wcet:.0} ns after (×{:.1}, allowed slack ×{:.1})",
                post_wcet / pre_wcet,
                opts.wcet_slack
            ),
        )
        .with_span(span)
        .with_note(
            "the longest feasible path through the updated pipeline does disproportionately more \
             work; split the update or set `force` to apply anyway",
        )];
    }
    Vec::new()
}

/// Serialized form of one corpus entry. Owned fields: the vendored serde
/// derive subset does not handle generic (lifetime) types.
#[derive(Debug, Serialize)]
struct CorpusEntry {
    index: usize,
    description: String,
    outcome: String,
    work: PathWork,
    cost_ns: f64,
    covered: bool,
    skip_reason: Option<String>,
    ingress_port: Option<u16>,
    injections: Option<usize>,
    packet_hex: Option<String>,
    entries: Option<Vec<ipsa_core::control::ControlMsg>>,
}

/// Serialized corpus header.
#[derive(Debug, Serialize)]
struct CorpusDump {
    feasible_paths: usize,
    covered_paths: usize,
    pruned_infeasible: usize,
    wcet_ns: f64,
    paths: Vec<CorpusEntry>,
}

/// Dumps the coverage corpus as JSON (the `rp4c cover` output): one entry
/// per feasible path with the witness packet bytes, its table-entry setup,
/// and the path's static cost bound.
pub fn corpus_json(cov: &Coverage) -> String {
    let dump = CorpusDump {
        feasible_paths: cov.feasible(),
        covered_paths: cov.covered(),
        pruned_infeasible: cov.pruned_infeasible,
        wcet_ns: cov.wcet_ns,
        paths: cov
            .paths
            .iter()
            .map(|p| CorpusEntry {
                index: p.index,
                description: p.description.clone(),
                outcome: p.outcome.clone(),
                work: p.work,
                cost_ns: p.cost_ns,
                covered: p.witness.is_some(),
                skip_reason: p.skip.as_ref().map(|s| s.reason.clone()),
                ingress_port: p.witness.as_ref().map(|w| w.packet.meta.ingress_port),
                injections: p.witness.as_ref().map(|w| w.injections),
                packet_hex: p.witness.as_ref().map(|w| {
                    w.packet
                        .data
                        .iter()
                        .map(|b| format!("{b:02x}"))
                        .collect::<String>()
                }),
                entries: p.witness.as_ref().map(|w| w.entries.clone()),
            })
            .collect(),
    };
    serde_json::to_string_pretty(&dump).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}
