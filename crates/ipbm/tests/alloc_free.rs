//! Proves the acceptance criterion "zero per-packet heap allocation on the
//! steady-state path": a counting global allocator wraps the system
//! allocator, the compiled fast path is built and warmed, and then a batch
//! of pre-built packets is driven through `run_batch_packet` with the
//! allocation counter pinned at zero delta.
//!
//! The interpreter cannot pass this test — it clones parse-requirement
//! strings, action bodies, and argument vectors per packet — which is the
//! point of the compiled path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ipbm::{IpbmConfig, IpbmSwitch};
use ipsa_core::action::{ActionDef, Primitive};
use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::pipeline_cfg::SelectorConfig;
use ipsa_core::predicate::Predicate;
use ipsa_core::table::{ActionCall, KeyField, KeyMatch, MatchKind, TableDef, TableEntry};
use ipsa_core::template::{MatcherBranch, TspTemplate};
use ipsa_core::value::{LValueRef, ValueRef};
use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so the two measuring tests must not run
/// concurrently: one test's setup allocations would bleed into the other's
/// measured window.
static SERIAL: Mutex<()> = Mutex::new(());

/// A realistic L3 stage: parse ipv4, LPM-match the destination, then set a
/// nexthop metadata field, decrement the TTL (incremental checksum — the
/// interpreter's allocation-heaviest hot primitive), and forward.
fn l3_switch() -> IpbmSwitch {
    let mut sw = IpbmSwitch::new(IpbmConfig::default());
    let msgs = vec![
        ControlMsg::Drain,
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ethernet()),
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv4()),
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::udp()),
        ControlMsg::SetFirstHeader("ethernet".into()),
        ControlMsg::DefineMetadata(vec![("nexthop".into(), 16)]),
        ControlMsg::DefineAction(ActionDef {
            name: "route".into(),
            params: vec![("nh".into(), 16), ("port".into(), 16)],
            body: vec![
                Primitive::Set {
                    dst: LValueRef::Meta("nexthop".into()),
                    src: ValueRef::Param(0),
                },
                Primitive::DecTtlV4,
                Primitive::Forward {
                    port: ValueRef::Param(1),
                },
            ],
        }),
        ControlMsg::CreateTable {
            def: TableDef {
                name: "fib".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["route".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            blocks: vec![0],
        },
        ControlMsg::WriteTemplate {
            slot: 0,
            template: TspTemplate {
                stage_name: "l3".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: Predicate::IsValid("ipv4".into()),
                    table: Some("fib".into()),
                }],
                executor: vec![(1, ActionCall::new("route", vec![]))],
                default_action: ActionCall::no_action(),
            },
        },
        ControlMsg::ConnectCrossbar {
            slot: 0,
            blocks: vec![0],
        },
        ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
        ControlMsg::Resume,
        ControlMsg::AddEntry {
            table: "fib".into(),
            entry: TableEntry {
                key: vec![KeyMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("route", vec![9, 4]),
                counter: 0,
            },
        },
    ];
    sw.apply(&msgs).unwrap();
    sw
}

#[test]
fn steady_state_fast_path_does_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut sw = l3_switch();

    // Compile the fast path and warm every buffer: scratch vectors, the
    // TM's per-port queue, and each packet's parse/metadata preallocation.
    assert!(sw.pm.ensure_compiled(&sw.linkage, &sw.sm));
    let proto = ipv4_udp_packet(&Ipv4UdpSpec {
        dst_ip: 0x0a010101,
        ..Default::default()
    });
    for _ in 0..32 {
        let out = sw
            .pm
            .run_batch_packet(&sw.linkage, &mut sw.sm, proto.clone())
            .unwrap();
        assert!(out.is_some(), "warm-up packet must forward");
    }

    // Packets are built before measurement (construction legitimately
    // allocates; the per-packet *processing* path must not). Built through
    // the builder — i.e. `Packet::new`, like real ingress traffic — so
    // each has the parse-record capacity a wire packet gets; a `clone()`d
    // packet starts at the clone's exact length instead and would take one
    // `Vec` growth on first parse.
    let batch: Vec<_> = (0..256)
        .map(|_| {
            ipv4_udp_packet(&Ipv4UdpSpec {
                dst_ip: 0x0a010101,
                ..Default::default()
            })
        })
        .collect();

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut emitted = 0u32;
    for pkt in batch {
        if sw
            .pm
            .run_batch_packet(&sw.linkage, &mut sw.sm, pkt)
            .unwrap()
            .is_some()
        {
            emitted += 1;
        }
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(emitted, 256);
    assert_eq!(
        delta, 0,
        "steady-state fast path performed {delta} heap allocations over 256 packets"
    );
    // The work actually happened: TTL decremented, metadata written.
    assert_eq!(sw.pm.stats.emitted as u32, 32 + 256);
}

/// The acceptance criterion for the recycling packet arena: with output
/// packets recycled back into the arena, the ENTIRE
/// inject→process→collect loop — CM rings, burst buffers, compiled fast
/// path, TM, TX drain — performs zero heap allocations in steady state,
/// not just the eval inner loop the other tests pin.
#[test]
fn steady_state_full_loop_does_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    use ipsa_netpkt::arena::PacketArena;

    let mut sw = l3_switch();
    assert!(sw.pm.ensure_compiled(&sw.linkage, &sw.sm));
    let template = ipv4_udp_packet(&Ipv4UdpSpec {
        dst_ip: 0x0a010101,
        ..Default::default()
    })
    .data;

    let mut arena = PacketArena::with_capacity(64);
    let mut out = Vec::new();
    const ROUND: usize = 32;
    // Warm every buffer: the CM rings, the switch's burst/emit scratch,
    // the TM queues, the arena freelist, and the collect buffer.
    for _ in 0..8 {
        for _ in 0..ROUND {
            let pkt = arena.build(&template, 0);
            sw.inject(pkt);
        }
        assert_eq!(sw.run_batch_into(&mut out), ROUND);
        arena.recycle_all(&mut out);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut emitted = 0usize;
    for _ in 0..8 {
        for _ in 0..ROUND {
            let pkt = arena.build(&template, 0);
            sw.inject(pkt);
        }
        emitted += sw.run_batch_into(&mut out);
        arena.recycle_all(&mut out);
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(emitted, 8 * ROUND);
    assert_eq!(
        arena.fresh, ROUND as u64,
        "only the first warm round builds fresh packets"
    );
    assert_eq!(
        delta, 0,
        "full inject→process→collect loop performed {delta} heap allocations over {emitted} packets"
    );
}

/// The sharded runtime's per-packet worker loop — `run_packet_parts`
/// against a detached stats array, a worker-local Traffic Manager, and a
/// cloned Storage Module, exactly the state `ipbm::sharded`'s workers own —
/// must be as allocation-free as the single-core path. (Dispatch and
/// barrier replies allocate per *batch*; this pins the per-*packet* cost.)
#[test]
fn shard_worker_inner_loop_does_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    use ipbm::fast::{compile, EvalScratch, SlotStatsMut};
    use ipbm::pm::{PipelineStats, TrafficManager, TM_QUEUE_CAPACITY};
    use ipbm::tsp::SlotStats;

    let sw = l3_switch();
    let compiled = compile(
        &sw.pm.slots,
        &sw.pm.selector,
        &sw.pm.crossbar,
        &sw.sm,
        &sw.linkage,
        0,
        None,
    )
    .expect("l3 design compiles");

    // Worker-owned state, as published at an epoch barrier.
    let mut sm = sw.sm.clone();
    sm.reset_observability();
    let mut stats = PipelineStats::default();
    let mut slot_stats = vec![SlotStats::default(); sw.pm.slot_count()];
    let mut tm = TrafficManager::new(8, TM_QUEUE_CAPACITY).unwrap();
    let mut scratch = EvalScratch::default();

    let spec = Ipv4UdpSpec {
        dst_ip: 0x0a010101,
        ..Default::default()
    };
    for _ in 0..32 {
        let out = compiled
            .run_packet_parts(
                &mut stats,
                SlotStatsMut::Stats(&mut slot_stats),
                &mut tm,
                &sw.linkage,
                &mut sm,
                &mut scratch,
                ipv4_udp_packet(&spec),
            )
            .unwrap();
        assert!(out.is_some(), "warm-up packet must forward");
    }

    let batch: Vec<_> = (0..256).map(|_| ipv4_udp_packet(&spec)).collect();
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut emitted = 0u32;
    for pkt in batch {
        if compiled
            .run_packet_parts(
                &mut stats,
                SlotStatsMut::Stats(&mut slot_stats),
                &mut tm,
                &sw.linkage,
                &mut sm,
                &mut scratch,
                pkt,
            )
            .unwrap()
            .is_some()
        {
            emitted += 1;
        }
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(emitted, 256);
    assert_eq!(
        delta, 0,
        "shard worker inner loop performed {delta} heap allocations over 256 packets"
    );
    assert_eq!(stats.emitted as u32, 32 + 256);
    assert_eq!(slot_stats[0].packets as u32, 32 + 256);
}
