//! TSP — one Templated Stage Processor slot.
//!
//! Executes the parse–match–action triad of its downloaded template
//! (Sec. 2.2): the parser sub-module pulls in just the headers the stage
//! needs (on-demand, memoized in the packet), the matcher picks the first
//! branch whose predicate holds and looks its table up through the
//! crossbar, and the executor dispatches on the hit tag to run the bound
//! action's primitives.

use ipsa_core::action::{execute, ActionOutcome};
use ipsa_core::crossbar::Crossbar;
use ipsa_core::error::CoreError;
use ipsa_core::template::TspTemplate;
use ipsa_core::value::EvalCtx;
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::packet::Packet;
use serde::Serialize;

use crate::sm::StorageModule;

/// Per-slot execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SlotStats {
    /// Packets processed by this slot.
    pub packets: u64,
    /// Table hits.
    pub hits: u64,
    /// Table misses (default action ran).
    pub misses: u64,
    /// Packets for which no branch matched (pure pass-through).
    pub pass_through: u64,
    /// Header extractions this slot performed.
    pub parse_extractions: u64,
    /// Per-packet template-parameter fetches (the IPSA overhead the paper
    /// attributes part of its throughput gap to).
    pub template_fetches: u64,
    /// Action primitives executed.
    pub primitives: u64,
}

impl SlotStats {
    /// Adds another stats block into this one (shard fold: every field is
    /// a plain additive counter).
    pub fn absorb(&mut self, other: &SlotStats) {
        self.packets += other.packets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.pass_through += other.pass_through;
        self.parse_extractions += other.parse_extractions;
        self.template_fetches += other.template_fetches;
        self.primitives += other.primitives;
    }
}

/// One physical TSP slot.
#[derive(Debug, Clone, Default)]
pub struct TspSlot {
    /// Downloaded template (None = unprogrammed).
    pub template: Option<TspTemplate>,
    /// Execution statistics.
    pub stats: SlotStats,
}

impl TspSlot {
    /// Processes one packet through this slot.
    ///
    /// `slot_idx` is the physical position (for crossbar checks); the
    /// caller has already decided the slot is active (selector).
    pub fn process(
        &mut self,
        slot_idx: usize,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        crossbar: &Crossbar,
        pkt: &mut Packet,
    ) -> Result<ActionOutcome, CoreError> {
        // Take the template out for the duration of processing (no
        // per-packet clone; the template is immutable while a packet is in
        // flight).
        let Some(template) = self.template.take() else {
            return Ok(ActionOutcome::default());
        };
        let result = self.process_with(&template, slot_idx, linkage, sm, crossbar, pkt);
        self.template = Some(template);
        result
    }

    fn process_with(
        &mut self,
        template: &TspTemplate,
        slot_idx: usize,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        crossbar: &Crossbar,
        pkt: &mut Packet,
    ) -> Result<ActionOutcome, CoreError> {
        self.stats.packets += 1;
        // Loading the per-packet configuration parameters (Sec. 5's
        // throughput discussion) — modeled as one fetch per packet.
        self.stats.template_fetches += 1;

        // Parser sub-module: on-demand, memoized extraction.
        let before = pkt.parse_extractions;
        for h in template.parse_requirements() {
            let _ = pkt.ensure_parsed(linkage, &h)?;
        }
        self.stats.parse_extractions += pkt.parse_extractions - before;

        // Matcher sub-module: first branch whose predicate holds.
        let ctx = EvalCtx::bare(linkage);
        let mut chosen: Option<&str> = None;
        for b in &template.branches {
            if b.pred.eval(pkt, &ctx)? {
                chosen = b.table.as_deref();
                break;
            }
        }
        let Some(table) = chosen else {
            self.stats.pass_through += 1;
            return Ok(ActionOutcome::default());
        };

        // Crossbar reachability: a TSP can only address blocks it is wired
        // to; anything else is a configuration bug surfaced loudly.
        for block in sm.blocks_of(table) {
            if !crossbar.can_reach(slot_idx, block) {
                return Err(CoreError::CrossbarViolation(format!(
                    "slot {slot_idx} cannot reach block {block} of table `{table}`"
                )));
            }
        }

        let hit = sm.lookup(table, pkt, &ctx)?;
        let (call, counter) = match &hit {
            Some(h) => {
                self.stats.hits += 1;
                (template.action_for_tag(h.tag).clone(), h.counter)
            }
            None => {
                self.stats.misses += 1;
                (template.default_action.clone(), None)
            }
        };
        // Action data: the matched entry's args win; immediate args from
        // the executor arm are the fallback.
        let args: Vec<u128> = match &hit {
            Some(h) if !h.action.args.is_empty() => h.action.args.clone(),
            _ => call.args.clone(),
        };
        let action = sm
            .actions
            .get(&call.action)
            .ok_or_else(|| CoreError::UnknownAction(call.action.clone()))?
            .clone();
        let ctx = EvalCtx {
            linkage,
            params: &args,
            entry_counter: counter,
        };
        let metadata = &sm.metadata;
        let outcome = execute(&action, pkt, &ctx, &|name| {
            metadata
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| *b)
                .unwrap_or(128)
        })?;
        self.stats.primitives += outcome.primitives as u64;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::action::{ActionDef, Primitive};
    use ipsa_core::predicate::Predicate;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::MatcherBranch;
    use ipsa_core::value::{LValueRef, ValueRef};
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    fn setup() -> (HeaderLinkage, StorageModule, Crossbar, TspSlot) {
        let linkage = HeaderLinkage::standard();
        let mut sm = StorageModule::new(8, 2, 128);
        sm.define_metadata(&[("nexthop".into(), 16)]);
        sm.define_action(ActionDef {
            name: "set_nh".into(),
            params: vec![("nh".into(), 16)],
            body: vec![Primitive::Set {
                dst: LValueRef::Meta("nexthop".into()),
                src: ValueRef::Param(0),
            }],
        });
        sm.create_table(
            TableDef {
                name: "fib".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["set_nh".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            vec![0],
        )
        .unwrap();
        sm.insert_entry(
            "fib",
            TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("set_nh", vec![99]),
                counter: 0,
            },
        )
        .unwrap();
        let mut xbar = Crossbar::full();
        xbar.connect(0, &[0]).unwrap();
        let slot = TspSlot {
            template: Some(TspTemplate {
                stage_name: "fib_s".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: Predicate::IsValid("ipv4".into()),
                    table: Some("fib".into()),
                }],
                executor: vec![(1, ActionCall::new("set_nh", vec![]))],
                default_action: ActionCall::no_action(),
            }),
            stats: SlotStats::default(),
        };
        (linkage, sm, xbar, slot)
    }

    #[test]
    fn hit_runs_entry_action_with_entry_args() {
        let (linkage, mut sm, xbar, mut slot) = setup();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        slot.process(0, &linkage, &mut sm, &xbar, &mut p).unwrap();
        assert_eq!(p.meta.get("nexthop"), 99);
        assert_eq!(slot.stats.hits, 1);
        assert_eq!(slot.stats.template_fetches, 1);
        assert!(slot.stats.parse_extractions >= 2, "eth + ipv4 parsed here");
    }

    #[test]
    fn miss_runs_default() {
        let (linkage, mut sm, xbar, mut slot) = setup();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0b000001,
            ..Default::default()
        });
        slot.process(0, &linkage, &mut sm, &xbar, &mut p).unwrap();
        assert_eq!(p.meta.get("nexthop"), 0);
        assert_eq!(slot.stats.misses, 1);
    }

    #[test]
    fn non_matching_packet_passes_through() {
        let (linkage, mut sm, xbar, mut slot) = setup();
        let mut p = ipsa_netpkt::builder::ipv6_udp_packet(&Default::default());
        slot.process(0, &linkage, &mut sm, &xbar, &mut p).unwrap();
        assert_eq!(slot.stats.pass_through, 1);
        assert_eq!(slot.stats.hits + slot.stats.misses, 0);
    }

    #[test]
    fn unprogrammed_slot_is_noop() {
        let (linkage, mut sm, xbar, _) = setup();
        let mut slot = TspSlot::default();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec::default());
        slot.process(0, &linkage, &mut sm, &xbar, &mut p).unwrap();
        assert_eq!(slot.stats.packets, 0);
    }

    #[test]
    fn crossbar_violation_detected() {
        let (linkage, mut sm, _xbar, mut slot) = setup();
        let empty = Crossbar::full(); // no connections configured
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        let e = slot
            .process(0, &linkage, &mut sm, &empty, &mut p)
            .unwrap_err();
        assert!(matches!(e, CoreError::CrossbarViolation(_)));
    }

    #[test]
    fn second_slot_reuses_parse_results() {
        let (linkage, mut sm, xbar, mut slot) = setup();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        slot.process(0, &linkage, &mut sm, &xbar, &mut p).unwrap();
        let first = slot.stats.parse_extractions;
        // Same template in a "later" slot: nothing left to parse.
        let mut slot2 = TspSlot {
            template: slot.template.clone(),
            stats: SlotStats::default(),
        };
        let mut xbar2 = Crossbar::full();
        xbar2.connect(1, &[0]).unwrap();
        slot2.process(1, &linkage, &mut sm, &xbar2, &mut p).unwrap();
        assert_eq!(slot2.stats.parse_extractions, 0);
        assert!(first > 0);
    }
}
