//! ipbm — the assembled IPSA behavioral-model switch.
//!
//! Wires the four modules together (CM, PM, CCM, SM; Sec. 4.1) behind the
//! [`Device`] trait the controller programs against.

use ipsa_core::control::{full_install_msgs, ApplyReport, ControlMsg, Device};
use ipsa_core::crossbar::Crossbar;
use ipsa_core::error::CoreError;
use ipsa_core::template::CompiledDesign;
use ipsa_core::timing::CostModel;
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::packet::Packet;
use serde::Serialize;

use crate::ccm;
use crate::cm::{CommModule, PortStats};
use crate::pm::{PipelineModule, PipelineStats, TmStats};
use crate::resilience::{ApplyJournal, FaultPlan};
use crate::sm::StorageModule;
use crate::tsp::SlotStats;

/// An open staged control-plane transaction: one [`ApplyJournal`]
/// accumulating pre-images across every batch applied since
/// [`IpbmSwitch::begin_staged`], plus the dataflow facts installed at that
/// point (structural batches clear facts as they apply; a revert must put
/// them back so the device is observably unchanged).
///
/// This is the device half of a two-phase fleet rollout: the controller
/// stages the update everywhere, verifies the canary, and only then commits
/// — any divergence or mid-rollout failure reverts each device to the exact
/// bytes it held when the transaction opened.
pub(crate) struct StagedTxn {
    journal: ApplyJournal,
    facts: Option<ipsa_core::facts::ProgramFacts>,
    /// Batches applied under this transaction (observability only).
    batches: u64,
}

impl std::fmt::Debug for StagedTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedTxn")
            .field("batches", &self.batches)
            .finish_non_exhaustive()
    }
}

/// Construction parameters for an ipbm instance.
#[derive(Debug, Clone)]
pub struct IpbmConfig {
    /// Switch ports.
    pub ports: usize,
    /// Physical TSP slots.
    pub slots: usize,
    /// SRAM blocks in the pool.
    pub sram_blocks: usize,
    /// TCAM blocks in the pool.
    pub tcam_blocks: usize,
    /// Crossbar clusters (0/1 = full crossbar).
    pub clusters: usize,
    /// TSP↔memory bus width, bits.
    pub bus_bits: usize,
    /// Control-channel cost model.
    pub cost: CostModel,
}

impl Default for IpbmConfig {
    fn default() -> Self {
        IpbmConfig {
            ports: 8,
            slots: 32,
            sram_blocks: 64,
            tcam_blocks: 16,
            clusters: 0,
            bus_bits: 128,
            cost: CostModel::software(),
        }
    }
}

impl IpbmConfig {
    /// Rejects configurations no switch can be built from. Part of the
    /// silent-clamp sweep: constructors used to quietly rewrite zero
    /// ports/slots to 1 instead of telling the caller.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.ports == 0 {
            return Err(CoreError::Config(
                "switch needs at least one port (ports=0)".into(),
            ));
        }
        if self.slots == 0 {
            return Err(CoreError::Config(
                "switch needs at least one TSP slot (slots=0)".into(),
            ));
        }
        Ok(())
    }
}

/// Aggregated observability snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct SwitchReport {
    /// Pipeline counters.
    pub pipeline: PipelineStats,
    /// Traffic-Manager counters.
    pub tm: TmStats,
    /// Per-port counters.
    pub ports: Vec<PortStats>,
    /// Per-slot counters (programmed slots only, with their stage names).
    pub slots: Vec<(usize, String, SlotStats)>,
    /// Memory accesses performed by table lookups.
    pub mem_accesses: u64,
    /// Active TSPs (power model input).
    pub active_tsps: usize,
}

/// The IPSA behavioral-model software switch.
#[derive(Debug)]
pub struct IpbmSwitch {
    /// Communication module (ports).
    pub cm: CommModule,
    /// Pipeline module (TSPs + TM + selector + crossbar).
    pub pm: PipelineModule,
    /// Storage module (pool + tables + actions).
    pub sm: StorageModule,
    /// Header registry and parse graph (runtime-mutable).
    pub linkage: HeaderLinkage,
    /// Control-channel cost model.
    pub cost: CostModel,
    /// Test-only fault-injection plan (None in production).
    faults: Option<FaultPlan>,
    /// Open staged transaction, if any (see [`IpbmSwitch::begin_staged`]).
    staged: Option<StagedTxn>,
    name: String,
}

impl IpbmSwitch {
    /// Builds a switch from a configuration.
    ///
    /// # Panics
    /// On an invalid configuration (zero ports or slots); use
    /// [`IpbmSwitch::try_new`] to handle that as an error.
    pub fn new(cfg: IpbmConfig) -> Self {
        Self::try_new(cfg).expect("invalid IpbmConfig")
    }

    /// Builds a switch from a configuration, rejecting unusable ones
    /// (zero ports or slots) with [`CoreError::Config`].
    pub fn try_new(cfg: IpbmConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let crossbar = if cfg.clusters > 1 {
            Crossbar::clustered(cfg.slots, cfg.sram_blocks + cfg.tcam_blocks, cfg.clusters)
        } else {
            Crossbar::full()
        };
        Ok(IpbmSwitch {
            cm: CommModule::new(cfg.ports),
            pm: PipelineModule::new(cfg.slots, cfg.ports, crossbar)?,
            sm: StorageModule::new(cfg.sram_blocks, cfg.tcam_blocks, cfg.bus_bits),
            linkage: HeaderLinkage::new(),
            cost: cfg.cost,
            faults: None,
            staged: None,
            name: "ipbm".to_string(),
        })
    }

    /// Installs a deterministic fault-injection plan (test-only surface);
    /// `fail_msg_at` makes control batches fail — and roll back — at an
    /// exact message index.
    #[doc(hidden)]
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes any installed fault plan.
    #[doc(hidden)]
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// Installs a complete compiled design (initial load).
    pub fn install(&mut self, design: &CompiledDesign) -> Result<ApplyReport, CoreError> {
        self.apply(&full_install_msgs(design))
    }

    /// Opens a staged control-plane transaction. Every subsequent
    /// [`Device::apply`] batch journals its pre-images into one shared
    /// [`ApplyJournal`] (each component captured at most once, at its
    /// earliest touch), so [`IpbmSwitch::revert_staged`] rewinds *all*
    /// batches applied since this call byte-identically — the device half
    /// of a fleet-wide two-phase rollout. A batch that fails mid-apply
    /// aborts the whole transaction (the journal is replayed immediately
    /// and the transaction closes), because a half-staged device can be
    /// neither committed nor trusted to stay staged.
    ///
    /// Errors with [`CoreError::Config`] if a transaction is already open:
    /// nesting would silently merge rollback horizons.
    pub fn begin_staged(&mut self) -> Result<(), CoreError> {
        if self.staged.is_some() {
            return Err(CoreError::Config(
                "staged transaction already open (commit or revert it first)".into(),
            ));
        }
        self.staged = Some(StagedTxn {
            journal: ApplyJournal::default(),
            facts: self.pm.facts().cloned(),
            batches: 0,
        });
        Ok(())
    }

    /// True while a staged transaction is open.
    pub fn staged_open(&self) -> bool {
        self.staged.is_some()
    }

    /// Batches applied under the open staged transaction (0 when none).
    pub fn staged_batches(&self) -> u64 {
        self.staged.as_ref().map_or(0, |t| t.batches)
    }

    /// Commits the open staged transaction: the journal is discarded and
    /// every batch applied since [`IpbmSwitch::begin_staged`] becomes
    /// permanent. Errors with [`CoreError::Config`] if none is open.
    pub fn commit_staged(&mut self) -> Result<(), CoreError> {
        match self.staged.take() {
            Some(_) => Ok(()),
            None => Err(CoreError::Config(
                "no staged transaction open to commit".into(),
            )),
        }
    }

    /// Reverts the open staged transaction: every pre-image captured since
    /// [`IpbmSwitch::begin_staged`] is restored newest-first, the facts
    /// installed at open time are reinstated, and a new control-plane epoch
    /// opens (the reverted state must recompile and republish). The device
    /// is left byte-identical to the moment the transaction opened. Errors
    /// with [`CoreError::Config`] if none is open.
    pub fn revert_staged(&mut self) -> Result<(), CoreError> {
        let Some(txn) = self.staged.take() else {
            return Err(CoreError::Config(
                "no staged transaction open to revert".into(),
            ));
        };
        txn.journal
            .rollback(&mut self.pm, &mut self.sm, &mut self.linkage);
        // set_facts re-opens the epoch whether or not facts were installed
        // — the pre-image state needs a fresh compile either way.
        self.pm.set_facts(txn.facts);
        Ok(())
    }

    /// Observability snapshot.
    pub fn report(&self) -> SwitchReport {
        SwitchReport {
            pipeline: self.pm.stats,
            tm: self.pm.tm.stats,
            ports: self.cm.port_stats(),
            slots: self
                .pm
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.template
                        .as_ref()
                        .map(|t| (i, t.stage_name.clone(), s.stats))
                })
                .collect(),
            mem_accesses: self.sm.mem_accesses,
            active_tsps: self.pm.active_tsps(),
        }
    }

    /// Processes exactly one pending packet through the interpreter.
    /// Returns whether a packet was emitted (it lands on the CM's tx side;
    /// fetch it with [`CommModule::collect_tx`]); `Ok(false)` when idle,
    /// draining, or the packet was dropped.
    pub fn step(&mut self) -> Result<bool, CoreError> {
        if self.pm.draining {
            return Ok(false);
        }
        let Some(pkt) = self.cm.next_rx() else {
            return Ok(false);
        };
        let r = self.pm.run_packet(&self.linkage, &mut self.sm, pkt);
        self.finish_step(r)
    }

    /// [`IpbmSwitch::step`] via the compiled fast path when one is
    /// installed (the caller ensures compilation once per batch).
    fn step_batch(&mut self) -> Result<bool, CoreError> {
        if self.pm.draining {
            return Ok(false);
        }
        let Some(pkt) = self.cm.next_rx() else {
            return Ok(false);
        };
        let r = self.pm.run_batch_packet(&self.linkage, &mut self.sm, pkt);
        self.finish_step(r)
    }

    fn finish_step(&mut self, r: Result<Option<Packet>, CoreError>) -> Result<bool, CoreError> {
        match classify_packet_result(r, &mut self.pm.stats)? {
            Some(out) => {
                self.cm.transmit(out);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Batched run-to-completion ingress: drains the RX rings through the
    /// compiled fast path with the epoch check and the compiled-path/
    /// scratch checkout hoisted to once per drain (the per-packet loop
    /// pays both per packet), transmits, then drains the TX rings into
    /// the caller-owned `out`. Returns how many packets were handed back.
    /// Packets flow ring→pipeline→ring directly — measurement showed even
    /// one intermediate staging buffer costs ~2-3% at these rates.
    /// Transmit order is processing order, identical to the per-packet
    /// loop. With a [`PacketArena`](ipsa_netpkt::arena::PacketArena)
    /// recycling the packets handed back through `out`, the whole
    /// inject→process→collect loop is allocation-free in steady state
    /// (`tests/alloc_free.rs`).
    pub fn run_batch_into(&mut self, out: &mut Vec<Packet>) -> usize {
        // Resolve-once / run-many: build (or reuse) the compiled fast path
        // for this control-plane epoch. If compilation fails, the runner
        // interprets each packet, as the per-packet loop always has.
        self.pm.ensure_compiled(&self.linkage, &self.sm);
        // One compiled-path/scratch checkout for the whole drain — no
        // control-plane write can land while the runner is live.
        let mut runner = self.pm.burst_runner();
        while !runner.draining() {
            let Some(pkt) = self.cm.next_rx() else {
                break;
            };
            match runner.run(&self.linkage, &mut self.sm, pkt) {
                Ok(Some(p)) => self.cm.transmit(p),
                Ok(None) => {}
                Err(e) => {
                    debug_assert!(false, "pipeline error: {e}");
                    let _ = e;
                }
            }
        }
        drop(runner);
        self.cm.tx_burst(out)
    }

    /// The pre-burst per-packet batch loop, kept as the measurement
    /// baseline for [`IpbmSwitch::run_batch_into`] (`benches/scale.rs`
    /// ingress series). Semantically identical, one packet at a time.
    #[doc(hidden)]
    pub fn run_batch_per_packet(&mut self) -> Vec<Packet> {
        if !self.pm.ensure_compiled(&self.linkage, &self.sm) {
            return self.run();
        }
        while !self.pm.draining && self.cm.rx_pending() > 0 {
            if let Err(e) = self.step_batch() {
                debug_assert!(false, "pipeline error: {e}");
                let _ = e;
            }
        }
        self.cm.collect_tx()
    }
}

/// Classifies one per-packet pipeline result the way real hardware does:
/// malformed traffic (e.g. truncated mid-header) is a parse drop, not a
/// device fault — switches discard runts. Any other error propagates.
/// Shared by the interpreter step loop and the sharded workers so both
/// planes count drops identically.
#[inline]
pub(crate) fn classify_packet_result(
    r: Result<Option<Packet>, CoreError>,
    stats: &mut PipelineStats,
) -> Result<Option<Packet>, CoreError> {
    match r {
        Err(CoreError::Packet(ipsa_netpkt::packet::PacketError::Truncated { .. })) => {
            stats.parse_drops += 1;
            Ok(None)
        }
        other => other,
    }
}

impl Device for IpbmSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&mut self, msgs: &[ControlMsg]) -> Result<ApplyReport, CoreError> {
        let Some(txn) = self.staged.as_mut() else {
            return ccm::apply_msgs_with_faults(
                &mut self.pm,
                &mut self.sm,
                &mut self.linkage,
                &self.cost,
                msgs,
                self.faults.as_ref(),
            );
        };
        // Staged mode: pre-images accumulate in the transaction's journal.
        // A mid-batch failure aborts the *whole* transaction — the journal
        // rewinds every batch applied since `begin_staged`, not just this
        // one, and the facts installed at open time come back with it.
        match ccm::apply_msgs_journaled(
            &mut self.pm,
            &mut self.sm,
            &mut self.linkage,
            &self.cost,
            msgs,
            self.faults.as_ref(),
            &mut txn.journal,
        ) {
            Ok(report) => {
                txn.batches += 1;
                Ok(report)
            }
            Err((index, cause)) => {
                let txn = self.staged.take().expect("staged txn is open");
                txn.journal
                    .rollback(&mut self.pm, &mut self.sm, &mut self.linkage);
                self.pm.set_facts(txn.facts);
                Err(CoreError::RolledBack {
                    index,
                    cause: Box::new(cause),
                })
            }
        }
    }

    fn install_facts(&mut self, facts: Option<ipsa_core::facts::ProgramFacts>) {
        self.pm.set_facts(facts);
    }

    fn inject(&mut self, packet: Packet) {
        self.cm.inject(packet);
    }

    fn run(&mut self) -> Vec<Packet> {
        while !self.pm.draining && self.cm.rx_pending() > 0 {
            // Per-packet errors surface as drops with the error traced to
            // stderr in debug builds; the data plane must not wedge on one
            // bad packet.
            if let Err(e) = self.step() {
                debug_assert!(false, "pipeline error: {e}");
                let _ = e;
            }
        }
        self.cm.collect_tx()
    }

    fn run_batch(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        self.run_batch_into(&mut out);
        out
    }

    fn pending(&self) -> usize {
        self.cm.rx_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::pipeline_cfg::SelectorConfig;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::{MatcherBranch, TspTemplate};
    use ipsa_core::value::ValueRef;
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    /// Builds a one-stage L3 switch via control messages only.
    fn minimal_switch() -> IpbmSwitch {
        let mut sw = IpbmSwitch::new(IpbmConfig::default());
        let msgs = vec![
            ControlMsg::Drain,
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ethernet()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv4()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::udp()),
            ControlMsg::SetFirstHeader("ethernet".into()),
            ControlMsg::DefineAction(ipsa_core::action::ActionDef {
                name: "fwd".into(),
                params: vec![("port".into(), 16)],
                body: vec![ipsa_core::action::Primitive::Forward {
                    port: ValueRef::Param(0),
                }],
            }),
            ControlMsg::CreateTable {
                def: TableDef {
                    name: "route".into(),
                    key: vec![KeyField {
                        source: ValueRef::field("ipv4", "dst_addr"),
                        bits: 32,
                        kind: MatchKind::Lpm,
                    }],
                    size: 64,
                    actions: vec!["fwd".into()],
                    default_action: ActionCall::no_action(),
                    with_counters: false,
                },
                blocks: vec![0],
            },
            ControlMsg::WriteTemplate {
                slot: 0,
                template: TspTemplate {
                    stage_name: "route_s".into(),
                    func: "base".into(),
                    parse: vec!["ipv4".into()],
                    branches: vec![MatcherBranch {
                        pred: ipsa_core::predicate::Predicate::IsValid("ipv4".into()),
                        table: Some("route".into()),
                    }],
                    executor: vec![(1, ActionCall::new("fwd", vec![]))],
                    default_action: ActionCall::no_action(),
                },
            },
            ControlMsg::ConnectCrossbar {
                slot: 0,
                blocks: vec![0],
            },
            ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
            ControlMsg::Resume,
            ControlMsg::AddEntry {
                table: "route".into(),
                entry: TableEntry {
                    key: vec![ipsa_core::table::KeyMatch::Lpm {
                        value: 0x0a000000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                    action: ActionCall::new("fwd", vec![4]),
                    counter: 0,
                },
            },
        ];
        sw.apply(&msgs).unwrap();
        sw
    }

    #[test]
    fn try_new_rejects_zero_ports_and_slots() {
        // Regression: zero ports/slots used to be silently clamped to 1
        // deeper in the constructor chain.
        let cfg = IpbmConfig {
            ports: 0,
            ..Default::default()
        };
        assert!(matches!(
            IpbmSwitch::try_new(cfg),
            Err(CoreError::Config(_))
        ));
        let cfg = IpbmConfig {
            slots: 0,
            ..Default::default()
        };
        assert!(matches!(
            IpbmSwitch::try_new(cfg),
            Err(CoreError::Config(_))
        ));
        assert!(IpbmSwitch::try_new(IpbmConfig::default()).is_ok());
    }

    #[test]
    fn forwards_matching_traffic() {
        let mut sw = minimal_switch();
        sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        }));
        sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0b010101, // unrouted
            ..Default::default()
        }));
        let out = sw.run();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].meta.egress_port, Some(4));
        let rep = sw.report();
        assert_eq!(rep.pipeline.received, 2);
        assert_eq!(rep.pipeline.emitted, 1);
        assert_eq!(rep.tm.no_route_drops, 1);
        assert_eq!(rep.ports[4].tx, 1);
        assert!(rep.mem_accesses >= 2);
        assert_eq!(rep.active_tsps, 1);
    }

    #[test]
    fn draining_holds_traffic() {
        let mut sw = minimal_switch();
        sw.apply(&[ControlMsg::Drain]).unwrap();
        sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        }));
        assert!(sw.run().is_empty());
        assert_eq!(sw.pending(), 1);
        sw.apply(&[ControlMsg::Resume]).unwrap();
        assert_eq!(sw.run().len(), 1);
    }

    #[test]
    fn configured_port_count_reaches_the_tm() {
        // Regression: `IpbmConfig { ports: 16 }` used to get a TM with the
        // default 8 queues, aliasing egress ports modulo 8.
        let mut sw = IpbmSwitch::new(IpbmConfig {
            ports: 16,
            ..Default::default()
        });
        let mut a = ipv4_udp_packet(&Ipv4UdpSpec::default());
        a.meta.egress_port = Some(12);
        let mut b = ipv4_udp_packet(&Ipv4UdpSpec::default());
        b.meta.egress_port = Some(4);
        sw.pm.tm.enqueue(a);
        sw.pm.tm.enqueue(b);
        assert_eq!(sw.pm.tm.port_depth(12), 1);
        assert_eq!(sw.pm.tm.port_depth(4), 1);
    }

    #[test]
    fn batch_path_matches_interpreter_on_minimal_switch() {
        let mut interp = minimal_switch();
        let mut fast = minimal_switch();
        let specs = [0x0a010101u32, 0x0b010101, 0x0a020304];
        for sw in [&mut interp, &mut fast] {
            for dst in specs {
                sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
                    dst_ip: dst,
                    ..Default::default()
                }));
            }
        }
        let out_i = interp.run();
        let out_f = fast.run_batch();
        assert!(fast.pm.has_compiled());
        assert_eq!(out_i, out_f);
        assert_eq!(interp.report().pipeline, fast.report().pipeline);
        assert_eq!(interp.report().tm, fast.report().tm);
        assert_eq!(interp.sm.mem_accesses, fast.sm.mem_accesses);
    }

    #[test]
    fn burst_batch_matches_per_packet_batch() {
        let mut per_pkt = minimal_switch();
        let mut burst = minimal_switch();
        // More than two RX_BURSTs, with drops interleaved.
        let inject_wave = |sw: &mut IpbmSwitch, salt: u32| {
            for i in 0..150u32 {
                let dst = if i % 3 == 0 {
                    0x0b01_0101 // unrouted -> no-route drop
                } else {
                    0x0a01_0000 + i + salt
                };
                sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
                    dst_ip: dst,
                    ..Default::default()
                }));
            }
        };
        inject_wave(&mut per_pkt, 0);
        inject_wave(&mut burst, 0);
        let out_a = per_pkt.run_batch_per_packet();
        let mut out_b = Vec::new();
        assert_eq!(burst.run_batch_into(&mut out_b), out_a.len());
        assert_eq!(out_a, out_b);
        assert_eq!(per_pkt.report().pipeline, burst.report().pipeline);
        assert_eq!(per_pkt.report().tm, burst.report().tm);

        // Second wave through the same reused output buffer.
        inject_wave(&mut per_pkt, 1000);
        inject_wave(&mut burst, 1000);
        let out_a2 = per_pkt.run_batch_per_packet();
        out_b.clear();
        assert_eq!(burst.run_batch_into(&mut out_b), out_a2.len());
        assert_eq!(out_a2, out_b);
    }

    #[test]
    fn control_write_invalidates_compiled_path() {
        let mut sw = minimal_switch();
        sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        }));
        sw.run_batch();
        assert!(sw.pm.has_compiled());
        let epoch = sw.pm.epoch();
        sw.apply(&[ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0b000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![7]),
                counter: 0,
            },
        }])
        .unwrap();
        assert!(!sw.pm.has_compiled());
        assert!(sw.pm.epoch() > epoch);
        // The rebuilt path sees the new route.
        sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0b010101,
            ..Default::default()
        }));
        let out = sw.run_batch();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].meta.egress_port, Some(7));
    }

    #[test]
    fn install_from_empty_design_is_clean() {
        let mut sw = IpbmSwitch::new(IpbmConfig::default());
        let design = CompiledDesign::empty("blank", 32);
        let r = sw.install(&design).unwrap();
        assert!(r.msgs > 0);
        assert_eq!(sw.report().active_tsps, 0);
    }

    /// Digest of every control-plane component, minus the epoch counter
    /// (a revert legitimately opens a new epoch over identical bytes).
    fn state_digest(sw: &IpbmSwitch) -> String {
        format!(
            "{};{};{:?};{:?};{:?};{}",
            serde_json::to_string(&sw.pm.slots.iter().map(|s| &s.template).collect::<Vec<_>>())
                .unwrap(),
            serde_json::to_string(&sw.pm.selector).unwrap(),
            sw.pm.draining,
            sw.sm.metadata,
            sw.sm.table_names(),
            serde_json::to_string(&sw.sm.pool).unwrap(),
        )
    }

    #[test]
    fn staged_revert_rewinds_every_batch() {
        let mut sw = minimal_switch();
        let before = state_digest(&sw);
        sw.begin_staged().unwrap();
        assert!(sw.staged_open());
        // Two separate batches under one transaction: an entry add, then a
        // structural change (new template in a fresh slot).
        sw.apply(&[ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0b000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![5]),
                counter: 0,
            },
        }])
        .unwrap();
        sw.apply(&[ControlMsg::WriteTemplate {
            slot: 1,
            template: TspTemplate::passthrough("staged_p"),
        }])
        .unwrap();
        assert_eq!(sw.staged_batches(), 2);
        assert_ne!(state_digest(&sw), before);
        sw.revert_staged().unwrap();
        assert!(!sw.staged_open());
        assert_eq!(state_digest(&sw), before, "revert must be byte-identical");
        // The reverted design still forwards.
        sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        }));
        assert_eq!(sw.run().len(), 1);
    }

    #[test]
    fn staged_commit_keeps_every_batch() {
        let mut sw = minimal_switch();
        sw.begin_staged().unwrap();
        sw.apply(&[ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0b000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![5]),
                counter: 0,
            },
        }])
        .unwrap();
        sw.commit_staged().unwrap();
        assert!(!sw.staged_open());
        sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0b010101,
            ..Default::default()
        }));
        let out = sw.run();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].meta.egress_port, Some(5));
        // Committed means no longer revertible.
        assert!(sw.revert_staged().is_err());
    }

    #[test]
    fn staged_midbatch_failure_aborts_whole_txn() {
        let mut sw = minimal_switch();
        let before = state_digest(&sw);
        sw.begin_staged().unwrap();
        sw.apply(&[ControlMsg::WriteTemplate {
            slot: 1,
            template: TspTemplate::passthrough("staged_p"),
        }])
        .unwrap();
        // Second batch fails on its second message: the abort must rewind
        // the first batch too, not just this one.
        let err = sw
            .apply(&[
                ControlMsg::DefineMetadata(vec![("mx".into(), 8)]),
                ControlMsg::DestroyTable("ghost".into()),
            ])
            .unwrap_err();
        assert!(matches!(err, CoreError::RolledBack { index: 1, .. }));
        assert!(!sw.staged_open(), "failed batch closes the transaction");
        assert_eq!(state_digest(&sw), before);
    }

    #[test]
    fn staged_nesting_and_empty_ops_are_errors() {
        let mut sw = minimal_switch();
        assert!(sw.commit_staged().is_err());
        assert!(sw.revert_staged().is_err());
        sw.begin_staged().unwrap();
        assert!(sw.begin_staged().is_err());
        sw.commit_staged().unwrap();
    }
}
