//! Fault containment for the runtime: the transactional-apply journal, the
//! shard supervisor's fault taxonomy, and a deterministic fault-injection
//! plan for exercising every recovery path from tests.
//!
//! The paper's promise is *hitless* in-situ reprogramming — "the gap can be
//! filled seamlessly without stopping the pipeline" (Sec. 4.3). That
//! promise dies the moment a fault strands the device half-programmed or a
//! wedged shard worker panics the whole process, so this module gives the
//! runtime the two disciplines production switch OSes use at the
//! control/data-plane boundary:
//!
//! * **Atomicity** — [`ApplyJournal`] records the pre-image of every
//!   component a control message is about to mutate (lazily, at most once
//!   per component per batch) and restores them in reverse order on a
//!   mid-batch failure, making `Device::apply` all-or-nothing.
//! * **Isolation** — [`ShardFault`]/[`SupervisorStats`] type the shard
//!   supervisor's quarantine decisions, replacing the former process-wide
//!   `panic!` on any worker hang or death.
//!
//! [`FaultPlan`] is the seeded-test surface that drives both: kill shard N
//! at barrier K, delay a barrier reply, poison an epoch's compile, or fail
//! the M-th control message of a batch.

use std::collections::HashSet;
use std::time::Duration;

use ipsa_core::action::ActionDef;
use ipsa_core::control::ControlMsg;
use ipsa_core::crossbar::Crossbar;
use ipsa_core::error::CoreError;
use ipsa_core::pipeline_cfg::SelectorConfig;
use ipsa_core::template::TspTemplate;
use ipsa_netpkt::linkage::HeaderLinkage;
use serde::Serialize;

use crate::pm::PipelineModule;
use crate::sm::{StorageModule, TableStore};

/// One journaled pre-image. Restores run in reverse capture order, so a
/// whole-SM snapshot taken late in a batch (by a structural message) is
/// rewound first, then earlier per-table snapshots rewind the entry edits
/// that preceded it.
enum UndoOp {
    /// Template previously occupying a TSP slot.
    Slot {
        slot: usize,
        prev: Option<TspTemplate>,
    },
    /// Selector configuration.
    Selector(SelectorConfig),
    /// Crossbar wiring.
    Crossbar(Box<Crossbar>),
    /// Drain flag.
    Draining(bool),
    /// Header registry and parse graph.
    Linkage(Box<HeaderLinkage>),
    /// Declared metadata fields.
    Metadata(Vec<(String, usize)>),
    /// One action-registry binding.
    Action {
        name: String,
        prev: Option<ActionDef>,
    },
    /// One table: its software index plus the raw bytes of its backing
    /// blocks (entry ops never change block *ownership*, only content).
    Table {
        idx: usize,
        store: Box<TableStore>,
        blocks: Vec<(usize, Vec<u8>)>,
    },
    /// The whole storage module, pool included — captured by structural
    /// messages (create/destroy/migrate) whose block-ownership churn is not
    /// worth journaling piecemeal.
    SmWhole(Box<StorageModule>),
}

/// Pre-image journal for one control batch (transactional apply).
///
/// `record` is called once per message *before* it applies; each component
/// is captured at most once per batch — the first capture already holds the
/// batch-relative starting state, and later mutations of the same component
/// must roll back to that same point.
#[derive(Default)]
pub(crate) struct ApplyJournal {
    ops: Vec<UndoOp>,
    slots: HashSet<usize>,
    selector: bool,
    crossbar: bool,
    draining: bool,
    linkage: bool,
    metadata: bool,
    actions: HashSet<String>,
    tables: HashSet<String>,
    sm_whole: bool,
}

impl ApplyJournal {
    fn capture_slot(&mut self, pm: &PipelineModule, slot: usize) {
        if !self.slots.insert(slot) {
            return;
        }
        if let Some(s) = pm.slots.get(slot) {
            self.ops.push(UndoOp::Slot {
                slot,
                prev: s.template.clone(),
            });
        }
    }

    fn capture_selector(&mut self, pm: &PipelineModule) {
        if !self.selector {
            self.selector = true;
            self.ops.push(UndoOp::Selector(pm.selector.clone()));
        }
    }

    fn capture_crossbar(&mut self, pm: &PipelineModule) {
        if !self.crossbar {
            self.crossbar = true;
            self.ops
                .push(UndoOp::Crossbar(Box::new(pm.crossbar.clone())));
        }
    }

    fn capture_draining(&mut self, pm: &PipelineModule) {
        if !self.draining {
            self.draining = true;
            self.ops.push(UndoOp::Draining(pm.draining));
        }
    }

    fn capture_linkage(&mut self, linkage: &HeaderLinkage) {
        if !self.linkage {
            self.linkage = true;
            self.ops.push(UndoOp::Linkage(Box::new(linkage.clone())));
        }
    }

    fn capture_metadata(&mut self, sm: &StorageModule) {
        if self.sm_whole || self.metadata {
            return;
        }
        self.metadata = true;
        self.ops.push(UndoOp::Metadata(sm.metadata.clone()));
    }

    fn capture_action(&mut self, sm: &StorageModule, name: &str) {
        if self.sm_whole || !self.actions.insert(name.to_string()) {
            return;
        }
        self.ops.push(UndoOp::Action {
            name: name.to_string(),
            prev: sm.actions.get(name).cloned(),
        });
    }

    fn capture_table(&mut self, sm: &StorageModule, name: &str) {
        if self.sm_whole || !self.tables.insert(name.to_string()) {
            return;
        }
        let (Some(idx), Some(store)) = (sm.table_idx(name), sm.table(name)) else {
            // Unknown table: the message will fail without mutating.
            return;
        };
        let blocks = store
            .map
            .block_ids
            .iter()
            .map(|&b| (b, sm.pool.block_data(b).unwrap_or_default().to_vec()))
            .collect();
        self.ops.push(UndoOp::Table {
            idx,
            store: Box::new(store.clone()),
            blocks,
        });
    }

    fn capture_sm_whole(&mut self, sm: &StorageModule) {
        if !self.sm_whole {
            self.sm_whole = true;
            self.ops.push(UndoOp::SmWhole(Box::new(sm.clone())));
        }
    }

    /// Journals the pre-image of everything `msg` may mutate. Must run
    /// immediately before the message applies.
    pub(crate) fn record(
        &mut self,
        pm: &PipelineModule,
        sm: &StorageModule,
        linkage: &HeaderLinkage,
        msg: &ControlMsg,
    ) {
        match msg {
            ControlMsg::Drain | ControlMsg::Resume => self.capture_draining(pm),
            ControlMsg::WriteTemplate { slot, .. } | ControlMsg::ClearSlot { slot } => {
                self.capture_slot(pm, *slot);
            }
            ControlMsg::SetSelector(_) => self.capture_selector(pm),
            ControlMsg::ConnectCrossbar { .. } => self.capture_crossbar(pm),
            ControlMsg::RegisterHeader(_)
            | ControlMsg::SetFirstHeader(_)
            | ControlMsg::UnregisterHeader(_)
            | ControlMsg::LinkHeader { .. }
            | ControlMsg::UnlinkHeader { .. } => self.capture_linkage(linkage),
            ControlMsg::DefineAction(def) => self.capture_action(sm, &def.name),
            ControlMsg::RemoveAction(name) => self.capture_action(sm, name),
            ControlMsg::DefineMetadata(_) => self.capture_metadata(sm),
            ControlMsg::CreateTable { .. }
            | ControlMsg::DestroyTable(_)
            | ControlMsg::MigrateTable { .. } => self.capture_sm_whole(sm),
            ControlMsg::AddEntry { table, .. }
            | ControlMsg::DelEntry { table, .. }
            | ControlMsg::SetDefaultAction { table, .. } => self.capture_table(sm, table),
            ControlMsg::LoadFullDesign(_) => {
                // A whole-design swap touches everything.
                for slot in 0..pm.slot_count() {
                    self.capture_slot(pm, slot);
                }
                self.capture_selector(pm);
                self.capture_crossbar(pm);
                self.capture_draining(pm);
                self.capture_linkage(linkage);
                self.capture_sm_whole(sm);
            }
        }
    }

    /// Restores every captured pre-image, newest first, returning the
    /// PM/SM/linkage to the batch's starting state.
    pub(crate) fn rollback(
        self,
        pm: &mut PipelineModule,
        sm: &mut StorageModule,
        linkage: &mut HeaderLinkage,
    ) {
        for op in self.ops.into_iter().rev() {
            match op {
                UndoOp::Slot { slot, prev } => {
                    if let Some(s) = pm.slots.get_mut(slot) {
                        s.template = prev;
                    }
                }
                UndoOp::Selector(prev) => pm.selector = prev,
                UndoOp::Crossbar(prev) => pm.crossbar = *prev,
                UndoOp::Draining(prev) => pm.draining = prev,
                UndoOp::Linkage(prev) => *linkage = *prev,
                UndoOp::Metadata(prev) => sm.metadata = prev,
                UndoOp::Action { name, prev } => match prev {
                    Some(def) => {
                        sm.actions.insert(name, def);
                    }
                    None => {
                        sm.actions.remove(&name);
                    }
                },
                UndoOp::Table { idx, store, blocks } => {
                    sm.restore_table_checkpoint(idx, *store, &blocks);
                }
                UndoOp::SmWhole(prev) => *sm = *prev,
            }
        }
    }
}

/// What the supervisor detected about a shard worker at a barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The worker's channel disconnected: its thread died.
    Disconnected,
    /// No barrier reply arrived within the drain timeout: the worker is
    /// wedged (or dead without closing its channel yet).
    DrainTimeout(Duration),
    /// The worker reported a protocol violation it survived locally.
    Protocol(String),
}

impl std::fmt::Display for ShardFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFaultKind::Disconnected => write!(f, "worker channel disconnected"),
            ShardFaultKind::DrainTimeout(t) => {
                write!(f, "no barrier reply within {t:?} (worker wedged)")
            }
            ShardFaultKind::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

/// A quarantined shard worker: which shard and what the supervisor saw.
///
/// These replace the former process-wide panics — the supervisor records
/// the fault, rehashes the shard's RSS bucket across survivors, and
/// respawns a replacement at the next epoch publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFault {
    /// Index of the faulted shard.
    pub shard: usize,
    /// What was detected.
    pub kind: ShardFaultKind,
}

impl ShardFault {
    /// The typed error form, for surfaces that propagate `CoreError`.
    pub fn to_error(&self) -> CoreError {
        CoreError::Shard {
            shard: self.shard,
            detail: self.kind.to_string(),
        }
    }
}

/// Cumulative supervisor counters (observability for the recovery paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SupervisorStats {
    /// Workers quarantined (timeout, disconnect, or protocol fault).
    pub quarantined: u64,
    /// Replacement workers spawned at epoch publishes.
    pub respawned: u64,
    /// Packets charged to dead workers (dispatched but never returned, or
    /// declared lost by the worker itself).
    pub lost_packets: u64,
    /// Batches the master interpreter carried because no shard was live.
    pub degraded_batches: u64,
    /// Barrier replies discarded because their worker generation was stale
    /// (a quarantined worker answering late must not double-count).
    pub stale_replies: u64,
}

/// Deterministic fault-injection plan, threaded through [`crate::ShardedSwitch`]
/// and `ccm::apply_msgs` behind this test-only surface (the shipped binary
/// never constructs one — same pattern as `rp4c`'s lowering fault hooks).
/// Kept out of rustdoc: not a public API, but always compiled so
/// integration tests in other crates can drive every recovery path with
/// seeded, reproducible schedules.
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Kill shard N when it serves barrier K: the worker exits without
    /// replying, exactly like a crash mid-collect.
    pub kill_at_barrier: Vec<(usize, u64)>,
    /// Delay shard N's barrier-K reply by the given duration (drives the
    /// drain-timeout + stale-reply discard paths).
    pub delay_reply: Vec<(usize, u64, Duration)>,
    /// Skip respawning quarantined workers for the next N epoch publishes,
    /// holding the switch degraded long enough for tests to observe
    /// rehashed dispatch (and, with no survivors, interpreter fallback).
    pub defer_respawns: u64,
    /// Fail compilation of exactly this control-plane epoch, forcing the
    /// same interpreter fallback a genuinely uncompilable program takes.
    pub poison_compile_at_epoch: Option<u64>,
    /// Fail the M-th message (0-based) of every control batch, exercising
    /// the transactional rollback at an arbitrary batch position.
    pub fail_msg_at: Option<usize>,
    /// Inflate shard N's reported busy time by the given nanoseconds at
    /// barrier K — a deterministic load spike that drives the autoscaler's
    /// grow/shrink decisions without depending on real timing.
    pub spike_busy: Vec<(usize, u64, u64)>,
}

impl FaultPlan {
    /// Should `shard` be killed when serving `barrier`?
    pub fn kill_directive(&self, shard: usize, barrier: u64) -> bool {
        self.kill_at_barrier.contains(&(shard, barrier))
    }

    /// Reply delay for `shard` at `barrier`, if any.
    pub fn delay_directive(&self, shard: usize, barrier: u64) -> Option<Duration> {
        self.delay_reply
            .iter()
            .find(|(s, b, _)| *s == shard && *b == barrier)
            .map(|(_, _, d)| *d)
    }

    /// Injected busy-time spike (ns) for `shard` at `barrier`, if any.
    pub fn spike_directive(&self, shard: usize, barrier: u64) -> Option<u64> {
        self.spike_busy
            .iter()
            .find(|(s, b, _)| *s == shard && *b == barrier)
            .map(|(_, _, ns)| *ns)
    }
}
