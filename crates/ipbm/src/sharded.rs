//! Multi-core sharded runtime: N independent shard workers behind an
//! RSS-style flow-hash dispatcher.
//!
//! One core is the ceiling of the epoch-compiled fast path; RMT/PISA-lineage
//! hardware scales by replicating pipelines, and software dataplanes (the
//! DPDK/VPP lineage) scale by hashing flows across per-core shards with
//! RCU-published configuration. [`ShardedSwitch`] reproduces that shape on
//! top of the existing modules:
//!
//! * **Dispatch** — [`ipsa_core::hash::flow_hash`] over the raw frame maps
//!   every packet of a flow to the same shard, so per-flow packet order is
//!   preserved end to end (each worker is FIFO, and a flow never crosses
//!   workers). Inter-flow order across shards is explicitly unspecified,
//!   exactly as in a multi-queue NIC.
//! * **Shard worker** — an OS thread owning an `Arc<CompiledPath>`, its own
//!   [`EvalScratch`], [`TrafficManager`], per-slot stats, and a clone of the
//!   [`StorageModule`] (tables are read-mostly on the data plane; the only
//!   per-packet writes are entry hit counters, which accumulate shard-
//!   locally and fold back at barriers as deltas).
//! * **Epoch barrier** — control batches go through
//!   [`Device::apply`]: quiesce every shard (bounded drain with a timeout),
//!   apply the `ControlMsg` batch once against the master SM/CCM state,
//!   recompile, and publish the new `Arc<CompiledPath>` + SM snapshot to
//!   all shards (RCU-style: workers swap atomically between packets, they
//!   never observe a half-applied batch). Mid-stream rP4 updates therefore
//!   stay hitless: packets arriving during the barrier wait in the CM's RX
//!   rings and are processed under the *new* epoch, none are lost or run
//!   against stale state.
//!
//! The master [`IpbmSwitch`] stays the single authority for control-plane
//! state and the aggregation target for every statistic, so `report()` and
//! the differential observability checks read one coherent view: the merged
//! stats of N shards equal the 1-shard (and interpreter) result.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use ipsa_core::control::{ApplyReport, ControlMsg, Device};
use ipsa_core::error::CoreError;
use ipsa_core::hash::flow_hash;
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::packet::Packet;

use crate::fast::{self, CompiledPath, EvalScratch, SlotStatsMut};
use crate::pm::{PipelineStats, TmStats, TrafficManager, TM_QUEUE_CAPACITY};
use crate::sm::StorageModule;
use crate::switch::{IpbmConfig, IpbmSwitch, SwitchReport};
use crate::tsp::SlotStats;

/// How long a barrier waits for each shard before declaring it wedged.
const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Everything a shard needs for one control-plane epoch, published
/// atomically (a worker swaps to it between packets, never mid-packet).
struct ShardEpoch {
    compiled: Arc<CompiledPath>,
    linkage: Arc<HeaderLinkage>,
    /// Clean-slate SM clone: observability zeroed, entry counters at the
    /// master's current (fold-merged) values.
    sm: StorageModule,
}

/// Master → worker protocol. Per-worker channels are FIFO, which is what
/// makes publication race-free: a `Publish` always precedes every `Batch`
/// dispatched under its epoch.
enum ToShard {
    Publish(Box<ShardEpoch>),
    Batch(Vec<Packet>),
    Collect,
    Shutdown,
}

/// Per-table stat delta a shard reports at a barrier.
struct TableDelta {
    /// Slab index in the master SM (stable across an epoch).
    store: usize,
    lookups: u64,
    hits: u64,
    /// Sparse `(row, delta)` entry-counter increments.
    counters: Vec<(usize, u64)>,
}

/// Worker → master barrier reply: emitted packets in processing order plus
/// every statistic accumulated since the previous collect, as deltas.
struct ShardReply {
    shard: usize,
    out: Vec<Packet>,
    stats: PipelineStats,
    tm: TmStats,
    slot_stats: Vec<SlotStats>,
    mem_accesses: u64,
    tables: Vec<TableDelta>,
    /// Nanoseconds this shard spent processing packets (for the scaling
    /// bench's critical-path aggregate throughput).
    busy_ns: u64,
}

struct Worker {
    tx: Sender<ToShard>,
    handle: Option<JoinHandle<()>>,
}

/// The sharded IPSA runtime: an [`IpbmSwitch`] master plus N shard workers.
pub struct ShardedSwitch {
    /// The authoritative single-core switch: CM port rings, control-plane
    /// state (PM templates/selector/crossbar, SM, linkage), and the target
    /// every shard statistic folds into.
    pub master: IpbmSwitch,
    workers: Vec<Worker>,
    reply_rx: Receiver<ShardReply>,
    shards: usize,
    drain_timeout: Duration,
    /// Master state changed since the last publication.
    dirty: bool,
    /// Compilation failed for the current epoch: the master's interpreter
    /// carries the traffic until a later epoch compiles again.
    fallback: bool,
    /// Cumulative per-shard busy time, ns.
    busy_ns: Vec<u64>,
    name: String,
}

impl std::fmt::Debug for ShardedSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSwitch")
            .field("shards", &self.shards)
            .field("dirty", &self.dirty)
            .field("fallback", &self.fallback)
            .finish_non_exhaustive()
    }
}

impl ShardedSwitch {
    /// Builds a sharded switch with `shards` workers over `cfg`.
    pub fn new(cfg: IpbmConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let ports = cfg.ports;
        let slots = cfg.slots;
        let master = IpbmSwitch::new(cfg);
        let (reply_tx, reply_rx) = unbounded::<ShardReply>();
        let workers = (0..shards)
            .map(|shard| {
                let (tx, rx) = unbounded::<ToShard>();
                let reply = reply_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("ipbm-shard-{shard}"))
                    .spawn(move || worker_loop(shard, ports, slots, &rx, &reply))
                    .expect("shard worker spawns");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardedSwitch {
            master,
            workers,
            reply_rx,
            shards,
            drain_timeout: DEFAULT_DRAIN_TIMEOUT,
            dirty: true,
            fallback: false,
            busy_ns: vec![0; shards],
            name: format!("ipbm-sharded-{shards}"),
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Overrides the barrier timeout (bounded drain).
    pub fn set_drain_timeout(&mut self, timeout: Duration) {
        self.drain_timeout = timeout;
    }

    /// True when traffic currently runs on the shards' compiled paths (as
    /// opposed to the master interpreter fallback after a failed compile).
    pub fn on_compiled_path(&self) -> bool {
        !self.fallback
    }

    /// Cumulative busy time per shard, nanoseconds — the scaling bench's
    /// critical-path input (aggregate rate = packets / max shard busy).
    pub fn shard_busy_ns(&self) -> &[u64] {
        &self.busy_ns
    }

    /// Installs a complete compiled design (initial load).
    pub fn install(
        &mut self,
        design: &ipsa_core::template::CompiledDesign,
    ) -> Result<ApplyReport, CoreError> {
        self.apply(&ipsa_core::control::full_install_msgs(design))
    }

    /// Observability snapshot (the master's fold-merged view).
    pub fn report(&self) -> SwitchReport {
        self.master.report()
    }

    /// Recompiles the master's current epoch and publishes it to every
    /// shard. On compile failure the master interpreter takes over until a
    /// later epoch compiles (the single-core switch falls back the same
    /// way), so a broken program degrades throughput, not correctness.
    fn republish(&mut self) {
        let pm = &self.master.pm;
        match fast::compile(
            &pm.slots,
            &pm.selector,
            &pm.crossbar,
            &self.master.sm,
            &self.master.linkage,
            pm.epoch(),
        ) {
            Ok(cp) => {
                let compiled = Arc::new(cp);
                let linkage = Arc::new(self.master.linkage.clone());
                for w in &self.workers {
                    let mut sm = self.master.sm.clone();
                    sm.reset_observability();
                    w.tx.send(ToShard::Publish(Box::new(ShardEpoch {
                        compiled: Arc::clone(&compiled),
                        linkage: Arc::clone(&linkage),
                        sm,
                    })))
                    .unwrap_or_else(|_| panic!("shard worker hung up"));
                }
                self.dirty = false;
                self.fallback = false;
            }
            Err(_) => {
                self.fallback = true;
            }
        }
    }

    /// The epoch barrier's drain half: ask every shard for its pending
    /// output and stat deltas, wait (bounded) for all replies, fold them
    /// into the master in shard order. Because each worker processes its
    /// channel FIFO and batches synchronously, a returned `Collect` proves
    /// the shard has finished every packet dispatched before it.
    fn quiesce(&mut self) {
        for w in &self.workers {
            w.tx.send(ToShard::Collect)
                .unwrap_or_else(|_| panic!("shard worker hung up"));
        }
        let mut replies: Vec<Option<ShardReply>> = (0..self.shards).map(|_| None).collect();
        for _ in 0..self.shards {
            match self.reply_rx.recv_timeout(self.drain_timeout) {
                Ok(r) => {
                    let shard = r.shard;
                    replies[shard] = Some(r);
                }
                Err(e) => panic!(
                    "shard quiesce: no reply within {:?} ({e}); a worker is wedged",
                    self.drain_timeout
                ),
            }
        }
        for r in replies.into_iter().flatten() {
            self.fold(r);
        }
    }

    /// The common front half of a sharded batch: handles the draining and
    /// interpreter-fallback cases (`Err` carries their finished output) or
    /// returns the per-shard RSS buckets to dispatch. Per-flow order is
    /// preserved because buckets are FIFO and a flow maps to one shard.
    #[allow(clippy::result_large_err)]
    fn pre_batch(&mut self) -> Result<Vec<Vec<Packet>>, Vec<Packet>> {
        if self.master.pm.draining {
            return Err(self.master.cm.collect_tx());
        }
        if self.dirty || self.fallback {
            self.republish();
        }
        if self.fallback {
            self.dirty = true; // master counters advance under the interpreter
            return Err(self.master.run());
        }
        let mut buckets: Vec<Vec<Packet>> = (0..self.shards).map(|_| Vec::new()).collect();
        while let Some(pkt) = self.master.cm.next_rx() {
            let shard = (flow_hash(&pkt.data) % self.shards as u64) as usize;
            buckets[shard].push(pkt);
        }
        Ok(buckets)
    }

    /// [`Device::run_batch`], but shards process one at a time instead of
    /// concurrently. Output, statistics, and counters are identical (the
    /// fold already happens in shard order); what changes is that each
    /// worker's self-timed `busy_ns` is uncontended by its siblings. This
    /// is the measurement mode for the scaling bench on hosts with fewer
    /// cores than shards, where concurrent workers timeslice one core and
    /// wall-clock readings would charge each shard for its neighbors.
    pub fn run_batch_sequential(&mut self) -> Vec<Packet> {
        match self.pre_batch() {
            Ok(buckets) => {
                for (shard, bucket) in buckets.into_iter().enumerate() {
                    let w = &self.workers[shard];
                    if !bucket.is_empty() {
                        w.tx.send(ToShard::Batch(bucket))
                            .unwrap_or_else(|_| panic!("shard worker hung up"));
                    }
                    w.tx.send(ToShard::Collect)
                        .unwrap_or_else(|_| panic!("shard worker hung up"));
                    match self.reply_rx.recv_timeout(self.drain_timeout) {
                        Ok(r) => {
                            debug_assert_eq!(r.shard, shard, "serial barrier");
                            self.fold(r);
                        }
                        Err(e) => panic!(
                            "shard {shard}: no reply within {:?} ({e}); worker is wedged",
                            self.drain_timeout
                        ),
                    }
                }
                self.master.cm.collect_tx()
            }
            Err(handled) => handled,
        }
    }

    /// Folds one shard's barrier reply into the master's statistics and
    /// transmits its output through the master CM.
    fn fold(&mut self, r: ShardReply) {
        let pm = &mut self.master.pm;
        pm.stats.received += r.stats.received;
        pm.stats.emitted += r.stats.emitted;
        pm.stats.action_drops += r.stats.action_drops;
        pm.stats.parse_drops += r.stats.parse_drops;
        pm.stats.held_during_drain += r.stats.held_during_drain;
        pm.tm.stats.enqueued += r.tm.enqueued;
        pm.tm.stats.no_route_drops += r.tm.no_route_drops;
        pm.tm.stats.tail_drops += r.tm.tail_drops;
        pm.tm.stats.max_depth = pm.tm.stats.max_depth.max(r.tm.max_depth);
        for (slot, ss) in r.slot_stats.iter().enumerate() {
            if let Some(s) = pm.slots.get_mut(slot) {
                s.stats.absorb(ss);
            }
        }
        self.master.sm.mem_accesses += r.mem_accesses;
        for td in r.tables {
            if let Some(store) = self.master.sm.store_at_mut(td.store) {
                store.table.lookups += td.lookups;
                store.table.hits += td.hits;
                for (row, delta) in td.counters {
                    store.table.add_row_counter(row, delta);
                }
            }
        }
        self.busy_ns[r.shard] += r.busy_ns;
        for pkt in r.out {
            self.master.cm.transmit(pkt);
        }
    }
}

impl Device for ShardedSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&mut self, msgs: &[ControlMsg]) -> Result<ApplyReport, CoreError> {
        // Epoch barrier: drain the shards, apply the batch exactly once
        // against the master, and leave republication to the next batch of
        // traffic (several control batches coalesce into one compile).
        self.quiesce();
        let report = self.master.apply(msgs)?;
        self.dirty = true;
        Ok(report)
    }

    fn inject(&mut self, packet: Packet) {
        self.master.cm.inject(packet);
    }

    fn run(&mut self) -> Vec<Packet> {
        // Reference semantics: the master interpreter processes in arrival
        // order. Shard SM clones go stale (counters advance on the master),
        // so the next sharded batch republishes first.
        self.quiesce();
        self.dirty = true;
        self.master.run()
    }

    fn run_batch(&mut self) -> Vec<Packet> {
        match self.pre_batch() {
            Ok(buckets) => {
                for (w, bucket) in self.workers.iter().zip(buckets) {
                    if !bucket.is_empty() {
                        w.tx.send(ToShard::Batch(bucket))
                            .unwrap_or_else(|_| panic!("shard worker hung up"));
                    }
                }
                // Barrier: every batch ends fully folded, so stats and
                // counters are coherent before any control message can
                // observe them.
                self.quiesce();
                self.master.cm.collect_tx()
            }
            Err(handled) => handled,
        }
    }

    fn pending(&self) -> usize {
        self.master.cm.rx_pending()
    }
}

impl Drop for ShardedSwitch {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(ToShard::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Worker-side epoch state: the published artifacts plus the entry-counter
/// baseline for delta reporting.
struct EpochState {
    compiled: Arc<CompiledPath>,
    linkage: Arc<HeaderLinkage>,
    sm: StorageModule,
    /// Per-store, per-row counter values at the last collect (or publish).
    counter_base: Vec<Vec<u64>>,
}

impl EpochState {
    fn new(e: ShardEpoch) -> Self {
        let counter_base = snapshot_counters(&e.sm);
        EpochState {
            compiled: e.compiled,
            linkage: e.linkage,
            sm: e.sm,
            counter_base,
        }
    }
}

fn snapshot_counters(sm: &StorageModule) -> Vec<Vec<u64>> {
    (0..sm.store_count())
        .map(|idx| match sm.store_at(idx) {
            Some(store) => {
                let mut v = vec![0u64; store.table.rows_len()];
                for (row, e) in store.table.iter() {
                    v[row] = e.counter;
                }
                v
            }
            None => Vec::new(),
        })
        .collect()
}

fn worker_loop(
    shard: usize,
    ports: usize,
    slots: usize,
    rx: &Receiver<ToShard>,
    reply: &Sender<ShardReply>,
) {
    let mut epoch: Option<EpochState> = None;
    let mut scratch = EvalScratch::default();
    let mut tm = TrafficManager::new(ports, TM_QUEUE_CAPACITY);
    let mut stats = PipelineStats::default();
    let mut slot_stats = vec![SlotStats::default(); slots];
    let mut out: Vec<Packet> = Vec::new();
    let mut busy_ns = 0u64;
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Publish(e) => {
                // RCU swap: the previous epoch's artifacts drop here, after
                // the last packet that used them.
                epoch = Some(EpochState::new(*e));
            }
            ToShard::Batch(pkts) => {
                let ep = epoch
                    .as_mut()
                    .expect("protocol: Batch before first Publish");
                let t0 = Instant::now();
                for pkt in pkts {
                    let r = ep.compiled.run_packet_parts(
                        &mut stats,
                        SlotStatsMut::Stats(&mut slot_stats),
                        &mut tm,
                        &ep.linkage,
                        &mut ep.sm,
                        &mut scratch,
                        pkt,
                    );
                    // Same drop taxonomy as the single-core switch; other
                    // errors surface loudly in debug builds only (the data
                    // plane must not wedge on one bad packet).
                    match crate::switch::classify_packet_result(r, &mut stats) {
                        Ok(Some(p)) => out.push(p),
                        Ok(None) => {}
                        Err(e) => {
                            debug_assert!(false, "shard pipeline error: {e}");
                            let _ = e;
                        }
                    }
                }
                busy_ns += t0.elapsed().as_nanos() as u64;
            }
            ToShard::Collect => {
                let tables = match &mut epoch {
                    Some(ep) => {
                        let mut tables = Vec::new();
                        for idx in 0..ep.sm.store_count() {
                            let Some(store) = ep.sm.store_at(idx) else {
                                continue;
                            };
                            let base = &mut ep.counter_base[idx];
                            let mut counters = Vec::new();
                            for (row, e) in store.table.iter() {
                                let prev = base.get(row).copied().unwrap_or(0);
                                if e.counter > prev {
                                    counters.push((row, e.counter - prev));
                                }
                            }
                            for (row, delta) in &counters {
                                base[*row] += delta;
                            }
                            if store.table.lookups > 0
                                || store.table.hits > 0
                                || !counters.is_empty()
                            {
                                tables.push(TableDelta {
                                    store: idx,
                                    lookups: store.table.lookups,
                                    hits: store.table.hits,
                                    counters,
                                });
                            }
                        }
                        let mem = ep.sm.mem_accesses;
                        ep.sm.reset_observability();
                        (tables, mem)
                    }
                    None => (Vec::new(), 0),
                };
                let (tables, mem_accesses) = tables;
                let r = ShardReply {
                    shard,
                    out: std::mem::take(&mut out),
                    stats: std::mem::take(&mut stats),
                    tm: std::mem::take(&mut tm.stats),
                    slot_stats: std::mem::replace(
                        &mut slot_stats,
                        vec![SlotStats::default(); slots],
                    ),
                    mem_accesses,
                    tables,
                    busy_ns: std::mem::take(&mut busy_ns),
                };
                if reply.send(r).is_err() {
                    break; // master gone
                }
            }
            ToShard::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::pipeline_cfg::SelectorConfig;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::{MatcherBranch, TspTemplate};
    use ipsa_core::value::ValueRef;
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    /// The same one-stage L3 program as `switch.rs`'s `minimal_switch`,
    /// as a message batch against any device.
    fn l3_msgs(port: u16) -> Vec<ControlMsg> {
        vec![
            ControlMsg::Drain,
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ethernet()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv4()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::udp()),
            ControlMsg::SetFirstHeader("ethernet".into()),
            ControlMsg::DefineAction(ipsa_core::action::ActionDef {
                name: "fwd".into(),
                params: vec![("port".into(), 16)],
                body: vec![ipsa_core::action::Primitive::Forward {
                    port: ValueRef::Param(0),
                }],
            }),
            ControlMsg::CreateTable {
                def: TableDef {
                    name: "route".into(),
                    key: vec![KeyField {
                        source: ValueRef::field("ipv4", "dst_addr"),
                        bits: 32,
                        kind: MatchKind::Lpm,
                    }],
                    size: 64,
                    actions: vec!["fwd".into()],
                    default_action: ActionCall::no_action(),
                    with_counters: false,
                },
                blocks: vec![0],
            },
            ControlMsg::WriteTemplate {
                slot: 0,
                template: TspTemplate {
                    stage_name: "route_s".into(),
                    func: "base".into(),
                    parse: vec!["ipv4".into()],
                    branches: vec![MatcherBranch {
                        pred: ipsa_core::predicate::Predicate::IsValid("ipv4".into()),
                        table: Some("route".into()),
                    }],
                    executor: vec![(1, ActionCall::new("fwd", vec![]))],
                    default_action: ActionCall::no_action(),
                },
            },
            ControlMsg::ConnectCrossbar {
                slot: 0,
                blocks: vec![0],
            },
            ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
            ControlMsg::Resume,
            ControlMsg::AddEntry {
                table: "route".into(),
                entry: TableEntry {
                    key: vec![ipsa_core::table::KeyMatch::Lpm {
                        value: 0x0a000000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                    action: ActionCall::new("fwd", vec![port as u128]),
                    counter: 0,
                },
            },
        ]
    }

    fn traffic(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                ipv4_udp_packet(&Ipv4UdpSpec {
                    src_ip: 0x0a00_0100 + (i as u32 % 7),
                    dst_ip: 0x0a01_0000 + i as u32,
                    ..Default::default()
                })
            })
            .collect()
    }

    #[test]
    fn sharded_matches_single_core_on_l3() {
        let mut single = IpbmSwitch::new(IpbmConfig::default());
        single.apply(&l3_msgs(4)).unwrap();
        let mut sharded = ShardedSwitch::new(IpbmConfig::default(), 4);
        sharded.apply(&l3_msgs(4)).unwrap();

        for p in traffic(64) {
            single.inject(p.clone());
            sharded.inject(p);
        }
        let mut a = single.run_batch();
        let mut b = sharded.run_batch();
        assert!(sharded.on_compiled_path());
        assert_eq!(a.len(), b.len());
        let key = |p: &Packet| (p.data.clone(), p.meta.egress_port);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "merged shard output must equal single-core output");
        assert_eq!(single.report().pipeline, sharded.report().pipeline);
        assert_eq!(single.report().tm, sharded.report().tm);
        assert_eq!(single.sm.mem_accesses, sharded.master.sm.mem_accesses);
        let busy: u64 = sharded.shard_busy_ns().iter().sum();
        assert!(busy > 0, "workers must self-time their batches");
    }

    #[test]
    fn one_shard_is_bit_exact_with_single_core() {
        let mut single = IpbmSwitch::new(IpbmConfig::default());
        single.apply(&l3_msgs(4)).unwrap();
        let mut sharded = ShardedSwitch::new(IpbmConfig::default(), 1);
        sharded.apply(&l3_msgs(4)).unwrap();
        for p in traffic(32) {
            single.inject(p.clone());
            sharded.inject(p);
        }
        // One shard sees the exact arrival order, so even inter-flow order
        // and per-port TX rings match the single-core switch bit-for-bit.
        assert_eq!(single.run_batch(), sharded.run_batch());
        assert_eq!(
            single.cm.port_stats(),
            sharded.master.cm.port_stats(),
            "per-port counters must match"
        );
    }

    #[test]
    fn update_between_batches_is_hitless_and_fresh() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 2);
        sw.apply(&l3_msgs(4)).unwrap();
        for p in traffic(8) {
            sw.inject(p);
        }
        let first = sw.run_batch();
        assert!(first.iter().all(|p| p.meta.egress_port == Some(4)));
        // Re-point the route mid-stream; packets already injected must be
        // processed under the *new* epoch (never a stale one).
        for p in traffic(8) {
            sw.inject(p);
        }
        sw.apply(&[ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0a010000,
                    prefix_len: 16,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![6]),
                counter: 0,
            },
        }])
        .unwrap();
        let second = sw.run_batch();
        assert_eq!(second.len(), 8, "no packet lost across the barrier");
        assert!(
            second.iter().all(|p| p.meta.egress_port == Some(6)),
            "all packets ran under the new epoch"
        );
    }

    #[test]
    fn sequential_batch_matches_concurrent() {
        let mut a = ShardedSwitch::new(IpbmConfig::default(), 3);
        a.apply(&l3_msgs(4)).unwrap();
        let mut b = ShardedSwitch::new(IpbmConfig::default(), 3);
        b.apply(&l3_msgs(4)).unwrap();
        for p in traffic(48) {
            a.inject(p.clone());
            b.inject(p);
        }
        let out_a = a.run_batch();
        let out_b = b.run_batch_sequential();
        // Both modes fold in shard order, so even the output order matches.
        assert_eq!(out_a, out_b);
        assert_eq!(a.report().pipeline, b.report().pipeline);
        assert!(b.shard_busy_ns().iter().sum::<u64>() > 0);
    }

    #[test]
    fn draining_holds_traffic_until_resume() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 2);
        sw.apply(&l3_msgs(4)).unwrap();
        sw.apply(&[ControlMsg::Drain]).unwrap();
        for p in traffic(5) {
            sw.inject(p);
        }
        assert!(sw.run_batch().is_empty());
        assert_eq!(sw.pending(), 5);
        sw.apply(&[ControlMsg::Resume]).unwrap();
        assert_eq!(sw.run_batch().len(), 5);
    }

    #[test]
    fn per_flow_order_is_preserved() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 4);
        sw.apply(&l3_msgs(4)).unwrap();
        // 8 flows × 32 packets, payload carrying a per-flow sequence
        // number; interleave the flows on inject.
        let flows = 8u32;
        let per_flow = 32u32;
        for seq in 0..per_flow {
            for f in 0..flows {
                sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
                    src_ip: 0x0a00_0200 + f,
                    dst_ip: 0x0a01_0000 + f,
                    payload: seq.to_be_bytes().to_vec(),
                    ..Default::default()
                }));
            }
        }
        let out = sw.run_batch();
        assert_eq!(out.len(), (flows * per_flow) as usize);
        // Within each flow the sequence numbers must appear in order.
        let mut last: std::collections::HashMap<u32, Option<u32>> = Default::default();
        for p in &out {
            let n = p.data.len();
            let dst = u32::from_be_bytes(p.data[30..34].try_into().unwrap());
            let seq = u32::from_be_bytes(p.data[n - 4..].try_into().unwrap());
            let prev = last.entry(dst).or_insert(None);
            if let Some(prev) = *prev {
                assert!(seq > prev, "flow {dst:#x}: {seq} after {prev}");
            }
            *prev = Some(seq);
        }
        assert_eq!(last.len(), flows as usize);
    }
}
