//! Multi-core sharded runtime: N independent shard workers behind an
//! RSS-style flow-hash dispatcher.
//!
//! One core is the ceiling of the epoch-compiled fast path; RMT/PISA-lineage
//! hardware scales by replicating pipelines, and software dataplanes (the
//! DPDK/VPP lineage) scale by hashing flows across per-core shards with
//! RCU-published configuration. [`ShardedSwitch`] reproduces that shape on
//! top of the existing modules:
//!
//! * **Dispatch** — [`ipsa_core::hash::flow_hash`] over the raw frame maps
//!   every packet of a flow to the same shard, so per-flow packet order is
//!   preserved end to end (each worker is FIFO, and a flow never crosses
//!   workers). Inter-flow order across shards is explicitly unspecified,
//!   exactly as in a multi-queue NIC.
//! * **Shard worker** — an OS thread owning an `Arc<CompiledPath>`, its own
//!   [`EvalScratch`], [`TrafficManager`], per-slot stats, and a clone of the
//!   [`StorageModule`] (tables are read-mostly on the data plane; the only
//!   per-packet writes are entry hit counters, which accumulate shard-
//!   locally and fold back at barriers as deltas).
//! * **Epoch barrier** — control batches go through
//!   [`Device::apply`]: quiesce every shard (bounded drain with a timeout),
//!   apply the `ControlMsg` batch once against the master SM/CCM state,
//!   recompile, and publish the new `Arc<CompiledPath>` + SM snapshot to
//!   all shards (RCU-style: workers swap atomically between packets, they
//!   never observe a half-applied batch). Mid-stream rP4 updates therefore
//!   stay hitless: packets arriving during the barrier wait in the CM's RX
//!   rings and are processed under the *new* epoch, none are lost or run
//!   against stale state.
//!
//! The master [`IpbmSwitch`] stays the single authority for control-plane
//! state and the aggregation target for every statistic, so `report()` and
//! the differential observability checks read one coherent view: the merged
//! stats of N shards equal the 1-shard (and interpreter) result.
//!
//! * **Supervision** — a worker that misses the drain timeout, whose
//!   channel disconnects, or that reports a protocol fault is *quarantined*
//!   (typed [`ShardFault`], never a process panic): its sender is dropped,
//!   its reply generation is retired so late answers are discarded, and its
//!   RSS bucket rehashes deterministically across the survivors (per-flow
//!   order holds — a flow still maps to exactly one shard). A replacement
//!   worker respawns at the next epoch publish; if every shard is lost the
//!   master interpreter carries the traffic, the same degradation the fast
//!   path already uses for a failed compile.
//! * **Elastic scaling** — with an [`AutoscaleConfig`] installed, the
//!   supervisor turns the per-shard busy time it already folds back at
//!   every barrier into grow/shrink decisions: sustained overload raises
//!   the target worker count (the respawn path spawns the newcomers at the
//!   next epoch publish), sustained idleness retires the highest-index
//!   workers hitlessly (post-barrier, nothing in flight, no packets lost).
//!   Both transitions move whole RSS buckets between fully-drained
//!   batches, so per-flow order holds across every resize exactly as it
//!   does across a quarantine rehash.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use ipsa_core::control::{ApplyReport, ControlMsg, Device};
use ipsa_core::error::CoreError;
use ipsa_core::hash::flow_hash;
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::packet::Packet;

use crate::fast::{self, CompiledPath, EvalScratch, SlotStatsMut};
use crate::hist::BusyHistogram;
use crate::pm::{PipelineStats, TmStats, TrafficManager, TM_QUEUE_CAPACITY};
use crate::resilience::{FaultPlan, ShardFault, ShardFaultKind, SupervisorStats};
use crate::sm::StorageModule;
use crate::switch::{IpbmConfig, IpbmSwitch, SwitchReport};
use crate::tsp::SlotStats;

/// How long a barrier waits for each shard before declaring it wedged.
const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Everything a shard needs for one control-plane epoch, published
/// atomically (a worker swaps to it between packets, never mid-packet).
struct ShardEpoch {
    compiled: Arc<CompiledPath>,
    linkage: Arc<HeaderLinkage>,
    /// Clean-slate SM clone: observability zeroed, entry counters at the
    /// master's current (fold-merged) values.
    sm: StorageModule,
}

/// Master → worker protocol. Per-worker channels are FIFO, which is what
/// makes publication race-free: a `Publish` always precedes every `Batch`
/// dispatched under its epoch.
enum ToShard {
    Publish(Box<ShardEpoch>),
    Batch(Vec<Packet>),
    /// Barrier collect, carrying this barrier's fault directives for the
    /// worker (an injected crash, a delayed reply, or a busy-time spike).
    /// The master never *uses* its knowledge of an injected kill — it must
    /// detect the death through the same timeout path a real crash would
    /// take.
    Collect {
        kill: bool,
        delay: Option<Duration>,
        spike: Option<u64>,
    },
    Shutdown,
}

/// Per-table stat delta a shard reports at a barrier.
struct TableDelta {
    /// Slab index in the master SM (stable across an epoch).
    store: usize,
    lookups: u64,
    hits: u64,
    /// Sparse `(row, delta)` entry-counter increments.
    counters: Vec<(usize, u64)>,
}

/// Worker → master barrier reply: emitted packets in processing order plus
/// every statistic accumulated since the previous collect, as deltas.
struct ShardReply {
    shard: usize,
    /// Worker incarnation: replies from a retired (quarantined) generation
    /// are discarded, so a delayed answer can never double-count.
    gen: u64,
    out: Vec<Packet>,
    stats: PipelineStats,
    tm: TmStats,
    slot_stats: Vec<SlotStats>,
    mem_accesses: u64,
    tables: Vec<TableDelta>,
    /// Nanoseconds this shard spent processing packets (for the scaling
    /// bench's critical-path aggregate throughput).
    busy_ns: u64,
    /// Packets the worker itself declared lost (protocol violations).
    lost: u64,
    /// Emptied batch-bucket buffers round-tripped back to the master for
    /// reuse, so steady-state RSS dispatch allocates no bucket storage.
    spent: Vec<Vec<Packet>>,
    /// A protocol fault the worker survived locally; the supervisor
    /// quarantines it after folding this reply.
    fault: Option<String>,
}

struct Worker {
    /// None once quarantined: dropping the sender closes the channel, which
    /// is what tells a surviving-but-wedged worker to exit.
    tx: Option<Sender<ToShard>>,
    /// None once quarantined (detached — joining a wedged thread would
    /// hang the supervisor on exactly the fault it just contained).
    handle: Option<JoinHandle<()>>,
    /// Incarnation number, bumped at quarantine.
    gen: u64,
    alive: bool,
    /// Packets dispatched since the last folded barrier reply — charged to
    /// `lost_packets` if the worker dies before replying.
    inflight: u64,
}

/// Hysteresis policy for elastic shard scaling.
///
/// The decision signal is the mean per-live-shard busy time folded back at
/// each data barrier. A barrier whose signal is at or above `grow_busy_ns`
/// extends the *over* streak; at or below `shrink_busy_ns` extends the
/// *under* streak; in between resets both. Once a streak reaches its
/// `*_after` length the target worker count steps by one (bounded by
/// `min_shards..=max_shards`) and the streak restarts, so scaling is
/// gradual and a noisy signal between the two thresholds changes nothing.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Lower bound on the target worker count (≥ 1).
    pub min_shards: usize,
    /// Upper bound on the target worker count (≥ `min_shards`).
    pub max_shards: usize,
    /// Mean per-shard busy ns at/above which a barrier counts as overload.
    pub grow_busy_ns: u64,
    /// Mean per-shard busy ns at/below which a barrier counts as idle.
    /// Must be strictly below `grow_busy_ns` (the hysteresis band).
    pub shrink_busy_ns: u64,
    /// Consecutive overloaded barriers before growing by one worker.
    pub grow_after: u32,
    /// Consecutive idle barriers before shrinking by one worker.
    pub shrink_after: u32,
}

impl AutoscaleConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.min_shards == 0 {
            return Err(CoreError::Config(
                "autoscale min_shards must be at least 1".into(),
            ));
        }
        if self.max_shards < self.min_shards {
            return Err(CoreError::Config(format!(
                "autoscale max_shards ({}) below min_shards ({})",
                self.max_shards, self.min_shards
            )));
        }
        if self.shrink_busy_ns >= self.grow_busy_ns {
            return Err(CoreError::Config(format!(
                "autoscale shrink threshold ({} ns) must be below grow threshold ({} ns)",
                self.shrink_busy_ns, self.grow_busy_ns
            )));
        }
        if self.grow_after == 0 || self.shrink_after == 0 {
            return Err(CoreError::Config(
                "autoscale streak lengths must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Cumulative elastic-scaling counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ScaleStats {
    /// Target increments decided by the autoscaler.
    pub grows: u64,
    /// Target decrements decided by the autoscaler.
    pub shrinks: u64,
    /// Workers retired hitlessly during shrinks.
    pub retired: u64,
}

/// The sharded IPSA runtime: an [`IpbmSwitch`] master plus N shard workers.
pub struct ShardedSwitch {
    /// The authoritative single-core switch: CM port rings, control-plane
    /// state (PM templates/selector/crossbar, SM, linkage), and the target
    /// every shard statistic folds into.
    pub master: IpbmSwitch,
    workers: Vec<Worker>,
    reply_rx: Receiver<ShardReply>,
    /// Kept for respawning replacement workers.
    reply_tx: Sender<ShardReply>,
    /// Desired live worker count. Fixed at the construction count until an
    /// autoscaler moves it; worker slots beyond the target stay retired.
    target: usize,
    ports: usize,
    slots: usize,
    drain_timeout: Duration,
    /// Elastic-scaling policy (None = fixed shard count).
    autoscale: Option<AutoscaleConfig>,
    /// Busy ns folded since the last autoscale decision.
    interval_busy: u64,
    /// Packets folded since the last autoscale decision.
    interval_pkts: u64,
    /// Consecutive barriers at/above the grow threshold.
    over_streak: u32,
    /// Consecutive barriers at/below the shrink threshold.
    under_streak: u32,
    /// Cumulative scaling counters.
    scaling: ScaleStats,
    /// Master state changed since the last publication.
    dirty: bool,
    /// Compilation failed for the current epoch: the master's interpreter
    /// carries the traffic until a later epoch compiles again.
    fallback: bool,
    /// Cumulative per-shard busy time, ns.
    busy_ns: Vec<u64>,
    /// Log2 distribution of per-batch busy-time samples, folded at
    /// barriers (one sample per shard reply) — the fleet health signal.
    busy_hist: BusyHistogram,
    /// Barriers served so far (the `K` coordinate of fault directives).
    barrier: u64,
    /// Test-only fault-injection plan (default: inert).
    faults: FaultPlan,
    /// Epoch publishes left to skip respawning (fault injection).
    defer_respawns: u64,
    /// Cumulative supervision counters.
    supervisor: SupervisorStats,
    /// Typed quarantine log, drained by [`ShardedSwitch::take_shard_faults`].
    faults_log: Vec<ShardFault>,
    /// Reusable RX drain buffer (capacity persists across batches).
    rx_buf: Vec<Packet>,
    /// Retired bucket buffers (from worker round-trips and empty-bucket
    /// skips) awaiting reuse by the next RSS pass.
    spare_buckets: Vec<Vec<Packet>>,
    name: String,
}

/// Bound on pooled bucket buffers. Steady state needs roughly one bucket
/// per shard per in-flight batch plus the round-tripped output buffers;
/// beyond that, retiring extras keeps a traffic spike from pinning memory.
const SPARE_BUCKET_CAP: usize = 64;

impl std::fmt::Debug for ShardedSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSwitch")
            .field("shards", &self.workers.len())
            .field("target", &self.target)
            .field("live", &self.live_shards())
            .field("dirty", &self.dirty)
            .field("fallback", &self.fallback)
            .finish_non_exhaustive()
    }
}

/// Spawns one shard worker. A spawn failure (resource exhaustion) yields a
/// dead-at-birth worker the supervisor retries at the next publish instead
/// of panicking.
fn spawn_worker(
    shard: usize,
    gen: u64,
    ports: usize,
    slots: usize,
    reply: Sender<ShardReply>,
) -> Worker {
    let (tx, rx) = unbounded::<ToShard>();
    match std::thread::Builder::new()
        .name(format!("ipbm-shard-{shard}"))
        .spawn(move || worker_loop(shard, gen, ports, slots, &rx, &reply))
    {
        Ok(handle) => Worker {
            tx: Some(tx),
            handle: Some(handle),
            gen,
            alive: true,
            inflight: 0,
        },
        Err(_) => Worker {
            tx: None,
            handle: None,
            gen,
            alive: false,
            inflight: 0,
        },
    }
}

impl ShardedSwitch {
    /// Pops a pooled bucket buffer, or allocates the pool's first ones.
    fn take_bucket(&mut self) -> Vec<Packet> {
        self.spare_buckets.pop().unwrap_or_default()
    }

    /// Returns an emptied bucket buffer to the pool (dropped beyond the
    /// [`SPARE_BUCKET_CAP`] bound).
    fn recycle_bucket(&mut self, mut bucket: Vec<Packet>) {
        bucket.clear();
        if self.spare_buckets.len() < SPARE_BUCKET_CAP {
            self.spare_buckets.push(bucket);
        }
    }

    /// RSS dispatch over the live shard list: `flow_hash % live.len()`
    /// indexes into the survivors, so with every shard healthy this is the
    /// classic `flow_hash % shards`, and after a quarantine flows rehash
    /// deterministically across the remainder. Per-flow order is preserved
    /// in both regimes — a flow maps to exactly one shard, whose channel is
    /// FIFO. Drains `pkts` in one pass into pooled bucket buffers (workers
    /// hand them back emptied with their barrier reply), so steady-state
    /// dispatch allocates no bucket storage.
    fn bucket_packets(
        &mut self,
        pkts: &mut Vec<Packet>,
        live: &[usize],
    ) -> Vec<(usize, Vec<Packet>)> {
        let mut buckets: Vec<Vec<Packet>> = (0..live.len()).map(|_| self.take_bucket()).collect();
        for pkt in pkts.drain(..) {
            let b = (flow_hash(&pkt.data) % live.len() as u64) as usize;
            buckets[b].push(pkt);
        }
        live.iter().copied().zip(buckets).collect()
    }
}

impl ShardedSwitch {
    /// Builds a sharded switch with `shards` workers over `cfg`.
    ///
    /// # Panics
    /// On an invalid configuration (zero shards, ports, or slots); use
    /// [`ShardedSwitch::try_new`] to handle that as an error.
    pub fn new(cfg: IpbmConfig, shards: usize) -> Self {
        Self::try_new(cfg, shards).expect("invalid sharded-switch config")
    }

    /// Builds a sharded switch with `shards` workers over `cfg`, rejecting
    /// unusable parameters with [`CoreError::Config`]. (Part of the
    /// silent-clamp sweep: `shards=0` used to be quietly rewritten to 1.)
    pub fn try_new(cfg: IpbmConfig, shards: usize) -> Result<Self, CoreError> {
        if shards == 0 {
            return Err(CoreError::Config(
                "sharded switch needs at least one shard (shards=0)".into(),
            ));
        }
        let ports = cfg.ports;
        let slots = cfg.slots;
        let master = IpbmSwitch::try_new(cfg)?;
        let (reply_tx, reply_rx) = unbounded::<ShardReply>();
        let workers = (0..shards)
            .map(|shard| spawn_worker(shard, 0, ports, slots, reply_tx.clone()))
            .collect();
        Ok(ShardedSwitch {
            master,
            workers,
            reply_rx,
            reply_tx,
            target: shards,
            ports,
            slots,
            drain_timeout: DEFAULT_DRAIN_TIMEOUT,
            autoscale: None,
            interval_busy: 0,
            interval_pkts: 0,
            over_streak: 0,
            under_streak: 0,
            scaling: ScaleStats::default(),
            dirty: true,
            fallback: false,
            busy_ns: vec![0; shards],
            busy_hist: BusyHistogram::default(),
            barrier: 0,
            faults: FaultPlan::default(),
            defer_respawns: 0,
            supervisor: SupervisorStats::default(),
            faults_log: Vec::new(),
            rx_buf: Vec::new(),
            spare_buckets: Vec::new(),
            name: format!("ipbm-sharded-{shards}"),
        })
    }

    /// Number of shard worker slots ever created (live, quarantined, or
    /// retired by a shrink).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Number of live (non-quarantined, non-retired) shard workers.
    pub fn live_shards(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// The worker count the supervisor is currently steering toward.
    pub fn target_shards(&self) -> usize {
        self.target
    }

    /// Shard ids currently live, ascending.
    fn live_ids(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&s| self.workers[s].alive)
            .collect()
    }

    /// Installs (or removes, with `None`) the elastic-scaling policy. The
    /// current target is clamped into the policy's bounds, so enabling
    /// autoscale on an out-of-range fleet resizes it at the next batch.
    pub fn set_autoscale(&mut self, cfg: Option<AutoscaleConfig>) -> Result<(), CoreError> {
        if let Some(c) = &cfg {
            c.validate()?;
            self.target = self.target.clamp(c.min_shards, c.max_shards);
            self.dirty = true;
        }
        self.autoscale = cfg;
        self.over_streak = 0;
        self.under_streak = 0;
        self.interval_busy = 0;
        self.interval_pkts = 0;
        Ok(())
    }

    /// Cumulative elastic-scaling counters.
    pub fn scale_stats(&self) -> ScaleStats {
        self.scaling
    }

    /// Cumulative supervision counters.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.supervisor
    }

    /// Epoch barriers served so far. The next quiesce is barrier
    /// `barriers() + 1` — the `K` a fault directive targets.
    pub fn barriers(&self) -> u64 {
        self.barrier
    }

    /// Drains the typed quarantine log (each entry one [`ShardFault`]).
    pub fn take_shard_faults(&mut self) -> Vec<ShardFault> {
        std::mem::take(&mut self.faults_log)
    }

    /// Installs a deterministic fault-injection plan (test-only surface):
    /// shard-kill/delay directives act at barriers, compile poisoning at
    /// epoch publishes, and `fail_msg_at` is forwarded to the master's
    /// transactional apply.
    #[doc(hidden)]
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.defer_respawns = plan.defer_respawns;
        self.master.set_fault_plan(plan.clone());
        self.faults = plan;
    }

    /// Overrides the barrier timeout (bounded drain).
    pub fn set_drain_timeout(&mut self, timeout: Duration) {
        self.drain_timeout = timeout;
    }

    /// True when traffic currently runs on the shards' compiled paths (as
    /// opposed to the master interpreter fallback after a failed compile).
    pub fn on_compiled_path(&self) -> bool {
        !self.fallback
    }

    /// Cumulative busy time per shard, nanoseconds — the scaling bench's
    /// critical-path input (aggregate rate = packets / max shard busy).
    pub fn shard_busy_ns(&self) -> &[u64] {
        &self.busy_ns
    }

    /// The log2-bucketed distribution of per-batch busy-time samples, one
    /// sample folded per shard barrier reply. Where [`Self::shard_busy_ns`]
    /// totals and the autoscaler's p50/p99 proxy summarize, this keeps the
    /// whole shape — the signal the fleet health checker compares across
    /// devices (and merges fleet-wide, losslessly).
    pub fn busy_histogram(&self) -> &BusyHistogram {
        &self.busy_hist
    }

    /// Installs a complete compiled design (initial load).
    pub fn install(
        &mut self,
        design: &ipsa_core::template::CompiledDesign,
    ) -> Result<ApplyReport, CoreError> {
        self.apply(&ipsa_core::control::full_install_msgs(design))
    }

    /// Opens a staged control-plane transaction on the master (see
    /// [`IpbmSwitch::begin_staged`]). Purely a bookkeeping change — shards
    /// keep forwarding on their published epoch until the next barrier.
    pub fn begin_staged(&mut self) -> Result<(), CoreError> {
        self.master.begin_staged()
    }

    /// True while a staged transaction is open on the master.
    pub fn staged_open(&self) -> bool {
        self.master.staged_open()
    }

    /// Commits the open staged transaction (see
    /// [`IpbmSwitch::commit_staged`]). The shards already track the staged
    /// epochs (each staged batch republished like any other), so commit
    /// publishes nothing new.
    pub fn commit_staged(&mut self) -> Result<(), CoreError> {
        self.master.commit_staged()
    }

    /// Reverts the open staged transaction byte-identically (see
    /// [`IpbmSwitch::revert_staged`]) behind an epoch barrier: shards
    /// quiesce first, the master rewinds, and the next batch republishes
    /// the pre-transaction state to every worker.
    pub fn revert_staged(&mut self) -> Result<(), CoreError> {
        self.quiesce();
        self.master.revert_staged()?;
        self.dirty = true;
        Ok(())
    }

    /// Observability snapshot (the master's fold-merged view).
    pub fn report(&self) -> SwitchReport {
        self.master.report()
    }

    /// Quarantines a shard worker: retire its reply generation (late
    /// answers become stale), drop its sender (a surviving-but-wedged
    /// worker exits once the channel closes), detach its thread handle
    /// (joining a wedged thread would hang the supervisor on the very fault
    /// it just contained), and charge its in-flight packets as lost. The
    /// next epoch publish respawns a replacement.
    fn quarantine(&mut self, shard: usize, kind: ShardFaultKind) {
        let Some(w) = self.workers.get_mut(shard) else {
            return;
        };
        if !w.alive {
            return;
        }
        w.alive = false;
        w.gen += 1;
        w.tx = None;
        drop(w.handle.take());
        let lost = std::mem::take(&mut w.inflight);
        self.supervisor.lost_packets += lost;
        self.supervisor.quarantined += 1;
        self.dirty = true; // next batch republishes (and respawns)
        self.faults_log.push(ShardFault { shard, kind });
    }

    /// Gracefully retires one worker during an elastic shrink. Unlike
    /// [`ShardedSwitch::quarantine`] this is not a fault: it runs
    /// post-barrier with nothing in flight, so no packets are lost, no
    /// fault is logged, and the slot is simply parked (a later grow
    /// respawns into it). The generation still retires so a straggling
    /// reply can never double-count.
    fn retire(&mut self, shard: usize) {
        let Some(w) = self.workers.get_mut(shard) else {
            return;
        };
        if !w.alive {
            return;
        }
        debug_assert_eq!(w.inflight, 0, "retire runs post-quiesce");
        w.alive = false;
        w.gen += 1;
        if let Some(tx) = w.tx.take() {
            let _ = tx.send(ToShard::Shutdown);
        }
        drop(w.handle.take());
        // Anything still uncollected (impossible post-quiesce, but a
        // quarantine race could leave residue) is charged as lost rather
        // than silently forgotten.
        self.supervisor.lost_packets += std::mem::take(&mut w.inflight);
        self.scaling.retired += 1;
    }

    /// Brings the worker fleet to the current target: retires live workers
    /// beyond it (hitless shrink), respawns quarantined slots below it, and
    /// spawns brand-new slots for growth — unless an injected deferral is
    /// holding the switch degraded.
    fn reconcile_workers(&mut self) {
        let target = self.target;
        let shrink_needed = self.workers.iter().skip(target).any(|w| w.alive);
        let grow_needed =
            self.workers.len() < target || self.workers.iter().take(target).any(|w| !w.alive);
        if !shrink_needed && !grow_needed {
            return;
        }
        if self.defer_respawns > 0 {
            self.defer_respawns -= 1;
            return;
        }
        for shard in target..self.workers.len() {
            if self.workers[shard].alive {
                self.retire(shard);
            }
        }
        for shard in 0..target.min(self.workers.len()) {
            if self.workers[shard].alive {
                continue;
            }
            let gen = self.workers[shard].gen;
            self.workers[shard] =
                spawn_worker(shard, gen, self.ports, self.slots, self.reply_tx.clone());
            if self.workers[shard].alive {
                self.supervisor.respawned += 1;
            }
        }
        while self.workers.len() < target {
            let shard = self.workers.len();
            self.workers.push(spawn_worker(
                shard,
                0,
                self.ports,
                self.slots,
                self.reply_tx.clone(),
            ));
            if self.busy_ns.len() < self.workers.len() {
                self.busy_ns.push(0);
            }
        }
    }

    /// Recompiles the master's current epoch and publishes it to every
    /// live shard, respawning quarantined workers first (recovery happens
    /// at the epoch publish, so a killed shard is back within two epochs).
    /// On compile failure the master interpreter takes over until a later
    /// epoch compiles (the single-core switch falls back the same way), so
    /// a broken program degrades throughput, not correctness.
    fn republish(&mut self) {
        self.reconcile_workers();
        let pm = &self.master.pm;
        let poisoned = self.faults.poison_compile_at_epoch == Some(pm.epoch());
        let compiled = if poisoned {
            None
        } else {
            fast::compile(
                &pm.slots,
                &pm.selector,
                &pm.crossbar,
                &self.master.sm,
                &self.master.linkage,
                pm.epoch(),
                pm.facts(),
            )
            .ok()
        };
        match compiled {
            Some(cp) => {
                let compiled = Arc::new(cp);
                let linkage = Arc::new(self.master.linkage.clone());
                let mut dead: Vec<usize> = Vec::new();
                for shard in 0..self.workers.len() {
                    let Some(tx) = self.workers[shard].tx.as_ref() else {
                        continue;
                    };
                    let mut sm = self.master.sm.clone();
                    sm.reset_observability();
                    let ep = ShardEpoch {
                        compiled: Arc::clone(&compiled),
                        linkage: Arc::clone(&linkage),
                        sm,
                    };
                    if tx.send(ToShard::Publish(Box::new(ep))).is_err() {
                        dead.push(shard);
                    }
                }
                for shard in dead {
                    self.quarantine(shard, ShardFaultKind::Disconnected);
                }
                self.fallback = false;
                // Stay dirty while any shard below the target is missing
                // so the next batch retries the respawn; clean once at
                // target strength (retired slots beyond it don't count).
                self.dirty = self.workers.len() < self.target
                    || self.workers.iter().take(self.target).any(|w| !w.alive);
            }
            None => {
                self.fallback = true;
            }
        }
    }

    /// The epoch barrier's drain half over every live shard.
    fn quiesce(&mut self) {
        let targets = self.live_ids();
        self.collect_from(&targets);
    }

    /// One barrier round over `targets`: ask each for its pending output
    /// and stat deltas, wait (bounded) for the replies, fold them in shard
    /// order. Because each worker processes its channel FIFO and batches
    /// synchronously, a returned `Collect` proves the shard has finished
    /// every packet dispatched before it. A shard that disconnects, misses
    /// the deadline, or reports a protocol fault is quarantined — never a
    /// process panic.
    fn collect_from(&mut self, targets: &[usize]) {
        if targets.is_empty() {
            return;
        }
        self.barrier += 1;
        let barrier = self.barrier;
        let mut expected: Vec<usize> = Vec::new();
        for &shard in targets {
            let kill = self.faults.kill_directive(shard, barrier);
            let delay = self.faults.delay_directive(shard, barrier);
            let spike = self.faults.spike_directive(shard, barrier);
            let sent = self.workers[shard]
                .tx
                .as_ref()
                .is_some_and(|tx| tx.send(ToShard::Collect { kill, delay, spike }).is_ok());
            if sent {
                expected.push(shard);
            } else {
                self.quarantine(shard, ShardFaultKind::Disconnected);
            }
        }
        let deadline = Instant::now() + self.drain_timeout;
        // Sized by the full worker-slot count, not a construction-time
        // shard count: elastic growth means reply indices can exceed any
        // count captured before this barrier.
        let mut replies: Vec<Option<ShardReply>> = (0..self.workers.len()).map(|_| None).collect();
        let mut awaiting = expected.len();
        while awaiting > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.reply_rx.recv_timeout(deadline - now) {
                Ok(r) => {
                    let fresh = r.shard < replies.len()
                        && expected.contains(&r.shard)
                        && self
                            .workers
                            .get(r.shard)
                            .is_some_and(|w| w.alive && w.gen == r.gen)
                        && replies[r.shard].is_none();
                    if fresh {
                        let shard = r.shard;
                        replies[shard] = Some(r);
                        awaiting -= 1;
                    } else {
                        // A retired generation answering late (or twice):
                        // discard, or its packets would double-count.
                        self.supervisor.stale_replies += 1;
                    }
                }
                Err(_) => break, // deadline passed mid-wait
            }
        }
        for &shard in &expected {
            match replies[shard].take() {
                Some(r) => {
                    let fault = r.fault.clone();
                    self.fold(r);
                    if let Some(detail) = fault {
                        self.quarantine(shard, ShardFaultKind::Protocol(detail));
                    }
                }
                None => self.quarantine(shard, ShardFaultKind::DrainTimeout(self.drain_timeout)),
            }
        }
    }

    /// Sends one RSS bucket to a shard, tracking it as in-flight. If the
    /// worker's channel is gone the shard is quarantined and the bucket is
    /// handed back intact for rehashing.
    fn dispatch(&mut self, shard: usize, bucket: Vec<Packet>) -> Result<(), Vec<Packet>> {
        let n = bucket.len() as u64;
        let Some(tx) = self.workers.get(shard).and_then(|w| w.tx.clone()) else {
            self.quarantine(shard, ShardFaultKind::Disconnected);
            return Err(bucket);
        };
        match tx.send(ToShard::Batch(bucket)) {
            Ok(()) => {
                self.workers[shard].inflight += n;
                Ok(())
            }
            Err(e) => {
                self.quarantine(shard, ShardFaultKind::Disconnected);
                match e.0 {
                    ToShard::Batch(b) => Err(b),
                    _ => unreachable!("dispatch sends Batch"),
                }
            }
        }
    }

    /// The common front half of a sharded batch: handles the draining and
    /// interpreter-fallback cases (`Err` carries their finished output) or
    /// returns `(shard, bucket)` RSS assignments over the live shards.
    #[allow(clippy::result_large_err)]
    fn pre_batch(&mut self) -> Result<Vec<(usize, Vec<Packet>)>, Vec<Packet>> {
        if self.master.pm.draining {
            return Err(self.master.cm.collect_tx());
        }
        if self.dirty || self.fallback {
            self.republish();
        }
        if self.fallback {
            self.dirty = true; // master counters advance under the interpreter
            return Err(self.master.run());
        }
        let live = self.live_ids();
        if live.is_empty() {
            // Every worker is lost and respawn deferred (or failing): the
            // master interpreter degrades gracefully, exactly as it does
            // for an epoch that will not compile.
            self.supervisor.degraded_batches += 1;
            self.dirty = true;
            return Err(self.master.run());
        }
        let mut pkts = std::mem::take(&mut self.rx_buf);
        self.master.cm.rx_burst(usize::MAX, &mut pkts);
        let work = self.bucket_packets(&mut pkts, &live);
        self.rx_buf = pkts;
        Ok(work)
    }

    /// Completes a batch after its initial dispatch: buckets bounced by a
    /// dead worker rehash across the survivors (the whole bucket moves
    /// before any of its packets run, so per-flow order holds), the barrier
    /// folds every live shard, and — only if no shard survived — the master
    /// interpreter carries the remainder.
    fn finish_batch(&mut self, mut leftover: Vec<Packet>) -> Vec<Packet> {
        while !leftover.is_empty() {
            let live = self.live_ids();
            if live.is_empty() {
                break;
            }
            let work = self.bucket_packets(&mut leftover, &live);
            for (shard, bucket) in work {
                if bucket.is_empty() {
                    self.recycle_bucket(bucket);
                    continue;
                }
                if let Err(mut b) = self.dispatch(shard, bucket) {
                    leftover.append(&mut b);
                    self.recycle_bucket(b);
                }
            }
        }
        self.quiesce();
        self.autoscale_tick();
        if leftover.is_empty() {
            self.master.cm.collect_tx()
        } else {
            self.supervisor.degraded_batches += 1;
            self.dirty = true;
            let mut out = self.master.cm.collect_tx();
            for p in leftover {
                self.master.cm.inject(p);
            }
            out.extend(self.master.run());
            out
        }
    }

    /// [`Device::run_batch`], but shards process one at a time instead of
    /// concurrently. Output, statistics, and counters are identical (the
    /// fold already happens in shard order); what changes is that each
    /// worker's self-timed `busy_ns` is uncontended by its siblings. This
    /// is the measurement mode for the scaling bench on hosts with fewer
    /// cores than shards, where concurrent workers timeslice one core and
    /// wall-clock readings would charge each shard for its neighbors.
    pub fn run_batch_sequential(&mut self) -> Vec<Packet> {
        match self.pre_batch() {
            Ok(work) => {
                let mut leftover: Vec<Packet> = Vec::new();
                for (shard, bucket) in work {
                    if bucket.is_empty() {
                        self.recycle_bucket(bucket);
                        continue;
                    }
                    match self.dispatch(shard, bucket) {
                        Ok(()) => self.collect_from(&[shard]),
                        Err(mut b) => {
                            leftover.append(&mut b);
                            self.recycle_bucket(b);
                        }
                    }
                }
                self.finish_batch(leftover)
            }
            Err(handled) => handled,
        }
    }

    /// One autoscale decision per data batch, taken right after the
    /// batch's barrier has folded every live shard. Compares the mean
    /// per-live-shard busy time against the hysteresis thresholds and
    /// steps the target by one once a streak completes; the actual resize
    /// happens at the next epoch publish (grow through the respawn path,
    /// shrink by retiring the highest-index workers), between fully
    /// drained batches, so per-flow order is never at risk.
    fn autoscale_tick(&mut self) {
        let busy = std::mem::take(&mut self.interval_busy);
        let pkts = std::mem::take(&mut self.interval_pkts);
        let Some(cfg) = self.autoscale else {
            return;
        };
        if pkts == 0 {
            // A trafficless barrier carries no load signal either way.
            return;
        }
        let live = (self.live_shards().max(1)) as u64;
        let per_shard = busy / live;
        if per_shard >= cfg.grow_busy_ns {
            self.over_streak += 1;
            self.under_streak = 0;
        } else if per_shard <= cfg.shrink_busy_ns {
            self.under_streak += 1;
            self.over_streak = 0;
        } else {
            self.over_streak = 0;
            self.under_streak = 0;
        }
        if self.over_streak >= cfg.grow_after && self.target < cfg.max_shards {
            self.target += 1;
            self.over_streak = 0;
            self.scaling.grows += 1;
            self.dirty = true;
        } else if self.under_streak >= cfg.shrink_after && self.target > cfg.min_shards {
            self.target -= 1;
            self.under_streak = 0;
            self.scaling.shrinks += 1;
            self.dirty = true;
        }
    }

    /// Folds one shard's barrier reply into the master's statistics and
    /// transmits its output through the master CM.
    fn fold(&mut self, r: ShardReply) {
        let pm = &mut self.master.pm;
        pm.stats.received += r.stats.received;
        pm.stats.emitted += r.stats.emitted;
        pm.stats.action_drops += r.stats.action_drops;
        pm.stats.parse_drops += r.stats.parse_drops;
        pm.stats.held_during_drain += r.stats.held_during_drain;
        pm.tm.stats.fold(&r.tm);
        for (slot, ss) in r.slot_stats.iter().enumerate() {
            if let Some(s) = pm.slots.get_mut(slot) {
                s.stats.absorb(ss);
            }
        }
        self.master.sm.mem_accesses += r.mem_accesses;
        for td in r.tables {
            if let Some(store) = self.master.sm.store_at_mut(td.store) {
                store.table.lookups += td.lookups;
                store.table.hits += td.hits;
                for (row, delta) in td.counters {
                    store.table.add_row_counter(row, delta);
                }
            }
        }
        // Guarded accounting: a reply can arrive from a worker slot created
        // after this vector was sized (elastic growth), so index growth is
        // part of the fold, never a panic or a silently dropped delta.
        if self.busy_ns.len() <= r.shard {
            self.busy_ns.resize(r.shard + 1, 0);
        }
        self.busy_ns[r.shard] += r.busy_ns;
        self.busy_hist.record(r.busy_ns);
        self.interval_busy += r.busy_ns;
        self.interval_pkts += r.stats.received;
        if let Some(w) = self.workers.get_mut(r.shard) {
            // Everything dispatched before this reply is accounted for.
            w.inflight = 0;
        }
        self.supervisor.lost_packets += r.lost;
        let mut out = r.out;
        for pkt in out.drain(..) {
            self.master.cm.transmit(pkt);
        }
        // Round-trip economy: the worker's emptied output buffer and the
        // bucket buffers it drained become the next batch's RSS buckets.
        self.recycle_bucket(out);
        for bucket in r.spent {
            self.recycle_bucket(bucket);
        }
    }
}

impl Device for ShardedSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&mut self, msgs: &[ControlMsg]) -> Result<ApplyReport, CoreError> {
        // Epoch barrier: drain the shards, apply the batch exactly once
        // against the master, and leave republication to the next batch of
        // traffic (several control batches coalesce into one compile).
        //
        // A failed apply is transactional (`CoreError::RolledBack`): the
        // master's state is byte-identical to before the batch and its
        // epoch did not advance, so the `?` below must not mark the switch
        // dirty — the shards' published epoch is still exactly right.
        //
        // Under an open staged transaction the failure mode widens: the
        // abort rewinds *every* batch staged so far, including ones the
        // shards may already have republished — so a staged failure must
        // mark the switch dirty to force a republish of the rewound state.
        self.quiesce();
        let staged = self.master.staged_open();
        match self.master.apply(msgs) {
            Ok(report) => {
                self.dirty = true;
                Ok(report)
            }
            Err(e) => {
                if staged {
                    self.dirty = true;
                }
                Err(e)
            }
        }
    }

    fn install_facts(&mut self, facts: Option<ipsa_core::facts::ProgramFacts>) {
        // The master's pipeline holds the facts; the next republish bakes
        // them into the epoch every shard receives.
        self.master.install_facts(facts);
        self.dirty = true;
    }

    fn inject(&mut self, packet: Packet) {
        self.master.cm.inject(packet);
    }

    fn run(&mut self) -> Vec<Packet> {
        // Reference semantics: the master interpreter processes in arrival
        // order. Shard SM clones go stale (counters advance on the master),
        // so the next sharded batch republishes first.
        self.quiesce();
        self.dirty = true;
        self.master.run()
    }

    fn run_batch(&mut self) -> Vec<Packet> {
        match self.pre_batch() {
            Ok(work) => {
                let mut leftover: Vec<Packet> = Vec::new();
                for (shard, bucket) in work {
                    if bucket.is_empty() {
                        self.recycle_bucket(bucket);
                        continue;
                    }
                    if let Err(mut b) = self.dispatch(shard, bucket) {
                        leftover.append(&mut b);
                        self.recycle_bucket(b);
                    }
                }
                // Barrier (inside `finish_batch`): every batch ends fully
                // folded, so stats and counters are coherent before any
                // control message can observe them.
                self.finish_batch(leftover)
            }
            Err(handled) => handled,
        }
    }

    fn pending(&self) -> usize {
        self.master.cm.rx_pending()
    }
}

impl Drop for ShardedSwitch {
    fn drop(&mut self) {
        for w in &self.workers {
            if let Some(tx) = &w.tx {
                let _ = tx.send(ToShard::Shutdown);
            }
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Worker-side epoch state: the published artifacts plus the entry-counter
/// baseline for delta reporting.
struct EpochState {
    compiled: Arc<CompiledPath>,
    linkage: Arc<HeaderLinkage>,
    sm: StorageModule,
    /// Per-store, per-row counter values at the last collect (or publish).
    counter_base: Vec<Vec<u64>>,
}

impl EpochState {
    fn new(e: ShardEpoch) -> Self {
        let counter_base = snapshot_counters(&e.sm);
        EpochState {
            compiled: e.compiled,
            linkage: e.linkage,
            sm: e.sm,
            counter_base,
        }
    }
}

fn snapshot_counters(sm: &StorageModule) -> Vec<Vec<u64>> {
    (0..sm.store_count())
        .map(|idx| match sm.store_at(idx) {
            Some(store) => {
                let mut v = vec![0u64; store.table.rows_len()];
                for (row, e) in store.table.iter() {
                    v[row] = e.counter;
                }
                v
            }
            None => Vec::new(),
        })
        .collect()
}

fn worker_loop(
    shard: usize,
    gen: u64,
    ports: usize,
    slots: usize,
    rx: &Receiver<ToShard>,
    reply: &Sender<ShardReply>,
) {
    let mut epoch: Option<EpochState> = None;
    let mut scratch = EvalScratch::default();
    // Ports are validated nonzero by every ShardedSwitch constructor.
    let Ok(mut tm) = TrafficManager::new(ports, TM_QUEUE_CAPACITY) else {
        return;
    };
    let mut stats = PipelineStats::default();
    let mut slot_stats = vec![SlotStats::default(); slots];
    let mut out: Vec<Packet> = Vec::new();
    let mut busy_ns = 0u64;
    let mut lost = 0u64;
    let mut fault: Option<String> = None;
    let mut spent: Vec<Vec<Packet>> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Publish(e) => {
                // RCU swap: the previous epoch's artifacts drop here, after
                // the last packet that used them.
                epoch = Some(EpochState::new(*e));
            }
            ToShard::Batch(mut pkts) => {
                let Some(ep) = epoch.as_mut() else {
                    // Protocol violation (a Batch can never legally precede
                    // the first Publish). Survive it: declare the packets
                    // lost, report the fault at the next collect, and let
                    // the supervisor quarantine us.
                    lost += pkts.len() as u64;
                    fault.get_or_insert_with(|| "Batch before first Publish".to_string());
                    pkts.clear();
                    spent.push(pkts);
                    continue;
                };
                let t0 = Instant::now();
                for pkt in pkts.drain(..) {
                    let r = ep.compiled.run_packet_parts(
                        &mut stats,
                        SlotStatsMut::Stats(&mut slot_stats),
                        &mut tm,
                        &ep.linkage,
                        &mut ep.sm,
                        &mut scratch,
                        pkt,
                    );
                    // Same drop taxonomy as the single-core switch; other
                    // errors surface loudly in debug builds only (the data
                    // plane must not wedge on one bad packet).
                    match crate::switch::classify_packet_result(r, &mut stats) {
                        Ok(Some(p)) => out.push(p),
                        Ok(None) => {}
                        Err(e) => {
                            debug_assert!(false, "shard pipeline error: {e}");
                            let _ = e;
                        }
                    }
                }
                busy_ns += t0.elapsed().as_nanos() as u64;
                // Hand the emptied bucket back at the next barrier.
                spent.push(pkts);
            }
            ToShard::Collect { kill, delay, spike } => {
                if kill {
                    // Injected crash: vanish without replying — the master
                    // must detect this through its drain timeout, exactly
                    // as it would a real wedged or dead worker.
                    break;
                }
                if let Some(d) = delay {
                    std::thread::sleep(d);
                }
                // Injected load spike: inflate this barrier's reported
                // busy time so autoscaler decisions are test-deterministic.
                if let Some(ns) = spike {
                    busy_ns += ns;
                }
                let tables = match &mut epoch {
                    Some(ep) => {
                        let mut tables = Vec::new();
                        for idx in 0..ep.sm.store_count() {
                            let Some(store) = ep.sm.store_at(idx) else {
                                continue;
                            };
                            let base = &mut ep.counter_base[idx];
                            let mut counters = Vec::new();
                            for (row, e) in store.table.iter() {
                                let prev = base.get(row).copied().unwrap_or(0);
                                if e.counter > prev {
                                    counters.push((row, e.counter - prev));
                                }
                            }
                            for (row, delta) in &counters {
                                base[*row] += delta;
                            }
                            if store.table.lookups > 0
                                || store.table.hits > 0
                                || !counters.is_empty()
                            {
                                tables.push(TableDelta {
                                    store: idx,
                                    lookups: store.table.lookups,
                                    hits: store.table.hits,
                                    counters,
                                });
                            }
                        }
                        let mem = ep.sm.mem_accesses;
                        ep.sm.reset_observability();
                        (tables, mem)
                    }
                    None => (Vec::new(), 0),
                };
                let (tables, mem_accesses) = tables;
                let r = ShardReply {
                    shard,
                    gen,
                    out: std::mem::take(&mut out),
                    stats: std::mem::take(&mut stats),
                    tm: std::mem::take(&mut tm.stats),
                    slot_stats: std::mem::replace(
                        &mut slot_stats,
                        vec![SlotStats::default(); slots],
                    ),
                    mem_accesses,
                    tables,
                    busy_ns: std::mem::take(&mut busy_ns),
                    lost: std::mem::take(&mut lost),
                    fault: fault.take(),
                    spent: std::mem::take(&mut spent),
                };
                if reply.send(r).is_err() {
                    break; // master gone
                }
            }
            ToShard::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::pipeline_cfg::SelectorConfig;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::{MatcherBranch, TspTemplate};
    use ipsa_core::value::ValueRef;
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    /// The same one-stage L3 program as `switch.rs`'s `minimal_switch`,
    /// as a message batch against any device.
    fn l3_msgs(port: u16) -> Vec<ControlMsg> {
        vec![
            ControlMsg::Drain,
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ethernet()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv4()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::udp()),
            ControlMsg::SetFirstHeader("ethernet".into()),
            ControlMsg::DefineAction(ipsa_core::action::ActionDef {
                name: "fwd".into(),
                params: vec![("port".into(), 16)],
                body: vec![ipsa_core::action::Primitive::Forward {
                    port: ValueRef::Param(0),
                }],
            }),
            ControlMsg::CreateTable {
                def: TableDef {
                    name: "route".into(),
                    key: vec![KeyField {
                        source: ValueRef::field("ipv4", "dst_addr"),
                        bits: 32,
                        kind: MatchKind::Lpm,
                    }],
                    size: 64,
                    actions: vec!["fwd".into()],
                    default_action: ActionCall::no_action(),
                    with_counters: false,
                },
                blocks: vec![0],
            },
            ControlMsg::WriteTemplate {
                slot: 0,
                template: TspTemplate {
                    stage_name: "route_s".into(),
                    func: "base".into(),
                    parse: vec!["ipv4".into()],
                    branches: vec![MatcherBranch {
                        pred: ipsa_core::predicate::Predicate::IsValid("ipv4".into()),
                        table: Some("route".into()),
                    }],
                    executor: vec![(1, ActionCall::new("fwd", vec![]))],
                    default_action: ActionCall::no_action(),
                },
            },
            ControlMsg::ConnectCrossbar {
                slot: 0,
                blocks: vec![0],
            },
            ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
            ControlMsg::Resume,
            ControlMsg::AddEntry {
                table: "route".into(),
                entry: TableEntry {
                    key: vec![ipsa_core::table::KeyMatch::Lpm {
                        value: 0x0a000000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                    action: ActionCall::new("fwd", vec![port as u128]),
                    counter: 0,
                },
            },
        ]
    }

    fn traffic(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                ipv4_udp_packet(&Ipv4UdpSpec {
                    src_ip: 0x0a00_0100 + (i as u32 % 7),
                    dst_ip: 0x0a01_0000 + i as u32,
                    ..Default::default()
                })
            })
            .collect()
    }

    #[test]
    fn sharded_matches_single_core_on_l3() {
        let mut single = IpbmSwitch::new(IpbmConfig::default());
        single.apply(&l3_msgs(4)).unwrap();
        let mut sharded = ShardedSwitch::new(IpbmConfig::default(), 4);
        sharded.apply(&l3_msgs(4)).unwrap();

        for p in traffic(64) {
            single.inject(p.clone());
            sharded.inject(p);
        }
        let mut a = single.run_batch();
        let mut b = sharded.run_batch();
        assert!(sharded.on_compiled_path());
        assert_eq!(a.len(), b.len());
        let key = |p: &Packet| (p.data.clone(), p.meta.egress_port);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "merged shard output must equal single-core output");
        assert_eq!(single.report().pipeline, sharded.report().pipeline);
        assert_eq!(single.report().tm, sharded.report().tm);
        assert_eq!(single.sm.mem_accesses, sharded.master.sm.mem_accesses);
        let busy: u64 = sharded.shard_busy_ns().iter().sum();
        assert!(busy > 0, "workers must self-time their batches");
    }

    #[test]
    fn one_shard_is_bit_exact_with_single_core() {
        let mut single = IpbmSwitch::new(IpbmConfig::default());
        single.apply(&l3_msgs(4)).unwrap();
        let mut sharded = ShardedSwitch::new(IpbmConfig::default(), 1);
        sharded.apply(&l3_msgs(4)).unwrap();
        for p in traffic(32) {
            single.inject(p.clone());
            sharded.inject(p);
        }
        // One shard sees the exact arrival order, so even inter-flow order
        // and per-port TX rings match the single-core switch bit-for-bit.
        assert_eq!(single.run_batch(), sharded.run_batch());
        assert_eq!(
            single.cm.port_stats(),
            sharded.master.cm.port_stats(),
            "per-port counters must match"
        );
    }

    #[test]
    fn update_between_batches_is_hitless_and_fresh() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 2);
        sw.apply(&l3_msgs(4)).unwrap();
        for p in traffic(8) {
            sw.inject(p);
        }
        let first = sw.run_batch();
        assert!(first.iter().all(|p| p.meta.egress_port == Some(4)));
        // Re-point the route mid-stream; packets already injected must be
        // processed under the *new* epoch (never a stale one).
        for p in traffic(8) {
            sw.inject(p);
        }
        sw.apply(&[ControlMsg::AddEntry {
            table: "route".into(),
            entry: TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0a010000,
                    prefix_len: 16,
                }],
                priority: 0,
                action: ActionCall::new("fwd", vec![6]),
                counter: 0,
            },
        }])
        .unwrap();
        let second = sw.run_batch();
        assert_eq!(second.len(), 8, "no packet lost across the barrier");
        assert!(
            second.iter().all(|p| p.meta.egress_port == Some(6)),
            "all packets ran under the new epoch"
        );
    }

    #[test]
    fn sequential_batch_matches_concurrent() {
        let mut a = ShardedSwitch::new(IpbmConfig::default(), 3);
        a.apply(&l3_msgs(4)).unwrap();
        let mut b = ShardedSwitch::new(IpbmConfig::default(), 3);
        b.apply(&l3_msgs(4)).unwrap();
        for p in traffic(48) {
            a.inject(p.clone());
            b.inject(p);
        }
        let out_a = a.run_batch();
        let out_b = b.run_batch_sequential();
        // Both modes fold in shard order, so even the output order matches.
        assert_eq!(out_a, out_b);
        assert_eq!(a.report().pipeline, b.report().pipeline);
        assert!(b.shard_busy_ns().iter().sum::<u64>() > 0);
    }

    #[test]
    fn draining_holds_traffic_until_resume() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 2);
        sw.apply(&l3_msgs(4)).unwrap();
        sw.apply(&[ControlMsg::Drain]).unwrap();
        for p in traffic(5) {
            sw.inject(p);
        }
        assert!(sw.run_batch().is_empty());
        assert_eq!(sw.pending(), 5);
        sw.apply(&[ControlMsg::Resume]).unwrap();
        assert_eq!(sw.run_batch().len(), 5);
    }

    /// A rejected control batch is rolled back by the master, so it must
    /// not mark the sharded switch dirty: the published epoch is still
    /// exactly the device's state, and forcing a recompile would be waste.
    #[test]
    fn failed_apply_does_not_dirty_or_recompile() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 2);
        sw.apply(&l3_msgs(4)).unwrap();
        for p in traffic(4) {
            sw.inject(p);
        }
        sw.run_batch();
        assert!(!sw.dirty, "first batch publishes the epoch");
        let epoch = sw.master.pm.epoch();
        let e = sw.apply(&[ControlMsg::ClearSlot { slot: 99 }]).unwrap_err();
        assert!(matches!(e, CoreError::RolledBack { .. }), "{e}");
        assert!(!sw.dirty, "rolled-back batch must not dirty the epoch");
        assert_eq!(sw.master.pm.epoch(), epoch, "no new epoch opened");
        for p in traffic(4) {
            sw.inject(p);
        }
        let out = sw.run_batch();
        assert_eq!(out.len(), 4, "traffic keeps flowing after the rejection");
        assert!(sw.on_compiled_path());
    }

    #[test]
    fn autoscale_config_is_validated() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 2);
        let good = AutoscaleConfig {
            min_shards: 1,
            max_shards: 4,
            grow_busy_ns: 1000,
            shrink_busy_ns: 100,
            grow_after: 1,
            shrink_after: 1,
        };
        assert!(sw.set_autoscale(Some(good)).is_ok());
        for bad in [
            AutoscaleConfig {
                min_shards: 0,
                ..good
            },
            AutoscaleConfig {
                max_shards: 0,
                ..good
            },
            AutoscaleConfig {
                shrink_busy_ns: 1000,
                ..good
            },
            AutoscaleConfig {
                grow_after: 0,
                ..good
            },
        ] {
            assert!(matches!(
                sw.set_autoscale(Some(bad)),
                Err(CoreError::Config(_))
            ));
        }
        // Regression (silent-clamp sweep): shards=0 is an error, not a
        // quiet rewrite to 1.
        assert!(matches!(
            ShardedSwitch::try_new(IpbmConfig::default(), 0),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn autoscaler_grows_under_load_and_shrinks_back() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 1);
        sw.apply(&l3_msgs(4)).unwrap();
        sw.set_autoscale(Some(AutoscaleConfig {
            min_shards: 1,
            max_shards: 3,
            // Both thresholds sit far above any real per-batch busy time,
            // so only the injected spikes can read as overload and every
            // unspiked batch reads as idle.
            grow_busy_ns: 50_000_000,
            shrink_busy_ns: 10_000_000,
            grow_after: 1,
            shrink_after: 2,
        }))
        .unwrap();
        let mut plan = FaultPlan::default();
        let b = sw.barriers();
        for barrier in b + 1..=b + 4 {
            for shard in 0..3 {
                plan.spike_busy.push((shard, barrier, 200_000_000));
            }
        }
        sw.set_fault_plan(plan);
        let mut injected = 0u64;
        let mut emitted = 0u64;
        for _ in 0..4 {
            for p in traffic(16) {
                sw.inject(p);
                injected += 1;
            }
            emitted += sw.run_batch().len() as u64;
        }
        assert_eq!(sw.live_shards(), 3, "sustained overload reaches max");
        assert_eq!(sw.target_shards(), 3);

        sw.set_fault_plan(FaultPlan::default());
        for _ in 0..8 {
            for p in traffic(8) {
                sw.inject(p);
                injected += 1;
            }
            emitted += sw.run_batch().len() as u64;
        }
        assert_eq!(sw.live_shards(), 1, "idle traffic shrinks back to min");
        let s = sw.scale_stats();
        assert!(s.grows >= 2, "grows: {s:?}");
        assert!(s.shrinks >= 2 && s.retired >= 2, "shrinks: {s:?}");
        // Elastic resizes are hitless: every packet injected was emitted,
        // none were charged to retired workers.
        assert_eq!(emitted, injected);
        assert_eq!(sw.supervisor_stats().lost_packets, 0);
        assert_eq!(sw.report().pipeline.received, injected);
        assert_eq!(sw.report().pipeline.emitted, emitted);
        assert!(sw.on_compiled_path());
    }

    #[test]
    fn per_flow_order_is_preserved() {
        let mut sw = ShardedSwitch::new(IpbmConfig::default(), 4);
        sw.apply(&l3_msgs(4)).unwrap();
        // 8 flows × 32 packets, payload carrying a per-flow sequence
        // number; interleave the flows on inject.
        let flows = 8u32;
        let per_flow = 32u32;
        for seq in 0..per_flow {
            for f in 0..flows {
                sw.inject(ipv4_udp_packet(&Ipv4UdpSpec {
                    src_ip: 0x0a00_0200 + f,
                    dst_ip: 0x0a01_0000 + f,
                    payload: seq.to_be_bytes().to_vec(),
                    ..Default::default()
                }));
            }
        }
        let out = sw.run_batch();
        assert_eq!(out.len(), (flows * per_flow) as usize);
        // Within each flow the sequence numbers must appear in order.
        let mut last: std::collections::HashMap<u32, Option<u32>> = Default::default();
        for p in &out {
            let n = p.data.len();
            let dst = u32::from_be_bytes(p.data[30..34].try_into().unwrap());
            let seq = u32::from_be_bytes(p.data[n - 4..].try_into().unwrap());
            let prev = last.entry(dst).or_insert(None);
            if let Some(prev) = *prev {
                assert!(seq > prev, "flow {dst:#x}: {seq} after {prev}");
            }
            *prev = Some(seq);
        }
        assert_eq!(last.len(), flows as usize);
    }
}
