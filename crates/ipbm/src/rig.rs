//! Concurrent traffic rig: a producer thread streams packets to the switch
//! thread over a bounded channel, modeling a NIC feeding the pipeline with
//! back pressure.
//!
//! The behavioral model itself is single-threaded (a pipeline is a
//! sequential program per packet); the rig adds the realistic *harness*
//! around it — generation and forwarding overlap, the channel bounds
//! in-flight packets like an RX ring, and the measured rate reflects
//! steady-state pipeline throughput rather than batch bursts.

use std::thread;
use std::time::Instant;

use crossbeam::channel;
use ipsa_core::control::Device;
use ipsa_netpkt::packet::Packet;
use ipsa_netpkt::traffic::TrafficGen;

use crate::switch::IpbmSwitch;

/// Result of a concurrent run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigReport {
    /// Packets generated and offered to the switch.
    pub offered: usize,
    /// Packets the switch emitted.
    pub forwarded: usize,
    /// Steady-state forwarding rate, packets per second.
    pub rate_pps: f64,
    /// Wall-clock of the forwarding side, seconds.
    pub elapsed_s: f64,
}

/// Streams `total` packets from a seeded generator through the switch,
/// producer and consumer running concurrently over a ring of `ring_depth`
/// packets. Returns the switch along with the measurement.
pub fn run_concurrent(
    mut switch: IpbmSwitch,
    seed: u64,
    v6_percent: u8,
    flows: u32,
    total: usize,
    ring_depth: usize,
) -> (IpbmSwitch, RigReport) {
    let (tx, rx) = channel::bounded::<Packet>(ring_depth.max(1));

    let producer = thread::spawn(move || {
        let mut gen = TrafficGen::new(seed)
            .with_v6_percent(v6_percent)
            .with_flows(flows);
        for _ in 0..total {
            // A send fails only if the consumer hung up early; stop quietly.
            if tx.send(gen.next_mixed().0).is_err() {
                break;
            }
        }
    });

    let start = Instant::now();
    let mut forwarded = 0usize;
    let mut offered = 0usize;
    // Drain the ring in small bursts so injection and processing interleave
    // the way an RX-ring driver would service a NIC.
    loop {
        let mut got_any = false;
        for _ in 0..32 {
            match rx.recv() {
                Ok(p) => {
                    switch.inject(p);
                    offered += 1;
                    got_any = true;
                }
                Err(_) => break,
            }
            if rx.is_empty() {
                break;
            }
        }
        forwarded += switch.run().len();
        if !got_any && offered > 0 {
            break;
        }
        if offered >= total {
            forwarded += switch.run().len();
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    producer.join().expect("producer thread");
    (
        switch,
        RigReport {
            offered,
            forwarded,
            rate_pps: forwarded as f64 / elapsed.max(1e-9),
            elapsed_s: elapsed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IpbmConfig, IpbmSwitch};
    use ipsa_core::control::ControlMsg;
    use ipsa_core::pipeline_cfg::SelectorConfig;
    use ipsa_core::table::ActionCall;
    use ipsa_core::template::TspTemplate;

    /// A minimal everything-to-port-0 switch.
    fn sink_switch() -> IpbmSwitch {
        let mut sw = IpbmSwitch::new(IpbmConfig::default());
        sw.apply(&[
            ControlMsg::Drain,
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ethernet()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv4()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv6()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::udp()),
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::tcp()),
            ControlMsg::SetFirstHeader("ethernet".into()),
            ControlMsg::DefineAction(ipsa_core::action::ActionDef {
                name: "to0".into(),
                params: vec![],
                body: vec![ipsa_core::action::Primitive::Forward {
                    port: ipsa_core::value::ValueRef::Const(0),
                }],
            }),
            ControlMsg::WriteTemplate {
                slot: 0,
                template: TspTemplate {
                    stage_name: "sink".into(),
                    func: "f".into(),
                    parse: vec![],
                    branches: vec![],
                    executor: vec![],
                    default_action: ActionCall::new("to0", vec![]),
                },
            },
            ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
            ControlMsg::Resume,
        ])
        .unwrap();
        sw
    }

    /// A template with no branches runs nothing — forward via a matcher
    /// branch instead: patch the template to a True-branch with no table
    /// and a default action... A no-branch template passes through without
    /// executing the default (there is no lookup). So instead verify the
    /// rig's bookkeeping with the pass-through switch: packets without an
    /// egress decision drop at the TM, and counts still reconcile.
    #[test]
    fn rig_reconciles_counts() {
        let (sw, report) = run_concurrent(sink_switch(), 5, 10, 16, 2_000, 64);
        assert_eq!(report.offered, 2_000);
        // No egress decision (the default action never runs without a
        // matcher hit): everything drops at the TM, nothing is lost track
        // of.
        let dev = sw.report();
        assert_eq!(
            dev.pipeline.received, 2_000,
            "all offered packets entered the pipeline"
        );
        assert_eq!(
            report.forwarded as u64 + dev.tm.no_route_drops + dev.pipeline.action_drops,
            2_000
        );
        assert!(report.elapsed_s > 0.0);
    }

    #[test]
    fn rig_is_deterministic_in_traffic() {
        let (sw1, _) = run_concurrent(sink_switch(), 42, 25, 8, 500, 16);
        let (sw2, _) = run_concurrent(sink_switch(), 42, 25, 8, 500, 16);
        // Same seed, same stream, same counters (rates differ, state not).
        assert_eq!(sw1.report().pipeline, sw2.report().pipeline);
    }
}
