//! CM — the Communication Module.
//!
//! "The Communication Module bypasses the OS protocol stack to support
//! direct packet I/O" (Sec. 4.1). The paper's evaluation never measures NIC
//! I/O, so the CM here is an in-memory port array with the same interface a
//! kernel-bypass driver would expose: per-port RX rings packets are
//! injected into, per-port TX rings the pipeline emits into, and an
//! optional pcap-lite hex trace of everything that passes.

use std::collections::VecDeque;

use ipsa_netpkt::packet::Packet;
use serde::Serialize;

/// Per-port counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PortStats {
    /// Packets received (injected) on the port.
    pub rx: u64,
    /// Packets transmitted on the port.
    pub tx: u64,
}

/// One switch port.
#[derive(Debug, Default)]
pub struct Port {
    /// Receive ring (awaiting pipeline processing).
    pub rx_ring: VecDeque<Packet>,
    /// Transmit ring (processed, awaiting collection).
    pub tx_ring: Vec<Packet>,
    /// Counters.
    pub stats: PortStats,
}

/// The communication module.
#[derive(Debug)]
pub struct CommModule {
    ports: Vec<Port>,
    /// When enabled, a hex dump of every RX/TX packet (bounded ring).
    pub trace: Option<VecDeque<String>>,
    trace_cap: usize,
}

impl CommModule {
    /// New CM with `ports` ports and tracing disabled.
    pub fn new(ports: usize) -> Self {
        CommModule {
            ports: (0..ports).map(|_| Port::default()).collect(),
            trace: None,
            trace_cap: 256,
        }
    }

    /// Enables the packet trace with a bounded capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(VecDeque::new());
        self.trace_cap = capacity.max(1);
    }

    fn record(&mut self, dir: &str, port: u16, pkt: &Packet) {
        let cap = self.trace_cap;
        if let Some(t) = &mut self.trace {
            t.push_back(format!(
                "{dir} port {port} len {}\n{}",
                pkt.len(),
                pkt.hex_dump()
            ));
            while t.len() > cap {
                t.pop_front();
            }
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Injects a packet into its ingress port's RX ring. Out-of-range ports
    /// wrap to port 0 (a test convenience, counted normally).
    pub fn inject(&mut self, pkt: Packet) {
        let port = (pkt.meta.ingress_port as usize).min(self.ports.len().saturating_sub(1)) as u16;
        self.record("rx", port, &pkt);
        let p = &mut self.ports[port as usize];
        p.stats.rx += 1;
        p.rx_ring.push_back(pkt);
    }

    /// Pulls the next packet to process, round-robin across ports.
    pub fn next_rx(&mut self) -> Option<Packet> {
        // Simple fairness: take from the first nonempty ring each call,
        // starting after the last served port would be fancier; FIFO across
        // the port array is deterministic and sufficient.
        for p in &mut self.ports {
            if let Some(pkt) = p.rx_ring.pop_front() {
                return Some(pkt);
            }
        }
        None
    }

    /// Packets waiting in RX rings.
    pub fn rx_pending(&self) -> usize {
        self.ports.iter().map(|p| p.rx_ring.len()).sum()
    }

    /// Emits a processed packet on its egress port.
    pub fn transmit(&mut self, pkt: Packet) {
        let port = pkt
            .meta
            .egress_port
            .unwrap_or(0)
            .min(self.ports.len().saturating_sub(1) as u16);
        self.record("tx", port, &pkt);
        let p = &mut self.ports[port as usize];
        p.stats.tx += 1;
        p.tx_ring.push(pkt);
    }

    /// Drains every TX ring, in port order.
    pub fn collect_tx(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        for p in &mut self.ports {
            out.append(&mut p.tx_ring);
        }
        out
    }

    /// Port statistics, indexed by port.
    pub fn port_stats(&self) -> Vec<PortStats> {
        self.ports.iter().map(|p| p.stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(port: u16) -> Packet {
        Packet::new(vec![1, 2, 3], port)
    }

    #[test]
    fn inject_process_collect() {
        let mut cm = CommModule::new(4);
        cm.inject(pkt(2));
        cm.inject(pkt(0));
        assert_eq!(cm.rx_pending(), 2);
        let first = cm.next_rx().unwrap();
        assert_eq!(first.meta.ingress_port, 0, "port order FIFO");
        let mut second = cm.next_rx().unwrap();
        assert_eq!(second.meta.ingress_port, 2);
        second.meta.egress_port = Some(3);
        cm.transmit(second);
        let out = cm.collect_tx();
        assert_eq!(out.len(), 1);
        assert_eq!(cm.port_stats()[3].tx, 1);
        assert_eq!(cm.port_stats()[2].rx, 1);
    }

    #[test]
    fn trace_bounded() {
        let mut cm = CommModule::new(1);
        cm.enable_trace(2);
        for _ in 0..5 {
            cm.inject(pkt(0));
        }
        assert_eq!(cm.trace.as_ref().unwrap().len(), 2);
        assert!(cm.trace.as_ref().unwrap()[0].contains("rx port 0"));
    }

    #[test]
    fn out_of_range_ports_clamped() {
        let mut cm = CommModule::new(2);
        cm.inject(pkt(9));
        assert_eq!(cm.port_stats()[1].rx, 1);
    }
}
