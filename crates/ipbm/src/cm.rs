//! CM — the Communication Module.
//!
//! "The Communication Module bypasses the OS protocol stack to support
//! direct packet I/O" (Sec. 4.1). The paper's evaluation never measures NIC
//! I/O, so the CM here is an in-memory port array with the same interface a
//! kernel-bypass driver would expose: per-port RX rings packets are
//! injected into, per-port TX rings the pipeline emits into, and an
//! optional pcap-lite hex trace of everything that passes.

use std::collections::VecDeque;

use ipsa_netpkt::packet::Packet;
use serde::Serialize;

/// Per-port counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PortStats {
    /// Packets received (injected) on the port.
    pub rx: u64,
    /// Packets transmitted on the port.
    pub tx: u64,
    /// Injects whose ingress port was out of range and got clamped to this
    /// port (always the last port; see [`CommModule::inject`]).
    pub rx_clamped: u64,
}

/// One switch port.
#[derive(Debug, Default)]
pub struct Port {
    /// Receive ring (awaiting pipeline processing).
    pub rx_ring: VecDeque<Packet>,
    /// Transmit ring (processed, awaiting collection).
    pub tx_ring: Vec<Packet>,
    /// Counters.
    pub stats: PortStats,
}

/// The communication module.
#[derive(Debug)]
pub struct CommModule {
    ports: Vec<Port>,
    /// When enabled, a hex dump of every RX/TX packet (bounded ring).
    pub trace: Option<VecDeque<String>>,
    trace_cap: usize,
}

impl CommModule {
    /// New CM with `ports` ports and tracing disabled.
    pub fn new(ports: usize) -> Self {
        CommModule {
            ports: (0..ports).map(|_| Port::default()).collect(),
            trace: None,
            trace_cap: 256,
        }
    }

    /// Enables the packet trace with a bounded capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(VecDeque::new());
        self.trace_cap = capacity.max(1);
    }

    fn record(&mut self, dir: &str, port: u16, pkt: &Packet) {
        let cap = self.trace_cap;
        if let Some(t) = &mut self.trace {
            t.push_back(format!(
                "{dir} port {port} len {}\n{}",
                pkt.len(),
                pkt.hex_dump()
            ));
            while t.len() > cap {
                t.pop_front();
            }
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Injects a packet into its ingress port's RX ring. Out-of-range ports
    /// clamp to the last port (a test convenience, counted normally plus a
    /// bump of that port's [`PortStats::rx_clamped`]).
    pub fn inject(&mut self, pkt: Packet) {
        let port = (pkt.meta.ingress_port as usize).min(self.ports.len().saturating_sub(1)) as u16;
        self.record("rx", port, &pkt);
        let p = &mut self.ports[port as usize];
        p.stats.rx += 1;
        if port != pkt.meta.ingress_port {
            p.stats.rx_clamped += 1;
        }
        p.rx_ring.push_back(pkt);
    }

    /// Pulls the next packet to process, round-robin across ports.
    pub fn next_rx(&mut self) -> Option<Packet> {
        // Simple fairness: take from the first nonempty ring each call,
        // starting after the last served port would be fancier; FIFO across
        // the port array is deterministic and sufficient.
        for p in &mut self.ports {
            if let Some(pkt) = p.rx_ring.pop_front() {
                return Some(pkt);
            }
        }
        None
    }

    /// Drains up to `max` packets from the RX rings into a caller-owned
    /// buffer and returns how many were taken. Packets come out in exactly
    /// the order repeated [`CommModule::next_rx`] calls would produce them
    /// (port order, FIFO within a port); the caller reuses `out` across
    /// bursts so steady-state ingress performs no allocation.
    pub fn rx_burst(&mut self, max: usize, out: &mut Vec<Packet>) -> usize {
        let mut taken = 0;
        for p in &mut self.ports {
            while taken < max {
                match p.rx_ring.pop_front() {
                    Some(pkt) => {
                        out.push(pkt);
                        taken += 1;
                    }
                    None => break,
                }
            }
            if taken >= max {
                break;
            }
        }
        taken
    }

    /// Packets waiting in RX rings.
    pub fn rx_pending(&self) -> usize {
        self.ports.iter().map(|p| p.rx_ring.len()).sum()
    }

    /// Emits a processed packet on its egress port.
    pub fn transmit(&mut self, pkt: Packet) {
        let port = pkt
            .meta
            .egress_port
            .unwrap_or(0)
            .min(self.ports.len().saturating_sub(1) as u16);
        self.record("tx", port, &pkt);
        let p = &mut self.ports[port as usize];
        p.stats.tx += 1;
        p.tx_ring.push(pkt);
    }

    /// Drains every TX ring into a caller-owned buffer, in port order, and
    /// returns how many packets were handed back. The caller reuses `out`
    /// (and recycles the packets it receives) across bursts.
    pub fn tx_burst(&mut self, out: &mut Vec<Packet>) -> usize {
        let before = out.len();
        for p in &mut self.ports {
            out.append(&mut p.tx_ring);
        }
        out.len() - before
    }

    /// Drains every TX ring, in port order. Allocating wrapper over
    /// [`CommModule::tx_burst`].
    pub fn collect_tx(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        self.tx_burst(&mut out);
        out
    }

    /// Port statistics, indexed by port.
    pub fn port_stats(&self) -> Vec<PortStats> {
        self.ports.iter().map(|p| p.stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(port: u16) -> Packet {
        Packet::new(vec![1, 2, 3], port)
    }

    #[test]
    fn inject_process_collect() {
        let mut cm = CommModule::new(4);
        cm.inject(pkt(2));
        cm.inject(pkt(0));
        assert_eq!(cm.rx_pending(), 2);
        let first = cm.next_rx().unwrap();
        assert_eq!(first.meta.ingress_port, 0, "port order FIFO");
        let mut second = cm.next_rx().unwrap();
        assert_eq!(second.meta.ingress_port, 2);
        second.meta.egress_port = Some(3);
        cm.transmit(second);
        let out = cm.collect_tx();
        assert_eq!(out.len(), 1);
        assert_eq!(cm.port_stats()[3].tx, 1);
        assert_eq!(cm.port_stats()[2].rx, 1);
    }

    #[test]
    fn trace_bounded() {
        let mut cm = CommModule::new(1);
        cm.enable_trace(2);
        for _ in 0..5 {
            cm.inject(pkt(0));
        }
        assert_eq!(cm.trace.as_ref().unwrap().len(), 2);
        assert!(cm.trace.as_ref().unwrap()[0].contains("rx port 0"));
    }

    #[test]
    fn out_of_range_ports_clamped() {
        let mut cm = CommModule::new(2);
        cm.inject(pkt(9));
        cm.inject(pkt(1));
        let stats = cm.port_stats();
        assert_eq!(stats[1].rx, 2);
        assert_eq!(stats[1].rx_clamped, 1, "only the out-of-range inject");
        assert_eq!(stats[0].rx_clamped, 0);
    }

    #[test]
    fn rx_burst_matches_next_rx_order() {
        let mut a = CommModule::new(3);
        let mut b = CommModule::new(3);
        for port in [2u16, 0, 1, 0, 2] {
            a.inject(pkt(port));
            b.inject(pkt(port));
        }
        let mut burst = Vec::new();
        assert_eq!(a.rx_burst(usize::MAX, &mut burst), 5);
        let serial: Vec<_> = std::iter::from_fn(|| b.next_rx()).collect();
        let ports = |v: &[Packet]| v.iter().map(|p| p.meta.ingress_port).collect::<Vec<_>>();
        assert_eq!(ports(&burst), ports(&serial));
        assert_eq!(a.rx_pending(), 0);
    }

    #[test]
    fn rx_burst_honours_max() {
        let mut cm = CommModule::new(2);
        for _ in 0..5 {
            cm.inject(pkt(0));
        }
        let mut burst = Vec::new();
        assert_eq!(cm.rx_burst(3, &mut burst), 3);
        assert_eq!(cm.rx_pending(), 2);
        assert_eq!(cm.rx_burst(3, &mut burst), 2);
        assert_eq!(burst.len(), 5);
    }

    #[test]
    fn tx_burst_appends_in_port_order() {
        let mut cm = CommModule::new(3);
        for port in [2u16, 0, 1] {
            let mut p = pkt(0);
            p.meta.egress_port = Some(port);
            cm.transmit(p);
        }
        let mut out = Vec::new();
        assert_eq!(cm.tx_burst(&mut out), 3);
        let ports: Vec<_> = out.iter().map(|p| p.meta.egress_port.unwrap()).collect();
        assert_eq!(ports, vec![0, 1, 2]);
        assert_eq!(cm.tx_burst(&mut out), 0, "rings drained");
    }
}
