//! PM — the Pipeline Module: the elastic TSP chain and the Traffic Manager.
//!
//! All TSPs are physically chained; the selector decides which prefix forms
//! the ingress pipeline (feeding the TM) and which suffix forms the egress
//! pipeline (fed by the TM); bypassed TSPs idle in low power (Sec. 2.3).
//! During a structural update the pipeline is drained through back
//! pressure: queued packets are processed to completion, then templates and
//! the selector are rewritten before traffic resumes.

use std::collections::VecDeque;

use ipsa_core::crossbar::Crossbar;
use ipsa_core::error::CoreError;
use ipsa_core::facts::ProgramFacts;
use ipsa_core::pipeline_cfg::{SelectorConfig, SlotRole};
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::packet::Packet;
use serde::Serialize;

use crate::fast::{self, CompiledPath, EvalScratch};
use crate::sm::StorageModule;
use crate::tsp::TspSlot;

/// Number of TM traffic classes.
pub const TM_CLASSES: usize = 3;
/// Strict-priority class (served before everything else on a port).
pub const TM_CLASS_PRIORITY: usize = 0;
/// Assured-forwarding class (WDRR, heavy weight).
pub const TM_CLASS_ASSURED: usize = 1;
/// Best-effort class (WDRR, light weight) — the default.
pub const TM_CLASS_BEST_EFFORT: usize = 2;

/// Metadata field overriding DSCP classification: 0 = unset, `1..=3`
/// select classes priority/assured/best-effort.
pub const TM_CLASS_META: &str = "tm_class";

/// WDRR byte quantum refilled per visit, scaled by the class weight.
const TM_WDRR_QUANTUM: usize = 1600;
/// WDRR weights per class; the priority class bypasses WDRR entirely.
const TM_WDRR_WEIGHTS: [usize; TM_CLASSES] = [0, 3, 1];

/// Per-class Traffic-Manager counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ClassStats {
    /// Packets enqueued in this class.
    pub enqueued: u64,
    /// Packets tail-dropped on this class's full queue.
    pub tail_drops: u64,
    /// Packets handed to the egress pipeline from this class.
    pub dequeued: u64,
}

impl ClassStats {
    fn fold(&mut self, d: &ClassStats) {
        self.enqueued += d.enqueued;
        self.tail_drops += d.tail_drops;
        self.dequeued += d.dequeued;
    }
}

/// Traffic-Manager statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TmStats {
    /// Packets enqueued toward egress.
    pub enqueued: u64,
    /// Packets dropped for lacking a forwarding decision.
    pub no_route_drops: u64,
    /// Packets tail-dropped on a full per-port per-class queue.
    pub tail_drops: u64,
    /// High-water mark of total per-port occupancy.
    pub max_depth: usize,
    /// Strict-priority class counters.
    pub priority: ClassStats,
    /// Assured-forwarding class counters.
    pub assured: ClassStats,
    /// Best-effort class counters.
    pub best_effort: ClassStats,
}

impl TmStats {
    /// Counters for one class, indexed by `TM_CLASS_*`.
    pub fn class(&self, class: usize) -> &ClassStats {
        match class {
            TM_CLASS_PRIORITY => &self.priority,
            TM_CLASS_ASSURED => &self.assured,
            _ => &self.best_effort,
        }
    }

    fn class_mut(&mut self, class: usize) -> &mut ClassStats {
        match class {
            TM_CLASS_PRIORITY => &mut self.priority,
            TM_CLASS_ASSURED => &mut self.assured,
            _ => &mut self.best_effort,
        }
    }

    /// Additively folds another TM's counters into this one (`max_depth`
    /// takes the max); used when shard-local deltas are merged at an
    /// epoch barrier.
    pub fn fold(&mut self, d: &TmStats) {
        self.enqueued += d.enqueued;
        self.no_route_drops += d.no_route_drops;
        self.tail_drops += d.tail_drops;
        self.max_depth = self.max_depth.max(d.max_depth);
        self.priority.fold(&d.priority);
        self.assured.fold(&d.assured);
        self.best_effort.fold(&d.best_effort);
    }
}

/// Default per-port per-class queue capacity (packets).
pub const TM_QUEUE_CAPACITY: usize = 64;

/// One egress port's class queues plus WDRR service state.
#[derive(Debug)]
struct PortQueues {
    cls: [VecDeque<Packet>; TM_CLASSES],
    deficit: [usize; TM_CLASSES],
    wdrr_next: usize,
}

impl PortQueues {
    fn new() -> Self {
        PortQueues {
            cls: Default::default(),
            deficit: [0; TM_CLASSES],
            wdrr_next: TM_CLASS_ASSURED,
        }
    }

    fn depth(&self) -> usize {
        self.cls.iter().map(|q| q.len()).sum()
    }

    fn next_class(c: usize) -> usize {
        if c + 1 >= TM_CLASSES {
            TM_CLASS_ASSURED
        } else {
            c + 1
        }
    }

    /// Strict priority for class 0, byte-based weighted deficit round
    /// robin across the rest.
    fn dequeue_one(&mut self) -> Option<(usize, Packet)> {
        if let Some(p) = self.cls[TM_CLASS_PRIORITY].pop_front() {
            return Some((TM_CLASS_PRIORITY, p));
        }
        if self.cls[TM_CLASS_ASSURED..].iter().all(|q| q.is_empty()) {
            return None;
        }
        loop {
            let c = self.wdrr_next;
            let Some(head) = self.cls[c].front() else {
                // An idle class forfeits its accumulated deficit
                // (classic DRR), so bursts cannot bank service credit.
                self.deficit[c] = 0;
                self.wdrr_next = Self::next_class(c);
                continue;
            };
            let need = head.data.len().max(1);
            if self.deficit[c] >= need {
                self.deficit[c] -= need;
                let p = self.cls[c].pop_front().expect("head exists");
                return Some((c, p));
            }
            self.deficit[c] += TM_WDRR_QUANTUM * TM_WDRR_WEIGHTS[c];
            self.wdrr_next = Self::next_class(c);
        }
    }
}

/// The Traffic Manager: per-egress-port, per-class queues between the
/// ingress and egress pipelines — the queueing point the selector splits
/// the elastic pipeline around (Fig. 1). Ports are drained round-robin;
/// within a port, class 0 is strict priority and the remaining classes
/// share the residual bandwidth by weighted deficit round robin. Each
/// class queue tail-drops independently on overflow, so priority traffic
/// is never dropped because best-effort filled the port.
#[derive(Debug)]
pub struct TrafficManager {
    ports: Vec<PortQueues>,
    capacity: usize,
    rr_next: usize,
    /// Interned id of the [`TM_CLASS_META`] metadata override field.
    class_id: u32,
    /// Statistics.
    pub stats: TmStats,
}

impl Default for TrafficManager {
    fn default() -> Self {
        TrafficManager::new(8, TM_QUEUE_CAPACITY).expect("default TM config is valid")
    }
}

impl TrafficManager {
    /// TM with `ports` output queue groups of `capacity` packets per
    /// class. Zero ports or zero capacity is a configuration error — a
    /// TM that silently rewrote either would queue packets somewhere the
    /// caller never provisioned.
    pub fn new(ports: usize, capacity: usize) -> Result<Self, CoreError> {
        if ports == 0 {
            return Err(CoreError::Config(
                "traffic manager needs at least one egress port queue (ports=0)".into(),
            ));
        }
        if capacity == 0 {
            return Err(CoreError::Config(
                "traffic manager queue capacity must be nonzero (capacity=0)".into(),
            ));
        }
        Ok(TrafficManager {
            ports: (0..ports).map(|_| PortQueues::new()).collect(),
            capacity,
            rr_next: 0,
            class_id: ipsa_netpkt::intern::meta_id(TM_CLASS_META),
            stats: TmStats::default(),
        })
    }

    /// The traffic class a packet is queued under: an explicit
    /// [`TM_CLASS_META`] metadata override when set (1..=3 map to
    /// classes 0..=2), else the DSCP codepoint read from the raw frame
    /// (EF and the CS5+ pool map to priority, AF to assured), else
    /// best-effort for non-IP traffic.
    pub fn traffic_class(&self, pkt: &Packet) -> usize {
        let v = pkt.meta.get_user(self.class_id);
        if v != 0 {
            return ((v as usize).saturating_sub(1)).min(TM_CLASS_BEST_EFFORT);
        }
        match dscp_of(&pkt.data) {
            Some(dscp) if dscp >= 40 => TM_CLASS_PRIORITY,
            Some(dscp) if dscp >= 8 => TM_CLASS_ASSURED,
            _ => TM_CLASS_BEST_EFFORT,
        }
    }

    /// Accepts a packet from the ingress pipeline. Packets without an
    /// egress decision are dropped here (counted), as a real TM would;
    /// packets to a full class queue are tail-dropped.
    pub fn enqueue(&mut self, pkt: Packet) {
        let Some(port) = pkt.meta.egress_port else {
            self.stats.no_route_drops += 1;
            return;
        };
        let class = self.traffic_class(&pkt);
        let idx = (port as usize) % self.ports.len();
        let pq = &mut self.ports[idx];
        if pq.cls[class].len() >= self.capacity {
            self.stats.tail_drops += 1;
            self.stats.class_mut(class).tail_drops += 1;
            return;
        }
        pq.cls[class].push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.class_mut(class).enqueued += 1;
        let depth = pq.depth();
        self.stats.max_depth = self.stats.max_depth.max(depth);
    }

    /// Hands the next packet to the egress pipeline: round-robin across
    /// the non-empty ports, strict-priority + WDRR within the port.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let n = self.ports.len();
        for i in 0..n {
            let idx = (self.rr_next + i) % n;
            if self.ports[idx].depth() == 0 {
                continue;
            }
            self.rr_next = (idx + 1) % n;
            let (class, pkt) = self.ports[idx].dequeue_one().expect("port has backlog");
            self.stats.class_mut(class).dequeued += 1;
            return Some(pkt);
        }
        None
    }

    /// Total queued packet count.
    pub fn depth(&self) -> usize {
        self.ports.iter().map(|p| p.depth()).sum()
    }

    /// Queued packets on one port (all classes).
    pub fn port_depth(&self, port: u16) -> usize {
        self.ports
            .get((port as usize) % self.ports.len())
            .map(|p| p.depth())
            .unwrap_or(0)
    }

    /// Queued packets in one class of one port.
    pub fn class_depth(&self, port: u16, class: usize) -> usize {
        self.ports
            .get((port as usize) % self.ports.len())
            .and_then(|p| p.cls.get(class))
            .map(|q| q.len())
            .unwrap_or(0)
    }
}

/// The DSCP codepoint of a raw Ethernet frame, when it carries IPv4 or
/// IPv6 (`None` for anything else or truncated headers).
fn dscp_of(data: &[u8]) -> Option<u8> {
    let ethertype = u16::from_be_bytes([*data.get(12)?, *data.get(13)?]);
    match ethertype {
        0x0800 => Some(*data.get(15)? >> 2),
        0x86DD => {
            let tc = ((*data.get(14)? & 0x0F) << 4) | (*data.get(15)? >> 4);
            Some(tc >> 2)
        }
        _ => None,
    }
}

/// Pipeline-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PipelineStats {
    /// Packets entering the ingress pipeline.
    pub received: u64,
    /// Packets emitted by the egress pipeline.
    pub emitted: u64,
    /// Packets dropped by actions (ingress or egress).
    pub action_drops: u64,
    /// Malformed packets dropped by the parser (truncated mid-header).
    pub parse_drops: u64,
    /// Packets that arrived while the pipeline was draining (held).
    pub held_during_drain: u64,
}

/// The pipeline module.
#[derive(Debug)]
pub struct PipelineModule {
    /// Physical TSP slots in chain order.
    pub slots: Vec<TspSlot>,
    /// Selector configuration.
    pub selector: SelectorConfig,
    /// TSP ↔ memory crossbar.
    pub crossbar: Crossbar,
    /// The Traffic Manager between ingress and egress.
    pub tm: TrafficManager,
    /// True while a structural update holds traffic back.
    pub draining: bool,
    /// Statistics.
    pub stats: PipelineStats,
    /// Current control-plane epoch; bumped on every invalidation.
    epoch: u64,
    /// Compiled fast path for the current epoch, if one was built.
    compiled: Option<CompiledPath>,
    /// Reusable per-packet scratch buffers for the fast path.
    scratch: EvalScratch,
    /// Controller-installed dataflow facts guiding the next compilation.
    facts: Option<ProgramFacts>,
}

impl PipelineModule {
    /// New pipeline with `slots` unprogrammed TSPs, `ports` TM output
    /// queues, and a crossbar. Fails with [`CoreError::Config`] on a
    /// zero port count — the TM would have nowhere to queue.
    pub fn new(slots: usize, ports: usize, crossbar: Crossbar) -> Result<Self, CoreError> {
        Ok(PipelineModule {
            slots: (0..slots).map(|_| TspSlot::default()).collect(),
            selector: SelectorConfig::all_bypass(slots),
            crossbar,
            tm: TrafficManager::new(ports, TM_QUEUE_CAPACITY)?,
            draining: false,
            stats: PipelineStats::default(),
            epoch: 0,
            compiled: None,
            scratch: EvalScratch::default(),
            facts: None,
        })
    }

    /// Discards the compiled fast path and opens a new control-plane
    /// epoch. Called whenever a control message batch is applied — any
    /// message may change names, templates, table contents, or wiring the
    /// compiled path has pre-resolved.
    pub fn invalidate_compiled(&mut self) {
        self.compiled = None;
        self.epoch += 1;
    }

    /// The current control-plane epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when a compiled fast path is installed for the current epoch.
    pub fn has_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Installs (or clears, with `None`) controller-derived dataflow facts
    /// and re-opens the epoch so the next compilation consumes them.
    pub fn set_facts(&mut self, facts: Option<ProgramFacts>) {
        self.facts = facts;
        self.invalidate_compiled();
    }

    /// Drops any installed facts. Called when a control message the
    /// analysis did not anticipate (anything beyond entry add/del/default)
    /// lands, since the proofs were made against the previous design.
    pub fn clear_facts(&mut self) {
        if self.facts.take().is_some() {
            self.invalidate_compiled();
        }
    }

    /// True when dataflow facts are installed.
    pub fn has_facts(&self) -> bool {
        self.facts.is_some()
    }

    /// The installed facts artifact, if any.
    pub fn facts(&self) -> Option<&ProgramFacts> {
        self.facts.as_ref()
    }

    /// Ensures a compiled fast path exists for the current epoch. Returns
    /// whether one is installed afterwards — compilation failures (unknown
    /// table, crossbar violation, undefined action) leave the pipeline on
    /// the interpreter, which reports those conditions per packet.
    pub fn ensure_compiled(&mut self, linkage: &HeaderLinkage, sm: &StorageModule) -> bool {
        if self.compiled.is_none() {
            self.compiled = fast::compile(
                &self.slots,
                &self.selector,
                &self.crossbar,
                sm,
                linkage,
                self.epoch,
                self.facts.as_ref(),
            )
            .ok();
        }
        self.compiled.is_some()
    }

    /// Runs one packet through the compiled fast path when one is
    /// installed, falling back to [`PipelineModule::run_packet`] otherwise.
    /// Call [`PipelineModule::ensure_compiled`] once per batch first.
    pub fn run_batch_packet(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        let Some(cp) = self.compiled.take() else {
            return self.run_packet(linkage, sm, pkt);
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = cp.run_packet(self, linkage, sm, &mut scratch, pkt);
        self.scratch = scratch;
        self.compiled = Some(cp);
        r
    }

    /// Checks out the compiled fast path and scratch buffers for a whole
    /// run-to-completion drain: the take/restore round-trip
    /// [`PipelineModule::run_batch_packet`] pays per packet happens once,
    /// and the [`BurstRunner`] restores them when dropped.
    ///
    /// Call [`PipelineModule::ensure_compiled`] once per epoch first; the
    /// caller guarantees no control-plane write lands while the runner is
    /// live (this is the hoisted epoch-validity model). Without a compiled
    /// path the runner falls back to the interpreter per packet.
    pub fn burst_runner(&mut self) -> BurstRunner<'_> {
        let cp = self.compiled.take();
        let scratch = std::mem::take(&mut self.scratch);
        BurstRunner {
            cp,
            scratch,
            pm: self,
        }
    }

    /// Runs a whole burst run-to-completion through the compiled fast path
    /// via one [`PipelineModule::burst_runner`] checkout. Drains `pkts`,
    /// pushes emitted packets to `out`, and classifies truncated-parse
    /// failures as counted drops the same way the per-packet switch loop
    /// does. On a (fatal) device error the rest of the burst is discarded
    /// with the error propagated.
    pub fn run_burst(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        pkts: &mut Vec<Packet>,
        out: &mut Vec<Packet>,
    ) -> Result<(), CoreError> {
        let mut runner = self.burst_runner();
        let mut result = Ok(());
        for pkt in pkts.drain(..) {
            match runner.run(linkage, sm, pkt) {
                Ok(Some(p)) => out.push(p),
                Ok(None) => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        result
    }

    /// Number of physical slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Active (non-bypassed) TSP count — the power model's main input.
    pub fn active_tsps(&self) -> usize {
        self.selector.active_count()
    }

    /// Runs one packet through the full pipeline. Returns the emitted
    /// packet, or `None` if it was dropped (by an action or for lacking a
    /// route).
    pub fn run_packet(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        mut pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        self.stats.received += 1;
        // Ingress pipeline.
        for s in self.selector.slots_with(SlotRole::Ingress) {
            self.slots[s].process(s, linkage, sm, &self.crossbar, &mut pkt)?;
            if pkt.meta.drop {
                self.stats.action_drops += 1;
                return Ok(None);
            }
        }
        // Traffic Manager.
        self.tm.enqueue(pkt);
        let Some(mut pkt) = self.tm.dequeue() else {
            return Ok(None); // dropped for no route
        };
        // Egress pipeline.
        for s in self.selector.slots_with(SlotRole::Egress) {
            self.slots[s].process(s, linkage, sm, &self.crossbar, &mut pkt)?;
            if pkt.meta.drop {
                self.stats.action_drops += 1;
                return Ok(None);
            }
        }
        self.stats.emitted += 1;
        Ok(Some(pkt))
    }

    /// Applies a new selector configuration (validated).
    pub fn set_selector(&mut self, cfg: SelectorConfig) -> Result<(), CoreError> {
        cfg.validate()?;
        if cfg.slots() != self.slots.len() {
            return Err(CoreError::InvalidSelector(format!(
                "selector covers {} slots, pipeline has {}",
                cfg.slots(),
                self.slots.len()
            )));
        }
        self.selector = cfg;
        Ok(())
    }

    /// Writes a template into a slot ("a few clock cycles").
    pub fn write_template(
        &mut self,
        slot: usize,
        template: ipsa_core::template::TspTemplate,
    ) -> Result<(), CoreError> {
        let n = self.slots.len();
        self.slots
            .get_mut(slot)
            .ok_or(CoreError::SlotOutOfRange { slot, slots: n })?
            .template = Some(template);
        Ok(())
    }

    /// Clears a slot.
    pub fn clear_slot(&mut self, slot: usize) -> Result<(), CoreError> {
        let n = self.slots.len();
        self.slots
            .get_mut(slot)
            .ok_or(CoreError::SlotOutOfRange { slot, slots: n })?
            .template = None;
        Ok(())
    }
}

/// A checked-out fast path (see [`PipelineModule::burst_runner`]): holds
/// the compiled path and scratch buffers for the duration of a
/// run-to-completion drain, so the hot loop pays no per-packet checkout.
/// Restores both into the pipeline on drop.
#[derive(Debug)]
pub struct BurstRunner<'a> {
    cp: Option<CompiledPath>,
    scratch: EvalScratch,
    pm: &'a mut PipelineModule,
}

impl BurstRunner<'_> {
    /// True while a structural update holds traffic back.
    #[inline]
    pub fn draining(&self) -> bool {
        self.pm.draining
    }

    /// Runs one packet — compiled fast path when installed, interpreter
    /// otherwise — classifying truncated-parse failures as counted drops
    /// the same way the per-packet switch loop does.
    #[inline]
    pub fn run(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        let r = match &self.cp {
            Some(cp) => cp.run_packet(self.pm, linkage, sm, &mut self.scratch, pkt),
            None => self.pm.run_packet(linkage, sm, pkt),
        };
        crate::switch::classify_packet_result(r, &mut self.pm.stats)
    }
}

impl Drop for BurstRunner<'_> {
    fn drop(&mut self) {
        self.pm.scratch = std::mem::take(&mut self.scratch);
        self.pm.compiled = self.cp.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::action::{ActionDef, Primitive};
    use ipsa_core::predicate::Predicate;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::{MatcherBranch, TspTemplate};
    use ipsa_core::value::{LValueRef, ValueRef};
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    /// Two-stage pipeline: ingress sets nexthop from FIB; egress forwards
    /// on nexthop.
    fn two_stage() -> (HeaderLinkage, StorageModule, PipelineModule) {
        let linkage = HeaderLinkage::standard();
        let mut sm = StorageModule::new(8, 2, 128);
        sm.define_metadata(&[("nexthop".into(), 16)]);
        sm.define_action(ActionDef {
            name: "set_nh".into(),
            params: vec![("nh".into(), 16)],
            body: vec![Primitive::Set {
                dst: LValueRef::Meta("nexthop".into()),
                src: ValueRef::Param(0),
            }],
        });
        sm.define_action(ActionDef {
            name: "fwd".into(),
            params: vec![("port".into(), 16)],
            body: vec![Primitive::Forward {
                port: ValueRef::Param(0),
            }],
        });
        sm.create_table(
            TableDef {
                name: "fib".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["set_nh".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            vec![0],
        )
        .unwrap();
        sm.create_table(
            TableDef {
                name: "out".into(),
                key: vec![KeyField {
                    source: ValueRef::Meta("nexthop".into()),
                    bits: 16,
                    kind: MatchKind::Exact,
                }],
                size: 64,
                actions: vec!["fwd".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            vec![1],
        )
        .unwrap();
        sm.insert_entry(
            "fib",
            TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("set_nh", vec![5]),
                counter: 0,
            },
        )
        .unwrap();
        sm.insert_entry(
            "out",
            TableEntry::exact(vec![5], ActionCall::new("fwd", vec![3])),
        )
        .unwrap();

        let mut pm = PipelineModule::new(8, 8, Crossbar::full()).unwrap();
        pm.write_template(
            0,
            TspTemplate {
                stage_name: "fib_s".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: Predicate::IsValid("ipv4".into()),
                    table: Some("fib".into()),
                }],
                executor: vec![(1, ActionCall::new("set_nh", vec![]))],
                default_action: ActionCall::no_action(),
            },
        )
        .unwrap();
        // The TM needs a forwarding decision out of ingress, so the
        // forwarding stage lives at the end of ingress here; the egress
        // slot 7 hosts a pass-through rewrite stage.
        pm.write_template(
            1,
            TspTemplate {
                stage_name: "out_s".into(),
                func: "base".into(),
                parse: vec![],
                branches: vec![MatcherBranch {
                    pred: Predicate::True,
                    table: Some("out".into()),
                }],
                executor: vec![(1, ActionCall::new("fwd", vec![]))],
                default_action: ActionCall::no_action(),
            },
        )
        .unwrap();
        pm.write_template(7, TspTemplate::passthrough("egress_noop"))
            .unwrap();
        pm.crossbar.connect(0, &[0]).unwrap();
        pm.crossbar.connect(1, &[1]).unwrap();
        pm.set_selector(SelectorConfig::split(8, 2, 1).unwrap())
            .unwrap();
        (linkage, sm, pm)
    }

    #[test]
    fn routed_packet_flows_end_to_end() {
        let (linkage, mut sm, mut pm) = two_stage();
        let p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        let out = pm.run_packet(&linkage, &mut sm, p).unwrap().unwrap();
        assert_eq!(out.meta.egress_port, Some(3));
        assert_eq!(pm.stats.emitted, 1);
        assert_eq!(pm.tm.stats.enqueued, 1);
    }

    #[test]
    fn unrouted_packet_dropped_at_tm() {
        let (linkage, mut sm, mut pm) = two_stage();
        let p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0b000001, // no FIB entry -> no nexthop -> no out match
            ..Default::default()
        });
        let out = pm.run_packet(&linkage, &mut sm, p).unwrap();
        assert!(out.is_none());
        assert_eq!(pm.tm.stats.no_route_drops, 1);
        assert_eq!(pm.stats.emitted, 0);
    }

    #[test]
    fn bypassed_slots_do_no_work() {
        let (linkage, mut sm, mut pm) = two_stage();
        // Slot 2 gets a template but stays bypassed by the selector.
        pm.write_template(2, TspTemplate::passthrough("idle"))
            .unwrap();
        let p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        pm.run_packet(&linkage, &mut sm, p).unwrap();
        assert_eq!(pm.slots[2].stats.packets, 0);
        assert_eq!(pm.active_tsps(), 3);
    }

    #[test]
    fn tm_tail_drops_and_round_robin() {
        let mut tm = TrafficManager::new(2, 3).unwrap();
        let pkt_to = |port: u16| {
            let mut p = Packet::new(vec![0u8; 4], 0);
            p.meta.egress_port = Some(port);
            p
        };
        // Fill port 0 beyond capacity.
        for _ in 0..5 {
            tm.enqueue(pkt_to(0));
        }
        assert_eq!(tm.stats.tail_drops, 2);
        assert_eq!(tm.port_depth(0), 3);
        // Interleave a port-1 packet: round-robin alternates queues.
        tm.enqueue(pkt_to(1));
        let order: Vec<u16> = std::iter::from_fn(|| tm.dequeue())
            .map(|p| p.meta.egress_port.unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 0, 0]);
        // No-route packets drop, never enqueue.
        tm.enqueue(Packet::new(vec![0u8; 4], 0));
        assert_eq!(tm.stats.no_route_drops, 1);
        assert_eq!(tm.depth(), 0);
    }

    #[test]
    fn tm_honors_configured_port_count() {
        // Regression: the pipeline used to build its TM with the default 8
        // queues regardless of the configured port count, so ports 12 and 4
        // aliased onto the same queue (12 % 8 == 4).
        let mut pm = PipelineModule::new(8, 16, Crossbar::full()).unwrap();
        let pkt_to = |port: u16| {
            let mut p = Packet::new(vec![0u8; 4], 0);
            p.meta.egress_port = Some(port);
            p
        };
        pm.tm.enqueue(pkt_to(12));
        pm.tm.enqueue(pkt_to(4));
        assert_eq!(pm.tm.port_depth(12), 1);
        assert_eq!(pm.tm.port_depth(4), 1);
    }

    #[test]
    fn selector_validation_enforced() {
        let (_, _, mut pm) = two_stage();
        let bad = SelectorConfig {
            roles: vec![SlotRole::Egress; 8]
                .into_iter()
                .enumerate()
                .map(|(i, r)| if i == 7 { SlotRole::Ingress } else { r })
                .collect(),
        };
        assert!(pm.set_selector(bad).is_err());
        assert!(
            pm.set_selector(SelectorConfig::all_bypass(4)).is_err(),
            "wrong width rejected"
        );
    }

    #[test]
    fn tm_rejects_zero_ports_and_capacity() {
        // Regression: `TrafficManager::new` used to rewrite ports=0 and
        // capacity=0 to 1 via `.max(1)`, hiding the misconfiguration.
        assert!(matches!(
            TrafficManager::new(0, 64),
            Err(CoreError::Config(_))
        ));
        assert!(matches!(
            TrafficManager::new(4, 0),
            Err(CoreError::Config(_))
        ));
        assert!(matches!(
            PipelineModule::new(8, 0, Crossbar::full()),
            Err(CoreError::Config(_))
        ));
    }

    fn classed_packet(port: u16, dscp: u8, len: usize) -> Packet {
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            dscp,
            payload: vec![0xAB; len],
            ..Default::default()
        });
        p.meta.egress_port = Some(port);
        p
    }

    #[test]
    fn tm_classifies_by_dscp_and_metadata_override() {
        let tm = TrafficManager::new(2, 4).unwrap();
        assert_eq!(
            tm.traffic_class(&classed_packet(0, 46, 16)),
            TM_CLASS_PRIORITY,
            "EF is strict priority"
        );
        assert_eq!(
            tm.traffic_class(&classed_packet(0, 10, 16)),
            TM_CLASS_ASSURED,
            "AF11 is assured"
        );
        assert_eq!(
            tm.traffic_class(&classed_packet(0, 0, 16)),
            TM_CLASS_BEST_EFFORT
        );
        // Non-IP frames fall to best-effort.
        let mut raw = Packet::new(vec![0u8; 4], 0);
        raw.meta.egress_port = Some(0);
        assert_eq!(tm.traffic_class(&raw), TM_CLASS_BEST_EFFORT);
        // Explicit metadata override beats DSCP: 1..=3 select a class.
        let id = ipsa_netpkt::intern::meta_id(TM_CLASS_META);
        let mut p = classed_packet(0, 0, 16);
        p.meta.set_user(id, 1);
        assert_eq!(tm.traffic_class(&p), TM_CLASS_PRIORITY);
        p.meta.set_user(id, 2);
        assert_eq!(tm.traffic_class(&p), TM_CLASS_ASSURED);
        p.meta.set_user(id, 99);
        assert_eq!(tm.traffic_class(&p), TM_CLASS_BEST_EFFORT);
    }

    #[test]
    fn tm_strict_priority_never_drops_before_best_effort() {
        let mut tm = TrafficManager::new(1, 2).unwrap();
        // Flood best-effort far past its own queue; priority still has
        // dedicated headroom and is served first.
        for _ in 0..6 {
            tm.enqueue(classed_packet(0, 0, 16));
        }
        for _ in 0..2 {
            tm.enqueue(classed_packet(0, 46, 16));
        }
        assert_eq!(tm.stats.best_effort.tail_drops, 4);
        assert_eq!(tm.stats.priority.tail_drops, 0);
        let drained: Vec<Packet> = std::iter::from_fn(|| tm.dequeue()).collect();
        let order: Vec<usize> = drained.iter().map(|p| tm.traffic_class(p)).collect();
        assert_eq!(
            order,
            vec![
                TM_CLASS_PRIORITY,
                TM_CLASS_PRIORITY,
                TM_CLASS_BEST_EFFORT,
                TM_CLASS_BEST_EFFORT
            ]
        );
        assert_eq!(tm.stats.priority.dequeued, 2);
        assert_eq!(tm.stats.best_effort.dequeued, 2);
    }

    #[test]
    fn tm_wdrr_shares_residual_bandwidth_by_weight() {
        let mut tm = TrafficManager::new(1, 64).unwrap();
        // Equal-size backlogs in assured and best-effort; WDRR at 3:1
        // should serve ~3 assured bytes per best-effort byte while both
        // stay backlogged. Drain a full DRR cycle (one quantum round per
        // class) so the burst granularity of deficit service averages out.
        for _ in 0..64 {
            tm.enqueue(classed_packet(0, 10, 100));
            tm.enqueue(classed_packet(0, 0, 100));
        }
        let mut served = [0usize; TM_CLASSES];
        for _ in 0..44 {
            let p = tm.dequeue().unwrap();
            served[tm.traffic_class(&p)] += 1;
        }
        assert_eq!(served[TM_CLASS_PRIORITY], 0);
        let (af, be) = (served[TM_CLASS_ASSURED], served[TM_CLASS_BEST_EFFORT]);
        assert!(
            af >= 2 * be && be > 0,
            "assured should get ~3x the service of best-effort, got {af}:{be}"
        );
    }

    #[test]
    fn slot_bounds_checked() {
        let (_, _, mut pm) = two_stage();
        assert!(matches!(
            pm.write_template(99, TspTemplate::passthrough("x")),
            Err(CoreError::SlotOutOfRange { .. })
        ));
        assert!(matches!(
            pm.clear_slot(99),
            Err(CoreError::SlotOutOfRange { .. })
        ));
    }
}
