//! PM — the Pipeline Module: the elastic TSP chain and the Traffic Manager.
//!
//! All TSPs are physically chained; the selector decides which prefix forms
//! the ingress pipeline (feeding the TM) and which suffix forms the egress
//! pipeline (fed by the TM); bypassed TSPs idle in low power (Sec. 2.3).
//! During a structural update the pipeline is drained through back
//! pressure: queued packets are processed to completion, then templates and
//! the selector are rewritten before traffic resumes.

use std::collections::VecDeque;

use ipsa_core::crossbar::Crossbar;
use ipsa_core::error::CoreError;
use ipsa_core::facts::ProgramFacts;
use ipsa_core::pipeline_cfg::{SelectorConfig, SlotRole};
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::packet::Packet;
use serde::Serialize;

use crate::fast::{self, CompiledPath, EvalScratch};
use crate::sm::StorageModule;
use crate::tsp::TspSlot;

/// Traffic-Manager statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TmStats {
    /// Packets enqueued toward egress.
    pub enqueued: u64,
    /// Packets dropped for lacking a forwarding decision.
    pub no_route_drops: u64,
    /// Packets tail-dropped on a full per-port queue.
    pub tail_drops: u64,
    /// High-water mark across the per-port queues.
    pub max_depth: usize,
}

/// Default per-port queue capacity (packets).
pub const TM_QUEUE_CAPACITY: usize = 64;

/// The Traffic Manager: per-egress-port queues between the ingress and
/// egress pipelines, drained round-robin, with tail-drop on overflow —
/// the queueing point the selector splits the elastic pipeline around
/// (Fig. 1).
#[derive(Debug)]
pub struct TrafficManager {
    queues: Vec<VecDeque<Packet>>,
    capacity: usize,
    rr_next: usize,
    /// Statistics.
    pub stats: TmStats,
}

impl Default for TrafficManager {
    fn default() -> Self {
        TrafficManager::new(8, TM_QUEUE_CAPACITY)
    }
}

impl TrafficManager {
    /// TM with `ports` output queues of `capacity` packets each.
    pub fn new(ports: usize, capacity: usize) -> Self {
        TrafficManager {
            queues: (0..ports.max(1)).map(|_| VecDeque::new()).collect(),
            capacity: capacity.max(1),
            rr_next: 0,
            stats: TmStats::default(),
        }
    }

    /// Accepts a packet from the ingress pipeline. Packets without an
    /// egress decision are dropped here (counted), as a real TM would;
    /// packets to a full queue are tail-dropped.
    pub fn enqueue(&mut self, pkt: Packet) {
        let Some(port) = pkt.meta.egress_port else {
            self.stats.no_route_drops += 1;
            return;
        };
        let idx = (port as usize) % self.queues.len();
        let q = &mut self.queues[idx];
        if q.len() >= self.capacity {
            self.stats.tail_drops += 1;
            return;
        }
        q.push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.max_depth = self.stats.max_depth.max(q.len());
    }

    /// Hands the next packet to the egress pipeline, round-robin across
    /// the non-empty port queues.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let n = self.queues.len();
        for i in 0..n {
            let idx = (self.rr_next + i) % n;
            if let Some(p) = self.queues[idx].pop_front() {
                self.rr_next = (idx + 1) % n;
                return Some(p);
            }
        }
        None
    }

    /// Total queued packet count.
    pub fn depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Queued packets on one port.
    pub fn port_depth(&self, port: u16) -> usize {
        self.queues
            .get((port as usize) % self.queues.len())
            .map(|q| q.len())
            .unwrap_or(0)
    }
}

/// Pipeline-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PipelineStats {
    /// Packets entering the ingress pipeline.
    pub received: u64,
    /// Packets emitted by the egress pipeline.
    pub emitted: u64,
    /// Packets dropped by actions (ingress or egress).
    pub action_drops: u64,
    /// Malformed packets dropped by the parser (truncated mid-header).
    pub parse_drops: u64,
    /// Packets that arrived while the pipeline was draining (held).
    pub held_during_drain: u64,
}

/// The pipeline module.
#[derive(Debug)]
pub struct PipelineModule {
    /// Physical TSP slots in chain order.
    pub slots: Vec<TspSlot>,
    /// Selector configuration.
    pub selector: SelectorConfig,
    /// TSP ↔ memory crossbar.
    pub crossbar: Crossbar,
    /// The Traffic Manager between ingress and egress.
    pub tm: TrafficManager,
    /// True while a structural update holds traffic back.
    pub draining: bool,
    /// Statistics.
    pub stats: PipelineStats,
    /// Current control-plane epoch; bumped on every invalidation.
    epoch: u64,
    /// Compiled fast path for the current epoch, if one was built.
    compiled: Option<CompiledPath>,
    /// Reusable per-packet scratch buffers for the fast path.
    scratch: EvalScratch,
    /// Controller-installed dataflow facts guiding the next compilation.
    facts: Option<ProgramFacts>,
}

impl PipelineModule {
    /// New pipeline with `slots` unprogrammed TSPs, `ports` TM output
    /// queues, and a crossbar.
    pub fn new(slots: usize, ports: usize, crossbar: Crossbar) -> Self {
        PipelineModule {
            slots: (0..slots).map(|_| TspSlot::default()).collect(),
            selector: SelectorConfig::all_bypass(slots),
            crossbar,
            tm: TrafficManager::new(ports, TM_QUEUE_CAPACITY),
            draining: false,
            stats: PipelineStats::default(),
            epoch: 0,
            compiled: None,
            scratch: EvalScratch::default(),
            facts: None,
        }
    }

    /// Discards the compiled fast path and opens a new control-plane
    /// epoch. Called whenever a control message batch is applied — any
    /// message may change names, templates, table contents, or wiring the
    /// compiled path has pre-resolved.
    pub fn invalidate_compiled(&mut self) {
        self.compiled = None;
        self.epoch += 1;
    }

    /// The current control-plane epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when a compiled fast path is installed for the current epoch.
    pub fn has_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Installs (or clears, with `None`) controller-derived dataflow facts
    /// and re-opens the epoch so the next compilation consumes them.
    pub fn set_facts(&mut self, facts: Option<ProgramFacts>) {
        self.facts = facts;
        self.invalidate_compiled();
    }

    /// Drops any installed facts. Called when a control message the
    /// analysis did not anticipate (anything beyond entry add/del/default)
    /// lands, since the proofs were made against the previous design.
    pub fn clear_facts(&mut self) {
        if self.facts.take().is_some() {
            self.invalidate_compiled();
        }
    }

    /// True when dataflow facts are installed.
    pub fn has_facts(&self) -> bool {
        self.facts.is_some()
    }

    /// The installed facts artifact, if any.
    pub fn facts(&self) -> Option<&ProgramFacts> {
        self.facts.as_ref()
    }

    /// Ensures a compiled fast path exists for the current epoch. Returns
    /// whether one is installed afterwards — compilation failures (unknown
    /// table, crossbar violation, undefined action) leave the pipeline on
    /// the interpreter, which reports those conditions per packet.
    pub fn ensure_compiled(&mut self, linkage: &HeaderLinkage, sm: &StorageModule) -> bool {
        if self.compiled.is_none() {
            self.compiled = fast::compile(
                &self.slots,
                &self.selector,
                &self.crossbar,
                sm,
                linkage,
                self.epoch,
                self.facts.as_ref(),
            )
            .ok();
        }
        self.compiled.is_some()
    }

    /// Runs one packet through the compiled fast path when one is
    /// installed, falling back to [`PipelineModule::run_packet`] otherwise.
    /// Call [`PipelineModule::ensure_compiled`] once per batch first.
    pub fn run_batch_packet(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        let Some(cp) = self.compiled.take() else {
            return self.run_packet(linkage, sm, pkt);
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = cp.run_packet(self, linkage, sm, &mut scratch, pkt);
        self.scratch = scratch;
        self.compiled = Some(cp);
        r
    }

    /// Checks out the compiled fast path and scratch buffers for a whole
    /// run-to-completion drain: the take/restore round-trip
    /// [`PipelineModule::run_batch_packet`] pays per packet happens once,
    /// and the [`BurstRunner`] restores them when dropped.
    ///
    /// Call [`PipelineModule::ensure_compiled`] once per epoch first; the
    /// caller guarantees no control-plane write lands while the runner is
    /// live (this is the hoisted epoch-validity model). Without a compiled
    /// path the runner falls back to the interpreter per packet.
    pub fn burst_runner(&mut self) -> BurstRunner<'_> {
        let cp = self.compiled.take();
        let scratch = std::mem::take(&mut self.scratch);
        BurstRunner {
            cp,
            scratch,
            pm: self,
        }
    }

    /// Runs a whole burst run-to-completion through the compiled fast path
    /// via one [`PipelineModule::burst_runner`] checkout. Drains `pkts`,
    /// pushes emitted packets to `out`, and classifies truncated-parse
    /// failures as counted drops the same way the per-packet switch loop
    /// does. On a (fatal) device error the rest of the burst is discarded
    /// with the error propagated.
    pub fn run_burst(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        pkts: &mut Vec<Packet>,
        out: &mut Vec<Packet>,
    ) -> Result<(), CoreError> {
        let mut runner = self.burst_runner();
        let mut result = Ok(());
        for pkt in pkts.drain(..) {
            match runner.run(linkage, sm, pkt) {
                Ok(Some(p)) => out.push(p),
                Ok(None) => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        result
    }

    /// Number of physical slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Active (non-bypassed) TSP count — the power model's main input.
    pub fn active_tsps(&self) -> usize {
        self.selector.active_count()
    }

    /// Runs one packet through the full pipeline. Returns the emitted
    /// packet, or `None` if it was dropped (by an action or for lacking a
    /// route).
    pub fn run_packet(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        mut pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        self.stats.received += 1;
        // Ingress pipeline.
        for s in self.selector.slots_with(SlotRole::Ingress) {
            self.slots[s].process(s, linkage, sm, &self.crossbar, &mut pkt)?;
            if pkt.meta.drop {
                self.stats.action_drops += 1;
                return Ok(None);
            }
        }
        // Traffic Manager.
        self.tm.enqueue(pkt);
        let Some(mut pkt) = self.tm.dequeue() else {
            return Ok(None); // dropped for no route
        };
        // Egress pipeline.
        for s in self.selector.slots_with(SlotRole::Egress) {
            self.slots[s].process(s, linkage, sm, &self.crossbar, &mut pkt)?;
            if pkt.meta.drop {
                self.stats.action_drops += 1;
                return Ok(None);
            }
        }
        self.stats.emitted += 1;
        Ok(Some(pkt))
    }

    /// Applies a new selector configuration (validated).
    pub fn set_selector(&mut self, cfg: SelectorConfig) -> Result<(), CoreError> {
        cfg.validate()?;
        if cfg.slots() != self.slots.len() {
            return Err(CoreError::InvalidSelector(format!(
                "selector covers {} slots, pipeline has {}",
                cfg.slots(),
                self.slots.len()
            )));
        }
        self.selector = cfg;
        Ok(())
    }

    /// Writes a template into a slot ("a few clock cycles").
    pub fn write_template(
        &mut self,
        slot: usize,
        template: ipsa_core::template::TspTemplate,
    ) -> Result<(), CoreError> {
        let n = self.slots.len();
        self.slots
            .get_mut(slot)
            .ok_or(CoreError::SlotOutOfRange { slot, slots: n })?
            .template = Some(template);
        Ok(())
    }

    /// Clears a slot.
    pub fn clear_slot(&mut self, slot: usize) -> Result<(), CoreError> {
        let n = self.slots.len();
        self.slots
            .get_mut(slot)
            .ok_or(CoreError::SlotOutOfRange { slot, slots: n })?
            .template = None;
        Ok(())
    }
}

/// A checked-out fast path (see [`PipelineModule::burst_runner`]): holds
/// the compiled path and scratch buffers for the duration of a
/// run-to-completion drain, so the hot loop pays no per-packet checkout.
/// Restores both into the pipeline on drop.
#[derive(Debug)]
pub struct BurstRunner<'a> {
    cp: Option<CompiledPath>,
    scratch: EvalScratch,
    pm: &'a mut PipelineModule,
}

impl BurstRunner<'_> {
    /// True while a structural update holds traffic back.
    #[inline]
    pub fn draining(&self) -> bool {
        self.pm.draining
    }

    /// Runs one packet — compiled fast path when installed, interpreter
    /// otherwise — classifying truncated-parse failures as counted drops
    /// the same way the per-packet switch loop does.
    #[inline]
    pub fn run(
        &mut self,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        let r = match &self.cp {
            Some(cp) => cp.run_packet(self.pm, linkage, sm, &mut self.scratch, pkt),
            None => self.pm.run_packet(linkage, sm, pkt),
        };
        crate::switch::classify_packet_result(r, &mut self.pm.stats)
    }
}

impl Drop for BurstRunner<'_> {
    fn drop(&mut self) {
        self.pm.scratch = std::mem::take(&mut self.scratch);
        self.pm.compiled = self.cp.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::action::{ActionDef, Primitive};
    use ipsa_core::predicate::Predicate;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::{MatcherBranch, TspTemplate};
    use ipsa_core::value::{LValueRef, ValueRef};
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    /// Two-stage pipeline: ingress sets nexthop from FIB; egress forwards
    /// on nexthop.
    fn two_stage() -> (HeaderLinkage, StorageModule, PipelineModule) {
        let linkage = HeaderLinkage::standard();
        let mut sm = StorageModule::new(8, 2, 128);
        sm.define_metadata(&[("nexthop".into(), 16)]);
        sm.define_action(ActionDef {
            name: "set_nh".into(),
            params: vec![("nh".into(), 16)],
            body: vec![Primitive::Set {
                dst: LValueRef::Meta("nexthop".into()),
                src: ValueRef::Param(0),
            }],
        });
        sm.define_action(ActionDef {
            name: "fwd".into(),
            params: vec![("port".into(), 16)],
            body: vec![Primitive::Forward {
                port: ValueRef::Param(0),
            }],
        });
        sm.create_table(
            TableDef {
                name: "fib".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["set_nh".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            vec![0],
        )
        .unwrap();
        sm.create_table(
            TableDef {
                name: "out".into(),
                key: vec![KeyField {
                    source: ValueRef::Meta("nexthop".into()),
                    bits: 16,
                    kind: MatchKind::Exact,
                }],
                size: 64,
                actions: vec!["fwd".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            vec![1],
        )
        .unwrap();
        sm.insert_entry(
            "fib",
            TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("set_nh", vec![5]),
                counter: 0,
            },
        )
        .unwrap();
        sm.insert_entry(
            "out",
            TableEntry::exact(vec![5], ActionCall::new("fwd", vec![3])),
        )
        .unwrap();

        let mut pm = PipelineModule::new(8, 8, Crossbar::full());
        pm.write_template(
            0,
            TspTemplate {
                stage_name: "fib_s".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: Predicate::IsValid("ipv4".into()),
                    table: Some("fib".into()),
                }],
                executor: vec![(1, ActionCall::new("set_nh", vec![]))],
                default_action: ActionCall::no_action(),
            },
        )
        .unwrap();
        // The TM needs a forwarding decision out of ingress, so the
        // forwarding stage lives at the end of ingress here; the egress
        // slot 7 hosts a pass-through rewrite stage.
        pm.write_template(
            1,
            TspTemplate {
                stage_name: "out_s".into(),
                func: "base".into(),
                parse: vec![],
                branches: vec![MatcherBranch {
                    pred: Predicate::True,
                    table: Some("out".into()),
                }],
                executor: vec![(1, ActionCall::new("fwd", vec![]))],
                default_action: ActionCall::no_action(),
            },
        )
        .unwrap();
        pm.write_template(7, TspTemplate::passthrough("egress_noop"))
            .unwrap();
        pm.crossbar.connect(0, &[0]).unwrap();
        pm.crossbar.connect(1, &[1]).unwrap();
        pm.set_selector(SelectorConfig::split(8, 2, 1).unwrap())
            .unwrap();
        (linkage, sm, pm)
    }

    #[test]
    fn routed_packet_flows_end_to_end() {
        let (linkage, mut sm, mut pm) = two_stage();
        let p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        let out = pm.run_packet(&linkage, &mut sm, p).unwrap().unwrap();
        assert_eq!(out.meta.egress_port, Some(3));
        assert_eq!(pm.stats.emitted, 1);
        assert_eq!(pm.tm.stats.enqueued, 1);
    }

    #[test]
    fn unrouted_packet_dropped_at_tm() {
        let (linkage, mut sm, mut pm) = two_stage();
        let p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0b000001, // no FIB entry -> no nexthop -> no out match
            ..Default::default()
        });
        let out = pm.run_packet(&linkage, &mut sm, p).unwrap();
        assert!(out.is_none());
        assert_eq!(pm.tm.stats.no_route_drops, 1);
        assert_eq!(pm.stats.emitted, 0);
    }

    #[test]
    fn bypassed_slots_do_no_work() {
        let (linkage, mut sm, mut pm) = two_stage();
        // Slot 2 gets a template but stays bypassed by the selector.
        pm.write_template(2, TspTemplate::passthrough("idle"))
            .unwrap();
        let p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        pm.run_packet(&linkage, &mut sm, p).unwrap();
        assert_eq!(pm.slots[2].stats.packets, 0);
        assert_eq!(pm.active_tsps(), 3);
    }

    #[test]
    fn tm_tail_drops_and_round_robin() {
        let mut tm = TrafficManager::new(2, 3);
        let pkt_to = |port: u16| {
            let mut p = Packet::new(vec![0u8; 4], 0);
            p.meta.egress_port = Some(port);
            p
        };
        // Fill port 0 beyond capacity.
        for _ in 0..5 {
            tm.enqueue(pkt_to(0));
        }
        assert_eq!(tm.stats.tail_drops, 2);
        assert_eq!(tm.port_depth(0), 3);
        // Interleave a port-1 packet: round-robin alternates queues.
        tm.enqueue(pkt_to(1));
        let order: Vec<u16> = std::iter::from_fn(|| tm.dequeue())
            .map(|p| p.meta.egress_port.unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 0, 0]);
        // No-route packets drop, never enqueue.
        tm.enqueue(Packet::new(vec![0u8; 4], 0));
        assert_eq!(tm.stats.no_route_drops, 1);
        assert_eq!(tm.depth(), 0);
    }

    #[test]
    fn tm_honors_configured_port_count() {
        // Regression: the pipeline used to build its TM with the default 8
        // queues regardless of the configured port count, so ports 12 and 4
        // aliased onto the same queue (12 % 8 == 4).
        let mut pm = PipelineModule::new(8, 16, Crossbar::full());
        let pkt_to = |port: u16| {
            let mut p = Packet::new(vec![0u8; 4], 0);
            p.meta.egress_port = Some(port);
            p
        };
        pm.tm.enqueue(pkt_to(12));
        pm.tm.enqueue(pkt_to(4));
        assert_eq!(pm.tm.port_depth(12), 1);
        assert_eq!(pm.tm.port_depth(4), 1);
    }

    #[test]
    fn selector_validation_enforced() {
        let (_, _, mut pm) = two_stage();
        let bad = SelectorConfig {
            roles: vec![SlotRole::Egress; 8]
                .into_iter()
                .enumerate()
                .map(|(i, r)| if i == 7 { SlotRole::Ingress } else { r })
                .collect(),
        };
        assert!(pm.set_selector(bad).is_err());
        assert!(
            pm.set_selector(SelectorConfig::all_bypass(4)).is_err(),
            "wrong width rejected"
        );
    }

    #[test]
    fn slot_bounds_checked() {
        let (_, _, mut pm) = two_stage();
        assert!(matches!(
            pm.write_template(99, TspTemplate::passthrough("x")),
            Err(CoreError::SlotOutOfRange { .. })
        ));
        assert!(matches!(
            pm.clear_slot(99),
            Err(CoreError::SlotOutOfRange { .. })
        ));
    }
}
