//! The compiled fast path: resolve-once / run-many packet processing.
//!
//! The interpreter ([`crate::tsp`]) re-resolves names on every packet:
//! parse requirements are rebuilt as `Vec<String>`, tables are found by
//! string key, crossbar reachability is re-checked, and action bodies are
//! cloned out of the template. That is the right reference semantics for a
//! runtime-programmable device, but it is not how hardware behaves — a real
//! TSP latches its configuration when the control plane writes it.
//!
//! [`CompiledPath`] is that latch in software: built once per control-plane
//! *epoch* (any applied [`ipsa_core::ControlMsg`] batch invalidates it, see
//! [`crate::pm::PipelineModule::invalidate_compiled`]), it pre-resolves
//! every name to a dense id or direct index:
//!
//! * parse requirements become interned [`Sym`]s,
//! * branch predicates bind header field spans (byte offset + bit span),
//! * tables become slab indices into the storage module plus per-row tag
//!   and argument caches,
//! * crossbar reachability is verified at compile time, so the per-packet
//!   `can_reach` loop disappears,
//! * action bodies become [`FastPrim`] sequences with operands pre-bound.
//!
//! Per packet, the fast path performs no `String` comparison, no `HashMap`
//! probe by name, and no heap allocation (scratch buffers live in
//! [`EvalScratch`] and are reused). Compilation is conservative: any
//! construct it cannot pre-resolve either falls back to the interpreter for
//! the whole pipeline (unknown table/action, crossbar violation — cases the
//! interpreter reports per packet) or to a `Slow` wrapper around the shared
//! interpreter code for just that operand/primitive, so the two paths
//! cannot diverge semantically. The differential property test in
//! `crates/bench/tests/differential.rs` holds them to that.

use ipsa_core::action::{execute_prim, ActionOutcome, AluOp, Primitive};
use ipsa_core::crossbar::Crossbar;
use ipsa_core::error::CoreError;
use ipsa_core::facts::ProgramFacts;
use ipsa_core::hash::hash_values;
use ipsa_core::pipeline_cfg::{SelectorConfig, SlotRole};
use ipsa_core::predicate::{CmpOp, Predicate};
use ipsa_core::table::ActionCall;
use ipsa_core::value::{EvalCtx, LValueRef, ValueRef};
use ipsa_core::Interner;
use ipsa_netpkt::bitfield::{get_bits, set_bits, truncate_to_width, width_mask};
use ipsa_netpkt::intern::{meta_id, Sym};
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::packet::{Metadata, Packet, PacketError};

use crate::sm::StorageModule;
use crate::tsp::{SlotStats, TspSlot};

/// Reusable per-pipeline scratch buffers so steady-state packet processing
/// never allocates: lookup key values, the LPM probe buffer, and hash
/// inputs.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Key field values of the current lookup.
    pub key: Vec<u128>,
    /// LPM probe buffer (masked copies of `key`).
    pub probe: Vec<u128>,
    /// Hash-primitive input values.
    pub hash: Vec<u128>,
    /// Per-packet header-locator cache (fact-guided; disabled without a
    /// `stable_headers` proof).
    pub loc: LocCache,
}

/// One header-locator cache entry (see [`LocCache`]).
#[derive(Debug, Clone, Copy, Default)]
struct LocEntry {
    /// Generation this entry was filled in; stale when it trails the
    /// cache's current generation.
    gen: u64,
    /// Whether the header was present when cached.
    present: bool,
    /// Byte offset of the header within the packet.
    offset: u32,
    /// Byte length of the header instance.
    len: u32,
}

/// A per-packet memo of header locations, indexed by the dense cache ids
/// the epoch compiler assigns to every header reference in the path.
///
/// Soundness rests on the [`ProgramFacts::stable_headers`] proof: no
/// registered action inserts or removes headers, so within one packet a
/// location can only change when the *parser* extracts something — and the
/// fast path bumps the generation after every extracting parse phase
/// ([`CompiledPath::process_slot`]), which invalidates the whole memo.
/// Without that proof the cache stays disabled and every probe falls
/// through to [`Packet::find_sym`]'s linear scan.
#[derive(Debug, Default)]
pub struct LocCache {
    enabled: bool,
    gen: u64,
    slots: Vec<LocEntry>,
}

impl LocCache {
    /// Opens a new packet: everything cached so far becomes stale.
    fn begin_packet(&mut self, enabled: bool, cache_slots: usize) {
        self.enabled = enabled;
        self.gen += 1;
        if self.slots.len() < cache_slots {
            self.slots.resize(cache_slots, LocEntry::default());
        }
    }

    /// Drops all cached locations (parser extracted a header mid-packet).
    fn invalidate(&mut self) {
        self.gen += 1;
    }

    /// Locates `sym` in the packet, through the cache when enabled.
    #[inline]
    fn find(&mut self, pkt: &Packet, sym: Sym, cache: u32) -> Option<(usize, usize)> {
        if !self.enabled {
            return pkt.find_sym(sym).map(|h| (h.offset, h.len));
        }
        let e = &mut self.slots[cache as usize];
        if e.gen == self.gen {
            return e.present.then_some((e.offset as usize, e.len as usize));
        }
        let r = pkt.find_sym(sym).map(|h| (h.offset, h.len));
        *e = match r {
            Some((o, l)) => LocEntry {
                gen: self.gen,
                present: true,
                offset: o as u32,
                len: l as u32,
            },
            None => LocEntry {
                gen: self.gen,
                present: false,
                offset: 0,
                len: 0,
            },
        };
        r
    }
}

/// Compile-time assignment of dense [`LocCache`] ids, one per distinct
/// header symbol referenced by the compiled path.
#[derive(Debug, Default)]
struct CacheIds(Vec<Sym>);

impl CacheIds {
    fn id(&mut self, sym: Sym) -> u32 {
        match self.0.iter().position(|s| *s == sym) {
            Some(i) => i as u32,
            None => {
                self.0.push(sym);
                (self.0.len() - 1) as u32
            }
        }
    }
}

/// A pre-resolved metadata reference: intrinsics become enum variants,
/// user fields become dense ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaRef {
    /// `meta.ingress_port`.
    IngressPort,
    /// `meta.egress_port` (reads 0 while unset, writes `Some`).
    EgressPort,
    /// `meta.drop` (read as 0/1, written as `!= 0`).
    Drop,
    /// `meta.mark`.
    Mark,
    /// A user metadata field by dense id.
    User(u32),
}

impl MetaRef {
    fn compile(name: &str) -> MetaRef {
        match name {
            "ingress_port" => MetaRef::IngressPort,
            "egress_port" => MetaRef::EgressPort,
            "drop" => MetaRef::Drop,
            "mark" => MetaRef::Mark,
            _ => MetaRef::User(meta_id(name)),
        }
    }

    #[inline]
    fn read(self, meta: &Metadata) -> u128 {
        match self {
            MetaRef::IngressPort => meta.ingress_port as u128,
            MetaRef::EgressPort => meta.egress_port.map(|p| p as u128).unwrap_or(0),
            MetaRef::Drop => meta.drop as u128,
            MetaRef::Mark => meta.mark,
            MetaRef::User(id) => meta.get_user(id),
        }
    }

    #[inline]
    fn write(self, meta: &mut Metadata, value: u128) {
        match self {
            MetaRef::IngressPort => meta.ingress_port = value as u16,
            MetaRef::EgressPort => meta.egress_port = Some(value as u16),
            MetaRef::Drop => meta.drop = value != 0,
            MetaRef::Mark => meta.mark = value,
            MetaRef::User(id) => meta.set_user(id, value),
        }
    }
}

/// A compiled readable value: the fast mirror of [`ValueRef`], with header
/// fields resolved to `(Sym, bit offset, bit width)` and metadata names to
/// [`MetaRef`]s. `Slow` keeps the interpreter's `ValueRef` for anything
/// compilation could not pre-resolve (e.g. a field of a header type absent
/// from the linkage), preserving its exact error behavior.
#[derive(Debug, Clone)]
pub enum FastVal {
    /// Immediate constant.
    Const(u128),
    /// A packet header field with a pre-resolved span.
    Field {
        /// Interned header name.
        sym: Sym,
        /// Bit offset within the header.
        bit_off: usize,
        /// Field width in bits.
        bits: usize,
        /// Locator-cache slot for `sym`.
        cache: u32,
    },
    /// A metadata field.
    Meta(MetaRef),
    /// The i-th action parameter.
    Param(usize),
    /// The matched entry's packet counter.
    EntryCounter,
    /// Interpreter fallback for unresolvable references.
    Slow(ValueRef),
}

impl FastVal {
    fn compile(v: &ValueRef, linkage: &HeaderLinkage, ids: &mut CacheIds) -> FastVal {
        match v {
            ValueRef::Const(c) => FastVal::Const(*c),
            ValueRef::Field { header, field } => {
                match linkage.get(header).and_then(|t| t.field_span(field).ok()) {
                    Some((bit_off, bits)) => {
                        let sym = Sym::intern(header);
                        FastVal::Field {
                            sym,
                            bit_off,
                            bits,
                            cache: ids.id(sym),
                        }
                    }
                    None => FastVal::Slow(v.clone()),
                }
            }
            ValueRef::Meta(name) => FastVal::Meta(MetaRef::compile(name)),
            ValueRef::Param(i) => FastVal::Param(*i),
            ValueRef::EntryCounter => FastVal::EntryCounter,
        }
    }

    /// Reads the value; mirrors [`ValueRef::read`] exactly (`None` for a
    /// field of an absent header, [`CoreError::BadActionData`] with an
    /// empty action name for an out-of-range parameter).
    #[inline]
    fn read(
        &self,
        pkt: &Packet,
        ctx: &EvalCtx<'_>,
        loc: &mut LocCache,
    ) -> Result<Option<u128>, CoreError> {
        match self {
            FastVal::Const(c) => Ok(Some(*c)),
            FastVal::Field {
                sym,
                bit_off,
                bits,
                cache,
            } => match loc.find(pkt, *sym, *cache) {
                None => Ok(None),
                Some((offset, len)) => Ok(Some(
                    get_bits(&pkt.data[offset..offset + len], *bit_off, *bits)
                        .map_err(ipsa_netpkt::packet::PacketError::from)?,
                )),
            },
            FastVal::Meta(m) => Ok(Some(m.read(&pkt.meta))),
            FastVal::Param(i) => {
                ctx.params
                    .get(*i)
                    .copied()
                    .map(Some)
                    .ok_or_else(|| CoreError::BadActionData {
                        action: String::new(),
                        index: *i,
                        supplied: ctx.params.len(),
                    })
            }
            FastVal::EntryCounter => Ok(Some(ctx.entry_counter.unwrap_or(0) as u128)),
            FastVal::Slow(v) => v.read(pkt, ctx),
        }
    }
}

/// Reads an action operand, wrapping absence / bad action data the same way
/// [`ipsa_core::action::read_operand`] does. Allocates only on error.
#[inline]
fn fast_read_operand(
    v: &FastVal,
    pkt: &Packet,
    ctx: &EvalCtx<'_>,
    action: &str,
    loc: &mut LocCache,
) -> Result<u128, CoreError> {
    match v.read(pkt, ctx, loc) {
        Ok(Some(x)) => Ok(x),
        Ok(None) => Err(CoreError::Packet(PacketError::HeaderNotPresent(format!(
            "operand of action `{action}`"
        )))),
        Err(CoreError::BadActionData {
            index, supplied, ..
        }) => Err(CoreError::BadActionData {
            action: action.to_string(),
            index,
            supplied,
        }),
        Err(e) => Err(e),
    }
}

/// A compiled writable destination with its width pre-resolved (the width
/// the action VM wraps ALU results to).
#[derive(Debug, Clone)]
pub enum FastLVal {
    /// A header field with a pre-resolved span.
    Field {
        /// Interned header name.
        sym: Sym,
        /// Bit offset within the header.
        bit_off: usize,
        /// Field width in bits.
        bits: usize,
        /// Locator-cache slot for `sym`.
        cache: u32,
    },
    /// A metadata destination with its declared width.
    Meta {
        /// The destination.
        meta: MetaRef,
        /// Declared metadata width (128 for undeclared scratch).
        width: usize,
    },
    /// Interpreter fallback, with the width [`LValueRef::width`] resolves.
    Slow {
        /// The unresolved destination.
        lv: LValueRef,
        /// Pre-resolved destination width.
        width: usize,
    },
}

impl FastLVal {
    fn compile(
        lv: &LValueRef,
        linkage: &HeaderLinkage,
        sm: &StorageModule,
        ids: &mut CacheIds,
    ) -> FastLVal {
        match lv {
            LValueRef::Meta(name) => FastLVal::Meta {
                meta: MetaRef::compile(name),
                width: sm.meta_width(name),
            },
            LValueRef::Field { header, field } => {
                match linkage.get(header).and_then(|t| t.field_span(field).ok()) {
                    Some((bit_off, bits)) => {
                        let sym = Sym::intern(header);
                        FastLVal::Field {
                            sym,
                            bit_off,
                            bits,
                            cache: ids.id(sym),
                        }
                    }
                    None => FastLVal::Slow {
                        lv: lv.clone(),
                        // Mirrors LValueRef::width's fallback for unresolvable
                        // fields.
                        width: 128,
                    },
                }
            }
        }
    }

    /// Destination width in bits (pre-resolved at compile time).
    #[inline]
    fn width(&self) -> usize {
        match self {
            FastLVal::Field { bits, .. } => *bits,
            FastLVal::Meta { width, .. } => *width,
            FastLVal::Slow { width, .. } => *width,
        }
    }

    /// Writes `value`; mirrors [`LValueRef::write`] (field writes to an
    /// absent header error).
    #[inline]
    fn write(
        &self,
        pkt: &mut Packet,
        ctx: &EvalCtx<'_>,
        value: u128,
        loc: &mut LocCache,
    ) -> Result<(), CoreError> {
        match self {
            FastLVal::Meta { meta, .. } => {
                meta.write(&mut pkt.meta, value);
                Ok(())
            }
            FastLVal::Field {
                sym,
                bit_off,
                bits,
                cache,
            } => {
                let (offset, len) = loc
                    .find(pkt, *sym, *cache)
                    .ok_or_else(|| PacketError::HeaderNotPresent(sym.as_str().to_string()))?;
                set_bits(&mut pkt.data[offset..offset + len], *bit_off, *bits, value)
                    .map_err(PacketError::from)?;
                Ok(())
            }
            FastLVal::Slow { lv, .. } => lv.write(pkt, ctx, value),
        }
    }
}

/// A compiled predicate: the fast mirror of [`Predicate`], with header
/// validity checks on interned symbols and comparisons on [`FastVal`]s.
#[derive(Debug, Clone)]
pub enum FastPred {
    /// Always true.
    True,
    /// `header.isValid()` on an interned name.
    IsValid {
        /// Interned header name.
        sym: Sym,
        /// Locator-cache slot for `sym`.
        cache: u32,
    },
    /// Negation.
    Not(Box<FastPred>),
    /// Conjunction (short-circuit).
    And(Box<FastPred>, Box<FastPred>),
    /// Disjunction (short-circuit).
    Or(Box<FastPred>, Box<FastPred>),
    /// Comparison; any absent operand makes it false.
    Cmp {
        /// Left operand.
        lhs: FastVal,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: FastVal,
    },
}

impl FastPred {
    fn compile(p: &Predicate, linkage: &HeaderLinkage, ids: &mut CacheIds) -> FastPred {
        match p {
            Predicate::True => FastPred::True,
            Predicate::IsValid(h) => {
                let sym = Sym::intern(h);
                FastPred::IsValid {
                    sym,
                    cache: ids.id(sym),
                }
            }
            Predicate::Not(p) => FastPred::Not(Box::new(FastPred::compile(p, linkage, ids))),
            Predicate::And(a, b) => FastPred::And(
                Box::new(FastPred::compile(a, linkage, ids)),
                Box::new(FastPred::compile(b, linkage, ids)),
            ),
            Predicate::Or(a, b) => FastPred::Or(
                Box::new(FastPred::compile(a, linkage, ids)),
                Box::new(FastPred::compile(b, linkage, ids)),
            ),
            Predicate::Cmp { lhs, op, rhs } => FastPred::Cmp {
                lhs: FastVal::compile(lhs, linkage, ids),
                op: *op,
                rhs: FastVal::compile(rhs, linkage, ids),
            },
        }
    }

    /// Mirrors [`Predicate::eval`].
    fn eval(&self, pkt: &Packet, ctx: &EvalCtx<'_>, loc: &mut LocCache) -> Result<bool, CoreError> {
        Ok(match self {
            FastPred::True => true,
            FastPred::IsValid { sym, cache } => loc.find(pkt, *sym, *cache).is_some(),
            FastPred::Not(p) => !p.eval(pkt, ctx, loc)?,
            FastPred::And(a, b) => a.eval(pkt, ctx, loc)? && b.eval(pkt, ctx, loc)?,
            FastPred::Or(a, b) => a.eval(pkt, ctx, loc)? || b.eval(pkt, ctx, loc)?,
            FastPred::Cmp { lhs, op, rhs } => {
                match (lhs.read(pkt, ctx, loc)?, rhs.read(pkt, ctx, loc)?) {
                    (Some(a), Some(b)) => op.apply(a, b),
                    _ => false,
                }
            }
        })
    }
}

/// A compiled action primitive. Hot primitives are native (pre-resolved
/// operands, no per-call allocation); structurally complex ones delegate to
/// the interpreter's [`execute_prim`] through [`FastPrim::Slow`] so their
/// semantics are shared by construction.
#[derive(Debug, Clone)]
pub enum FastPrim {
    /// `dst = src`.
    Set {
        /// Destination.
        dst: FastLVal,
        /// Source.
        src: FastVal,
    },
    /// `dst = a <op> b`, wrapped to `dst`'s width.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: FastLVal,
        /// First operand.
        a: FastVal,
        /// Second operand.
        b: FastVal,
    },
    /// `dst = hash(inputs) % modulo` using the pipeline's scratch buffer.
    Hash {
        /// Destination.
        dst: FastLVal,
        /// Hash inputs.
        inputs: Vec<FastVal>,
        /// Optional modulus (0 = no reduction).
        modulo: u64,
    },
    /// `meta.egress_port = port`.
    Forward {
        /// Port source.
        port: FastVal,
    },
    /// Discard the packet.
    Drop,
    /// `meta.mark = value`.
    Mark {
        /// Mark source.
        value: FastVal,
    },
    /// Mark iff the matched entry's counter exceeds the threshold.
    MarkIfCounterOver {
        /// Threshold source.
        threshold: FastVal,
    },
    /// Decrement IPv4 TTL with incremental checksum, all spans pre-bound.
    DecTtlV4 {
        /// Interned `ipv4`.
        sym: Sym,
        /// TTL span.
        ttl: (usize, usize),
        /// Protocol span (shares the checksum word with TTL).
        proto: (usize, usize),
        /// Header-checksum span.
        ck: (usize, usize),
    },
    /// Decrement IPv6 hop limit, span pre-bound.
    DecHopLimitV6 {
        /// Interned `ipv6`.
        sym: Sym,
        /// Hop-limit span.
        hl: (usize, usize),
    },
    /// No-op.
    NoAction,
    /// Interpreter fallback (header surgery, SRv6, checksum refresh —
    /// primitives whose work dwarfs interpretation overhead).
    Slow(Primitive),
}

impl FastPrim {
    fn compile(
        p: &Primitive,
        linkage: &HeaderLinkage,
        sm: &StorageModule,
        ids: &mut CacheIds,
    ) -> FastPrim {
        let span =
            |header: &str, field: &str| linkage.get(header).and_then(|t| t.field_span(field).ok());
        match p {
            Primitive::NoAction => FastPrim::NoAction,
            Primitive::Set { dst, src } => FastPrim::Set {
                dst: FastLVal::compile(dst, linkage, sm, ids),
                src: FastVal::compile(src, linkage, ids),
            },
            Primitive::Alu { op, dst, a, b } => FastPrim::Alu {
                op: *op,
                dst: FastLVal::compile(dst, linkage, sm, ids),
                a: FastVal::compile(a, linkage, ids),
                b: FastVal::compile(b, linkage, ids),
            },
            Primitive::Hash {
                dst,
                inputs,
                modulo,
            } => FastPrim::Hash {
                dst: FastLVal::compile(dst, linkage, sm, ids),
                inputs: inputs
                    .iter()
                    .map(|v| FastVal::compile(v, linkage, ids))
                    .collect(),
                modulo: *modulo,
            },
            Primitive::Forward { port } => FastPrim::Forward {
                port: FastVal::compile(port, linkage, ids),
            },
            Primitive::Drop => FastPrim::Drop,
            Primitive::Mark { value } => FastPrim::Mark {
                value: FastVal::compile(value, linkage, ids),
            },
            Primitive::MarkIfCounterOver { threshold } => FastPrim::MarkIfCounterOver {
                threshold: FastVal::compile(threshold, linkage, ids),
            },
            Primitive::DecTtlV4 => {
                match (
                    span("ipv4", "ttl"),
                    span("ipv4", "protocol"),
                    span("ipv4", "hdr_checksum"),
                ) {
                    (Some(ttl), Some(proto), Some(ck)) => FastPrim::DecTtlV4 {
                        sym: Sym::intern("ipv4"),
                        ttl,
                        proto,
                        ck,
                    },
                    _ => FastPrim::Slow(p.clone()),
                }
            }
            Primitive::DecHopLimitV6 => match span("ipv6", "hop_limit") {
                Some(hl) => FastPrim::DecHopLimitV6 {
                    sym: Sym::intern("ipv6"),
                    hl,
                },
                None => FastPrim::Slow(p.clone()),
            },
            Primitive::InsertHeaderAfter { .. }
            | Primitive::RemoveHeader { .. }
            | Primitive::Srv6Advance
            | Primitive::RefreshIpv4Checksum => FastPrim::Slow(p.clone()),
        }
    }
}

/// A compiled action: name (for error messages only) plus its primitive
/// body.
#[derive(Debug, Clone)]
pub struct FastAction {
    /// Action name (error reporting; never compared per packet).
    pub name: String,
    /// Compiled body.
    pub prims: Vec<FastPrim>,
}

/// A compiled executor arm or default: dense action index plus immediate
/// arguments.
#[derive(Debug, Clone)]
pub struct CompiledCall {
    /// Index into [`CompiledPath::actions`].
    pub action: usize,
    /// Immediate arguments (used when the matched entry carries none).
    pub args: Vec<u128>,
}

/// A compiled table reference local to one slot.
#[derive(Debug, Clone)]
pub struct CompiledTable {
    /// Slab index into the storage module.
    pub store: usize,
    /// Table name, for re-resolving `store` if the slab index goes stale
    /// between compilation and a packet (e.g. a table was dropped and the
    /// compiled program not yet invalidated).
    pub name: String,
    /// Key field readers with their width masks.
    pub key: Vec<(FastVal, u128)>,
    /// Pre-computed memory accesses per lookup on the configured bus.
    pub accesses: u64,
    /// Executor switch tag per row (0 for dead rows).
    pub row_tags: Vec<u32>,
    /// Entry action arguments per row (empty for dead rows).
    pub row_args: Vec<Vec<u128>>,
}

/// One compiled active slot, in selector order.
#[derive(Debug, Clone)]
pub struct CompiledSlot {
    /// Physical slot index (stats attribution).
    pub slot: usize,
    /// Interned parse requirements, sorted.
    pub parse: Vec<Sym>,
    /// Branch predicates with the local table index they select (`None` =
    /// explicit pass-through branch).
    pub branches: Vec<(FastPred, Option<usize>)>,
    /// Tables referenced by this slot's branches.
    pub tables: Vec<CompiledTable>,
    /// Executor arms: `(tag, call)`.
    pub executor: Vec<(u32, CompiledCall)>,
    /// Default (miss / unmatched-tag) call.
    pub default_call: CompiledCall,
}

/// The compiled pipeline: everything the per-packet path needs, with all
/// name resolution already done. Valid for one control-plane epoch.
#[derive(Debug, Clone)]
pub struct CompiledPath {
    /// Epoch this compilation belongs to (invalidation check).
    pub epoch: u64,
    /// Compiled ingress slots in selector order.
    pub ingress: Vec<CompiledSlot>,
    /// Compiled egress slots in selector order.
    pub egress: Vec<CompiledSlot>,
    /// Deduplicated compiled actions, indexed by [`CompiledCall::action`].
    pub actions: Vec<FastAction>,
    /// Proven by dataflow analysis: no action mutates the header set, so
    /// the per-packet locator cache is sound (see [`LocCache`]).
    pub stable_headers: bool,
    /// Number of distinct [`LocCache`] slots the compiled path references.
    pub cache_slots: usize,
}

/// Compiles the active pipeline against the current storage-module state.
///
/// Fails (the caller falls back to the interpreter, preserving its
/// per-packet error semantics) when a branch references an unknown table,
/// a table's blocks are not reachable through the crossbar from its slot,
/// or an executor arm references an undefined action.
///
/// `facts` is the optional [`ProgramFacts`] artifact the controller derived
/// from the checked rP4 design ([`rp4-dfa`'s `design_facts`]). Every fact
/// consumed here is advisory and exactness-preserving: elided parse
/// requirements were already satisfied by an earlier slot (so the skipped
/// `ensure_parsed_sym` would have been a no-op), pruned branch arms are
/// statically unreachable (never chosen by the interpreter), and dead
/// stores become [`FastPrim::NoAction`] so the primitive count — and hence
/// every statistic — is unchanged.
pub fn compile(
    slots: &[TspSlot],
    selector: &SelectorConfig,
    crossbar: &Crossbar,
    sm: &StorageModule,
    linkage: &HeaderLinkage,
    epoch: u64,
    facts: Option<&ProgramFacts>,
) -> Result<CompiledPath, CoreError> {
    let mut actions = Vec::new();
    let mut action_ids = Interner::new();
    let mut cache_ids = CacheIds::default();
    let mut compile_role =
        |role: SlotRole, ids: &mut CacheIds| -> Result<Vec<CompiledSlot>, CoreError> {
            let mut out = Vec::new();
            for slot_idx in selector.slots_with(role) {
                let Some(template) = slots[slot_idx].template.as_ref() else {
                    // Unprogrammed active slot: the interpreter no-ops it with
                    // zero stats, so simply omit it.
                    continue;
                };
                let slot_facts = facts.and_then(|f| f.slot(&template.stage_name));
                let mut compile_call =
                    |call: &ActionCall, ids: &mut CacheIds| -> Result<CompiledCall, CoreError> {
                        let def = sm
                            .actions
                            .get(&call.action)
                            .ok_or_else(|| CoreError::UnknownAction(call.action.clone()))?;
                        let id = action_ids.intern(&call.action) as usize;
                        if id == actions.len() {
                            actions.push(FastAction {
                                name: def.name.clone(),
                                prims: def
                                    .body
                                    .iter()
                                    .enumerate()
                                    .map(|(i, p)| {
                                        if facts.is_some_and(|f| f.is_dead_store(&call.action, i)) {
                                            // Proven dead store: the written value
                                            // is overwritten before any read. Keep
                                            // a NoAction in its place so the
                                            // primitive count (a statistic the
                                            // differential suite pins) is intact.
                                            FastPrim::NoAction
                                        } else {
                                            FastPrim::compile(p, linkage, sm, ids)
                                        }
                                    })
                                    .collect(),
                            });
                        }
                        Ok(CompiledCall {
                            action: id,
                            args: call.args.clone(),
                        })
                    };
                let mut tables = Vec::new();
                let mut branches = Vec::new();
                for (arm_idx, b) in template.branches.iter().enumerate() {
                    if slot_facts.is_some_and(|sf| sf.unreachable_arms.contains(&arm_idx)) {
                        // Proven unreachable: the interpreter can never pick
                        // this arm (shadowed or self-contradictory guard), so
                        // eliding it cannot change which branch fires.
                        continue;
                    }
                    let tidx = match &b.table {
                        None => None,
                        Some(name) => {
                            let store = sm
                                .table_idx(name)
                                .ok_or_else(|| CoreError::UnknownTable(name.clone()))?;
                            for block in sm.blocks_of(name) {
                                if !crossbar.can_reach(slot_idx, block) {
                                    return Err(CoreError::CrossbarViolation(format!(
                                    "slot {slot_idx} cannot reach block {block} of table `{name}`"
                                )));
                                }
                            }
                            // `table_idx` just resolved the name, but go
                            // through the fallible accessor anyway: a
                            // compile must never panic, only fall back to
                            // the interpreter.
                            let ts = sm
                                .store_at(store)
                                .ok_or_else(|| CoreError::UnknownTable(name.clone()))?;
                            let rows = ts.table.rows_len();
                            let mut row_tags = Vec::with_capacity(rows);
                            let mut row_args = Vec::with_capacity(rows);
                            for r in 0..rows {
                                match ts.table.row(r) {
                                    Some(e) => {
                                        row_tags.push(
                                            ts.table.def.action_tag(&e.action.action).unwrap_or(0),
                                        );
                                        row_args.push(e.action.args.clone());
                                    }
                                    None => {
                                        row_tags.push(0);
                                        row_args.push(Vec::new());
                                    }
                                }
                            }
                            tables.push(CompiledTable {
                                store,
                                name: name.clone(),
                                key: ts
                                    .table
                                    .def
                                    .key
                                    .iter()
                                    .map(|k| {
                                        (
                                            FastVal::compile(&k.source, linkage, ids),
                                            width_mask(k.bits),
                                        )
                                    })
                                    .collect(),
                                accesses: ts.map.accesses_per_lookup(sm.bus_bits) as u64,
                                row_tags,
                                row_args,
                            });
                            Some(tables.len() - 1)
                        }
                    };
                    branches.push((FastPred::compile(&b.pred, linkage, ids), tidx));
                }
                let executor = template
                    .executor
                    .iter()
                    .map(|(tag, call)| Ok((*tag, compile_call(call, ids)?)))
                    .collect::<Result<Vec<_>, CoreError>>()?;
                let default_call = compile_call(&template.default_action, ids)?;
                out.push(CompiledSlot {
                    slot: slot_idx,
                    parse: template
                        .parse_requirements()
                        .iter()
                        .filter(|h| {
                            // Elide parses an earlier slot provably settled:
                            // `ensure_parsed_sym` would be a no-op, so neither
                            // the packet nor `parse_extractions` can differ.
                            !slot_facts.is_some_and(|sf| sf.elide_parse.contains(*h))
                        })
                        .map(|h| Sym::intern(h))
                        .collect(),
                    branches,
                    tables,
                    executor,
                    default_call,
                });
            }
            Ok(out)
        };
    let ingress = compile_role(SlotRole::Ingress, &mut cache_ids)?;
    let egress = compile_role(SlotRole::Egress, &mut cache_ids)?;
    Ok(CompiledPath {
        epoch,
        ingress,
        egress,
        actions,
        stable_headers: facts.is_some_and(|f| f.stable_headers),
        cache_slots: cache_ids.0.len(),
    })
}

impl CompiledPath {
    /// Processes one packet through a compiled slot, with stat accounting
    /// identical to [`TspSlot::process`].
    fn process_slot(
        &self,
        cs: &CompiledSlot,
        stats: &mut SlotStats,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        scratch: &mut EvalScratch,
        pkt: &mut Packet,
    ) -> Result<(), CoreError> {
        stats.packets += 1;
        stats.template_fetches += 1;

        let before = pkt.parse_extractions;
        for &h in &cs.parse {
            let _ = pkt.ensure_parsed_sym(linkage, h)?;
        }
        if pkt.parse_extractions != before {
            // The parser moved the frontier: every memoized header
            // location may be stale.
            scratch.loc.invalidate();
        }
        stats.parse_extractions += pkt.parse_extractions - before;

        let ctx = EvalCtx::bare(linkage);
        let mut chosen: Option<usize> = None;
        for (pred, t) in &cs.branches {
            if pred.eval(pkt, &ctx, &mut scratch.loc)? {
                chosen = *t;
                break;
            }
        }
        let Some(tidx) = chosen else {
            stats.pass_through += 1;
            return Ok(());
        };

        // Crossbar reachability was verified at compile time; go straight
        // to the lookup, accounting exactly like StorageModule::lookup.
        let ct = &cs.tables[tidx];
        sm.mem_accesses += ct.accesses;
        // The slab index was resolved at compile time, but the storage
        // module may have shifted underneath a stale compiled program
        // (dropped or re-created table): re-resolve by name rather than
        // panicking, and report the packet-level error the interpreter
        // would report if the table is truly gone.
        let store_idx = match sm.store_at(ct.store) {
            Some(ts) if ts.table.def.name == ct.name => ct.store,
            _ => sm
                .table_idx(&ct.name)
                .ok_or_else(|| CoreError::UnknownTable(ct.name.clone()))?,
        };
        let store = sm
            .store_at_mut(store_idx)
            .ok_or_else(|| CoreError::UnknownTable(ct.name.clone()))?;
        store.table.begin_lookup();
        scratch.key.clear();
        let mut have = true;
        for (fv, mask) in &ct.key {
            match fv.read(pkt, &ctx, &mut scratch.loc)? {
                Some(v) => scratch.key.push(v & mask),
                None => {
                    have = false;
                    break;
                }
            }
        }
        let vals = if have {
            Some(scratch.key.as_slice())
        } else {
            None
        };
        let hit = store.table.match_prepared(vals, &mut scratch.probe);

        let (call, args, counter) = match hit {
            Some(h) => {
                stats.hits += 1;
                // Rows beyond the compiled snapshot (the store grew under
                // a stale program) act like dead rows: tag 0 dispatches
                // the default call.
                let tag = ct.row_tags.get(h.row).copied().unwrap_or(0);
                let call = cs
                    .executor
                    .iter()
                    .find(|(t, _)| *t == tag)
                    .map(|(_, c)| c)
                    .unwrap_or(&cs.default_call);
                // The matched entry's args win; immediate args from the
                // executor arm are the fallback.
                let entry_args: &[u128] = ct.row_args.get(h.row).map_or(&[], Vec::as_slice);
                let args: &[u128] = if entry_args.is_empty() {
                    &call.args
                } else {
                    entry_args
                };
                (call, args, h.counter)
            }
            None => {
                stats.misses += 1;
                (&cs.default_call, cs.default_call.args.as_slice(), None)
            }
        };
        let action = &self.actions[call.action];
        let ctx = EvalCtx {
            linkage,
            params: args,
            entry_counter: counter,
        };
        let mut outcome = ActionOutcome::default();
        for prim in &action.prims {
            outcome.primitives += 1;
            exec_prim(prim, &action.name, pkt, &ctx, sm, scratch, &mut outcome)?;
            if pkt.meta.drop {
                break;
            }
        }
        stats.primitives += outcome.primitives as u64;
        Ok(())
    }

    /// Runs one packet through the compiled pipeline. Mirrors
    /// [`crate::pm::PipelineModule::run_packet`] including every statistic.
    pub fn run_packet(
        &self,
        pm: &mut crate::pm::PipelineModule,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        scratch: &mut EvalScratch,
        pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        self.run_packet_parts(
            &mut pm.stats,
            SlotStatsMut::Slots(&mut pm.slots),
            &mut pm.tm,
            linkage,
            sm,
            scratch,
            pkt,
        )
    }

    /// [`CompiledPath::run_packet`] against explicit pipeline parts instead
    /// of a whole [`crate::pm::PipelineModule`]. A shard worker owns no
    /// TSP-slot chain of its own — only a stats array, a Traffic Manager,
    /// and an SM clone — and this is the entry point it drives.
    #[allow(clippy::too_many_arguments)]
    pub fn run_packet_parts(
        &self,
        stats: &mut crate::pm::PipelineStats,
        mut slots: SlotStatsMut<'_>,
        tm: &mut crate::pm::TrafficManager,
        linkage: &HeaderLinkage,
        sm: &mut StorageModule,
        scratch: &mut EvalScratch,
        mut pkt: Packet,
    ) -> Result<Option<Packet>, CoreError> {
        stats.received += 1;
        scratch
            .loc
            .begin_packet(self.stable_headers, self.cache_slots);
        for cs in &self.ingress {
            self.process_slot(cs, slots.at(cs.slot), linkage, sm, scratch, &mut pkt)?;
            if pkt.meta.drop {
                stats.action_drops += 1;
                return Ok(None);
            }
        }
        tm.enqueue(pkt);
        let Some(mut pkt) = tm.dequeue() else {
            return Ok(None);
        };
        for cs in &self.egress {
            self.process_slot(cs, slots.at(cs.slot), linkage, sm, scratch, &mut pkt)?;
            if pkt.meta.drop {
                stats.action_drops += 1;
                return Ok(None);
            }
        }
        stats.emitted += 1;
        Ok(Some(pkt))
    }
}

/// Where per-slot statistics land while the compiled path runs: either the
/// pipeline's physical [`TspSlot`] chain (the single-core switch) or a bare
/// per-slot stats array (a shard worker, which has no slots of its own).
/// Both are indexed by physical slot position.
#[derive(Debug)]
pub enum SlotStatsMut<'a> {
    /// The pipeline module's slot chain.
    Slots(&'a mut [TspSlot]),
    /// A detached per-slot stats array (same length as the slot chain).
    Stats(&'a mut [SlotStats]),
}

impl SlotStatsMut<'_> {
    #[inline]
    fn at(&mut self, slot: usize) -> &mut SlotStats {
        match self {
            SlotStatsMut::Slots(s) => &mut s[slot].stats,
            SlotStatsMut::Stats(s) => &mut s[slot],
        }
    }
}

/// Executes one compiled primitive. Mirrors [`execute_prim`] exactly; the
/// caller owns the primitive count and the drop short-circuit.
fn exec_prim(
    prim: &FastPrim,
    action: &str,
    pkt: &mut Packet,
    ctx: &EvalCtx<'_>,
    sm: &StorageModule,
    scratch: &mut EvalScratch,
    outcome: &mut ActionOutcome,
) -> Result<(), CoreError> {
    match prim {
        FastPrim::NoAction => {}
        FastPrim::Set { dst, src } => {
            let v = fast_read_operand(src, pkt, ctx, action, &mut scratch.loc)?;
            dst.write(
                pkt,
                ctx,
                truncate_to_width(v, dst.width()),
                &mut scratch.loc,
            )?;
        }
        FastPrim::Alu { op, dst, a, b } => {
            let va = fast_read_operand(a, pkt, ctx, action, &mut scratch.loc)?;
            let vb = fast_read_operand(b, pkt, ctx, action, &mut scratch.loc)?;
            dst.write(
                pkt,
                ctx,
                truncate_to_width(op.apply(va, vb), dst.width()),
                &mut scratch.loc,
            )?;
        }
        FastPrim::Hash {
            dst,
            inputs,
            modulo,
        } => {
            scratch.hash.clear();
            for i in inputs {
                let v = fast_read_operand(i, pkt, ctx, action, &mut scratch.loc)?;
                scratch.hash.push(v);
            }
            let mut h = hash_values(&scratch.hash) as u128;
            if *modulo > 0 {
                h %= *modulo as u128;
            }
            dst.write(
                pkt,
                ctx,
                truncate_to_width(h, dst.width()),
                &mut scratch.loc,
            )?;
        }
        FastPrim::Forward { port } => {
            let v = fast_read_operand(port, pkt, ctx, action, &mut scratch.loc)?;
            pkt.meta.egress_port = Some(v as u16);
        }
        FastPrim::Drop => {
            pkt.meta.drop = true;
            outcome.dropped = true;
        }
        FastPrim::Mark { value } => {
            let v = fast_read_operand(value, pkt, ctx, action, &mut scratch.loc)?;
            pkt.meta.mark = v;
        }
        FastPrim::MarkIfCounterOver { threshold } => {
            let t = fast_read_operand(threshold, pkt, ctx, action, &mut scratch.loc)?;
            if ctx.entry_counter.unwrap_or(0) as u128 > t {
                pkt.meta.mark = 1;
            }
        }
        FastPrim::DecTtlV4 {
            sym,
            ttl,
            proto,
            ck,
        } => {
            let Some(ph) = pkt.find_sym(*sym).copied() else {
                return Ok(()); // predicated no-op on non-v4 packets
            };
            let hdr = &pkt.data[ph.offset..ph.offset + ph.len];
            let ttl_v = get_bits(hdr, ttl.0, ttl.1).map_err(PacketError::from)?;
            if ttl_v == 0 {
                pkt.meta.drop = true;
                outcome.dropped = true;
            } else {
                // Incremental checksum per RFC 1624: the TTL shares a
                // 16-bit word with the protocol field.
                let proto_v = get_bits(hdr, proto.0, proto.1).map_err(PacketError::from)?;
                let old_ck = get_bits(hdr, ck.0, ck.1).map_err(PacketError::from)?;
                let old_word = ((ttl_v as u16) << 8) | proto_v as u16;
                let new_word = (((ttl_v - 1) as u16) << 8) | proto_v as u16;
                let new_ck =
                    ipsa_netpkt::checksum::incremental_update(old_ck as u16, old_word, new_word);
                let hdr = &mut pkt.data[ph.offset..ph.offset + ph.len];
                set_bits(hdr, ttl.0, ttl.1, ttl_v - 1).map_err(PacketError::from)?;
                set_bits(hdr, ck.0, ck.1, new_ck as u128).map_err(PacketError::from)?;
            }
        }
        FastPrim::DecHopLimitV6 { sym, hl } => {
            let Some(ph) = pkt.find_sym(*sym).copied() else {
                return Ok(()); // predicated no-op on non-v6 packets
            };
            let hdr = &pkt.data[ph.offset..ph.offset + ph.len];
            let hl_v = get_bits(hdr, hl.0, hl.1).map_err(PacketError::from)?;
            if hl_v == 0 {
                pkt.meta.drop = true;
                outcome.dropped = true;
            } else {
                let hdr = &mut pkt.data[ph.offset..ph.offset + ph.len];
                set_bits(hdr, hl.0, hl.1, hl_v - 1).map_err(PacketError::from)?;
            }
        }
        FastPrim::Slow(p) => {
            let metadata = &sm.metadata;
            execute_prim(
                p,
                action,
                pkt,
                ctx,
                &|name| {
                    metadata
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, b)| *b)
                        .unwrap_or(128)
                },
                outcome,
            )?;
            // Belt and braces: a slow primitive may rearrange the packet
            // (header surgery). Under the `stable_headers` proof none can,
            // but invalidating here keeps the cache locally sound.
            scratch.loc.invalidate();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::table::{KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::{MatcherBranch, TspTemplate};
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    fn sm_with_fib() -> (HeaderLinkage, StorageModule) {
        let linkage = HeaderLinkage::standard();
        let mut sm = StorageModule::new(8, 2, 128);
        sm.define_metadata(&[("nexthop".into(), 16)]);
        sm.define_action(ipsa_core::action::ActionDef {
            name: "set_nh".into(),
            params: vec![("nh".into(), 16)],
            body: vec![Primitive::Set {
                dst: LValueRef::Meta("nexthop".into()),
                src: ValueRef::Param(0),
            }],
        });
        sm.create_table(
            TableDef {
                name: "fib".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["set_nh".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            vec![0],
        )
        .unwrap();
        sm.insert_entry(
            "fib",
            TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("set_nh", vec![42]),
                counter: 0,
            },
        )
        .unwrap();
        (linkage, sm)
    }

    fn fib_template() -> TspTemplate {
        TspTemplate {
            stage_name: "fib_s".into(),
            func: "base".into(),
            parse: vec!["ipv4".into()],
            branches: vec![MatcherBranch {
                pred: Predicate::IsValid("ipv4".into()),
                table: Some("fib".into()),
            }],
            executor: vec![(1, ActionCall::new("set_nh", vec![]))],
            default_action: ActionCall::no_action(),
        }
    }

    #[test]
    fn compiled_slot_matches_interpreter_on_hit() {
        let (linkage, mut sm) = sm_with_fib();
        let slots = vec![
            TspSlot {
                template: Some(fib_template()),
                stats: SlotStats::default(),
            },
            TspSlot::default(),
        ];
        let selector = SelectorConfig::split(2, 1, 1).unwrap();
        let mut xbar = Crossbar::full();
        xbar.connect(0, &[0]).unwrap();
        let cp = compile(&slots, &selector, &xbar, &sm, &linkage, 1, None).unwrap();
        assert_eq!(cp.ingress.len(), 1);
        let mut scratch = EvalScratch::default();
        let mut stats = SlotStats::default();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        cp.process_slot(
            &cp.ingress[0],
            &mut stats,
            &linkage,
            &mut sm,
            &mut scratch,
            &mut p,
        )
        .unwrap();
        assert_eq!(p.meta.get("nexthop"), 42);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.template_fetches, 1);
        assert!(sm.mem_accesses >= 1);
    }

    #[test]
    fn stale_compiled_store_reports_error_not_panic() {
        // A compiled program holds slab indices into the storage module;
        // destroying the table underneath it must surface as the same
        // per-packet error the interpreter reports, never a panic.
        let (linkage, mut sm) = sm_with_fib();
        let slots = vec![TspSlot {
            template: Some(fib_template()),
            stats: SlotStats::default(),
        }];
        let selector = SelectorConfig::split(1, 1, 0).unwrap();
        let mut xbar = Crossbar::full();
        xbar.connect(0, &[0]).unwrap();
        let cp = compile(&slots, &selector, &xbar, &sm, &linkage, 1, None).unwrap();
        sm.destroy_table("fib").unwrap();
        let mut scratch = EvalScratch::default();
        let mut stats = SlotStats::default();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        let e = cp
            .process_slot(
                &cp.ingress[0],
                &mut stats,
                &linkage,
                &mut sm,
                &mut scratch,
                &mut p,
            )
            .unwrap_err();
        assert!(matches!(e, CoreError::UnknownTable(name) if name == "fib"));
    }

    #[test]
    fn recreated_store_re_resolves_by_name() {
        // Destroy and re-create the table (the slab index moves): the
        // compiled slot must re-resolve by name and keep forwarding.
        let (linkage, mut sm) = sm_with_fib();
        let slots = vec![TspSlot {
            template: Some(fib_template()),
            stats: SlotStats::default(),
        }];
        let selector = SelectorConfig::split(1, 1, 0).unwrap();
        let mut xbar = Crossbar::full();
        xbar.connect(0, &[0]).unwrap();
        let cp = compile(&slots, &selector, &xbar, &sm, &linkage, 1, None).unwrap();
        let def = sm.store_at(0).unwrap().table.def.clone();
        sm.destroy_table("fib").unwrap();
        // A decoy table takes the freed slab slot, then fib comes back at
        // a different index with the same shape but a fresh entry.
        sm.create_table(
            TableDef {
                name: "decoy".into(),
                ..def.clone()
            },
            vec![1],
        )
        .unwrap();
        sm.create_table(def, vec![0]).unwrap();
        sm.insert_entry(
            "fib",
            TableEntry {
                key: vec![ipsa_core::table::KeyMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("set_nh", vec![7]),
                counter: 0,
            },
        )
        .unwrap();
        let mut scratch = EvalScratch::default();
        let mut stats = SlotStats::default();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010101,
            ..Default::default()
        });
        cp.process_slot(
            &cp.ingress[0],
            &mut stats,
            &linkage,
            &mut sm,
            &mut scratch,
            &mut p,
        )
        .unwrap();
        assert_eq!(stats.hits, 1);
        // Entry args were snapshotted at compile time (the epoch barrier
        // re-compiles on table mutation); the fallback's job is matching
        // through the re-resolved store without panicking.
        assert_eq!(p.meta.get("nexthop"), 42);
    }

    #[test]
    fn compile_fails_on_unknown_table() {
        let (linkage, sm) = sm_with_fib();
        let mut t = fib_template();
        t.branches[0].table = Some("mystery".into());
        let slots = vec![TspSlot {
            template: Some(t),
            stats: SlotStats::default(),
        }];
        let selector = SelectorConfig::split(1, 1, 0).unwrap();
        let e = compile(&slots, &selector, &Crossbar::full(), &sm, &linkage, 1, None).unwrap_err();
        assert!(matches!(e, CoreError::UnknownTable(_)));
    }

    #[test]
    fn compile_fails_on_unreachable_blocks() {
        let (linkage, sm) = sm_with_fib();
        let slots = vec![TspSlot {
            template: Some(fib_template()),
            stats: SlotStats::default(),
        }];
        let selector = SelectorConfig::split(1, 1, 0).unwrap();
        let mut xbar = Crossbar::full();
        xbar.connect(0, &[5]).unwrap(); // fib lives in block 0
        let e = compile(&slots, &selector, &xbar, &sm, &linkage, 1, None).unwrap_err();
        assert!(matches!(e, CoreError::CrossbarViolation(_)));
    }

    #[test]
    fn actions_are_deduplicated_across_slots() {
        let (linkage, sm) = sm_with_fib();
        let slots = vec![
            TspSlot {
                template: Some(fib_template()),
                stats: SlotStats::default(),
            },
            TspSlot {
                template: Some(fib_template()),
                stats: SlotStats::default(),
            },
        ];
        let selector = SelectorConfig::split(2, 2, 0).unwrap();
        let mut xbar = Crossbar::full();
        xbar.connect(0, &[0]).unwrap();
        xbar.connect(1, &[0]).unwrap();
        let cp = compile(&slots, &selector, &xbar, &sm, &linkage, 1, None).unwrap();
        // set_nh + NoAction, shared by both slots.
        assert_eq!(cp.actions.len(), 2);
    }

    #[test]
    fn meta_ref_mirrors_metadata_intrinsics() {
        let mut meta = Metadata::default();
        MetaRef::compile("egress_port").write(&mut meta, 7);
        assert_eq!(meta.egress_port, Some(7));
        assert_eq!(MetaRef::compile("egress_port").read(&meta), 7);
        MetaRef::compile("drop").write(&mut meta, 2);
        assert!(meta.drop);
        assert_eq!(MetaRef::compile("drop").read(&meta), 1);
        MetaRef::compile("mark").write(&mut meta, 99);
        assert_eq!(meta.mark, 99);
        let user = MetaRef::compile("fast-test-user-field");
        user.write(&mut meta, 5);
        assert_eq!(user.read(&meta), 5);
        assert_eq!(meta.get("fast-test-user-field"), 5);
    }
}
