//! SM — the Storage Module.
//!
//! "The Storage Module realizes the disaggregated memory pool" (Sec. 4.1).
//! The SM owns the block pool, the header registry/linkage, metadata and
//! action definitions, and the installed tables. Every table is doubly
//! represented: a software index ([`ipsa_core::table::Table`]) for lookup
//! speed, and the authoritative serialized rows inside the pool blocks —
//! the SM keeps the two in sync on every entry operation.

use std::collections::HashMap;

use ipsa_core::action::ActionDef;
use ipsa_core::error::CoreError;
use ipsa_core::memory::{blocks_needed, serialize_entry, BlockKind, MemoryPool, TableBlockMap};
use ipsa_core::table::{Hit, KeyMatch, Table, TableDef, TableEntry};
use ipsa_core::value::EvalCtx;
use ipsa_netpkt::packet::Packet;

/// One installed table: software index + its block mapping.
#[derive(Debug, Clone)]
pub struct TableStore {
    /// Software lookup index.
    pub table: Table,
    /// Row → block mapping in the pool.
    pub map: TableBlockMap,
}

/// The storage module.
///
/// Tables live in a slab (`stores`) addressed by dense index, with a
/// name→index map on the side: the control plane keeps talking names, while
/// the compiled fast path resolves a name to its slab index once per
/// control-plane epoch and does pure array indexing per packet.
#[derive(Debug, Clone)]
pub struct StorageModule {
    /// The disaggregated block pool.
    pub pool: MemoryPool,
    /// Declared metadata fields.
    pub metadata: Vec<(String, usize)>,
    /// Action registry.
    pub actions: HashMap<String, ActionDef>,
    stores: Vec<Option<TableStore>>,
    index: HashMap<String, usize>,
    /// Data-bus width between TSPs and blocks (throughput accounting).
    pub bus_bits: usize,
    /// Cumulative memory accesses performed by lookups.
    pub mem_accesses: u64,
}

impl StorageModule {
    /// New SM with a pool of `sram`+`tcam` blocks.
    pub fn new(sram: usize, tcam: usize, bus_bits: usize) -> Self {
        let mut actions = HashMap::new();
        actions.insert("NoAction".to_string(), ActionDef::no_action());
        StorageModule {
            pool: MemoryPool::new(sram, tcam),
            metadata: Vec::new(),
            actions,
            stores: Vec::new(),
            index: HashMap::new(),
            bus_bits,
            mem_accesses: 0,
        }
    }

    /// Declared width of a metadata field (128 for undeclared scratch).
    pub fn meta_width(&self, name: &str) -> usize {
        self.metadata
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| *b)
            .unwrap_or(128)
    }

    /// Adds metadata declarations (idempotent per field). Declaring a field
    /// also claims its process-wide dense metadata id, so packets built
    /// after the declaration pre-size their user vectors to cover it.
    pub fn define_metadata(&mut self, fields: &[(String, usize)]) {
        for (n, b) in fields {
            ipsa_netpkt::intern::meta_id(n);
            if !self.metadata.iter().any(|(m, _)| m == n) {
                self.metadata.push((n.clone(), *b));
            }
        }
    }

    /// Defines (or replaces) an action.
    pub fn define_action(&mut self, def: ActionDef) {
        self.actions.insert(def.name.clone(), def);
    }

    /// Removes an action.
    pub fn remove_action(&mut self, name: &str) {
        self.actions.remove(name);
    }

    /// Maximum action-data width of a table (bits), from its action defs.
    fn table_data_bits(&self, def: &TableDef) -> usize {
        def.actions
            .iter()
            .filter_map(|a| self.actions.get(a))
            .map(|a| a.data_bits())
            .max()
            .unwrap_or(0)
    }

    /// Installed table names (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.index.keys().cloned().collect();
        v.sort();
        v
    }

    /// Read access to a table store.
    pub fn table(&self, name: &str) -> Option<&TableStore> {
        self.index.get(name).and_then(|&i| self.stores[i].as_ref())
    }

    /// Resolves a table name to its slab index (compile-time resolution for
    /// the fast path). The index stays valid until the table is destroyed.
    pub fn table_idx(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Read access to a table store by slab index.
    pub fn store_at(&self, idx: usize) -> Option<&TableStore> {
        self.stores.get(idx).and_then(|s| s.as_ref())
    }

    /// Mutable access to a table store by slab index.
    pub fn store_at_mut(&mut self, idx: usize) -> Option<&mut TableStore> {
        self.stores.get_mut(idx).and_then(|s| s.as_mut())
    }

    /// Slab length (live and freed slots) — the bound for per-store scans.
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    /// Zeroes the observability counters (lookups, hits, memory accesses)
    /// without touching entry packet counters, which are data-plane state.
    /// Shard workers start each epoch from a clean-slate SM clone so the
    /// values they report at a barrier are pure deltas.
    pub fn reset_observability(&mut self) {
        self.mem_accesses = 0;
        for s in self.stores.iter_mut().flatten() {
            s.table.lookups = 0;
            s.table.hits = 0;
        }
    }

    fn get_store_mut(&mut self, name: &str) -> Result<&mut TableStore, CoreError> {
        let idx = *self
            .index
            .get(name)
            .ok_or_else(|| CoreError::UnknownTable(name.to_string()))?;
        Ok(self.stores[idx].as_mut().expect("indexed store live"))
    }

    /// Creates a table bound to specific pool blocks (chosen by rp4bc's
    /// packing solver). Verifies the allocation suffices for the table's
    /// geometry.
    pub fn create_table(&mut self, def: TableDef, blocks: Vec<usize>) -> Result<(), CoreError> {
        if self.index.contains_key(&def.name) {
            // Replace semantics: recreate (e.g. a re-loaded function).
            self.destroy_table(&def.name)?;
        }
        let data_bits = self.table_data_bits(&def);
        let entry_bits = def.entry_width_bits(data_bits);
        let kind = BlockKind::for_table(&def);
        let need = blocks_needed(kind.geometry(), entry_bits, def.size);
        if blocks.len() < need {
            return Err(CoreError::Config(format!(
                "table `{}` needs {need} blocks, allocation has {}",
                def.name,
                blocks.len()
            )));
        }
        self.pool.allocate_specific(&def.name, &blocks)?;
        let map = TableBlockMap::new(&def.name, entry_bits, def.size, kind, blocks)?;
        let name = def.name.clone();
        let table = Table::new(def)?;
        let store = TableStore { table, map };
        // Reuse a hole left by a destroyed table, else grow the slab.
        let idx = match self.stores.iter().position(|s| s.is_none()) {
            Some(i) => {
                self.stores[i] = Some(store);
                i
            }
            None => {
                self.stores.push(Some(store));
                self.stores.len() - 1
            }
        };
        self.index.insert(name, idx);
        Ok(())
    }

    /// Destroys a table, recycling its blocks ("if a logical stage is
    /// deleted, the associated memory blocks are also recycled").
    pub fn destroy_table(&mut self, name: &str) -> Result<Vec<usize>, CoreError> {
        let idx = self
            .index
            .remove(name)
            .ok_or_else(|| CoreError::UnknownTable(name.to_string()))?;
        self.stores[idx] = None;
        Ok(self.pool.free_owner(name))
    }

    /// Inserts an entry: updates the index and serializes the row into the
    /// backing blocks.
    ///
    /// The entry's action must be defined in the action registry and
    /// offered by the table (or be its default action, which serializes as
    /// tag 0). Unknown actions used to fall through `unwrap_or(0)` /
    /// `unwrap_or_default()` and silently serialize as the table's first
    /// action with no argument data — a corrupted row that only surfaced
    /// when the entry later matched.
    pub fn insert_entry(&mut self, table: &str, entry: TableEntry) -> Result<usize, CoreError> {
        let idx = *self
            .index
            .get(table)
            .ok_or_else(|| CoreError::UnknownTable(table.to_string()))?;
        let action_name = entry.action.action.clone();
        let Some(adef) = self.actions.get(&action_name) else {
            return Err(CoreError::UnknownAction(format!(
                "{action_name}: not defined, required by entry for table {table}"
            )));
        };
        // Param widths of the entry's action, for serialization.
        let param_bits: Vec<usize> = adef.params.iter().map(|(_, b)| *b).collect();
        let store = self.stores[idx].as_mut().expect("indexed store live");
        let tag = match store.table.def.action_tag(&action_name) {
            Some(t) => t,
            // Tag 0 is reserved for the default (miss) action; an entry may
            // name it explicitly even when it is not in the action list.
            None if action_name == store.table.def.default_action.action => 0,
            None => {
                return Err(CoreError::UnknownAction(format!(
                    "{action_name}: not offered by table {table}"
                )))
            }
        };
        let row = store.table.insert(entry)?;
        let e = store.table.row(row).expect("just inserted").clone();
        let bytes = serialize_entry(&store.table.def, &param_bits, tag, &e)?;
        store.map.write_row(&mut self.pool, row, &bytes)?;
        Ok(row)
    }

    /// Deletes an entry by key, zeroing its backing row.
    pub fn delete_entry(&mut self, table: &str, key: &[KeyMatch]) -> Result<usize, CoreError> {
        let idx = *self
            .index
            .get(table)
            .ok_or_else(|| CoreError::UnknownTable(table.to_string()))?;
        let store = self.stores[idx].as_mut().expect("indexed store live");
        let row = store.table.delete(key)?;
        let zero = vec![0u8; store.map.entry_bits.div_ceil(8)];
        store.map.write_row(&mut self.pool, row, &zero)?;
        Ok(row)
    }

    /// Changes a table's default (miss) action. The action must exist in
    /// the registry — the same validation as [`StorageModule::insert_entry`];
    /// a dangling default would make every miss fail at execution time.
    pub fn set_default_action(
        &mut self,
        table: &str,
        action: ipsa_core::table::ActionCall,
    ) -> Result<(), CoreError> {
        if !self.actions.contains_key(&action.action) {
            return Err(CoreError::UnknownAction(format!(
                "{}: not defined, cannot be default of table {table}",
                action.action
            )));
        }
        let store = self.get_store_mut(table)?;
        store.table.def.default_action = action;
        Ok(())
    }

    /// Migrates a table's backing storage to `new_blocks`: allocates the
    /// destination, copies every live row (entries *and* their block-level
    /// bytes survive), recycles the old blocks. This is what a clustered
    /// crossbar forces when a logical stage moves clusters (Sec. 2.4).
    pub fn migrate_table(&mut self, table: &str, new_blocks: Vec<usize>) -> Result<(), CoreError> {
        let idx = *self
            .index
            .get(table)
            .ok_or_else(|| CoreError::UnknownTable(table.to_string()))?;
        let store = self.stores[idx].as_ref().expect("indexed store live");
        let live_rows = store.table.iter().map(|(r, _)| r + 1).max().unwrap_or(0);
        // Validate the destination by bit capacity, not block count: the
        // table needs ⌈W/w⌉×⌈D/d⌉ blocks of its own kind's w×d geometry
        // (Sec. 2.4). A count-only check used to let a table slide onto
        // blocks of a different geometry — e.g. an SRAM-resident table onto
        // TCAM blocks whose rows are both narrower and fewer, silently
        // under-allocating its declared capacity.
        let kind = BlockKind::for_table(&store.table.def);
        for &b in &new_blocks {
            let blk = self.pool.block(b).ok_or_else(|| {
                CoreError::Config(format!("migration of `{table}`: no such block {b}"))
            })?;
            if blk.kind != kind {
                return Err(CoreError::Config(format!(
                    "migration of `{table}` needs {kind:?} blocks, block {b} is {:?}",
                    blk.kind
                )));
            }
        }
        let need = blocks_needed(kind.geometry(), store.map.entry_bits, store.table.def.size);
        if new_blocks.len() < need.max(store.map.block_ids.len()) {
            return Err(CoreError::Config(format!(
                "migration of `{table}` needs {} blocks ({} entry bits x {} entries), got {}",
                need.max(store.map.block_ids.len()),
                store.map.entry_bits,
                store.table.def.size,
                new_blocks.len()
            )));
        }
        // Stage the destination under a temporary owner so the copy sees
        // both allocations, then hand ownership over.
        let tmp_owner = format!("{table}:migrating");
        self.pool.allocate_specific(&tmp_owner, &new_blocks)?;
        let old_map = self.stores[idx].as_ref().expect("checked").map.clone();
        let new_map = match old_map.migrate(&mut self.pool, new_blocks, live_rows) {
            Ok(m) => m,
            Err(e) => {
                self.pool.free_owner(&tmp_owner);
                return Err(e);
            }
        };
        self.pool.free_owner(table); // recycle the old blocks
                                     // Hand the copied blocks over without touching their contents.
        self.pool.reassign(&tmp_owner, table);
        self.stores[idx].as_mut().expect("checked").map = new_map;
        Ok(())
    }

    /// Performs a lookup, accounting the memory accesses it costs on the
    /// data bus.
    pub fn lookup(
        &mut self,
        table: &str,
        pkt: &Packet,
        ctx: &EvalCtx<'_>,
    ) -> Result<Option<Hit>, CoreError> {
        let bus = self.bus_bits;
        let idx = *self
            .index
            .get(table)
            .ok_or_else(|| CoreError::UnknownTable(table.to_string()))?;
        let store = self.stores[idx].as_mut().expect("indexed store live");
        self.mem_accesses += store.map.accesses_per_lookup(bus) as u64;
        store.table.lookup(pkt, ctx)
    }

    /// Restores one table from a transactional-apply pre-image: the store
    /// goes back into its slab slot and the backing blocks get their
    /// journaled bytes back. Entry operations never change block
    /// *ownership*, so content restoration is sufficient; structural
    /// operations journal the whole SM instead.
    pub(crate) fn restore_table_checkpoint(
        &mut self,
        idx: usize,
        store: TableStore,
        blocks: &[(usize, Vec<u8>)],
    ) {
        let name = store.table.def.name.clone();
        let Some(slot) = self.stores.get_mut(idx) else {
            debug_assert!(false, "rollback of `{name}`: slab index {idx} vanished");
            return;
        };
        *slot = Some(store);
        self.index.insert(name, idx);
        for (b, bytes) in blocks {
            let r = self.pool.restore_block_data(*b, bytes);
            debug_assert!(r.is_ok(), "rollback block restore failed: {r:?}");
        }
    }

    /// Blocks currently backing a table.
    pub fn blocks_of(&self, table: &str) -> Vec<usize> {
        self.table(table)
            .map(|s| s.map.block_ids.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind};
    use ipsa_core::value::ValueRef;
    use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};

    fn sm() -> StorageModule {
        let mut sm = StorageModule::new(16, 4, 128);
        sm.define_metadata(&[("nexthop".into(), 16)]);
        sm.define_action(ActionDef {
            name: "set_nh".into(),
            params: vec![("nh".into(), 16)],
            body: vec![ipsa_core::action::Primitive::Set {
                dst: ipsa_core::value::LValueRef::Meta("nexthop".into()),
                src: ValueRef::Param(0),
            }],
        });
        sm
    }

    fn fib_def() -> TableDef {
        TableDef {
            name: "fib".into(),
            key: vec![KeyField {
                source: ValueRef::field("ipv4", "dst_addr"),
                bits: 32,
                kind: MatchKind::Lpm,
            }],
            size: 256,
            actions: vec!["set_nh".into()],
            default_action: ActionCall::no_action(),
            with_counters: false,
        }
    }

    #[test]
    fn create_insert_lookup_destroy_cycle() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        assert_eq!(sm.pool.owned_by("fib"), vec![0]);

        let row = sm
            .insert_entry(
                "fib",
                TableEntry {
                    key: vec![KeyMatch::Lpm {
                        value: 0x0a000000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                    action: ActionCall::new("set_nh", vec![42]),
                    counter: 0,
                },
            )
            .unwrap();

        // The blocks really hold the entry.
        let bytes = sm
            .table("fib")
            .unwrap()
            .map
            .read_row(&sm.pool, row)
            .unwrap();
        assert!(bytes.iter().any(|&b| b != 0));

        let linkage = ipsa_netpkt::HeaderLinkage::standard();
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a010203,
            ..Default::default()
        });
        p.ensure_parsed(&linkage, "ipv4").unwrap();
        let ctx = EvalCtx::bare(&linkage);
        let hit = sm.lookup("fib", &p, &ctx).unwrap().unwrap();
        assert_eq!(hit.action.args, vec![42]);
        assert!(sm.mem_accesses >= 1);

        let freed = sm.destroy_table("fib").unwrap();
        assert_eq!(freed, vec![0]);
        assert!(sm.lookup("fib", &p, &ctx).is_err());
    }

    #[test]
    fn delete_zeroes_backing_row() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        let key = vec![KeyMatch::Lpm {
            value: 0x0a000000,
            prefix_len: 8,
        }];
        let row = sm
            .insert_entry(
                "fib",
                TableEntry {
                    key: key.clone(),
                    priority: 0,
                    action: ActionCall::new("set_nh", vec![7]),
                    counter: 0,
                },
            )
            .unwrap();
        sm.delete_entry("fib", &key).unwrap();
        let bytes = sm
            .table("fib")
            .unwrap()
            .map
            .read_row(&sm.pool, row)
            .unwrap();
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn undersized_allocation_rejected() {
        let mut sm = sm();
        let mut def = fib_def();
        def.size = 4096; // needs 4 row groups
        let e = sm.create_table(def, vec![0]).unwrap_err();
        assert!(matches!(e, CoreError::Config(_)));
    }

    #[test]
    fn double_allocation_conflict() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        let mut def2 = fib_def();
        def2.name = "fib2".into();
        let e = sm.create_table(def2, vec![0]).unwrap_err();
        assert!(matches!(e, CoreError::BlockConflict { .. }));
    }

    #[test]
    fn recreate_replaces() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        sm.create_table(fib_def(), vec![1]).unwrap();
        assert_eq!(sm.pool.owned_by("fib"), vec![1]);
        assert_eq!(sm.pool.free_count(BlockKind::Sram), 15);
    }

    #[test]
    fn migration_preserves_entries_and_recycles_blocks() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        let linkage = ipsa_netpkt::HeaderLinkage::standard();
        for i in 0..5u128 {
            sm.insert_entry(
                "fib",
                TableEntry {
                    key: vec![KeyMatch::Lpm {
                        value: 0x0a00_0000 + (i << 8),
                        prefix_len: 24,
                    }],
                    priority: 0,
                    action: ActionCall::new("set_nh", vec![10 + i]),
                    counter: 0,
                },
            )
            .unwrap();
        }
        sm.migrate_table("fib", vec![5]).unwrap();
        assert_eq!(sm.pool.owned_by("fib"), vec![5], "moved to the new block");
        assert!(
            sm.pool.block(0).unwrap().owner.is_none(),
            "old block recycled"
        );
        // Lookups still hit; block-level bytes survived the copy.
        let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
            dst_ip: 0x0a00_0342,
            ..Default::default()
        });
        p.ensure_parsed(&linkage, "ipv4").unwrap();
        let ctx = EvalCtx::bare(&linkage);
        let hit = sm.lookup("fib", &p, &ctx).unwrap().unwrap();
        assert_eq!(hit.action.args, vec![13]);
        let bytes = sm
            .table("fib")
            .unwrap()
            .map
            .read_row(&sm.pool, hit.row)
            .unwrap();
        assert!(bytes.iter().any(|&b| b != 0), "serialized row travelled");
    }

    #[test]
    fn migration_to_occupied_blocks_fails_cleanly() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        let mut def2 = fib_def();
        def2.name = "other".into();
        sm.create_table(def2, vec![1]).unwrap();
        let e = sm.migrate_table("fib", vec![1]).unwrap_err();
        assert!(matches!(e, CoreError::BlockConflict { .. }));
        // Original table untouched.
        assert_eq!(sm.pool.owned_by("fib"), vec![0]);
    }

    #[test]
    fn meta_width_defaults() {
        let sm = sm();
        assert_eq!(sm.meta_width("nexthop"), 16);
        assert_eq!(sm.meta_width("__t0"), 128);
    }

    /// Regression: an entry naming an undefined action used to serialize
    /// with empty param widths and tag 0 — i.e. silently as the table's
    /// default action with no argument data. It must be rejected.
    #[test]
    fn entry_with_undefined_action_rejected() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        let e = sm
            .insert_entry(
                "fib",
                TableEntry {
                    key: vec![KeyMatch::Lpm {
                        value: 0x0a000000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                    action: ActionCall::new("no_such_action", vec![1]),
                    counter: 0,
                },
            )
            .unwrap_err();
        assert_eq!(
            e.to_string(),
            "unknown action `no_such_action: not defined, required by entry for table fib`"
        );
        // Nothing was inserted: the index holds no row and the block pool
        // holds no bytes.
        assert_eq!(sm.table("fib").unwrap().table.len(), 0);
    }

    /// Regression: an action that is defined but not offered by the table
    /// used to get tag 0 (the *first* action's tag at deserialization
    /// time). Only the table's declared default may serialize as tag 0.
    #[test]
    fn entry_with_unoffered_action_rejected() {
        let mut sm = sm();
        sm.define_action(ActionDef {
            name: "other".into(),
            params: vec![],
            body: vec![],
        });
        sm.create_table(fib_def(), vec![0]).unwrap();
        let e = sm
            .insert_entry(
                "fib",
                TableEntry {
                    key: vec![KeyMatch::Lpm {
                        value: 0x0a000000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                    action: ActionCall::new("other", vec![]),
                    counter: 0,
                },
            )
            .unwrap_err();
        assert!(matches!(e, CoreError::UnknownAction(_)), "{e}");
        // The default action stays legal as an explicit entry action.
        sm.insert_entry(
            "fib",
            TableEntry {
                key: vec![KeyMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::no_action(),
                counter: 0,
            },
        )
        .unwrap();
    }

    /// Regression: `set_default_action` accepted any name; a dangling
    /// default fails only later, at miss-execution time.
    #[test]
    fn default_action_must_be_defined() {
        let mut sm = sm();
        sm.create_table(fib_def(), vec![0]).unwrap();
        let e = sm
            .set_default_action("fib", ActionCall::new("ghost", vec![]))
            .unwrap_err();
        assert!(matches!(e, CoreError::UnknownAction(_)), "{e}");
        sm.set_default_action("fib", ActionCall::new("set_nh", vec![0]))
            .unwrap();
        assert_eq!(
            sm.table("fib").unwrap().table.def.default_action.action,
            "set_nh"
        );
    }

    /// Regression: migration validated the destination by block *count*
    /// only, so a table could slide onto blocks of a different w×d
    /// geometry. An SRAM-resident table moved onto one TCAM block passes
    /// the count check (1 ≥ 1) while the destination holds 44×512 bits per
    /// block against the table's 112×1024 layout — silent under-allocation.
    #[test]
    fn migration_to_heterogeneous_geometry_rejected() {
        let mut sm = sm();
        // A small-entry exact table so the bytes *would* fit a TCAM row —
        // pre-fix the migration "succeeded" and corrupted capacity.
        sm.create_table(
            TableDef {
                name: "hosts".into(),
                key: vec![KeyField {
                    source: ValueRef::Meta("nexthop".into()),
                    bits: 16,
                    kind: MatchKind::Exact,
                }],
                size: 1024,
                actions: vec![],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            vec![2],
        )
        .unwrap();
        sm.insert_entry("hosts", TableEntry::exact(vec![5], ActionCall::no_action()))
            .unwrap();
        // Blocks 16.. are the TCAM half of the pool (16 SRAM + 4 TCAM).
        let e = sm.migrate_table("hosts", vec![16]).unwrap_err();
        assert!(
            e.to_string().contains("Sram blocks"),
            "must name the kind mismatch: {e}"
        );
        // Original mapping untouched, lookups unaffected.
        assert_eq!(sm.pool.owned_by("hosts"), vec![2]);
        assert_eq!(sm.table("hosts").unwrap().table.len(), 1);
    }

    /// The capacity rule itself: a destination with the right kind but too
    /// few blocks for ⌈W/w⌉×⌈D/d⌉ is rejected before anything is staged.
    #[test]
    fn migration_below_block_capacity_rejected() {
        let mut sm = sm();
        let mut def = fib_def();
        def.size = 2048; // 2 SRAM row groups
        sm.create_table(def, vec![0, 1]).unwrap();
        let e = sm.migrate_table("fib", vec![5]).unwrap_err();
        assert!(matches!(e, CoreError::Config(_)), "{e}");
        assert_eq!(sm.pool.owned_by("fib"), vec![0, 1]);
        sm.migrate_table("fib", vec![5, 6]).unwrap();
        assert_eq!(sm.pool.owned_by("fib"), vec![5, 6]);
    }
}
