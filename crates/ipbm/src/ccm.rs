//! CCM — the Control Channel Module.
//!
//! "The Control Channel Module bridges the data plane with the controller
//! for runtime configuration" (Sec. 4.1). It interprets control messages
//! against the PM/SM state and accounts their cost under the device's
//! [`CostModel`] — the simulated load time (t_L) and the pipeline-stall
//! window between `Drain` and `Resume`.

use ipsa_core::control::{full_install_msgs, ApplyReport, ControlMsg};
use ipsa_core::error::CoreError;
use ipsa_core::timing::CostModel;
use ipsa_netpkt::linkage::HeaderLinkage;

use crate::pm::PipelineModule;
use crate::sm::StorageModule;

/// Applies one message functionally (no cost accounting).
fn apply_one(
    pm: &mut PipelineModule,
    sm: &mut StorageModule,
    linkage: &mut HeaderLinkage,
    msg: &ControlMsg,
) -> Result<(), CoreError> {
    match msg {
        ControlMsg::Drain => {
            pm.draining = true;
        }
        ControlMsg::Resume => {
            pm.draining = false;
        }
        ControlMsg::WriteTemplate { slot, template } => {
            pm.write_template(*slot, template.clone())?;
        }
        ControlMsg::ClearSlot { slot } => {
            pm.clear_slot(*slot)?;
        }
        ControlMsg::SetSelector(cfg) => {
            pm.set_selector(cfg.clone())?;
        }
        ControlMsg::ConnectCrossbar { slot, blocks } => {
            if blocks.is_empty() {
                pm.crossbar.disconnect(*slot);
            } else {
                pm.crossbar.connect(*slot, blocks)?;
            }
        }
        ControlMsg::RegisterHeader(ty) => {
            linkage.register(ty.clone());
        }
        ControlMsg::SetFirstHeader(name) => {
            linkage
                .set_first(name)
                .map_err(|e| CoreError::Config(e.to_string()))?;
        }
        ControlMsg::UnregisterHeader(name) => {
            linkage.unregister(name);
        }
        ControlMsg::LinkHeader { pre, next, tag } => {
            linkage
                .link(pre, next, *tag)
                .map_err(|e| CoreError::Config(e.to_string()))?;
        }
        ControlMsg::UnlinkHeader { pre, next } => {
            linkage
                .unlink(pre, next)
                .map_err(|e| CoreError::Config(e.to_string()))?;
        }
        ControlMsg::DefineAction(def) => {
            sm.define_action(def.clone());
        }
        ControlMsg::RemoveAction(name) => {
            sm.remove_action(name);
        }
        ControlMsg::DefineMetadata(fields) => {
            sm.define_metadata(fields);
        }
        ControlMsg::CreateTable { def, blocks } => {
            sm.create_table(def.clone(), blocks.clone())?;
        }
        ControlMsg::DestroyTable(name) => {
            sm.destroy_table(name)?;
        }
        ControlMsg::MigrateTable { table, blocks } => {
            sm.migrate_table(table, blocks.clone())?;
        }
        ControlMsg::AddEntry { table, entry } => {
            sm.insert_entry(table, entry.clone())?;
        }
        ControlMsg::DelEntry { table, key } => {
            sm.delete_entry(table, key)?;
        }
        ControlMsg::SetDefaultAction { table, action } => {
            sm.set_default_action(table, action.clone())?;
        }
        ControlMsg::LoadFullDesign(design) => {
            // Whole-design swap: wipe pipeline and storage, then install.
            let slots = pm.slot_count();
            for s in 0..slots {
                pm.clear_slot(s)?;
                pm.crossbar.disconnect(s);
            }
            for t in sm.table_names() {
                sm.destroy_table(&t)?;
            }
            *linkage = HeaderLinkage::new();
            for sub in full_install_msgs(design) {
                apply_one(pm, sm, linkage, &sub)?;
            }
        }
    }
    Ok(())
}

/// Applies a message batch, returning the cost report. Application is
/// sequential; the first failing message aborts the batch with the device
/// partially configured (the controller validates plans before shipping
/// them, so this indicates a controller bug and is surfaced loudly).
pub fn apply_msgs(
    pm: &mut PipelineModule,
    sm: &mut StorageModule,
    linkage: &mut HeaderLinkage,
    cost: &CostModel,
    msgs: &[ControlMsg],
) -> Result<ApplyReport, CoreError> {
    let mut report = ApplyReport::default();
    // Any control write opens a new epoch: the compiled fast path has
    // names, table rows, and wiring pre-resolved, so it must be rebuilt.
    pm.invalidate_compiled();
    let mut in_drain = false;
    for msg in msgs {
        // MigrateTable is the one message whose cost depends on device
        // state (every live row is copied); price it against the table as
        // it stands *before* this message applies.
        let us = match msg {
            ControlMsg::MigrateTable { table, blocks } => {
                let live_rows = sm.table(table).map(|s| s.table.len()).unwrap_or_default();
                cost.per_msg_us
                    + cost.per_byte_us * msg.payload_bytes() as f64
                    + cost.migrate_cost_us(live_rows, blocks.len())
            }
            _ => cost.msg_cost_us(msg),
        };
        report.msgs += 1;
        report.bytes += msg.payload_bytes();
        report.load_us += us;
        if matches!(msg, ControlMsg::Drain) {
            in_drain = true;
        }
        if in_drain {
            report.stall_us += us;
        }
        if matches!(msg, ControlMsg::Resume) {
            in_drain = false;
        }
        if matches!(msg, ControlMsg::AddEntry { .. }) {
            report.entries_written += 1;
        }
        apply_one(pm, sm, linkage, msg)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::crossbar::Crossbar;
    use ipsa_core::pipeline_cfg::SelectorConfig;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::TspTemplate;
    use ipsa_core::value::ValueRef;

    fn parts() -> (PipelineModule, StorageModule, HeaderLinkage) {
        (
            PipelineModule::new(8, 8, Crossbar::full()),
            StorageModule::new(8, 2, 128),
            HeaderLinkage::standard(),
        )
    }

    fn table_def() -> TableDef {
        TableDef {
            name: "t".into(),
            key: vec![KeyField {
                source: ValueRef::Meta("x".into()),
                bits: 16,
                kind: MatchKind::Exact,
            }],
            size: 16,
            actions: vec![],
            default_action: ActionCall::no_action(),
            with_counters: false,
        }
    }

    #[test]
    fn batch_applies_and_costs() {
        let (mut pm, mut sm, mut linkage) = parts();
        let msgs = vec![
            ControlMsg::Drain,
            ControlMsg::WriteTemplate {
                slot: 0,
                template: TspTemplate::passthrough("s"),
            },
            ControlMsg::SetSelector(SelectorConfig::split(8, 1, 0).unwrap()),
            ControlMsg::Resume,
            ControlMsg::CreateTable {
                def: table_def(),
                blocks: vec![0],
            },
            ControlMsg::AddEntry {
                table: "t".into(),
                entry: TableEntry::exact(vec![1], ActionCall::no_action()),
            },
        ];
        let cost = CostModel::software();
        let r = apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap();
        assert_eq!(r.msgs, 6);
        assert_eq!(r.entries_written, 1);
        assert!(r.load_us > 0.0);
        // Stall covers exactly the Drain..Resume window.
        assert!(r.stall_us > 0.0 && r.stall_us < r.load_us);
        assert!(pm.slots[0].template.is_some());
        assert!(!pm.draining);
        assert_eq!(sm.table_names(), vec!["t".to_string()]);
    }

    /// Regression: a migration's reported load time must grow with the
    /// rows it copies — the flat `table_setup_us` charge made update-plan
    /// latency independent of table occupancy.
    #[test]
    fn migration_cost_scales_with_live_rows() {
        let cost = CostModel::software();
        let migrate = |populate: usize| -> f64 {
            let (mut pm, mut sm, mut linkage) = parts();
            let mut msgs = vec![ControlMsg::CreateTable {
                def: table_def(),
                blocks: vec![0],
            }];
            for i in 0..populate {
                msgs.push(ControlMsg::AddEntry {
                    table: "t".into(),
                    entry: TableEntry::exact(vec![i as u128], ActionCall::no_action()),
                });
            }
            apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap();
            let r = apply_msgs(
                &mut pm,
                &mut sm,
                &mut linkage,
                &cost,
                &[ControlMsg::MigrateTable {
                    table: "t".into(),
                    blocks: vec![1],
                }],
            )
            .unwrap();
            r.load_us
        };
        let empty = migrate(0);
        let populated = migrate(10);
        assert!(
            populated >= empty + 10.0 * cost.table_entry_us - 1e-9,
            "10 copied rows must be charged: empty {empty} µs, populated {populated} µs"
        );
    }

    #[test]
    fn bad_message_aborts() {
        let (mut pm, mut sm, mut linkage) = parts();
        let msgs = vec![ControlMsg::ClearSlot { slot: 99 }];
        let cost = CostModel::software();
        assert!(apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).is_err());
    }

    #[test]
    fn header_msgs_mutate_linkage() {
        let (mut pm, mut sm, mut linkage) = parts();
        let cost = CostModel::software();
        let msgs = vec![
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::srh()),
            ControlMsg::LinkHeader {
                pre: "ipv6".into(),
                next: "srh".into(),
                tag: 43,
            },
        ];
        apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap();
        assert!(linkage
            .edges()
            .contains(&("ipv6".to_string(), 43, "srh".to_string())));
    }

    #[test]
    fn full_design_swap_resets_state() {
        let (mut pm, mut sm, mut linkage) = parts();
        let cost = CostModel::software();
        // Pre-state: a table and a template.
        apply_msgs(
            &mut pm,
            &mut sm,
            &mut linkage,
            &cost,
            &[
                ControlMsg::CreateTable {
                    def: table_def(),
                    blocks: vec![0],
                },
                ControlMsg::WriteTemplate {
                    slot: 3,
                    template: TspTemplate::passthrough("old"),
                },
            ],
        )
        .unwrap();
        // Swap in an empty design.
        let design = ipsa_core::template::CompiledDesign::empty("fresh", 8);
        apply_msgs(
            &mut pm,
            &mut sm,
            &mut linkage,
            &cost,
            &[ControlMsg::LoadFullDesign(Box::new(design))],
        )
        .unwrap();
        assert!(pm.slots[3].template.is_none());
        assert!(sm.table_names().is_empty());
    }
}
