//! CCM — the Control Channel Module.
//!
//! "The Control Channel Module bridges the data plane with the controller
//! for runtime configuration" (Sec. 4.1). It interprets control messages
//! against the PM/SM state and accounts their cost under the device's
//! [`CostModel`] — the simulated load time (t_L) and the pipeline-stall
//! window between `Drain` and `Resume`.

use ipsa_core::control::{full_install_msgs, ApplyReport, ControlMsg};
use ipsa_core::error::CoreError;
use ipsa_core::timing::CostModel;
use ipsa_netpkt::linkage::HeaderLinkage;

use crate::pm::PipelineModule;
use crate::resilience::{ApplyJournal, FaultPlan};
use crate::sm::StorageModule;

/// Applies one message functionally (no cost accounting).
fn apply_one(
    pm: &mut PipelineModule,
    sm: &mut StorageModule,
    linkage: &mut HeaderLinkage,
    msg: &ControlMsg,
) -> Result<(), CoreError> {
    match msg {
        ControlMsg::Drain => {
            pm.draining = true;
        }
        ControlMsg::Resume => {
            pm.draining = false;
        }
        ControlMsg::WriteTemplate { slot, template } => {
            pm.write_template(*slot, template.clone())?;
        }
        ControlMsg::ClearSlot { slot } => {
            pm.clear_slot(*slot)?;
        }
        ControlMsg::SetSelector(cfg) => {
            pm.set_selector(cfg.clone())?;
        }
        ControlMsg::ConnectCrossbar { slot, blocks } => {
            if blocks.is_empty() {
                pm.crossbar.disconnect(*slot);
            } else {
                pm.crossbar.connect(*slot, blocks)?;
            }
        }
        ControlMsg::RegisterHeader(ty) => {
            linkage.register(ty.clone());
        }
        ControlMsg::SetFirstHeader(name) => {
            linkage
                .set_first(name)
                .map_err(|e| CoreError::Config(e.to_string()))?;
        }
        ControlMsg::UnregisterHeader(name) => {
            linkage.unregister(name);
        }
        ControlMsg::LinkHeader { pre, next, tag } => {
            linkage
                .link(pre, next, *tag)
                .map_err(|e| CoreError::Config(e.to_string()))?;
        }
        ControlMsg::UnlinkHeader { pre, next } => {
            linkage
                .unlink(pre, next)
                .map_err(|e| CoreError::Config(e.to_string()))?;
        }
        ControlMsg::DefineAction(def) => {
            sm.define_action(def.clone());
        }
        ControlMsg::RemoveAction(name) => {
            sm.remove_action(name);
        }
        ControlMsg::DefineMetadata(fields) => {
            sm.define_metadata(fields);
        }
        ControlMsg::CreateTable { def, blocks } => {
            sm.create_table(def.clone(), blocks.clone())?;
        }
        ControlMsg::DestroyTable(name) => {
            sm.destroy_table(name)?;
        }
        ControlMsg::MigrateTable { table, blocks } => {
            sm.migrate_table(table, blocks.clone())?;
        }
        ControlMsg::AddEntry { table, entry } => {
            sm.insert_entry(table, entry.clone())?;
        }
        ControlMsg::DelEntry { table, key } => {
            sm.delete_entry(table, key)?;
        }
        ControlMsg::SetDefaultAction { table, action } => {
            sm.set_default_action(table, action.clone())?;
        }
        ControlMsg::LoadFullDesign(design) => {
            // Whole-design swap: wipe pipeline and storage, then install.
            let slots = pm.slot_count();
            for s in 0..slots {
                pm.clear_slot(s)?;
                pm.crossbar.disconnect(s);
            }
            for t in sm.table_names() {
                sm.destroy_table(&t)?;
            }
            *linkage = HeaderLinkage::new();
            for sub in full_install_msgs(design) {
                apply_one(pm, sm, linkage, &sub)?;
            }
        }
    }
    Ok(())
}

/// Applies a message batch transactionally, returning the cost report.
///
/// Application is sequential; before each message applies, its pre-image is
/// journaled ([`ApplyJournal`]), so the first failing message rolls the
/// PM/SM/linkage back to the batch's starting state and the batch reports
/// [`CoreError::RolledBack`] — `Device::apply` is all-or-nothing, and a
/// failed in-situ update can never strand the pipeline half-programmed.
pub fn apply_msgs(
    pm: &mut PipelineModule,
    sm: &mut StorageModule,
    linkage: &mut HeaderLinkage,
    cost: &CostModel,
    msgs: &[ControlMsg],
) -> Result<ApplyReport, CoreError> {
    apply_msgs_with_faults(pm, sm, linkage, cost, msgs, None)
}

/// [`apply_msgs`] with an optional fault plan: `fail_msg_at` fails the
/// batch deterministically at that message index, exercising the rollback
/// path at any batch position. Test-only surface — production callers pass
/// no plan and take the plain `apply_msgs` wrapper.
#[doc(hidden)]
pub fn apply_msgs_with_faults(
    pm: &mut PipelineModule,
    sm: &mut StorageModule,
    linkage: &mut HeaderLinkage,
    cost: &CostModel,
    msgs: &[ControlMsg],
    faults: Option<&FaultPlan>,
) -> Result<ApplyReport, CoreError> {
    let mut journal = ApplyJournal::default();
    match apply_msgs_journaled(pm, sm, linkage, cost, msgs, faults, &mut journal) {
        Ok(report) => Ok(report),
        Err((index, cause)) => {
            journal.rollback(pm, sm, linkage);
            Err(CoreError::RolledBack {
                index,
                cause: Box::new(cause),
            })
        }
    }
}

/// The shared apply loop: records every pre-image into the *caller's*
/// journal and applies messages sequentially. On a failing message it
/// returns `(index, cause)` **without rolling back** — ownership of the
/// journal (and therefore of the rollback horizon) stays with the caller.
/// [`apply_msgs_with_faults`] rolls a per-batch journal back immediately;
/// a staged transaction ([`crate::IpbmSwitch::begin_staged`]) accumulates
/// one journal across many batches and rewinds them all at once.
pub(crate) fn apply_msgs_journaled(
    pm: &mut PipelineModule,
    sm: &mut StorageModule,
    linkage: &mut HeaderLinkage,
    cost: &CostModel,
    msgs: &[ControlMsg],
    faults: Option<&FaultPlan>,
    journal: &mut ApplyJournal,
) -> Result<ApplyReport, (usize, CoreError)> {
    let mut report = ApplyReport::default();
    let mut in_drain = false;
    for (index, msg) in msgs.iter().enumerate() {
        // MigrateTable is the one message whose cost depends on device
        // state (every live row is copied); price it against the table as
        // it stands *before* this message applies.
        let us = match msg {
            ControlMsg::MigrateTable { table, blocks } => {
                let live_rows = sm.table(table).map(|s| s.table.len()).unwrap_or_default();
                cost.per_msg_us
                    + cost.per_byte_us * msg.payload_bytes() as f64
                    + cost.migrate_cost_us(live_rows, blocks.len())
            }
            _ => cost.msg_cost_us(msg),
        };
        report.msgs += 1;
        report.bytes += msg.payload_bytes();
        report.load_us += us;
        if matches!(msg, ControlMsg::Drain) {
            in_drain = true;
        }
        if in_drain {
            report.stall_us += us;
        }
        if matches!(msg, ControlMsg::Resume) {
            in_drain = false;
        }
        if matches!(msg, ControlMsg::AddEntry { .. }) {
            report.entries_written += 1;
        }
        let injected = faults.is_some_and(|f| f.fail_msg_at == Some(index));
        let applied = if injected {
            Err(CoreError::Config(format!(
                "injected fault: control message {index} fails"
            )))
        } else {
            journal.record(pm, sm, linkage, msg);
            apply_one(pm, sm, linkage, msg)
        };
        if let Err(cause) = applied {
            return Err((index, cause));
        }
    }
    // Any message beyond plain entry traffic may change what the installed
    // dataflow facts were proven against (templates, actions, wiring, even
    // header linkage) — drop them; the controller reinstalls fresh facts
    // after it finishes its own bookkeeping.
    if msgs.iter().any(|m| !m.is_entry_op()) {
        pm.clear_facts();
    }
    // Only a fully-applied batch opens a new control-plane epoch. A rolled-
    // back batch leaves the device byte-identical to its checkpoint, so the
    // compiled fast path stays valid and recompiling would be pure waste.
    pm.invalidate_compiled();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::crossbar::Crossbar;
    use ipsa_core::pipeline_cfg::SelectorConfig;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef, TableEntry};
    use ipsa_core::template::TspTemplate;
    use ipsa_core::value::ValueRef;

    fn parts() -> (PipelineModule, StorageModule, HeaderLinkage) {
        (
            PipelineModule::new(8, 8, Crossbar::full()).unwrap(),
            StorageModule::new(8, 2, 128),
            HeaderLinkage::standard(),
        )
    }

    fn table_def() -> TableDef {
        TableDef {
            name: "t".into(),
            key: vec![KeyField {
                source: ValueRef::Meta("x".into()),
                bits: 16,
                kind: MatchKind::Exact,
            }],
            size: 16,
            actions: vec![],
            default_action: ActionCall::no_action(),
            with_counters: false,
        }
    }

    #[test]
    fn batch_applies_and_costs() {
        let (mut pm, mut sm, mut linkage) = parts();
        let msgs = vec![
            ControlMsg::Drain,
            ControlMsg::WriteTemplate {
                slot: 0,
                template: TspTemplate::passthrough("s"),
            },
            ControlMsg::SetSelector(SelectorConfig::split(8, 1, 0).unwrap()),
            ControlMsg::Resume,
            ControlMsg::CreateTable {
                def: table_def(),
                blocks: vec![0],
            },
            ControlMsg::AddEntry {
                table: "t".into(),
                entry: TableEntry::exact(vec![1], ActionCall::no_action()),
            },
        ];
        let cost = CostModel::software();
        let r = apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap();
        assert_eq!(r.msgs, 6);
        assert_eq!(r.entries_written, 1);
        assert!(r.load_us > 0.0);
        // Stall covers exactly the Drain..Resume window.
        assert!(r.stall_us > 0.0 && r.stall_us < r.load_us);
        assert!(pm.slots[0].template.is_some());
        assert!(!pm.draining);
        assert_eq!(sm.table_names(), vec!["t".to_string()]);
    }

    /// Regression: a migration's reported load time must grow with the
    /// rows it copies — the flat `table_setup_us` charge made update-plan
    /// latency independent of table occupancy.
    #[test]
    fn migration_cost_scales_with_live_rows() {
        let cost = CostModel::software();
        let migrate = |populate: usize| -> f64 {
            let (mut pm, mut sm, mut linkage) = parts();
            let mut msgs = vec![ControlMsg::CreateTable {
                def: table_def(),
                blocks: vec![0],
            }];
            for i in 0..populate {
                msgs.push(ControlMsg::AddEntry {
                    table: "t".into(),
                    entry: TableEntry::exact(vec![i as u128], ActionCall::no_action()),
                });
            }
            apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap();
            let r = apply_msgs(
                &mut pm,
                &mut sm,
                &mut linkage,
                &cost,
                &[ControlMsg::MigrateTable {
                    table: "t".into(),
                    blocks: vec![1],
                }],
            )
            .unwrap();
            r.load_us
        };
        let empty = migrate(0);
        let populated = migrate(10);
        assert!(
            populated >= empty + 10.0 * cost.table_entry_us - 1e-9,
            "10 copied rows must be charged: empty {empty} µs, populated {populated} µs"
        );
    }

    #[test]
    fn bad_message_aborts() {
        let (mut pm, mut sm, mut linkage) = parts();
        let msgs = vec![ControlMsg::ClearSlot { slot: 99 }];
        let cost = CostModel::software();
        let e = apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap_err();
        assert!(
            matches!(e, CoreError::RolledBack { index: 0, .. }),
            "batch failures surface as rollbacks: {e}"
        );
    }

    /// The transactional guarantee: a batch that mutates several components
    /// and then fails leaves every one of them — and the control-plane
    /// epoch — exactly as the batch found them.
    #[test]
    fn failed_batch_rolls_back_every_mutation() {
        let (mut pm, mut sm, mut linkage) = parts();
        let cost = CostModel::software();
        apply_msgs(
            &mut pm,
            &mut sm,
            &mut linkage,
            &cost,
            &[
                ControlMsg::CreateTable {
                    def: table_def(),
                    blocks: vec![0],
                },
                ControlMsg::AddEntry {
                    table: "t".into(),
                    entry: TableEntry::exact(vec![1], ActionCall::no_action()),
                },
                ControlMsg::WriteTemplate {
                    slot: 1,
                    template: TspTemplate::passthrough("keep"),
                },
            ],
        )
        .unwrap();
        let epoch = pm.epoch();
        let template = pm.slots[1].template.clone();
        let draining = pm.draining;
        let rows = sm.table("t").unwrap().table.len();
        let pool = serde_json::to_string(&sm.pool).unwrap();
        let edges = linkage.edges();

        let e = apply_msgs(
            &mut pm,
            &mut sm,
            &mut linkage,
            &cost,
            &[
                ControlMsg::Drain,
                ControlMsg::WriteTemplate {
                    slot: 1,
                    template: TspTemplate::passthrough("clobber"),
                },
                ControlMsg::AddEntry {
                    table: "t".into(),
                    entry: TableEntry::exact(vec![2], ActionCall::no_action()),
                },
                ControlMsg::MigrateTable {
                    table: "t".into(),
                    blocks: vec![1],
                },
                ControlMsg::RegisterHeader(ipsa_netpkt::header::HeaderType::new(
                    "probe",
                    vec![ipsa_netpkt::header::FieldDef {
                        name: "tag".into(),
                        bits: 16,
                    }],
                )),
                ControlMsg::UnregisterHeader("vlan".into()),
                ControlMsg::ClearSlot { slot: 99 }, // fails here
            ],
        )
        .unwrap_err();
        assert!(matches!(e, CoreError::RolledBack { index: 6, .. }), "{e}");
        assert_eq!(
            pm.epoch(),
            epoch,
            "rolled-back batch must not open an epoch"
        );
        assert_eq!(pm.slots[1].template, template);
        assert_eq!(pm.draining, draining);
        assert_eq!(sm.table("t").unwrap().table.len(), rows);
        assert_eq!(sm.pool.owned_by("t"), vec![0], "migration undone");
        assert_eq!(
            serde_json::to_string(&sm.pool).unwrap(),
            pool,
            "pool bytes and ownership byte-identical to the checkpoint"
        );
        assert_eq!(linkage.edges(), edges);
        assert!(!linkage.iter().any(|h| h.name == "probe"));
        assert!(linkage.iter().any(|h| h.name == "vlan"));
    }

    /// `fail_msg_at` makes the rollback path reachable at *any* index, and
    /// the same batch succeeds once the plan is cleared — proving the
    /// failure was purely injected.
    #[test]
    fn injected_fault_fails_exact_index_then_clean_batch_applies() {
        let (mut pm, mut sm, mut linkage) = parts();
        let cost = CostModel::software();
        let msgs = vec![
            ControlMsg::CreateTable {
                def: table_def(),
                blocks: vec![0],
            },
            ControlMsg::AddEntry {
                table: "t".into(),
                entry: TableEntry::exact(vec![1], ActionCall::no_action()),
            },
        ];
        let plan = crate::resilience::FaultPlan {
            fail_msg_at: Some(1),
            ..Default::default()
        };
        let e = apply_msgs_with_faults(&mut pm, &mut sm, &mut linkage, &cost, &msgs, Some(&plan))
            .unwrap_err();
        assert!(matches!(e, CoreError::RolledBack { index: 1, .. }), "{e}");
        assert!(sm.table_names().is_empty(), "CreateTable rolled back");
        apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap();
        assert_eq!(sm.table("t").unwrap().table.len(), 1);
    }

    #[test]
    fn header_msgs_mutate_linkage() {
        let (mut pm, mut sm, mut linkage) = parts();
        let cost = CostModel::software();
        let msgs = vec![
            ControlMsg::RegisterHeader(ipsa_netpkt::protocols::srh()),
            ControlMsg::LinkHeader {
                pre: "ipv6".into(),
                next: "srh".into(),
                tag: 43,
            },
        ];
        apply_msgs(&mut pm, &mut sm, &mut linkage, &cost, &msgs).unwrap();
        assert!(linkage
            .edges()
            .contains(&("ipv6".to_string(), 43, "srh".to_string())));
    }

    #[test]
    fn full_design_swap_resets_state() {
        let (mut pm, mut sm, mut linkage) = parts();
        let cost = CostModel::software();
        // Pre-state: a table and a template.
        apply_msgs(
            &mut pm,
            &mut sm,
            &mut linkage,
            &cost,
            &[
                ControlMsg::CreateTable {
                    def: table_def(),
                    blocks: vec![0],
                },
                ControlMsg::WriteTemplate {
                    slot: 3,
                    template: TspTemplate::passthrough("old"),
                },
            ],
        )
        .unwrap();
        // Swap in an empty design.
        let design = ipsa_core::template::CompiledDesign::empty("fresh", 8);
        apply_msgs(
            &mut pm,
            &mut sm,
            &mut linkage,
            &cost,
            &[ControlMsg::LoadFullDesign(Box::new(design))],
        )
        .unwrap();
        assert!(pm.slots[3].template.is_none());
        assert!(sm.table_names().is_empty());
    }
}
