//! Log2-bucketed latency histogram for per-batch shard busy time.
//!
//! PR 9's autoscaler folds per-shard busy nanoseconds at every epoch
//! barrier, but only a scalar p50/p99 proxy ever left the device — a fleet
//! health checker comparing devices needs the *distribution*, cheaply and
//! mergeably. [`BusyHistogram`] is the standard trick: 64 power-of-two
//! buckets (bucket `i` counts samples with `floor(log2(ns)) == i`, bucket 0
//! also holding zero), fixed memory, O(1) record, lossless merge, and
//! quantile estimates good to a factor of two — exactly the resolution a
//! "device X is 8x slower than its peers" decision needs.

use serde::Serialize;

/// Number of buckets: one per possible `floor(log2)` of a `u64` sample.
const BUCKETS: usize = 64;

/// A log2-bucketed histogram of per-batch busy-time samples (nanoseconds).
///
/// Folded at shard epoch barriers (one sample per barrier reply) and
/// exposed through the master stats fold, so the wire-level fleet health
/// checker gets a real latency signal instead of a scalar proxy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BusyHistogram {
    /// `buckets[i]` counts samples whose value `v` satisfies
    /// `floor(log2(max(v, 1))) == i`. Always [`BUCKETS`] long (a `Vec`
    /// only because the vendored serde has no fixed-array impls).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (ns) — preserves the exact mean across merges.
    pub total_ns: u64,
    /// Largest single sample seen (ns).
    pub max_ns: u64,
}

impl Default for BusyHistogram {
    fn default() -> Self {
        BusyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl BusyHistogram {
    /// Records one per-batch busy-time sample.
    pub fn record(&mut self, ns: u64) {
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one (lossless: buckets add).
    pub fn merge(&mut self, other: &BusyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean sample (ns), 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding quantile `q` (0.0..=1.0): the
    /// estimate is exact to within a factor of two. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Bucket i spans [2^i, 2^(i+1)); report the exclusive top.
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max_ns
    }

    /// Resets all counters to empty.
    pub fn clear(&mut self) {
        *self = BusyHistogram::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = BusyHistogram::default();
        h.record(0); // bucket 0 (clamped to 1)
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.max_ns, 1024);
        assert_eq!(h.total_ns, 1030);
    }

    #[test]
    fn quantiles_bound_within_factor_of_two() {
        let mut h = BusyHistogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1_000_000); // bucket 19
        let p50 = h.quantile_ns(0.5);
        assert!((100..200).contains(&p50), "p50={p50}");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 1_000_000, "p100={p100}");
        assert_eq!(h.quantile_ns(0.0), p50); // rank clamps to 1 → same bucket
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = BusyHistogram::default();
        let mut b = BusyHistogram::default();
        let mut whole = BusyHistogram::default();
        for i in 0..1000u64 {
            let v = i * 97 + 3;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = BusyHistogram::default();
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }
}
