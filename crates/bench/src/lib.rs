//! # ipsa-bench — the evaluation harness
//!
//! One bench target per table/figure of the paper (see DESIGN.md §3).
//! Each target prints the paper's reported values next to ours and writes
//! the rendered table to `target/experiment-results/<name>.txt` so
//! EXPERIMENTS.md can cite stable artifacts.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use ipbm::{IpbmConfig, IpbmSwitch};
use ipsa_controller::programs;
use ipsa_controller::{P4Flow, Rp4Flow};
use ipsa_core::template::CompiledDesign;
use ipsa_core::timing::CostModel;
use ipsa_hwmodel::DesignParams;
use pisa_bm::{PisaSwitch, PisaTarget};
use rp4c::{full_compile, CompilerTarget};

/// Physical stage-processor count of the paper's FPGA prototypes (both
/// architectures), used by the hardware model.
pub const FPGA_STAGES: usize = 8;
/// Memory data-bus width of the prototypes, bits.
pub const FPGA_BUS_BITS: usize = 128;

/// Writes a rendered experiment artifact to
/// `target/experiment-results/<name>.txt` and echoes it to stdout.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    // Anchor at the workspace root regardless of the bench's CWD.
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiment-results");
    let dir = dir.as_path();
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[written to {}]", path.display());
    }
}

/// Renders a simple aligned table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let _ = writeln!(
        out,
        "{}",
        line(
            &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &widths
        )
    );
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for r in rows {
        let _ = writeln!(out, "{}", line(r, &widths));
    }
    out
}

/// An installed IPSA flow on the FPGA-like target with the fpga cost
/// model, ready for a use-case script.
pub fn ipsa_fpga_flow() -> Rp4Flow<IpbmSwitch> {
    let prog = rp4_lang::parse(programs::BASE_RP4).expect("base parses");
    let target = CompilerTarget::fpga();
    let compilation = full_compile(&prog, &target).expect("base compiles");
    let device = IpbmSwitch::new(IpbmConfig {
        slots: target.slots,
        sram_blocks: target.sram_blocks,
        tcam_blocks: target.tcam_blocks,
        cost: CostModel::fpga(),
        ..IpbmConfig::default()
    });
    let (flow, _) = Rp4Flow::install(device, compilation, target).expect("install");
    flow
}

/// An installed IPSA flow on the ipbm (software) target.
pub fn ipsa_sw_flow() -> Rp4Flow<IpbmSwitch> {
    let prog = rp4_lang::parse(programs::BASE_RP4).expect("base parses");
    let target = CompilerTarget::ipbm();
    let compilation = full_compile(&prog, &target).expect("base compiles");
    let device = IpbmSwitch::new(IpbmConfig::default());
    let (flow, _) = Rp4Flow::install(device, compilation, target).expect("install");
    flow
}

/// An installed IPSA flow on the sharded multi-core runtime with `shards`
/// workers (same program and software target as [`ipsa_sw_flow`]).
pub fn ipsa_sharded_flow(shards: usize) -> Rp4Flow<ipbm::ShardedSwitch> {
    let prog = rp4_lang::parse(programs::BASE_RP4).expect("base parses");
    let target = CompilerTarget::ipbm();
    let compilation = full_compile(&prog, &target).expect("base compiles");
    let device = ipbm::ShardedSwitch::new(IpbmConfig::default(), shards);
    let (flow, _) = Rp4Flow::install(device, compilation, target).expect("install");
    flow
}

/// Installs a realistic pre-update entry population (the state a PISA
/// reload has to *replay*) into a [`P4Flow`]: ports, bridges, `routes`
/// FIB routes + dmac pairs, nexthops.
pub fn populate_p4_flow(flow: &mut P4Flow<PisaSwitch>, routes: usize) {
    use ipsa_controller::KeyToken as K;
    let add =
        |flow: &mut P4Flow<PisaSwitch>, table: &str, action: &str, keys: &[K], args: &[u128]| {
            flow.table_add(table, action, keys, args, 0)
                .unwrap_or_else(|e| panic!("populate {table}: {e}"));
        };
    for p in 0..8u128 {
        add(flow, "port_map", "set_ifindex", &[K::Exact(p)], &[10 + p]);
        add(flow, "bd_vrf", "set_bd_vrf", &[K::Exact(10 + p)], &[1, 1]);
    }
    add(
        flow,
        "fwd_mode",
        "set_l3",
        &[K::Exact(1), K::Exact(0x02_00_00_00_00_02)],
        &[],
    );
    for i in 0..routes as u128 {
        add(
            flow,
            "ipv4_lpm",
            "set_nexthop",
            &[
                K::Exact(1),
                K::Lpm {
                    value: 0x0a01_0000 + (i << 8),
                    prefix_len: 24,
                },
            ],
            &[7],
        );
        add(
            flow,
            "dmac",
            "set_port",
            &[K::Exact(2), K::Exact(0x0202_0000_0000 + i)],
            &[i % 8],
        );
    }
    add(
        flow,
        "ipv6_lpm",
        "set_nexthop",
        &[
            K::Exact(1),
            K::Lpm {
                value: 0xfc01_u128 << 112,
                prefix_len: 16,
            },
        ],
        &[9],
    );
    add(
        flow,
        "nexthop",
        "set_bd_dmac",
        &[K::Exact(7)],
        &[2, 0x0202_0203_0301],
    );
    add(
        flow,
        "nexthop",
        "set_bd_dmac",
        &[K::Exact(9)],
        &[3, 0x0202_0203_0302],
    );
    add(
        flow,
        "dmac",
        "set_port",
        &[K::Exact(2), K::Exact(0x0202_0203_0301)],
        &[2],
    );
    add(
        flow,
        "dmac",
        "set_port",
        &[K::Exact(3), K::Exact(0x0202_0203_0302)],
        &[3],
    );
    add(
        flow,
        "l2_l3_rewrite",
        "rewrite_l3",
        &[K::Exact(2)],
        &[0x020a_0a0a_0a0a],
    );
    add(
        flow,
        "l2_l3_rewrite",
        "rewrite_l3",
        &[K::Exact(3)],
        &[0x020a_0a0a_0a0a],
    );
}

/// The same realistic population through an [`Rp4Flow`] script (works
/// against any device — the single-core switch or the sharded runtime).
pub fn populate_rp4_flow<D: ipsa_core::control::Device>(flow: &mut Rp4Flow<D>, routes: usize) {
    let mut s = String::new();
    for p in 0..8 {
        s.push_str(&format!(
            "table_add port_map set_ifindex {p} => {}\n",
            10 + p
        ));
        s.push_str(&format!("table_add bd_vrf set_bd_vrf {} => 1 1\n", 10 + p));
    }
    s.push_str("table_add fwd_mode set_l3 1 0x020000000002 =>\n");
    for i in 0..routes as u128 {
        s.push_str(&format!(
            "table_add ipv4_lpm set_nexthop 1 {:#x}/24 => 7\n",
            0x0a01_0000u128 + (i << 8)
        ));
        s.push_str(&format!(
            "table_add dmac set_port 2 {:#x} => {}\n",
            0x0202_0000_0000u128 + i,
            i % 8
        ));
    }
    s.push_str("table_add ipv6_lpm set_nexthop 1 0xfc010000000000000000000000000000/16 => 9\n");
    s.push_str("table_add nexthop set_bd_dmac 7 => 2 0x020202030301\n");
    s.push_str("table_add nexthop set_bd_dmac 9 => 3 0x020202030302\n");
    s.push_str("table_add dmac set_port 2 0x020202030301 => 2\n");
    s.push_str("table_add dmac set_port 3 0x020202030302 => 3\n");
    s.push_str("table_add l2_l3_rewrite rewrite_l3 2 => 0x020a0a0a0a0a\n");
    s.push_str("table_add l2_l3_rewrite rewrite_l3 3 => 0x020a0a0a0a0a\n");
    flow.run_script(&s, &programs::bundled_sources)
        .expect("population script");
}

/// Measures one in-situ use-case update on the rP4/IPSA flow.
/// Returns `(t_C µs, t_L µs)`.
pub fn measure_ipsa_update(flow: &mut Rp4Flow<IpbmSwitch>, script: &str) -> (f64, f64) {
    let outcome = flow
        .run_script(script, &programs::bundled_sources)
        .expect("in-situ script runs");
    (outcome.compile_us, outcome.report.load_us)
}

/// Measures one use-case update on the P4/PISA flow: full recompile of the
/// integrated program + swap + repopulation. Returns `(t_C µs, t_L µs)`.
pub fn measure_pisa_update(flow: &mut P4Flow<PisaSwitch>, integrated_p4: &str) -> (f64, f64) {
    let (t_c, report) = flow
        .update_source(integrated_p4.to_string())
        .expect("integrated program compiles");
    (t_c, report.load_us)
}

/// Compiles a use case's *final state* designs for the hardware model:
/// `(ipsa_design, pisa_design)` after the update is applied/integrated.
pub fn use_case_designs(case_idx: usize) -> (CompiledDesign, CompiledDesign) {
    let (_, _, script, integrated_p4) = programs::use_cases()[case_idx];
    // IPSA: base + in-situ script.
    let mut flow = ipsa_fpga_flow();
    flow.run_script(script, &programs::bundled_sources)
        .expect("script applies");
    let ipsa = flow.design.clone();
    // PISA: integrated P4, compiled for the PISA FPGA target.
    let ast = p4_lang::parse_p4(integrated_p4).expect("p4 parses");
    let hlir = p4_lang::build_hlir(&ast).expect("hlir builds");
    let pisa = pisa_bm::pisa_compile(&hlir, &PisaTarget::fpga()).expect("pisa compiles");
    (ipsa, pisa)
}

/// Hardware-model parameters for a design on the 8-stage prototype.
pub fn fpga_params(design: &CompiledDesign) -> DesignParams {
    DesignParams::from_design(design, FPGA_STAGES, FPGA_BUS_BITS)
}

/// Median wall-clock of `f` over `n` runs, in µs.
pub fn median_us<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut xs: Vec<f64> = (0..n.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            "t",
            &["a", "long-header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wide-cell".into(), "z".into()],
            ],
        );
        assert!(t.contains("== t =="));
        assert!(t.contains("long-header"));
    }

    #[test]
    fn use_case_designs_build() {
        for i in 0..3 {
            let (ipsa, pisa) = use_case_designs(i);
            ipsa.validate().unwrap();
            pisa.validate().unwrap();
        }
    }
}
