//! Differential testing: the compiled fast path against the interpreter.
//!
//! Two identically-programmed ipbm switches receive identical traffic; one
//! drains it through [`Device::run`] (the interpreter, the reference
//! semantics), the other through [`Device::run_batch`] (the compiled fast
//! path rebuilt per control-plane epoch). Everything observable must agree:
//! the emitted packets byte-for-byte (metadata included), pipeline/TM/slot
//! statistics, pooled-memory access counts, and per-table lookup/hit
//! counters — across all four bundled rP4 programs and across a mid-stream
//! incremental update (which forces an invalidate + recompile).

use ipbm::IpbmSwitch;
use ipsa_bench::{ipsa_sw_flow, populate_rp4_flow};
use ipsa_controller::{programs, Rp4Flow};
use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::table::{ActionCall, KeyMatch, TableEntry};
use ipsa_netpkt::packet::Packet;
use ipsa_netpkt::traffic::TrafficGen;
use proptest::prelude::*;

/// A fully-programmed switch: the base L3 design, populated, plus
/// optionally one of the three in-situ use-case updates (which installs
/// the ecmp/srv6/flowprobe rP4 stage on top).
fn programmed_switch(case: Option<usize>) -> Rp4Flow<IpbmSwitch> {
    let mut flow = ipsa_sw_flow();
    populate_rp4_flow(&mut flow, 20);
    if let Some(i) = case {
        let (_, _, script, _) = programs::use_cases()[i];
        flow.run_script(script, &programs::bundled_sources)
            .expect("use-case script applies");
        if i == 0 {
            // The ECMP selector forwards nothing until its groups have
            // members.
            flow.run_script(
                include_str!("../../../programs/ecmp_members.script"),
                &programs::bundled_sources,
            )
            .expect("ecmp members populate");
        }
    }
    flow
}

/// Everything observable about a switch after a run.
#[derive(Debug, PartialEq)]
struct Observed {
    out: Vec<Packet>,
    pipeline: ipbm::pm::PipelineStats,
    tm: ipbm::pm::TmStats,
    slots: Vec<ipbm::tsp::SlotStats>,
    mem_accesses: u64,
    tables: Vec<(String, u64, u64)>,
}

fn observe(sw: &IpbmSwitch, out: Vec<Packet>) -> Observed {
    let mut tables: Vec<(String, u64, u64)> = sw
        .sm
        .table_names()
        .into_iter()
        .map(|n| {
            let t = &sw.sm.table(&n).expect("named table exists").table;
            (n, t.lookups, t.hits)
        })
        .collect();
    tables.sort();
    Observed {
        out,
        pipeline: sw.pm.stats,
        tm: sw.pm.tm.stats,
        slots: sw.pm.slots.iter().map(|s| s.stats).collect(),
        mem_accesses: sw.sm.mem_accesses,
        tables,
    }
}

fn traffic(seed: u64, v6: u8, flows: u16, n: usize) -> Vec<Packet> {
    TrafficGen::new(seed)
        .with_v6_percent(v6)
        .with_flows(flows as u32)
        .batch(n)
}

/// Runs both paths over the same traffic and asserts full observable
/// equality. Returns the interpreter's emit count so callers can sanity
/// check the scenario actually forwarded something.
fn assert_equivalent(
    mut interp: Rp4Flow<IpbmSwitch>,
    mut fast: Rp4Flow<IpbmSwitch>,
    batches: &[Vec<Packet>],
    mid_update: Option<&[ControlMsg]>,
) -> usize {
    let mut out_i = Vec::new();
    let mut out_f = Vec::new();
    for (k, batch) in batches.iter().enumerate() {
        if k > 0 {
            if let Some(msgs) = mid_update {
                interp.device.apply(msgs).expect("update applies");
                fast.device.apply(msgs).expect("update applies");
            }
        }
        for p in batch {
            interp.device.inject(p.clone());
            fast.device.inject(p.clone());
        }
        out_i.extend(interp.device.run());
        out_f.extend(fast.device.run_batch());
        assert!(
            fast.device.pm.has_compiled(),
            "fast path must actually be compiled (not interpreter fallback)"
        );
    }
    let emitted = out_i.len();
    let oi = observe(&interp.device, out_i);
    let of = observe(&fast.device, out_f);
    assert_eq!(oi, of);
    emitted
}

/// One route the base design doesn't have yet — the mid-stream update.
fn midstream_msgs() -> Vec<ControlMsg> {
    vec![ControlMsg::AddEntry {
        table: "ipv4_lpm".into(),
        entry: TableEntry {
            key: vec![
                KeyMatch::Exact(1),
                KeyMatch::Lpm {
                    value: 0x0b01_0000,
                    prefix_len: 16,
                },
            ],
            priority: 0,
            action: ActionCall::new("set_nexthop", vec![7]),
            counter: 0,
        },
    }]
}

#[test]
fn fast_path_matches_interpreter_on_all_programs() {
    // Base (case None) + the three use-case updates = all four bundled
    // programs/*.rp4 (base, ecmp, srv6, flowprobe).
    for case in [None, Some(0), Some(1), Some(2)] {
        let emitted = assert_equivalent(
            programmed_switch(case),
            programmed_switch(case),
            &[traffic(7, 20, 64, 400)],
            None,
        );
        assert!(emitted > 0, "case {case:?} forwarded nothing");
    }
}

#[test]
fn fast_path_matches_interpreter_across_midstream_update() {
    let emitted = assert_equivalent(
        programmed_switch(None),
        programmed_switch(None),
        &[traffic(11, 10, 32, 300), traffic(13, 10, 32, 300)],
        Some(&midstream_msgs()),
    );
    assert!(emitted > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for arbitrary traffic mixes and an arbitrary split point,
    /// interpreter and fast path agree on every observable, including
    /// across the epoch boundary the mid-stream update creates.
    #[test]
    fn differential_equivalence(
        seed in 0u64..1000,
        v6 in 0u8..=50,
        flows in 1u16..128,
        n1 in 1usize..250,
        n2 in 1usize..250,
        case in proptest::option::of(0usize..3),
        update in any::<bool>(),
    ) {
        let batches = vec![traffic(seed, v6, flows, n1), traffic(seed ^ 0xdead, v6, flows, n2)];
        let msgs = midstream_msgs();
        assert_equivalent(
            programmed_switch(case),
            programmed_switch(case),
            &batches,
            if update { Some(&msgs) } else { None },
        );
    }
}
