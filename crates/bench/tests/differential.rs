//! Differential testing: the compiled fast path against the interpreter.
//!
//! Two identically-programmed ipbm switches receive identical traffic; one
//! drains it through [`Device::run`] (the interpreter, the reference
//! semantics), the other through [`Device::run_batch`] (the compiled fast
//! path rebuilt per control-plane epoch). Everything observable must agree:
//! the emitted packets byte-for-byte (metadata included), pipeline/TM/slot
//! statistics, pooled-memory access counts, and per-table lookup/hit
//! counters — across all four bundled rP4 programs and across a mid-stream
//! incremental update (which forces an invalidate + recompile).

use ipbm::{IpbmSwitch, ShardedSwitch};
use ipsa_bench::{ipsa_sharded_flow, ipsa_sw_flow, populate_rp4_flow};
use ipsa_controller::{programs, Rp4Flow};
use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::hash::flow_hash;
use ipsa_core::table::{ActionCall, KeyMatch, TableEntry};
use ipsa_netpkt::packet::Packet;
use ipsa_netpkt::traffic::TrafficGen;
use proptest::prelude::*;

/// A fully-programmed switch: the base L3 design, populated, plus
/// optionally one of the three in-situ use-case updates (which installs
/// the ecmp/srv6/flowprobe rP4 stage on top).
fn programmed_switch(case: Option<usize>) -> Rp4Flow<IpbmSwitch> {
    let mut flow = ipsa_sw_flow();
    program_flow(&mut flow, case);
    flow
}

/// The same programming against the sharded multi-core runtime.
fn programmed_sharded(case: Option<usize>, shards: usize) -> Rp4Flow<ShardedSwitch> {
    let mut flow = ipsa_sharded_flow(shards);
    program_flow(&mut flow, case);
    flow
}

fn program_flow<D: Device>(flow: &mut Rp4Flow<D>, case: Option<usize>) {
    populate_rp4_flow(flow, 20);
    if let Some(i) = case {
        let (_, _, script, _) = programs::use_cases()[i];
        flow.run_script(script, &programs::bundled_sources)
            .expect("use-case script applies");
        if i == 0 {
            // The ECMP selector forwards nothing until its groups have
            // members.
            flow.run_script(
                include_str!("../../../programs/ecmp_members.script"),
                &programs::bundled_sources,
            )
            .expect("ecmp members populate");
        }
    }
}

/// Shard count for the invariance tests — CI sweeps this via `SHARDS`.
fn shard_count() -> usize {
    std::env::var("SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// Everything observable about a switch after a run.
#[derive(Debug, PartialEq)]
struct Observed {
    out: Vec<Packet>,
    pipeline: ipbm::pm::PipelineStats,
    tm: ipbm::pm::TmStats,
    slots: Vec<ipbm::tsp::SlotStats>,
    mem_accesses: u64,
    tables: Vec<(String, u64, u64)>,
}

fn observe(sw: &IpbmSwitch, out: Vec<Packet>) -> Observed {
    let mut tables: Vec<(String, u64, u64)> = sw
        .sm
        .table_names()
        .into_iter()
        .map(|n| {
            let t = &sw.sm.table(&n).expect("named table exists").table;
            (n, t.lookups, t.hits)
        })
        .collect();
    tables.sort();
    Observed {
        out,
        pipeline: sw.pm.stats,
        tm: sw.pm.tm.stats,
        slots: sw.pm.slots.iter().map(|s| s.stats).collect(),
        mem_accesses: sw.sm.mem_accesses,
        tables,
    }
}

fn traffic(seed: u64, v6: u8, flows: u16, n: usize) -> Vec<Packet> {
    TrafficGen::new(seed)
        .with_v6_percent(v6)
        .with_flows(flows as u32)
        .batch(n)
}

/// Runs both paths over the same traffic and asserts full observable
/// equality. Returns the interpreter's emit count so callers can sanity
/// check the scenario actually forwarded something.
fn assert_equivalent(
    mut interp: Rp4Flow<IpbmSwitch>,
    mut fast: Rp4Flow<IpbmSwitch>,
    batches: &[Vec<Packet>],
    mid_update: Option<&[ControlMsg]>,
) -> usize {
    let mut out_i = Vec::new();
    let mut out_f = Vec::new();
    for (k, batch) in batches.iter().enumerate() {
        if k > 0 {
            if let Some(msgs) = mid_update {
                interp.device.apply(msgs).expect("update applies");
                fast.device.apply(msgs).expect("update applies");
            }
        }
        for p in batch {
            interp.device.inject(p.clone());
            fast.device.inject(p.clone());
        }
        out_i.extend(interp.device.run());
        out_f.extend(fast.device.run_batch());
        assert!(
            fast.device.pm.has_compiled(),
            "fast path must actually be compiled (not interpreter fallback)"
        );
        assert!(
            fast.device.pm.has_facts(),
            "controller-installed dataflow facts must be live (fact-guided compilation)"
        );
    }
    let emitted = out_i.len();
    let oi = observe(&interp.device, out_i);
    let of = observe(&fast.device, out_f);
    assert_eq!(oi, of);
    emitted
}

/// One route the base design doesn't have yet — the mid-stream update.
fn midstream_msgs() -> Vec<ControlMsg> {
    vec![ControlMsg::AddEntry {
        table: "ipv4_lpm".into(),
        entry: TableEntry {
            key: vec![
                KeyMatch::Exact(1),
                KeyMatch::Lpm {
                    value: 0x0b01_0000,
                    prefix_len: 16,
                },
            ],
            priority: 0,
            action: ActionCall::new("set_nexthop", vec![7]),
            counter: 0,
        },
    }]
}

#[test]
fn fast_path_matches_interpreter_on_all_programs() {
    // Base (case None) + the three use-case updates = all four bundled
    // programs/*.rp4 (base, ecmp, srv6, flowprobe).
    for case in [None, Some(0), Some(1), Some(2)] {
        let emitted = assert_equivalent(
            programmed_switch(case),
            programmed_switch(case),
            &[traffic(7, 20, 64, 400)],
            None,
        );
        assert!(emitted > 0, "case {case:?} forwarded nothing");
    }
}

#[test]
fn fast_path_matches_interpreter_across_midstream_update() {
    let emitted = assert_equivalent(
        programmed_switch(None),
        programmed_switch(None),
        &[traffic(11, 10, 32, 300), traffic(13, 10, 32, 300)],
        Some(&midstream_msgs()),
    );
    assert!(emitted > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for arbitrary traffic mixes and an arbitrary split point,
    /// interpreter and fast path agree on every observable, including
    /// across the epoch boundary the mid-stream update creates.
    #[test]
    fn differential_equivalence(
        seed in 0u64..1000,
        v6 in 0u8..=50,
        flows in 1u16..128,
        n1 in 1usize..250,
        n2 in 1usize..250,
        case in proptest::option::of(0usize..3),
        update in any::<bool>(),
    ) {
        let batches = vec![traffic(seed, v6, flows, n1), traffic(seed ^ 0xdead, v6, flows, n2)];
        let msgs = midstream_msgs();
        assert_equivalent(
            programmed_switch(case),
            programmed_switch(case),
            &batches,
            if update { Some(&msgs) } else { None },
        );
    }
}

// ---------------------------------------------------------------------------
// Shard-count invariance: the merged output and statistics of N shard
// workers must equal the interpreter (and therefore the 1-shard and the
// single-core fast path, which the tests above pin to it) modulo inter-flow
// ordering. Per-flow ordering is asserted exactly.
// ---------------------------------------------------------------------------

/// Canonical full-packet identity (bytes + every metadata field).
fn pkt_key(p: &Packet) -> String {
    serde_json::to_string(p).expect("packet serializes")
}

/// Runs the interpreter and the sharded runtime over the same traffic and
/// asserts: per-flow packet sequences identical, and every observable equal
/// once outputs are sorted into a canonical (inter-flow-order-free) form.
fn assert_shard_invariant(
    mut interp: Rp4Flow<IpbmSwitch>,
    mut sharded: Rp4Flow<ShardedSwitch>,
    batches: &[Vec<Packet>],
    mid_update: Option<&[ControlMsg]>,
) -> usize {
    let shards = sharded.device.shards();
    let mut out_i = Vec::new();
    let mut out_s = Vec::new();
    for (k, batch) in batches.iter().enumerate() {
        if k > 0 {
            if let Some(msgs) = mid_update {
                interp.device.apply(msgs).expect("update applies");
                sharded.device.apply(msgs).expect("update applies");
            }
        }
        for p in batch {
            interp.device.inject(p.clone());
            sharded.device.inject(p.clone());
        }
        out_i.extend(interp.device.run());
        out_s.extend(sharded.device.run_batch());
        assert!(
            sharded.device.on_compiled_path(),
            "shards must run the compiled path (not interpreter fallback)"
        );
        assert!(
            sharded.device.master.pm.has_facts(),
            "controller-installed dataflow facts must be live (fact-guided compilation)"
        );
    }
    let emitted = out_i.len();
    // Per-flow (strictly: per shard bucket, a partition into flow groups)
    // the sharded output must be the interpreter's exact subsequence.
    let bucketize = |out: &[Packet]| -> Vec<Vec<String>> {
        let mut v: Vec<Vec<String>> = vec![Vec::new(); shards];
        for p in out {
            v[(flow_hash(&p.data) % shards as u64) as usize].push(pkt_key(p));
        }
        v
    };
    assert_eq!(
        bucketize(&out_i),
        bucketize(&out_s),
        "per-flow packet order must be preserved under sharding"
    );
    // Modulo inter-flow order, everything observable must agree: canonical-
    // sort both outputs, then compare the full stat surface.
    let canonical = |mut out: Vec<Packet>| -> Vec<Packet> {
        out.sort_by_key(pkt_key);
        out
    };
    let oi = observe(&interp.device, canonical(out_i));
    let os = observe(&sharded.device.master, canonical(out_s));
    assert_eq!(oi, os);
    emitted
}

#[test]
fn one_shard_is_bit_exact_with_interpreter() {
    // A single shard sees the exact arrival order, so no sorting: the full
    // observable (output order included) must match the interpreter.
    for case in [None, Some(0), Some(1), Some(2)] {
        let mut interp = programmed_switch(case);
        let mut sharded = programmed_sharded(case, 1);
        for p in traffic(19, 20, 64, 300) {
            interp.device.inject(p.clone());
            sharded.device.inject(p);
        }
        let out_i = interp.device.run();
        let out_s = sharded.device.run_batch();
        let oi = observe(&interp.device, out_i);
        let os = observe(&sharded.device.master, out_s);
        assert_eq!(oi, os, "case {case:?}");
        assert!(oi.pipeline.emitted > 0, "case {case:?} forwarded nothing");
    }
}

#[test]
fn sharded_matches_interpreter_on_all_programs() {
    let shards = shard_count();
    for case in [None, Some(0), Some(1), Some(2)] {
        let emitted = assert_shard_invariant(
            programmed_switch(case),
            programmed_sharded(case, shards),
            &[traffic(7, 20, 64, 400)],
            None,
        );
        assert!(emitted > 0, "case {case:?} forwarded nothing");
    }
}

#[test]
fn sharded_matches_interpreter_across_midstream_update() {
    let emitted = assert_shard_invariant(
        programmed_switch(None),
        programmed_sharded(None, shard_count()),
        &[traffic(11, 10, 32, 300), traffic(13, 10, 32, 300)],
        Some(&midstream_msgs()),
    );
    assert!(emitted > 0);
}

/// Dynamic-scaling differential: with the autoscaler enabled and synthetic
/// busy spikes driving the live set to `max_shards` and back down, the
/// elastic runtime stays observably equal to the interpreter. Busy-time
/// spikes inflate only the load signal the autoscaler reads, never the
/// folded packet statistics, so full stat equality still holds. Per-flow
/// order is checked by the complete flow-hash key rather than the
/// `hash % shards` bucket of the static tests: resizes change the
/// dispatch partition mid-stream, so only the per-flow subsequences are
/// stable across the run.
#[test]
fn dynamic_scaling_matches_interpreter() {
    use ipbm::{AutoscaleConfig, FaultPlan};

    let mut interp = programmed_switch(None);
    let mut sharded = programmed_sharded(None, 2);
    sharded
        .device
        .set_autoscale(Some(AutoscaleConfig {
            min_shards: 1,
            max_shards: 4,
            // Far above real debug-build busy times: only the injected
            // spikes read as overload, every unspiked batch as idle.
            grow_busy_ns: 50_000_000,
            shrink_busy_ns: 10_000_000,
            grow_after: 1,
            shrink_after: 2,
        }))
        .expect("valid autoscale config");

    let mut out_i = Vec::new();
    let mut out_s = Vec::new();
    let mut seen_max = false;
    // First 4 batches arrive under synthetic overload (growing 2 -> 4),
    // the remaining 8 idle (shrinking 4 -> 1). The barrier base is
    // re-read per batch because a dirty republish adds its own barrier.
    for k in 0u64..12 {
        let mut plan = FaultPlan::default();
        if k < 4 {
            let b = sharded.device.barriers();
            for barrier in b + 1..=b + 4 {
                for shard in 0..4 {
                    plan.spike_busy.push((shard, barrier, 200_000_000));
                }
            }
        }
        sharded.device.set_fault_plan(plan);
        for p in traffic(29 + k, 20, 64, 120) {
            interp.device.inject(p.clone());
            sharded.device.inject(p);
        }
        out_i.extend(interp.device.run());
        out_s.extend(sharded.device.run_batch());
        assert!(
            sharded.device.on_compiled_path(),
            "resize publishes must stay on the compiled path"
        );
        seen_max |= sharded.device.live_shards() == 4;
    }
    assert!(seen_max, "overload never drove the live set to max_shards");
    assert_eq!(sharded.device.live_shards(), 1, "idle tail shrinks to min");
    let s = sharded.device.scale_stats();
    assert!(s.grows >= 2 && s.shrinks >= 3 && s.retired >= 3, "{s:?}");

    // Per-flow subsequences, keyed by the full flow hash.
    let flows_of = |out: &[Packet]| -> std::collections::BTreeMap<u64, Vec<String>> {
        let mut m: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
        for p in out {
            m.entry(flow_hash(&p.data)).or_default().push(pkt_key(p));
        }
        m
    };
    assert_eq!(
        flows_of(&out_i),
        flows_of(&out_s),
        "per-flow packet order must survive dynamic scaling"
    );
    let canonical = |mut out: Vec<Packet>| -> Vec<Packet> {
        out.sort_by_key(pkt_key);
        out
    };
    let oi = observe(&interp.device, canonical(out_i));
    let os = observe(&sharded.device.master, canonical(out_s));
    assert_eq!(oi, os);
    assert!(oi.pipeline.emitted > 0, "scenario forwarded nothing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: shard-count invariance. For arbitrary traffic, shard
    /// counts, programs, and an optional mid-stream update (an epoch
    /// barrier), N shard workers produce the interpreter's result modulo
    /// inter-flow ordering.
    #[test]
    fn shard_count_invariance(
        seed in 0u64..1000,
        v6 in 0u8..=50,
        flows in 1u16..64,
        n1 in 1usize..150,
        n2 in 1usize..150,
        shards in 2usize..=5,
        case in proptest::option::of(0usize..3),
        update in any::<bool>(),
    ) {
        let batches = vec![traffic(seed, v6, flows, n1), traffic(seed ^ 0xbeef, v6, flows, n2)];
        let msgs = midstream_msgs();
        assert_shard_invariant(
            programmed_switch(case),
            programmed_sharded(case, shards),
            &batches,
            if update { Some(&msgs) } else { None },
        );
    }
}
