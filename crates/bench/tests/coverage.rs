//! Coverage-corpus replay: the witness corpus `rp4-cover` enumerates for
//! each bundled program is driven through all three runtimes — the
//! interpreter (reference semantics), the compiled fast path, and the
//! sharded multi-core runtime — and every observable must agree
//! bit-identically per witness.
//!
//! This is the closing of the loop: the corpus claims "this packet with
//! these entries drives the pipeline down path N"; replaying it proves the
//! claim holds on the real devices, for *every* feasible path, including
//! the designs produced by the three in-situ update scripts (which the
//! devices reach through a live mid-stream update, epoch barrier
//! included).

use ipbm::{IpbmSwitch, ShardedSwitch};
use ipsa_bench::{ipsa_sharded_flow, ipsa_sw_flow};
use ipsa_controller::{programs, Rp4Flow};
use ipsa_core::control::Device;
use rp4_cover::{cover_design, replay_witness, CoverOptions, ReplayMode};

/// Shard count for the replay — CI sweeps this via `SHARDS`.
fn shard_count() -> usize {
    std::env::var("SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Applies the use-case script (an in-situ update on the live device) —
/// tables stay empty so each witness installs exactly its own entries.
fn program_flow<D: Device>(flow: &mut Rp4Flow<D>, case: Option<usize>) {
    if let Some(i) = case {
        let (_, _, script, _) = programs::use_cases()[i];
        flow.run_script(script, &programs::bundled_sources)
            .expect("use-case script applies");
    }
}

/// Per-table lookup/hit counters plus pipeline stats: the full observable
/// stat surface, compared bit-identically after the whole corpus ran.
fn stat_surface(sw: &IpbmSwitch) -> (ipbm::pm::PipelineStats, u64, Vec<(String, u64, u64)>) {
    let mut tables: Vec<(String, u64, u64)> = sw
        .sm
        .table_names()
        .into_iter()
        .map(|n| {
            let t = &sw.sm.table(&n).expect("named table exists").table;
            (n, t.lookups, t.hits)
        })
        .collect();
    tables.sort();
    (sw.pm.stats, sw.sm.mem_accesses, tables)
}

#[test]
fn corpus_replays_bit_identically_on_all_programs() {
    let shards = shard_count();
    // Base (case None) + the three in-situ update scripts = all four
    // bundled programs.
    for case in [None, Some(0), Some(1), Some(2)] {
        let mut interp = ipsa_sw_flow();
        let mut fast = ipsa_sw_flow();
        let mut sharded: Rp4Flow<ShardedSwitch> = ipsa_sharded_flow(shards);
        program_flow(&mut interp, case);
        program_flow(&mut fast, case);
        program_flow(&mut sharded, case);

        // The coverage gate: every feasible path of the live design must
        // have a witness, within the default budget.
        let facts = rp4_dfa::design_facts(&interp.design);
        let cov = cover_design(&interp.design, Some(&facts), None, &CoverOptions::default());
        assert!(
            cov.fully_covered(),
            "case {case:?}: {}/{} paths witnessed (overflowed: {}); skips: {:?}",
            cov.covered(),
            cov.feasible(),
            cov.overflowed,
            cov.paths
                .iter()
                .filter_map(|p| p.skip.as_ref().map(|s| s.reason.clone()))
                .collect::<Vec<_>>()
        );
        assert!(cov.feasible() > 0, "case {case:?} has no paths");

        for path in &cov.paths {
            let w = path.witness.as_ref().expect("fully covered");
            // One library call per runtime — the same `replay_witness` the
            // fleet's canary verification uses (apply entries, inject,
            // drain, tear back down).
            let out_i =
                replay_witness(&mut interp.device, w, ReplayMode::Run).expect("replay runs");
            let out_f =
                replay_witness(&mut fast.device, w, ReplayMode::RunBatch).expect("replay runs");
            let out_s =
                replay_witness(&mut sharded.device, w, ReplayMode::RunBatch).expect("replay runs");
            // The witness's teardown (inside `replay_witness`) re-opened
            // the epoch, so probe compilability directly: `run_batch`
            // begins with this same `ensure_compiled`, so success here
            // proves the drain above ran compiled rather than falling
            // back to the interpreter.
            assert!(
                {
                    let d = &mut fast.device;
                    d.pm.ensure_compiled(&d.linkage, &d.sm)
                },
                "fast path must run compiled, not fall back"
            );
            // A witness is one flow, so even the sharded runtime preserves
            // exact order: outputs must be bit-identical (bytes and every
            // metadata field), packet for packet.
            assert_eq!(
                out_i, out_f,
                "case {case:?} path {} [{}]: fast path diverged",
                path.index, path.description
            );
            assert_eq!(
                out_i, out_s,
                "case {case:?} path {} [{}]: sharded runtime diverged",
                path.index, path.description
            );
        }

        // After the whole corpus: the accumulated stat surface of all
        // three runtimes is bit-identical too.
        let si = stat_surface(&interp.device);
        let sf = stat_surface(&fast.device);
        let ss = stat_surface(&sharded.device.master);
        assert_eq!(si, sf, "case {case:?}: fast stat surface diverged");
        assert_eq!(si, ss, "case {case:?}: sharded stat surface diverged");
    }
}
