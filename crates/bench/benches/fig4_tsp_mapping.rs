//! E6 — Fig. 4: the packet-processing pipeline and the TSP mapping for the
//! base design and each use case, regenerated from rp4bc's actual layouts.
//!
//! The paper maps the ten logical functions (A–J) onto seven TSPs; our
//! merge pass lands the equivalent base design on eight (the v4/v6 FIB
//! pairs merge, as in the paper; see EXPERIMENTS.md for the delta). The
//! use cases then patch in: C1 replaces the nexthop stage (K/L share one
//! TSP, exactly as the paper notes "only one stage is needed"), C2 adds
//! two stages, C3 adds one.

use ipsa_bench::*;
use ipsa_controller::programs;
use std::fmt::Write as _;

fn mapping(design: &ipsa_core::template::CompiledDesign, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    for (slot, t) in design.programmed() {
        let role = format!("{:?}", design.selector.roles[slot]);
        let blocks = design
            .crossbar
            .get(&slot)
            .map(|b| format!("{b:?}"))
            .unwrap_or_else(|| "[]".into());
        let _ = writeln!(
            out,
            "  TSP {slot:>2} [{role:<7}] {:<28} tables {:?} blocks {blocks}",
            t.stage_name,
            t.tables()
        );
    }
    let _ = writeln!(
        out,
        "  ({} TSPs active, {} bypassed)",
        design.selector.active_count(),
        design.selector.slots() - design.selector.active_count()
    );
    out
}

fn main() {
    let mut out = String::from("== Fig. 4 — TSP mappings (rp4bc layouts) ==\n\n");

    let base_flow = ipsa_fpga_flow();
    out.push_str(&mapping(&base_flow.design, "base L2/L3 design (A-J)"));
    let base_tsps = base_flow.design.programmed().count();

    for (case, _, script, _) in programs::use_cases() {
        let mut flow = ipsa_fpga_flow();
        flow.run_script(script, &programs::bundled_sources)
            .expect("script applies");
        out.push('\n');
        out.push_str(&mapping(&flow.design, case));

        let tsps = flow.design.programmed().count();
        match case {
            // ECMP covers and replaces the nexthop stage: same TSP count,
            // and both ECMP tables share one TSP (the paper's K/L).
            "C1-ECMP" => {
                assert_eq!(tsps, base_tsps, "C1 replaces, not grows");
                let ecmp_slot = flow
                    .design
                    .programmed()
                    .find(|(_, t)| t.stage_name.contains("ecmp"))
                    .expect("ecmp mapped");
                assert_eq!(ecmp_slot.1.tables().len(), 2, "K and L share one TSP");
            }
            "C2-SRv6" => assert_eq!(tsps, base_tsps + 2),
            "C3-FlowProbe" => assert_eq!(tsps, base_tsps + 1),
            _ => {}
        }
    }
    out.push_str(&format!(
        "\npaper: 10 logical stages (A-J) on 7 TSPs; ours: {base_tsps} TSPs \
         (merges: v4/v6 LPM pair, v4/v6 host pair).\n\
         C1 replaces H in place; C2 adds its two stages; C3 adds one.\n"
    ));
    emit("fig4_tsp_mapping", &out);
}
