//! E8 — multi-core scaling of the sharded runtime (`ipbm::sharded`).
//!
//! Drives the base L3 design through [`ipbm::ShardedSwitch`] at 1, 2, and
//! 4 shards and reports two figures per shard count:
//!
//! * **wall pps** — packets emitted over wall-clock drain time. On a host
//!   with fewer cores than shards this does NOT scale (the workers
//!   timeslice the same core and the dispatcher adds channel overhead);
//!   it is reported for honesty, not as the scaling claim.
//! * **aggregate pps** — the critical-path model: total packets divided by
//!   the *busiest single shard's* self-timed processing time, measured
//!   with shards run one at a time (`run_batch_sequential`) so no shard's
//!   clock is inflated by a sibling sharing the core. This is the finish
//!   time the fleet would have if every shard owned a core, and it is the
//!   figure the >=3x acceptance gate checks.
//!
//! Writes `BENCH_sharded.json` at the workspace root.

use ipsa_bench::{emit, ipsa_sharded_flow, populate_rp4_flow, render_table};
use ipsa_core::control::Device;
use ipsa_netpkt::traffic::TrafficGen;
use serde::Serialize;
use std::time::Instant;

/// One shard-count measurement.
#[derive(Debug, Serialize)]
struct ShardSeries {
    shards: usize,
    emitted: usize,
    wall_pps: f64,
    aggregate_pps: f64,
    /// Per-shard busy time, milliseconds (balance visibility).
    per_shard_busy_ms: Vec<f64>,
}

/// Machine-readable artifact for CI and EXPERIMENTS.md.
#[derive(Debug, Serialize)]
struct ShardedJson {
    packets: usize,
    flows: u32,
    smoke: bool,
    host_cores: usize,
    series: Vec<ShardSeries>,
    aggregate_speedup_4x: f64,
}

/// Measures one shard count on the populated base-L3 design.
fn measure(shards: usize, packets: usize, flows: u32) -> ShardSeries {
    let mut flow = ipsa_sharded_flow(shards);
    populate_rp4_flow(&mut flow, 50);
    let sw = &mut flow.device;
    let mut gen = TrafficGen::new(17).with_v6_percent(20).with_flows(flows);
    // Warm batch: compile + publish the epoch outside the timed window.
    for p in gen.batch(64) {
        sw.inject(p);
    }
    sw.run_batch_sequential();
    let warm_busy: u64 = sw.shard_busy_ns().iter().sum();
    assert!(warm_busy > 0, "workers must self-time");
    let base_busy: Vec<u64> = sw.shard_busy_ns().to_vec();

    // Drive the traffic in rounds of a fixed chunk so every shard count is
    // measured over comparable per-batch timing windows (one giant batch
    // makes the busiest shard's window scale with 1/shards, and host-level
    // interference — e.g. cgroup CPU throttling — then biases the
    // comparison).
    const CHUNK: usize = 2_000;
    let mut out = Vec::new();
    let mut remaining = packets;
    let mut wall = 0.0;
    while remaining > 0 {
        let n = remaining.min(CHUNK);
        for p in gen.batch(n) {
            sw.inject(p);
        }
        let t = Instant::now();
        out.extend(sw.run_batch_sequential());
        wall += t.elapsed().as_secs_f64();
        remaining -= n;
    }
    assert!(sw.on_compiled_path(), "bench must run the compiled path");
    assert!(!out.is_empty());

    let busy: Vec<u64> = sw
        .shard_busy_ns()
        .iter()
        .zip(&base_busy)
        .map(|(now, warm)| now - warm)
        .collect();
    let critical_path_s = busy.iter().copied().max().unwrap_or(1) as f64 / 1e9;
    ShardSeries {
        shards,
        emitted: out.len(),
        wall_pps: out.len() as f64 / wall,
        aggregate_pps: out.len() as f64 / critical_path_s,
        per_shard_busy_ms: busy.iter().map(|&ns| ns as f64 / 1e6).collect(),
    }
}

fn main() {
    let smoke = std::env::var("IPSA_BENCH_SMOKE").is_ok();
    let packets = if smoke { 8_000 } else { 40_000 };
    let flows = 256; // enough flows that the RSS hash balances 4 shards

    let series: Vec<ShardSeries> = [1usize, 2, 4]
        .iter()
        .map(|&n| measure(n, packets, flows))
        .collect();

    let agg_1 = series[0].aggregate_pps;
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            vec![
                s.shards.to_string(),
                format!("{:>9.0}", s.wall_pps / 1e3),
                format!("{:>9.0}", s.aggregate_pps / 1e3),
                format!("{:>5.2}x", s.aggregate_pps / agg_1),
                format!(
                    "[{}]",
                    s.per_shard_busy_ms
                        .iter()
                        .map(|ms| format!("{ms:.1}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ]
        })
        .collect();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = render_table(
        "Sharded runtime scaling — base L3, flow-hash dispatch",
        &[
            "shards",
            "wall kpps",
            "agg kpps",
            "agg speedup",
            "per-shard busy ms",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nhost cores: {host_cores}. Aggregate = packets / max per-shard busy time \
         (critical path: the finish time with one core per shard); wall-clock \
         cannot scale past the host's core count and is reported for honesty.\n"
    ));

    let aggregate_speedup_4x = series[2].aggregate_pps / agg_1;
    let json = ShardedJson {
        packets,
        flows,
        smoke,
        host_cores,
        series,
        aggregate_speedup_4x,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sharded.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("json serializes"),
    )
    .expect("BENCH_sharded.json written");
    println!("[written to {}]", path.display());

    emit("sharded", &out);
    assert!(
        aggregate_speedup_4x >= 3.0,
        "4 shards must reach >= 3x aggregate throughput over 1 shard \
         (got {aggregate_speedup_4x:.2}x)"
    );
}
