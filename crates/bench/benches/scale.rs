//! E10 — production-scale tables and traffic.
//!
//! Three series, written to `BENCH_scale.json` at the workspace root:
//!
//! * **fib** — the core `Table` layer at FIB scale: bulk-loading a
//!   1M-route LPM table (smoke: 100k), lookup rate against the loaded
//!   table via the borrowed-key `match_single` probe, and delete+reinsert
//!   churn throughput. Before the indexed delete/live-count work, bulk
//!   load was O(n²) (every insert re-scanned the slab twice: once for
//!   `len`, once for replace detection) and took minutes; the gate here is
//!   seconds.
//! * **forwarding** — the full behavioral model under production-shaped
//!   traffic: Zipf flow popularity, IMIX frame sizes, and a control plane
//!   churning FIB entries between traffic chunks, reported against the
//!   churn-free rate on the same device.
//! * **ingress** — batched run-to-completion (`run_batch_into`: one
//!   compiled-path/scratch checkout for the whole drain) against both
//!   per-packet ingress paths it subsumes — the unbatched interpreter
//!   ingress (`Device::run`) and the pre-batching compiled drain — over
//!   identical traffic on a shallow single-stage L3 device where loop
//!   overhead is a measurable fraction of packet cost. CI runs this in
//!   smoke mode and gates on batched >= unbatched, plus a parity floor
//!   against the compiled drain.

use ipbm::{IpbmConfig, IpbmSwitch};
use ipsa_bench::{emit, ipsa_sw_flow, populate_rp4_flow, render_table};
use ipsa_controller::Rp4Flow;
use ipsa_core::action::{ActionDef, Primitive};
use ipsa_core::control::{ControlMsg, Device};
use ipsa_core::pipeline_cfg::SelectorConfig;
use ipsa_core::predicate::Predicate;
use ipsa_core::table::{ActionCall, KeyField, KeyMatch, MatchKind, Table, TableDef, TableEntry};
use ipsa_core::template::{MatcherBranch, TspTemplate};
use ipsa_core::value::{LValueRef, ValueRef};
use ipsa_netpkt::packet::Packet;
use ipsa_netpkt::traffic::TrafficGen;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Series A: the core table layer at FIB scale.
#[derive(Debug, Serialize)]
struct FibSeries {
    routes: usize,
    load_s: f64,
    load_routes_per_s: f64,
    lookups: usize,
    lookup_pps: f64,
    churn_ops: usize,
    churn_ops_per_s: f64,
}

/// Series B: the behavioral model under production-shaped traffic.
#[derive(Debug, Serialize)]
struct ForwardingSeries {
    packets: usize,
    flows: u32,
    zipf_skew: f64,
    /// Table-entry control ops applied between traffic chunks.
    churn_ops: usize,
    steady_pps: f64,
    under_churn_pps: f64,
    /// under-churn rate over steady rate.
    churn_ratio: f64,
}

/// Series C: batched run-to-completion vs the two per-packet ingress
/// paths it subsumes.
#[derive(Debug, Serialize)]
struct IngressSeries {
    packets: usize,
    /// `Device::run()`: the unbatched per-packet interpreter ingress.
    unbatched_pps: f64,
    /// The pre-batching compiled drain: resolve-once, but a per-packet
    /// compiled-path/scratch checkout and pending-ring poll.
    per_packet_compiled_pps: f64,
    batched_pps: f64,
    /// Speedup of batched over the unbatched ingress, computed from the
    /// fastest chunk on each side (robust to host jitter; see
    /// `ingress_series`). CI gates on this.
    ratio: f64,
    /// Batched over the per-packet compiled drain, same estimator. The
    /// expected value is parity-to-slightly-better: the compiled drain
    /// already amortizes compilation, and what batching adds there is
    /// allocation-freedom (pinned by `tests/alloc_free.rs`), not rate.
    compiled_drain_ratio: f64,
}

/// Machine-readable artifact for CI and EXPERIMENTS.md.
#[derive(Debug, Serialize)]
struct ScaleJson {
    smoke: bool,
    fib: FibSeries,
    forwarding: ForwardingSeries,
    ingress: IngressSeries,
}

/// A FIB-shaped LPM table definition sized for `routes` entries.
fn fib_def(routes: usize) -> TableDef {
    TableDef {
        name: "fib".into(),
        key: vec![KeyField {
            source: ValueRef::field("ipv4", "dst_addr"),
            bits: 32,
            kind: MatchKind::Lpm,
        }],
        size: routes,
        actions: vec!["set_nexthop".into()],
        default_action: ActionCall::no_action(),
        with_counters: false,
    }
}

fn lpm_entry(value: u32, prefix_len: usize, nh: u128) -> TableEntry {
    TableEntry {
        key: vec![KeyMatch::Lpm {
            value: value as u128,
            prefix_len,
        }],
        priority: 0,
        action: ActionCall::new("set_nexthop", vec![nh]),
        counter: 0,
    }
}

/// Series A: load `routes` LPM entries (a production-like /16 + /24 + /32
/// length mix), then measure lookup and churn rates against the loaded
/// table.
fn fib_series(routes: usize, smoke: bool) -> FibSeries {
    // ~1% /16, ~9% /32, the rest /24 — BGP-table-shaped enough to keep
    // several prefix lengths live in the per-length index.
    let r16 = (routes / 100).min(60_000);
    let r32 = routes / 10;
    let r24 = routes - r16 - r32;

    let mut t = Table::new(fib_def(routes)).expect("fib table");
    let start = Instant::now();
    for j in 0..r24 {
        t.insert(lpm_entry(0x0a00_0000 + ((j as u32) << 8), 24, 7))
            .expect("/24 route");
    }
    for j in 0..r32 {
        t.insert(lpm_entry(0xc000_0000 | j as u32, 32, 7))
            .expect("/32 route");
    }
    for j in 0..r16 {
        t.insert(lpm_entry((j as u32) << 16, 16, 7)).expect("/16");
    }
    let load_s = start.elapsed().as_secs_f64();
    assert_eq!(t.len(), routes, "every route must be live");

    // Lookup rate: random dst addresses inside the /24 space, through the
    // borrowed-key single-field probe (the compiled fast path's shape).
    let lookups = if smoke { 200_000 } else { 2_000_000 };
    let mut rng = StdRng::seed_from_u64(42);
    let mut hits = 0usize;
    let start = Instant::now();
    for _ in 0..lookups {
        let dst =
            (0x0a00_0000 + (rng.random_range(0..r24 as u32) << 8)) | rng.random_range(0..256u32);
        t.begin_lookup();
        if t.match_single(Some(dst as u128)).is_some() {
            hits += 1;
        }
    }
    let lookup_s = start.elapsed().as_secs_f64();
    assert_eq!(hits, lookups, "every /24-space lookup must hit");

    // Churn: delete + reinsert random /24 routes (the FIB update pattern).
    let pairs = if smoke { 20_000 } else { 200_000 };
    let start = Instant::now();
    for _ in 0..pairs {
        let j = rng.random_range(0..r24 as u32);
        let key = [KeyMatch::Lpm {
            value: (0x0a00_0000 + (j << 8)) as u128,
            prefix_len: 24,
        }];
        t.delete(&key).expect("route live");
        t.insert(lpm_entry(0x0a00_0000 + (j << 8), 24, 8))
            .expect("reinsert");
    }
    let churn_s = start.elapsed().as_secs_f64();
    assert_eq!(t.len(), routes, "churn must be live-count neutral");

    FibSeries {
        routes,
        load_s,
        load_routes_per_s: routes as f64 / load_s,
        lookups,
        lookup_pps: lookups as f64 / lookup_s,
        churn_ops: pairs * 2,
        churn_ops_per_s: (pairs * 2) as f64 / churn_s,
    }
}

/// A populated base-L3 flow (50 /24 routes: covers every generated flow).
fn l3_flow() -> Rp4Flow<IpbmSwitch> {
    let mut flow = ipsa_sw_flow();
    populate_rp4_flow(&mut flow, 50);
    flow
}

/// One AddEntry/DelEntry churn wave against `ipv4_lpm`, on prefixes the
/// traffic never hits (10.99.x.0/24), so the forwarding behavior is
/// unchanged while the table indices absorb the update stream.
fn churn_wave(sw: &mut IpbmSwitch, wave: usize, per_wave: usize) -> usize {
    let mut msgs = Vec::with_capacity(per_wave);
    for k in 0..per_wave {
        let slot = ((wave * per_wave + k) % 128) as u32;
        let key = vec![
            KeyMatch::Exact(1),
            KeyMatch::Lpm {
                value: (0x0a63_0000 + (slot << 8)) as u128,
                prefix_len: 24,
            },
        ];
        if wave.is_multiple_of(2) {
            msgs.push(ControlMsg::AddEntry {
                table: "ipv4_lpm".into(),
                entry: TableEntry {
                    key,
                    priority: 0,
                    action: ActionCall::new("set_nexthop", vec![7]),
                    counter: 0,
                },
            });
        } else {
            msgs.push(ControlMsg::DelEntry {
                table: "ipv4_lpm".into(),
                key,
            });
        }
    }
    let n = msgs.len();
    // Deletes of not-yet-added slots are expected on early odd waves.
    let _ = sw.apply(&msgs);
    n
}

/// Series B: production-shaped traffic (Zipf flows, IMIX sizes) through
/// the compiled path, steady vs with control-plane churn between chunks.
fn forwarding_series(packets: usize) -> ForwardingSeries {
    const FLOWS: u32 = 4_096;
    const SKEW: f64 = 1.1;
    const CHURN_PER_WAVE: usize = 16;
    let chunk = (packets / 20).max(1);

    let mut flow = l3_flow();
    let sw = &mut flow.device;
    let mut gen = TrafficGen::new(17)
        .with_v6_percent(20)
        .with_flows(FLOWS)
        .with_zipf(SKEW)
        .with_imix();

    // Warm: compile the epoch and touch every buffer.
    for (p, _) in gen.scaled_batch(256) {
        sw.inject(p);
    }
    let mut out = Vec::new();
    sw.run_batch_into(&mut out);
    assert!(!out.is_empty(), "warm traffic must forward");

    let mut run_phase = |sw: &mut IpbmSwitch, churn: bool| -> (usize, f64, usize) {
        let (mut emitted, mut secs, mut churn_ops) = (0usize, 0.0f64, 0usize);
        let mut sent = 0usize;
        let mut wave = 0usize;
        while sent < packets {
            let n = chunk.min(packets - sent);
            if churn {
                // The churn is part of the measured regime: the timed
                // window covers apply + forwarding, as a real device
                // interleaves them.
                let t = Instant::now();
                churn_ops += churn_wave(sw, wave, CHURN_PER_WAVE);
                secs += t.elapsed().as_secs_f64();
                wave += 1;
            }
            for (p, _) in gen.scaled_batch(n) {
                sw.inject(p);
            }
            let t = Instant::now();
            out.clear();
            emitted += sw.run_batch_into(&mut out);
            secs += t.elapsed().as_secs_f64();
            sent += n;
        }
        (emitted, secs, churn_ops)
    };

    let (steady_emitted, steady_s, _) = run_phase(sw, false);
    let (churn_emitted, churn_s, churn_ops) = run_phase(sw, true);
    assert!(steady_emitted > 0 && churn_emitted > 0);
    assert!(sw.pm.has_compiled(), "bench must run the compiled path");

    let steady_pps = steady_emitted as f64 / steady_s;
    let under_churn_pps = churn_emitted as f64 / churn_s;
    ForwardingSeries {
        packets,
        flows: FLOWS,
        zipf_skew: SKEW,
        churn_ops,
        steady_pps,
        under_churn_pps,
        churn_ratio: under_churn_pps / steady_pps,
    }
}

/// A minimal single-stage L3 device: parse ipv4, one LPM lookup, set a
/// nexthop, decrement the TTL, forward. The ingress series runs on this
/// shape deliberately: what batching removes is *per-packet loop
/// overhead*, and on a deep multi-table pipeline that overhead is ~1% of
/// packet cost — unmeasurable on a shared host. A shallow stage is where
/// per-packet overhead matters, and it is also the realistic deployment
/// shape for an in-situ reprogrammable edge function.
fn light_l3() -> IpbmSwitch {
    let mut sw = IpbmSwitch::new(IpbmConfig::default());
    let msgs = vec![
        ControlMsg::Drain,
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ethernet()),
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::ipv4()),
        ControlMsg::RegisterHeader(ipsa_netpkt::protocols::udp()),
        ControlMsg::SetFirstHeader("ethernet".into()),
        ControlMsg::DefineMetadata(vec![("nexthop".into(), 16)]),
        ControlMsg::DefineAction(ActionDef {
            name: "route".into(),
            params: vec![("nh".into(), 16), ("port".into(), 16)],
            body: vec![
                Primitive::Set {
                    dst: LValueRef::Meta("nexthop".into()),
                    src: ValueRef::Param(0),
                },
                Primitive::DecTtlV4,
                Primitive::Forward {
                    port: ValueRef::Param(1),
                },
            ],
        }),
        ControlMsg::CreateTable {
            def: TableDef {
                name: "fib".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv4", "dst_addr"),
                    bits: 32,
                    kind: MatchKind::Lpm,
                }],
                size: 64,
                actions: vec!["route".into()],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
            blocks: vec![0],
        },
        ControlMsg::WriteTemplate {
            slot: 0,
            template: TspTemplate {
                stage_name: "l3".into(),
                func: "base".into(),
                parse: vec!["ipv4".into()],
                branches: vec![MatcherBranch {
                    pred: Predicate::IsValid("ipv4".into()),
                    table: Some("fib".into()),
                }],
                executor: vec![(1, ActionCall::new("route", vec![]))],
                default_action: ActionCall::no_action(),
            },
        },
        ControlMsg::ConnectCrossbar {
            slot: 0,
            blocks: vec![0],
        },
        ControlMsg::SetSelector(SelectorConfig::split(32, 1, 0).unwrap()),
        ControlMsg::Resume,
        ControlMsg::AddEntry {
            table: "fib".into(),
            entry: TableEntry {
                key: vec![KeyMatch::Lpm {
                    value: 0x0a00_0000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: ActionCall::new("route", vec![9, 4]),
                counter: 0,
            },
        },
    ];
    sw.apply(&msgs).expect("light l3 design applies");
    sw
}

/// Series C: batched run-to-completion against both per-packet ingress
/// paths, over identical traffic in fine-grained rotating chunks (host-
/// load drift and episodic CPU throttling land on every side equally).
/// The headline ratios compare the FASTEST chunk on each side: scheduler
/// noise on a shared host is one-sided — interruptions only ever add
/// time — so the minimum over many same-sized windows converges to each
/// path's true cost where a mean or median still carries ±3% jitter.
fn ingress_series(packets: usize) -> IngressSeries {
    let mut batched = light_l3();
    let mut compiled_drain = light_l3();
    let mut unbatched = light_l3();
    // v4-only: the light device routes 10.0.0.0/8, which covers every
    // generated v4 flow.
    let gen = || TrafficGen::new(17).with_v6_percent(0).with_flows(64);
    let (mut gen_a, mut gen_b, mut gen_c) = (gen(), gen(), gen());
    let mut out = Vec::new();

    // Each chunk is cheap (sub-millisecond), so even smoke mode can
    // afford enough rounds for the minima to converge.
    const CHUNK: usize = 500;
    let rounds = (packets / CHUNK).max(48);
    let measure_a = |a: &mut IpbmSwitch, gen: &mut TrafficGen, out: &mut Vec<Packet>| {
        for p in gen.batch(CHUNK) {
            a.inject(p);
        }
        let t = Instant::now();
        out.clear();
        let n = a.run_batch_into(out);
        (n, t.elapsed().as_secs_f64())
    };
    let measure_b = |b: &mut IpbmSwitch, gen: &mut TrafficGen| {
        for p in gen.batch(CHUNK) {
            b.inject(p);
        }
        let t = Instant::now();
        let n = b.run_batch_per_packet().len();
        (n, t.elapsed().as_secs_f64())
    };
    let measure_c = |c: &mut IpbmSwitch, gen: &mut TrafficGen| {
        for p in gen.batch(CHUNK) {
            c.inject(p);
        }
        let t = Instant::now();
        let n = c.run().len();
        (n, t.elapsed().as_secs_f64())
    };

    // Warm all three devices (compile epochs, grow every buffer)
    // unmeasured.
    for _ in 0..4 {
        measure_a(&mut batched, &mut gen_a, &mut out);
        measure_b(&mut compiled_drain, &mut gen_b);
        measure_c(&mut unbatched, &mut gen_c);
    }

    let mut total = [0.0f64; 3];
    let mut min = [f64::INFINITY; 3];
    let mut emitted = 0usize;
    for i in 0..rounds {
        // Rotate which side runs first within the round.
        let mut res = [(0usize, 0.0f64); 3];
        for k in 0..3 {
            match (i + k) % 3 {
                0 => res[0] = measure_a(&mut batched, &mut gen_a, &mut out),
                1 => res[1] = measure_b(&mut compiled_drain, &mut gen_b),
                _ => res[2] = measure_c(&mut unbatched, &mut gen_c),
            }
        }
        let [(na, ta), (nb, tb), (nc, tc)] = res;
        assert!(
            na > 0 && na == nb && na == nc,
            "all ingress paths must emit identically"
        );
        emitted += na;
        for (slot, t) in [ta, tb, tc].into_iter().enumerate() {
            total[slot] += t;
            min[slot] = min[slot].min(t);
        }
    }

    IngressSeries {
        packets: rounds * CHUNK,
        unbatched_pps: emitted as f64 / total[2],
        per_packet_compiled_pps: emitted as f64 / total[1],
        batched_pps: emitted as f64 / total[0],
        // Same packet count on every side: time ratios are speedups.
        ratio: min[2] / min[0],
        compiled_drain_ratio: min[1] / min[0],
    }
}

fn main() {
    let smoke = std::env::var("IPSA_BENCH_SMOKE").is_ok();
    let routes = if smoke { 100_000 } else { 1_000_000 };
    let packets = if smoke { 4_000 } else { 30_000 };

    let fib = fib_series(routes, smoke);
    let forwarding = forwarding_series(packets);
    let ingress = ingress_series(packets);

    let rows = vec![
        vec![
            "fib".into(),
            format!("{} routes", fib.routes),
            format!(
                "load {:.2}s ({:.0}k routes/s)",
                fib.load_s,
                fib.load_routes_per_s / 1e3
            ),
            format!("lookup {:.0} kpps", fib.lookup_pps / 1e3),
            format!("churn {:.0}k ops/s", fib.churn_ops_per_s / 1e3),
        ],
        vec![
            "forwarding".into(),
            format!(
                "{} flows, zipf {:.1}, IMIX",
                forwarding.flows, forwarding.zipf_skew
            ),
            format!("steady {:.0} kpps", forwarding.steady_pps / 1e3),
            format!("churn {:.0} kpps", forwarding.under_churn_pps / 1e3),
            format!("ratio {:.2}", forwarding.churn_ratio),
        ],
        vec![
            "ingress".into(),
            format!("{} pkts", ingress.packets),
            format!(
                "unbatched {:.0} / compiled drain {:.0} kpps",
                ingress.unbatched_pps / 1e3,
                ingress.per_packet_compiled_pps / 1e3
            ),
            format!("batched {:.0} kpps", ingress.batched_pps / 1e3),
            format!(
                "{:.2}x vs unbatched, {:.2}x vs drain",
                ingress.ratio, ingress.compiled_drain_ratio
            ),
        ],
    ];
    let out = render_table(
        "Production scale — FIB-scale tables, Zipf/IMIX traffic, batched ingress",
        &["series", "scale", "", "", ""],
        &rows,
    );

    let json = ScaleJson {
        smoke,
        fib,
        forwarding,
        ingress,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("json serializes"),
    )
    .expect("BENCH_scale.json written");
    println!("[written to {}]", path.display());

    emit("scale", &out);

    // Gates. The load bound is the headline fix: the pre-index bulk load
    // was O(n²) and took minutes at this scale.
    assert!(
        json.fib.load_s < 60.0,
        "FIB load took {:.1}s — scale regression (O(n²) load was minutes)",
        json.fib.load_s
    );
    assert!(
        json.ingress.ratio >= 1.0,
        "batched ingress must not be slower than the unbatched per-packet \
         ingress (got {:.2}x)",
        json.ingress.ratio
    );
    // The compiled drain already amortizes compilation, so this is a
    // parity floor, not a speedup claim: 0.90 leaves room for the ±3%
    // code-layout jitter two separately-compiled loops carry run-to-run.
    assert!(
        json.ingress.compiled_drain_ratio >= 0.90,
        "batched ingress regressed against the per-packet compiled drain \
         (got {:.2}x)",
        json.ingress.compiled_drain_ratio
    );
}
