//! E7 — ablations over the design choices DESIGN.md calls out:
//!
//! 1. **stage merging on/off** — TSPs used by the base design (pipeline
//!    latency and power follow active-TSP count);
//! 2. **DP vs greedy incremental placement** — the paper's stated
//!    "trade-off between dynamic programming and greedy algorithm in terms
//!    of the function placement time and the degree of optimization";
//! 3. **full vs clustered crossbar** — interconnect cost vs packing
//!    freedom (dRMT's tradeoff, Sec. 2.4);
//! 4. **multi-pipeline table replication** — PISA replicates tables per
//!    pipeline; IPSA's shared pool serves all pipelines via multiple
//!    access ports (Sec. 5 discussion point 1).

use ipsa_bench::*;
use ipsa_controller::programs;
use ipsa_hwmodel::{pipeline_latency_cycles, resources, Arch, DesignParams};
use rp4c::{full_compile, CompilerTarget, LayoutAlgo};
use std::fmt::Write as _;

fn main() {
    let mut out = String::from("== Ablations ==\n");
    let prog = rp4_lang::parse(programs::BASE_RP4).expect("base parses");

    // ---- 1. merging on/off -------------------------------------------
    let mut t_on = CompilerTarget::fpga();
    t_on.merge = true;
    let mut t_off = t_on.clone();
    t_off.merge = false;
    let on = full_compile(&prog, &t_on).expect("merge-on compiles");
    let off = full_compile(&prog, &t_off).expect("merge-off compiles");
    let lat = |c: &rp4c::Compilation| {
        // Use the compile-fit chip (12 slots) so the unmerged design's
        // extra stages are not clipped by the 8-stage evaluation chip.
        let mut p = DesignParams::from_design(&c.design, t_on.slots, FPGA_BUS_BITS);
        p.active_stages = c.report.tsps_used.min(p.stages);
        pipeline_latency_cycles(Arch::Ipsa, &p)
    };
    let _ = writeln!(
        out,
        "\n[1] stage merging: on -> {} TSPs ({:.1} cycles pipeline latency), \
         off -> {} TSPs ({:.1} cycles)\n    merged groups: {:?}",
        on.report.tsps_used,
        lat(&on),
        off.report.tsps_used,
        lat(&off),
        on.report.merge.merged_groups
    );
    assert!(on.report.tsps_used < off.report.tsps_used);
    assert!(lat(&on) < lat(&off), "fewer active TSPs -> lower latency");

    // ---- 2. DP vs greedy placement ------------------------------------
    let _ = writeln!(
        out,
        "\n[2] incremental placement, per use case (medians of 5):"
    );
    let _ = writeln!(
        out,
        "    {:<14} {:>12} {:>14} {:>12} {:>14}",
        "case", "DP writes", "DP place µs", "greedy writes", "greedy µs"
    );
    for (case, _, script, _) in programs::use_cases() {
        let mut stats = Vec::new();
        for algo in [LayoutAlgo::Dp, LayoutAlgo::Greedy] {
            let mut writes = 0;
            let mut times = Vec::new();
            for _ in 0..5 {
                let mut flow = ipsa_fpga_flow();
                flow.algo = algo;
                let o = flow
                    .run_script(script, &programs::bundled_sources)
                    .expect("script");
                let s = o.update_stats.expect("update happened");
                writes = s.template_writes;
                times.push(s.placement_us);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            stats.push((writes, times[times.len() / 2]));
        }
        let _ = writeln!(
            out,
            "    {:<14} {:>12} {:>14.1} {:>12} {:>14.1}",
            case, stats[0].0, stats[0].1, stats[1].0, stats[1].1
        );
        // The optimization-degree direction must hold.
        assert!(stats[0].0 <= stats[1].0, "{case}: DP must not write more");
    }
    let _ = writeln!(
        out,
        "    finding: on these use cases the earliest-match greedy reaches \
         DP-optimal write counts\n    (stage names are unique, so earliest \
         match is optimal) at ~2-3x lower placement time;\n    DP remains \
         the guarantee when interior holes accumulate under churn."
    );

    // ---- 3. full vs clustered crossbar ---------------------------------
    // A clustered fabric only wires each TSP to its memory cluster: the
    // interconnect shrinks by the cluster count, at the price of placement
    // freedom (tables must live in their stage's cluster — the paper's
    // "tables also need to be migrated" constraint).
    let mut rows = Vec::new();
    for clusters in [0usize, 2, 4] {
        let mut t = CompilerTarget::fpga();
        t.clusters = clusters;
        match full_compile(&prog, &t) {
            Ok(c) => {
                let mut params = fpga_params(&c.design);
                params.crossbar_ports /= clusters.max(1);
                let r = resources(Arch::Ipsa, &params);
                rows.push(format!(
                    "    clusters={clusters:<2} -> crossbar fabric {:>4} ports, {:.2}% LUT, \
                     packing fragmentation {}, blocks {}",
                    params.crossbar_ports,
                    r.crossbar.lut_pct,
                    c.report.pack_fragmentation,
                    c.report.blocks_used
                ));
            }
            Err(e) => rows.push(format!("    clusters={clusters:<2} -> infeasible: {e}")),
        }
    }
    let _ = writeln!(out, "\n[3] crossbar class (base design):");
    for r in &rows {
        let _ = writeln!(out, "{r}");
    }

    // ---- 4. multi-pipeline table replication ----------------------------
    let c = full_compile(&prog, &CompilerTarget::fpga()).expect("compiles");
    let blocks = c.report.blocks_used;
    let _ = writeln!(
        out,
        "\n[4] k parallel pipelines, total table blocks (base design):\n    \
         {:<4} {:>16} {:>22}",
        "k", "PISA (replicate)", "IPSA (shared pool)"
    );
    for k in [1usize, 2, 4, 8] {
        let _ = writeln!(out, "    {:<4} {:>16} {:>22}", k, blocks * k, blocks);
    }
    let _ = writeln!(
        out,
        "    (PISA replicates most tables per pipeline; the disaggregated \
         pool serves all pipelines through extra access ports.)"
    );

    // Park one more knob: the DesignParams bus-width sweep from E2 is the
    // remaining paper-suggested fix; it lives in the throughput bench.
    let _ = DesignParams::from_design(&c.design, FPGA_STAGES, FPGA_BUS_BITS);

    emit("ablations", &out);
}
