//! E5 — Fig. 6: power consumption vs the number of effective physical
//! stages the running application uses.
//!
//! Shape to reproduce: PISA is essentially flat (non-functional stages
//! remain in the fixed pipeline and burn power); IPSA scales nearly
//! linearly with active TSPs (bypassed TSPs idle in low power), starts
//! well below PISA at small stage counts, and crosses slightly above it at
//! full utilization (the ~10% premium of Table 3).

use ipsa_bench::*;
use ipsa_controller::programs;
use ipsa_hwmodel::fig6_series;
use rp4c::{full_compile, CompilerTarget};

fn main() {
    let prog = rp4_lang::parse(programs::BASE_RP4).expect("base parses");
    let design = full_compile(&prog, &CompilerTarget::fpga())
        .expect("compiles")
        .design;
    let params = fpga_params(&design);
    let series = fig6_series(&params);

    let mut rows = Vec::new();
    for (n, pisa_w, ipsa_w) in &series {
        let bar = |w: f64| "#".repeat((w * 12.0) as usize);
        rows.push(vec![
            format!("{n}"),
            format!("{pisa_w:.2}"),
            format!("{ipsa_w:.2}"),
            format!("{:<40}", bar(*pisa_w)),
            format!("{:<40}", bar(*ipsa_w)),
        ]);
    }
    let mut out = render_table(
        "Fig. 6 — power (W) vs effective physical stages",
        &["stages", "PISA W", "IPSA W", "PISA", "IPSA"],
        &rows,
    );

    let first = series.first().expect("nonempty");
    let last = series.last().expect("nonempty");
    let pisa_spread = last.1 - first.1;
    let ipsa_spread = last.2 - first.2;
    let crossover = series.iter().find(|(_, p, i)| i > p).map(|(n, _, _)| *n);
    out.push_str(&format!(
        "\nPISA spread across 1..{} stages: {pisa_spread:.2} W (flat); \
         IPSA spread: {ipsa_spread:.2} W (scales with active TSPs).\n\
         IPSA crosses above PISA at {} effective stages; premium at full \
         pipeline: {:+.1}%.\n",
        series.len(),
        crossover.map_or("never".to_string(), |n| n.to_string()),
        100.0 * (last.2 / last.1 - 1.0),
    ));

    // Shape assertions.
    assert!(pisa_spread.abs() < 0.2, "PISA must be ~flat: {pisa_spread}");
    assert!(ipsa_spread > 1.0, "IPSA must scale: {ipsa_spread}");
    assert!(first.2 < first.1, "IPSA wins at low stage counts");
    assert!(last.2 > last.1, "IPSA premium at full pipeline");
    emit("fig6_power_vs_stages", &out);
}
