//! E2 — §5 "Throughput": Mpps at 200 MHz for the three use cases on the
//! 8-stage FPGA prototypes (analytical model over the actual compiled
//! designs), plus measured software packet rates of the two behavioral
//! models as a bonus series.
//!
//! Paper (Mpps):  PISA 187.33 / 153.71 / 191.93 — IPSA 65.81 / 51.36 / 86.62
//! Shape to hold: PISA ~2-3.5x faster; IPSA's gap comes from extra memory
//! beats on wide entries plus the per-packet template fetch — and the
//! paper's two fixes (wider bus, pipelined TSP) must recover most of it.

use ipbm::IpbmSwitch;
use ipsa_bench::*;
use ipsa_controller::{programs, Rp4Flow};
use ipsa_core::control::Device;
use ipsa_core::timing::CostModel;
use ipsa_hwmodel::{throughput, Arch, ThroughputOptions};
use ipsa_netpkt::traffic::TrafficGen;
use pisa_bm::{PisaSwitch, PisaTarget};
use serde::Serialize;
use std::time::Instant;

/// Measured software forwarding rate (packets per second) of a device,
/// drained through `run` (interpreter) or `run_batch` (compiled path).
fn sw_rate<D: Device>(device: &mut D, packets: usize, batch_path: bool) -> f64 {
    let mut gen = TrafficGen::new(17).with_v6_percent(20).with_flows(64);
    let batch = gen.batch(packets);
    for p in batch {
        device.inject(p);
    }
    let t = Instant::now();
    let out = if batch_path {
        device.run_batch()
    } else {
        device.run()
    };
    let dt = t.elapsed().as_secs_f64();
    assert!(!out.is_empty());
    out.len() as f64 / dt
}

/// One ipbm software-rate measurement: interpreter vs the plain compiled
/// fast path (no facts installed) vs the fact-guided fast path (the
/// controller-installed `ProgramFacts` let the epoch compiler elide
/// proven-redundant parses, prune dead arms/stores, and memoize header
/// locations).
#[derive(Debug, Serialize)]
struct SwSeries {
    case: String,
    interpreter_pps: f64,
    fast_path_pps: f64,
    fact_guided_pps: f64,
    /// fact-guided fast path over the interpreter.
    speedup: f64,
    /// fact-guided fast path over the plain (fact-free) fast path.
    fact_gain: f64,
}

/// Best-of-N rate: repeated measurement squeezes scheduler noise out of
/// the per-series comparison (the device is reused, so tables stay
/// populated and the compiled epoch stays warm after the first rep).
fn best_rate(reps: usize, mut measure: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| measure()).fold(0.0, f64::max)
}

/// Paired measurement of two compiled-path devices over identical
/// traffic, alternating small chunks so host-load drift (CPU throttling,
/// noisy CI neighbors) lands on both sides of the comparison equally
/// instead of masquerading as a speedup or regression of whichever
/// happened to run during the slow episode.
fn paired_rates<D: Device>(a: &mut D, b: &mut D, packets: usize) -> (f64, f64) {
    let chunk = (packets / 20).max(1);
    let mut gen_a = TrafficGen::new(17).with_v6_percent(20).with_flows(64);
    let mut gen_b = TrafficGen::new(17).with_v6_percent(20).with_flows(64);
    let (mut ta, mut tb) = (0.0f64, 0.0f64);
    let (mut na, mut nb) = (0usize, 0usize);
    let mut sent = 0;
    while sent < packets {
        let n = chunk.min(packets - sent);
        for p in gen_a.batch(n) {
            a.inject(p);
        }
        let t = Instant::now();
        na += a.run_batch().len();
        ta += t.elapsed().as_secs_f64();
        for p in gen_b.batch(n) {
            b.inject(p);
        }
        let t = Instant::now();
        nb += b.run_batch().len();
        tb += t.elapsed().as_secs_f64();
        sent += n;
    }
    assert!(na > 0 && nb > 0);
    (na as f64 / ta, nb as f64 / tb)
}

/// Machine-readable artifact for CI and EXPERIMENTS.md.
#[derive(Debug, Serialize)]
struct ThroughputJson {
    packets_per_series: usize,
    smoke: bool,
    series: Vec<SwSeries>,
}

/// A base-design ipbm flow with the standard population, plus one of the
/// in-situ use-case updates on top (None = plain base L3).
fn case_flow(case: Option<usize>) -> Rp4Flow<IpbmSwitch> {
    let mut flow = ipsa_sw_flow();
    populate_rp4_flow(&mut flow, 50);
    if let Some(i) = case {
        let (_, _, script, _) = programs::use_cases()[i];
        flow.run_script(script, &programs::bundled_sources)
            .expect("use-case script applies");
        if i == 0 {
            flow.run_script(
                include_str!("../../../programs/ecmp_members.script"),
                &programs::bundled_sources,
            )
            .expect("ecmp members populate");
        }
    }
    flow
}

/// Measures interpreter vs fast-path rates for each use case and writes
/// `BENCH_throughput.json` at the workspace root.
fn sw_series(packets: usize, smoke: bool) -> (Vec<SwSeries>, f64) {
    let cases: [(&str, Option<usize>); 4] = [
        ("base-l3", None),
        ("ecmp", Some(0)),
        ("srv6", Some(1)),
        ("flowprobe", Some(2)),
    ];
    let reps = 3;
    let mut series = Vec::new();
    for (name, case) in cases {
        let mut interp_dev = case_flow(case).device;
        let interp = best_rate(reps, || sw_rate(&mut interp_dev, packets, false));

        // Plain fast path: drop the controller-installed facts so the
        // epoch compiler runs without proofs (the fact-free baseline).
        let mut plain_dev = case_flow(case).device;
        plain_dev.install_facts(None);
        assert!(!plain_dev.pm.has_facts(), "{name}: facts must be cleared");

        let mut guided_dev = case_flow(case).device;
        assert!(
            guided_dev.pm.has_facts(),
            "{name}: controller must install dataflow facts"
        );
        let (mut plain, mut guided) = (0.0f64, 0.0f64);
        for _ in 0..reps {
            let (p, g) = paired_rates(&mut plain_dev, &mut guided_dev, packets);
            plain = plain.max(p);
            guided = guided.max(g);
        }

        series.push(SwSeries {
            case: name.to_string(),
            interpreter_pps: interp,
            fast_path_pps: plain,
            fact_guided_pps: guided,
            speedup: guided / interp,
            fact_gain: guided / plain,
        });
    }
    let base_speedup = series[0].speedup;
    let json = ThroughputJson {
        packets_per_series: packets,
        smoke,
        series,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("json serializes"),
    )
    .expect("BENCH_throughput.json written");
    println!("[written to {}]", path.display());
    (json.series, base_speedup)
}

fn main() {
    // Smoke mode (CI): fewer packets, same artifacts.
    let smoke = std::env::var("IPSA_BENCH_SMOKE").is_ok();
    let packets = if smoke { 4_000 } else { 30_000 };

    let paper_pisa = [187.33, 153.71, 191.93];
    let paper_ipsa = [65.81, 51.36, 86.62];

    let mut rows = Vec::new();
    for (i, (case, _, _, _)) in programs::use_cases().iter().enumerate() {
        let (ipsa_design, pisa_design) = use_case_designs(i);
        let pi = fpga_params(&ipsa_design);
        let pp = fpga_params(&pisa_design);
        let tp = throughput(Arch::Pisa, &pp, ThroughputOptions::default());
        let ti = throughput(Arch::Ipsa, &pi, ThroughputOptions::default());
        let fixed = throughput(
            Arch::Ipsa,
            &pi,
            ThroughputOptions {
                pipelined_tsp: true,
                bus_bits: Some(512),
            },
        );
        rows.push(vec![
            case.to_string(),
            format!("{:>7.2}", tp.mpps),
            format!("{:>7.2}", paper_pisa[i]),
            format!("{:>7.2}", ti.mpps),
            format!("{:>7.2}", paper_ipsa[i]),
            format!("{:>5.2}x", tp.mpps / ti.mpps),
            format!("{:>5.2}x", paper_pisa[i] / paper_ipsa[i]),
            format!("{:>7.2}", fixed.mpps),
        ]);
        // Shape assertions.
        assert!(tp.mpps > ti.mpps, "{case}: PISA must be faster");
        let ratio = tp.mpps / ti.mpps;
        assert!(
            (1.5..=4.5).contains(&ratio),
            "{case}: ratio {ratio} outside the paper's band"
        );
        assert!(
            fixed.mpps / tp.mpps > 0.9,
            "{case}: fixes must close the gap"
        );
    }
    let mut out = render_table(
        "Sec. 5 throughput — Mpps @ 200 MHz (analytical model over compiled designs)",
        &[
            "use case",
            "PISA",
            "paper",
            "IPSA",
            "paper",
            "ratio",
            "paper",
            "IPSA+fixes",
        ],
        &rows,
    );

    // Bonus: measured software behavioral-model rates (not in the paper;
    // architecture costs show up as real work: distributed parse state,
    // crossbar checks, pooled-memory access accounting).
    let ipsa_rate = sw_rate(&mut case_flow(None).device, packets, false);

    let (mut pisa_flow, _, _) = ipsa_controller::P4Flow::new(
        PisaSwitch::new(CostModel::software()),
        programs::BASE_P4,
        PisaTarget::bmv2(),
    )
    .expect("pisa loads");
    populate_p4_flow(&mut pisa_flow, 50);
    let pisa_rate = sw_rate(&mut pisa_flow.device, packets, false);

    out.push_str(&format!(
        "\nsoftware behavioral models, base design (measured): \
         pisa-bm {:.0} kpps, ipbm {:.0} kpps (ratio {:.2}x)\n",
        pisa_rate / 1e3,
        ipsa_rate / 1e3,
        pisa_rate / ipsa_rate
    ));

    // ipbm interpreter vs compiled fast path, per use case (the
    // resolve-once/run-many epoch model; see DESIGN.md). Also written as
    // machine-readable BENCH_throughput.json for CI.
    let (series, base_speedup) = sw_series(packets, smoke);
    out.push_str("\nipbm software rates: interpreter vs fast path vs fact-guided fast path\n");
    for s in &series {
        out.push_str(&format!(
            "  {:<10} interpreter {:>8.0} kpps   fast {:>8.0} kpps   fact-guided {:>8.0} kpps   \
             ({:.2}x interp, {:.2}x fast)\n",
            s.case,
            s.interpreter_pps / 1e3,
            s.fast_path_pps / 1e3,
            s.fact_guided_pps / 1e3,
            s.speedup,
            s.fact_gain
        ));
    }
    assert!(
        base_speedup >= 3.0,
        "compiled fast path must be >= 3x the interpreter on base L3 (got {base_speedup:.2}x)"
    );
    // Fact-guided compilation must never cost throughput (0.9 allows
    // measurement noise) and must measurably help on at least one case.
    for s in &series {
        assert!(
            s.fact_gain >= 0.9,
            "{}: fact-guided path regressed vs plain fast path ({:.2}x)",
            s.case,
            s.fact_gain
        );
    }
    assert!(
        series.iter().any(|s| s.fact_gain >= 1.0),
        "fact-guided compilation must improve at least one use case: {series:#?}"
    );
    emit("throughput", &out);
}
