//! E2 — §5 "Throughput": Mpps at 200 MHz for the three use cases on the
//! 8-stage FPGA prototypes (analytical model over the actual compiled
//! designs), plus measured software packet rates of the two behavioral
//! models as a bonus series.
//!
//! Paper (Mpps):  PISA 187.33 / 153.71 / 191.93 — IPSA 65.81 / 51.36 / 86.62
//! Shape to hold: PISA ~2-3.5x faster; IPSA's gap comes from extra memory
//! beats on wide entries plus the per-packet template fetch — and the
//! paper's two fixes (wider bus, pipelined TSP) must recover most of it.

use ipsa_bench::*;
use ipsa_controller::programs;
use ipsa_core::control::Device;
use ipsa_core::timing::CostModel;
use ipsa_hwmodel::{throughput, Arch, ThroughputOptions};
use ipsa_netpkt::traffic::TrafficGen;
use pisa_bm::{PisaSwitch, PisaTarget};
use std::time::Instant;

/// Measured software forwarding rate (packets per second) of a device.
fn sw_rate<D: Device>(device: &mut D, packets: usize) -> f64 {
    let mut gen = TrafficGen::new(17).with_v6_percent(20).with_flows(64);
    let batch = gen.batch(packets);
    for p in batch {
        device.inject(p);
    }
    let t = Instant::now();
    let out = device.run();
    let dt = t.elapsed().as_secs_f64();
    assert!(!out.is_empty());
    out.len() as f64 / dt
}

fn main() {
    let paper_pisa = [187.33, 153.71, 191.93];
    let paper_ipsa = [65.81, 51.36, 86.62];

    let mut rows = Vec::new();
    for (i, (case, _, _, _)) in programs::use_cases().iter().enumerate() {
        let (ipsa_design, pisa_design) = use_case_designs(i);
        let pi = fpga_params(&ipsa_design);
        let pp = fpga_params(&pisa_design);
        let tp = throughput(Arch::Pisa, &pp, ThroughputOptions::default());
        let ti = throughput(Arch::Ipsa, &pi, ThroughputOptions::default());
        let fixed = throughput(
            Arch::Ipsa,
            &pi,
            ThroughputOptions {
                pipelined_tsp: true,
                bus_bits: Some(512),
            },
        );
        rows.push(vec![
            case.to_string(),
            format!("{:>7.2}", tp.mpps),
            format!("{:>7.2}", paper_pisa[i]),
            format!("{:>7.2}", ti.mpps),
            format!("{:>7.2}", paper_ipsa[i]),
            format!("{:>5.2}x", tp.mpps / ti.mpps),
            format!("{:>5.2}x", paper_pisa[i] / paper_ipsa[i]),
            format!("{:>7.2}", fixed.mpps),
        ]);
        // Shape assertions.
        assert!(tp.mpps > ti.mpps, "{case}: PISA must be faster");
        let ratio = tp.mpps / ti.mpps;
        assert!(
            (1.5..=4.5).contains(&ratio),
            "{case}: ratio {ratio} outside the paper's band"
        );
        assert!(
            fixed.mpps / tp.mpps > 0.9,
            "{case}: fixes must close the gap"
        );
    }
    let mut out = render_table(
        "Sec. 5 throughput — Mpps @ 200 MHz (analytical model over compiled designs)",
        &[
            "use case",
            "PISA",
            "paper",
            "IPSA",
            "paper",
            "ratio",
            "paper",
            "IPSA+fixes",
        ],
        &rows,
    );

    // Bonus: measured software behavioral-model rates (not in the paper;
    // architecture costs show up as real work: distributed parse state,
    // crossbar checks, pooled-memory access accounting).
    let mut ipsa_flow = ipsa_sw_flow();
    populate_rp4_flow(&mut ipsa_flow, 50);
    let ipsa_rate = sw_rate(&mut ipsa_flow.device, 30_000);

    let (mut pisa_flow, _, _) = ipsa_controller::P4Flow::new(
        PisaSwitch::new(CostModel::software()),
        programs::BASE_P4,
        PisaTarget::bmv2(),
    )
    .expect("pisa loads");
    populate_p4_flow(&mut pisa_flow, 50);
    let pisa_rate = sw_rate(&mut pisa_flow.device, 30_000);

    out.push_str(&format!(
        "\nsoftware behavioral models, base design (measured): \
         pisa-bm {:.0} kpps, ipbm {:.0} kpps (ratio {:.2}x)\n",
        pisa_rate / 1e3,
        ipsa_rate / 1e3,
        pisa_rate / ipsa_rate
    ));
    emit("throughput", &out);
}
