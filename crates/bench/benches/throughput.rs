//! E2 — §5 "Throughput": Mpps at 200 MHz for the three use cases on the
//! 8-stage FPGA prototypes (analytical model over the actual compiled
//! designs), plus measured software packet rates of the two behavioral
//! models as a bonus series.
//!
//! Paper (Mpps):  PISA 187.33 / 153.71 / 191.93 — IPSA 65.81 / 51.36 / 86.62
//! Shape to hold: PISA ~2-3.5x faster; IPSA's gap comes from extra memory
//! beats on wide entries plus the per-packet template fetch — and the
//! paper's two fixes (wider bus, pipelined TSP) must recover most of it.

use ipbm::IpbmSwitch;
use ipsa_bench::*;
use ipsa_controller::{programs, Rp4Flow};
use ipsa_core::control::Device;
use ipsa_core::timing::CostModel;
use ipsa_hwmodel::{throughput, Arch, ThroughputOptions};
use ipsa_netpkt::traffic::TrafficGen;
use pisa_bm::{PisaSwitch, PisaTarget};
use serde::Serialize;
use std::time::Instant;

/// Measured software forwarding rate (packets per second) of a device,
/// drained through `run` (interpreter) or `run_batch` (compiled path).
fn sw_rate<D: Device>(device: &mut D, packets: usize, batch_path: bool) -> f64 {
    let mut gen = TrafficGen::new(17).with_v6_percent(20).with_flows(64);
    let batch = gen.batch(packets);
    for p in batch {
        device.inject(p);
    }
    let t = Instant::now();
    let out = if batch_path {
        device.run_batch()
    } else {
        device.run()
    };
    let dt = t.elapsed().as_secs_f64();
    assert!(!out.is_empty());
    out.len() as f64 / dt
}

/// One ipbm software-rate measurement: interpreter vs compiled fast path.
#[derive(Debug, Serialize)]
struct SwSeries {
    case: String,
    interpreter_pps: f64,
    fast_path_pps: f64,
    speedup: f64,
}

/// Machine-readable artifact for CI and EXPERIMENTS.md.
#[derive(Debug, Serialize)]
struct ThroughputJson {
    packets_per_series: usize,
    smoke: bool,
    series: Vec<SwSeries>,
}

/// A base-design ipbm flow with the standard population, plus one of the
/// in-situ use-case updates on top (None = plain base L3).
fn case_flow(case: Option<usize>) -> Rp4Flow<IpbmSwitch> {
    let mut flow = ipsa_sw_flow();
    populate_rp4_flow(&mut flow, 50);
    if let Some(i) = case {
        let (_, _, script, _) = programs::use_cases()[i];
        flow.run_script(script, &programs::bundled_sources)
            .expect("use-case script applies");
        if i == 0 {
            flow.run_script(
                include_str!("../../../programs/ecmp_members.script"),
                &programs::bundled_sources,
            )
            .expect("ecmp members populate");
        }
    }
    flow
}

/// Measures interpreter vs fast-path rates for each use case and writes
/// `BENCH_throughput.json` at the workspace root.
fn sw_series(packets: usize, smoke: bool) -> (Vec<SwSeries>, f64) {
    let cases: [(&str, Option<usize>); 4] = [
        ("base-l3", None),
        ("ecmp", Some(0)),
        ("srv6", Some(1)),
        ("flowprobe", Some(2)),
    ];
    let mut series = Vec::new();
    for (name, case) in cases {
        let interp = sw_rate(&mut case_flow(case).device, packets, false);
        let fast = sw_rate(&mut case_flow(case).device, packets, true);
        series.push(SwSeries {
            case: name.to_string(),
            interpreter_pps: interp,
            fast_path_pps: fast,
            speedup: fast / interp,
        });
    }
    let base_speedup = series[0].speedup;
    let json = ThroughputJson {
        packets_per_series: packets,
        smoke,
        series,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("json serializes"),
    )
    .expect("BENCH_throughput.json written");
    println!("[written to {}]", path.display());
    (json.series, base_speedup)
}

fn main() {
    // Smoke mode (CI): fewer packets, same artifacts.
    let smoke = std::env::var("IPSA_BENCH_SMOKE").is_ok();
    let packets = if smoke { 4_000 } else { 30_000 };

    let paper_pisa = [187.33, 153.71, 191.93];
    let paper_ipsa = [65.81, 51.36, 86.62];

    let mut rows = Vec::new();
    for (i, (case, _, _, _)) in programs::use_cases().iter().enumerate() {
        let (ipsa_design, pisa_design) = use_case_designs(i);
        let pi = fpga_params(&ipsa_design);
        let pp = fpga_params(&pisa_design);
        let tp = throughput(Arch::Pisa, &pp, ThroughputOptions::default());
        let ti = throughput(Arch::Ipsa, &pi, ThroughputOptions::default());
        let fixed = throughput(
            Arch::Ipsa,
            &pi,
            ThroughputOptions {
                pipelined_tsp: true,
                bus_bits: Some(512),
            },
        );
        rows.push(vec![
            case.to_string(),
            format!("{:>7.2}", tp.mpps),
            format!("{:>7.2}", paper_pisa[i]),
            format!("{:>7.2}", ti.mpps),
            format!("{:>7.2}", paper_ipsa[i]),
            format!("{:>5.2}x", tp.mpps / ti.mpps),
            format!("{:>5.2}x", paper_pisa[i] / paper_ipsa[i]),
            format!("{:>7.2}", fixed.mpps),
        ]);
        // Shape assertions.
        assert!(tp.mpps > ti.mpps, "{case}: PISA must be faster");
        let ratio = tp.mpps / ti.mpps;
        assert!(
            (1.5..=4.5).contains(&ratio),
            "{case}: ratio {ratio} outside the paper's band"
        );
        assert!(
            fixed.mpps / tp.mpps > 0.9,
            "{case}: fixes must close the gap"
        );
    }
    let mut out = render_table(
        "Sec. 5 throughput — Mpps @ 200 MHz (analytical model over compiled designs)",
        &[
            "use case",
            "PISA",
            "paper",
            "IPSA",
            "paper",
            "ratio",
            "paper",
            "IPSA+fixes",
        ],
        &rows,
    );

    // Bonus: measured software behavioral-model rates (not in the paper;
    // architecture costs show up as real work: distributed parse state,
    // crossbar checks, pooled-memory access accounting).
    let ipsa_rate = sw_rate(&mut case_flow(None).device, packets, false);

    let (mut pisa_flow, _, _) = ipsa_controller::P4Flow::new(
        PisaSwitch::new(CostModel::software()),
        programs::BASE_P4,
        PisaTarget::bmv2(),
    )
    .expect("pisa loads");
    populate_p4_flow(&mut pisa_flow, 50);
    let pisa_rate = sw_rate(&mut pisa_flow.device, packets, false);

    out.push_str(&format!(
        "\nsoftware behavioral models, base design (measured): \
         pisa-bm {:.0} kpps, ipbm {:.0} kpps (ratio {:.2}x)\n",
        pisa_rate / 1e3,
        ipsa_rate / 1e3,
        pisa_rate / ipsa_rate
    ));

    // ipbm interpreter vs compiled fast path, per use case (the
    // resolve-once/run-many epoch model; see DESIGN.md). Also written as
    // machine-readable BENCH_throughput.json for CI.
    let (series, base_speedup) = sw_series(packets, smoke);
    out.push_str("\nipbm software rates: interpreter vs compiled fast path\n");
    for s in &series {
        out.push_str(&format!(
            "  {:<10} interpreter {:>8.0} kpps   fast path {:>8.0} kpps   ({:.2}x)\n",
            s.case,
            s.interpreter_pps / 1e3,
            s.fast_path_pps / 1e3,
            s.speedup
        ));
    }
    assert!(
        base_speedup >= 3.0,
        "compiled fast path must be >= 3x the interpreter on base L3 (got {base_speedup:.2}x)"
    );
    emit("throughput", &out);
}
