//! E4 — Table 3: power (W) of the two prototypes for the three use cases.
//!
//! The paper's table is partly garbled in the source text; the legible
//! anchors are a per-case decomposition with PISA C3 around 2.95 W total
//! and the statement "the prototype of IPSA consumes about 10% more power
//! than that of PISA". We reproduce the decomposition and check that
//! premium band.

use ipsa_bench::*;
use ipsa_controller::programs;
use ipsa_hwmodel::{power, Arch};

fn main() {
    let mut rows = Vec::new();
    let mut premiums = Vec::new();
    for (i, (case, _, _, _)) in programs::use_cases().iter().enumerate() {
        let (ipsa_design, pisa_design) = use_case_designs(i);
        let pi = fpga_params(&ipsa_design);
        let pp = fpga_params(&pisa_design);
        // Full chips: every physical stage of the prototype burns power on
        // PISA; IPSA powers its active TSPs.
        let wp = power(Arch::Pisa, &pp, FPGA_STAGES);
        let wi = power(Arch::Ipsa, &pi, pi.active_stages);
        let premium = 100.0 * (wi.total_w / wp.total_w - 1.0);
        premiums.push(premium);
        rows.push(vec![
            case.to_string(),
            format!("{:.2}", wp.parser_w),
            format!("{:.2}", wp.processors_w),
            format!("{:.2}", wp.total_w),
            format!("{:.2}", wi.processors_w),
            format!("{:.2}", wi.crossbar_w),
            format!("{:.2}", wi.total_w),
            format!("{premium:+.1}%"),
        ]);
    }
    let mut out = render_table(
        "Table 3 — power (W) per use case (8-stage prototypes)",
        &[
            "use case",
            "PISA parser",
            "PISA procs",
            "PISA total",
            "IPSA TSPs",
            "IPSA xbar",
            "IPSA total",
            "premium",
        ],
        &rows,
    );
    out.push_str(
        "\npaper anchors: PISA C3 ≈ 0.77 + 2.18 = 2.95 W; \
         \"IPSA consumes about 10% more power than PISA\" at full pipelines.\n",
    );

    for (i, p) in premiums.iter().enumerate() {
        assert!(
            (-5.0..=25.0).contains(p),
            "case {i}: premium {p}% far outside the ~10% claim"
        );
    }
    emit("table3_power", &out);
}
