//! Criterion micro-benchmarks of the per-packet and per-compile hot paths.
//! Not a paper artifact — these guard the substrate's performance so the
//! experiment harness stays fast enough to iterate on.

use criterion::{criterion_group, criterion_main, Criterion};
use ipsa_bench::*;
use ipsa_core::control::Device;
use ipsa_core::table::{ActionCall, KeyField, KeyMatch, MatchKind, Table, TableDef, TableEntry};
use ipsa_core::value::{EvalCtx, ValueRef};
use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};
use ipsa_netpkt::linkage::HeaderLinkage;
use ipsa_netpkt::traffic::TrafficGen;
use std::hint::black_box;

fn bench_parsing(c: &mut Criterion) {
    let linkage = HeaderLinkage::standard();
    let pkt = ipv4_udp_packet(&Ipv4UdpSpec::default());
    c.bench_function("parse/on_demand_full_chain", |b| {
        b.iter(|| {
            let mut p = pkt.clone();
            black_box(p.ensure_parsed(&linkage, "udp").unwrap());
        });
    });
    c.bench_function("parse/front_end_parse_all", |b| {
        b.iter(|| {
            let mut p = pkt.clone();
            black_box(p.parse_all(&linkage).unwrap());
        });
    });
}

fn bench_tables(c: &mut Criterion) {
    let linkage = HeaderLinkage::standard();
    let mut fib = Table::new(TableDef {
        name: "fib".into(),
        key: vec![KeyField {
            source: ValueRef::field("ipv4", "dst_addr"),
            bits: 32,
            kind: MatchKind::Lpm,
        }],
        size: 4096,
        actions: vec!["NoAction".into()],
        default_action: ActionCall::no_action(),
        with_counters: false,
    })
    .expect("table");
    for i in 0..1000u128 {
        fib.insert(TableEntry {
            key: vec![KeyMatch::Lpm {
                value: 0x0a00_0000 + (i << 8),
                prefix_len: 24,
            }],
            priority: 0,
            action: ActionCall::no_action(),
            counter: 0,
        })
        .expect("insert");
    }
    let mut pkt = ipv4_udp_packet(&Ipv4UdpSpec {
        dst_ip: 0x0a00_7b01,
        ..Default::default()
    });
    pkt.ensure_parsed(&linkage, "ipv4").expect("parses");
    c.bench_function("table/lpm_lookup_1k_routes", |b| {
        let ctx = EvalCtx::bare(&linkage);
        b.iter(|| black_box(fib.lookup(&pkt, &ctx).unwrap()));
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut flow = ipsa_sw_flow();
    populate_rp4_flow(&mut flow, 50);
    let mut gen = TrafficGen::new(5).with_flows(32);
    let batch = gen.batch(64);
    c.bench_function("pipeline/ipbm_64_packets", |b| {
        b.iter(|| {
            for p in &batch {
                flow.device.inject(p.clone());
            }
            black_box(flow.device.run().len())
        });
    });
}

fn bench_compilers(c: &mut Criterion) {
    let src = ipsa_controller::programs::BASE_RP4;
    c.bench_function("compile/rp4_parse_base", |b| {
        b.iter(|| black_box(rp4_lang::parse(src).unwrap()));
    });
    let prog = rp4_lang::parse(src).expect("parses");
    let target = rp4c::CompilerTarget::fpga();
    c.bench_function("compile/rp4bc_full_base", |b| {
        b.iter(|| black_box(rp4c::full_compile(&prog, &target).unwrap()));
    });
    c.bench_function("compile/incremental_ecmp", |b| {
        b.iter_batched(
            ipsa_fpga_flow,
            |mut flow| {
                flow.run_script(
                    ipsa_controller::programs::ECMP_SCRIPT,
                    &ipsa_controller::programs::bundled_sources,
                )
                .unwrap()
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parsing, bench_tables, bench_pipeline, bench_compilers
}
criterion_main!(benches);
