//! E3 — Table 2: FPGA resource (LUT/FF) utilization of the PISA and IPSA
//! prototypes, per component, for the base design on the 8-stage chip.
//!
//! Paper:
//!   PISA: front parser 0.88/0.10, processors 5.32/0.47, total 6.20/0.57
//!   IPSA: processors 5.83/0.85, crossbar 1.29/0.07, total 7.12/0.92
//!   → IPSA pays +14.84% LUT and +61.40% FF for in-situ programmability.

use ipsa_bench::*;
use ipsa_controller::programs;
use ipsa_hwmodel::{resources, Arch};
use rp4c::{full_compile, CompilerTarget};

fn main() {
    // Base design compiled for each architecture.
    let prog = rp4_lang::parse(programs::BASE_RP4).expect("base parses");
    let ipsa_design = full_compile(&prog, &CompilerTarget::fpga())
        .expect("ipsa compiles")
        .design;
    let ast = p4_lang::parse_p4(programs::BASE_P4).expect("p4 parses");
    let hlir = p4_lang::build_hlir(&ast).expect("hlir");
    let pisa_design =
        pisa_bm::pisa_compile(&hlir, &pisa_bm::PisaTarget::fpga()).expect("pisa compiles");

    let rp = resources(Arch::Pisa, &fpga_params(&pisa_design));
    let ri = resources(Arch::Ipsa, &fpga_params(&ipsa_design));

    let pct = |v: f64| format!("{v:>5.2}%");
    let dash = "-".to_string();
    let rows = vec![
        vec![
            "Front parser".into(),
            pct(rp.front_parser.lut_pct),
            pct(rp.front_parser.ff_pct),
            dash.clone(),
            dash.clone(),
            "0.88% / 0.10%".into(),
            "-".into(),
        ],
        vec![
            "Processors".into(),
            pct(rp.processors.lut_pct),
            pct(rp.processors.ff_pct),
            pct(ri.processors.lut_pct),
            pct(ri.processors.ff_pct),
            "5.32% / 0.47%".into(),
            "5.83% / 0.85%".into(),
        ],
        vec![
            "Crossbar".into(),
            dash.clone(),
            dash.clone(),
            pct(ri.crossbar.lut_pct),
            pct(ri.crossbar.ff_pct),
            "-".into(),
            "1.29% / 0.07%".into(),
        ],
        vec![
            "Total".into(),
            pct(rp.total.lut_pct),
            pct(rp.total.ff_pct),
            pct(ri.total.lut_pct),
            pct(ri.total.ff_pct),
            "6.20% / 0.57%".into(),
            "7.12% / 0.92%".into(),
        ],
    ];
    let mut out = render_table(
        "Table 2 — FPGA resource utilization (base design, 8-stage prototypes)",
        &[
            "component",
            "PISA LUT",
            "PISA FF",
            "IPSA LUT",
            "IPSA FF",
            "paper PISA",
            "paper IPSA",
        ],
        &rows,
    );
    let lut_premium = 100.0 * (ri.total.lut_pct / rp.total.lut_pct - 1.0);
    let ff_premium = 100.0 * (ri.total.ff_pct / rp.total.ff_pct - 1.0);
    out.push_str(&format!(
        "\nIPSA premium: +{lut_premium:.2}% LUT, +{ff_premium:.2}% FF \
         (paper: +14.84% LUT, +61.40% FF)\n"
    ));

    // Shape assertions.
    assert!(rp.front_parser.lut_pct > 0.0 && ri.front_parser.lut_pct == 0.0);
    assert!(ri.crossbar.lut_pct > 0.0 && rp.crossbar.lut_pct == 0.0);
    assert!(ri.total.lut_pct > rp.total.lut_pct);
    assert!(ri.total.ff_pct > rp.total.ff_pct);
    assert!(
        (5.0..=35.0).contains(&lut_premium),
        "LUT premium {lut_premium}% out of band"
    );
    assert!(
        (30.0..=100.0).contains(&ff_premium),
        "FF premium {ff_premium}% out of band"
    );
    assert!(ff_premium > lut_premium, "FF premium dominates");
    emit("table2_resources", &out);
}
