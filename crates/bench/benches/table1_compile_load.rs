//! E1 — Table 1: compiling time (t_C) and loading time (t_L) for the three
//! use cases, conventional P4/PISA flow vs in-situ rP4/IPSA flow, on both
//! the hardware-cost and software-cost device models.
//!
//! Paper values (ms):
//!
//! |      |  C1 t_C | C1 t_L | C2 t_C | C2 t_L | C3 t_C | C3 t_L |
//! |------|---------|--------|--------|--------|--------|--------|
//! | PISA |  3,126  |  917   | 6,061  | 1,297  | 3,373  | 1,048  |
//! | IPSA |     73  |   22   |   187  |    30  |    98  |    25  |
//! | bmv2 |    477  |  113   |   935  |   159  |   495  |   129  |
//! | ipbm |     29  |   13   |    48  |    25  |    31  |    19  |
//!
//! t_C here is real wall-clock of our compilers (the conventional flow
//! recompiles the whole integrated program; the in-situ flow compiles only
//! the snippet and the placement diff). t_L comes from the device cost
//! models (DESIGN.md §4): the conventional flow swaps the full design and
//! replays every entry; the in-situ flow writes a couple of templates and
//! creates only the new tables. Absolute times differ from the paper (its
//! t_C includes p4c + a vendor back end); the *ratios* are the result.

use ipsa_bench::*;
use ipsa_controller::{programs, P4Flow};
use ipsa_core::timing::CostModel;
use pisa_bm::{PisaSwitch, PisaTarget};

/// Pre-update entry count the conventional flow must replay.
const ROUTES: usize = 400;
/// Repetitions per measurement (fresh device state each time; medians
/// reported — the compilers run in well under a millisecond, so single
/// samples are scheduler noise).
const REPS: usize = 7;

struct Row {
    label: &'static str,
    tc_ms: [f64; 3],
    tl_ms: [f64; 3],
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn conventional(cost: CostModel, target: PisaTarget, label: &'static str) -> Row {
    let mut tc = [0.0; 3];
    let mut tl = [0.0; 3];
    for (i, (_case, _, _, integrated)) in programs::use_cases().iter().enumerate() {
        let (mut cs, mut ls) = (Vec::new(), Vec::new());
        for _ in 0..REPS {
            // Fresh base deployment with realistic state each time.
            let (mut flow, _, _) = P4Flow::new(
                PisaSwitch::new(cost.clone()),
                programs::BASE_P4,
                target.clone(),
            )
            .expect("base loads");
            populate_p4_flow(&mut flow, ROUTES);
            let (c, l) = measure_pisa_update(&mut flow, integrated);
            cs.push(c / 1000.0);
            ls.push(l / 1000.0);
        }
        tc[i] = median(cs);
        tl[i] = median(ls);
    }
    Row {
        label,
        tc_ms: tc,
        tl_ms: tl,
    }
}

fn in_situ(fpga: bool, label: &'static str) -> Row {
    let mut tc = [0.0; 3];
    let mut tl = [0.0; 3];
    for (i, (_case, _, script, _)) in programs::use_cases().iter().enumerate() {
        let (mut cs, mut ls) = (Vec::new(), Vec::new());
        for _ in 0..REPS {
            let mut flow = if fpga {
                ipsa_fpga_flow()
            } else {
                ipsa_sw_flow()
            };
            populate_rp4_flow(&mut flow, ROUTES);
            let (c, l) = measure_ipsa_update(&mut flow, script);
            cs.push(c / 1000.0);
            ls.push(l / 1000.0);
        }
        tc[i] = median(cs);
        tl[i] = median(ls);
    }
    Row {
        label,
        tc_ms: tc,
        tl_ms: tl,
    }
}

fn main() {
    let rows = [
        conventional(CostModel::fpga(), PisaTarget::fpga(), "PISA (hw)"),
        in_situ(true, "IPSA (hw)"),
        conventional(CostModel::software(), PisaTarget::bmv2(), "bmv2 (sw)"),
        in_situ(false, "ipbm (sw)"),
    ];

    let fmt = |v: f64| format!("{v:>9.2}");
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        table_rows.push(vec![
            r.label.to_string(),
            fmt(r.tc_ms[0]),
            fmt(r.tl_ms[0]),
            fmt(r.tc_ms[1]),
            fmt(r.tl_ms[1]),
            fmt(r.tc_ms[2]),
            fmt(r.tl_ms[2]),
        ]);
    }
    // Ratio rows, as the paper reports under each pair.
    let ratio = |a: &Row, b: &Row| -> Vec<String> {
        let mut v = vec![format!("  ratio {}/{}", b.label, a.label)];
        for i in 0..3 {
            v.push(format!("{:>8.2}%", 100.0 * b.tc_ms[i] / a.tc_ms[i]));
            v.push(format!("{:>8.2}%", 100.0 * b.tl_ms[i] / a.tl_ms[i]));
        }
        v
    };
    table_rows.push(ratio(&rows[0], &rows[1]));
    table_rows.push(ratio(&rows[2], &rows[3]));

    let mut out = render_table(
        "Table 1 — compile (t_C) and load (t_L) time, ms",
        &[
            "flow", "C1 t_C", "C1 t_L", "C2 t_C", "C2 t_L", "C3 t_C", "C3 t_L",
        ],
        &table_rows,
    );
    out.push_str(&format!(
        "\npaper (ms):            PISA 3126/917 6061/1297 3373/1048 | IPSA 73/22 187/30 98/25\n\
         paper ratios:          IPSA/PISA ≈ 2.3-3.1% t_C, 2.3-2.4% t_L; ipbm/bmv2 ≈ 5-6% t_C, 11-16% t_L\n\
         pre-update state replayed by the conventional flow: {} entries\n",
        2 * ROUTES + 19
    ));

    // Shape assertions: the in-situ flow must be a small fraction.
    for i in 0..3 {
        assert!(
            rows[1].tl_ms[i] / rows[0].tl_ms[i] < 0.20,
            "hw t_L ratio out of shape for case {i}"
        );
        assert!(
            rows[3].tl_ms[i] / rows[2].tl_ms[i] < 0.30,
            "sw t_L ratio out of shape for case {i}"
        );
    }
    emit("table1_compile_load", &out);
}
