//! E11 — elastic shard runtime under bursty overload, plus weighted QoS
//! queueing.
//!
//! Part 1 drives the base L3 design through [`ipbm::ShardedSwitch`] with
//! the autoscaler enabled: a light phase (the live set idles at
//! `min_shards`), a bursty Zipf/IMIX overload phase (the live set must
//! climb to `max_shards`), and a light tail (it must shrink back). The
//! grow/shrink thresholds are calibrated from a measured per-packet busy
//! time, so the bench is self-scaling across debug/release builds and
//! host speeds. Per-batch busy-time-per-packet is the latency proxy:
//! p50/p99 are reported for the light and overload phases.
//!
//! Part 2 overloads a standalone [`TrafficManager`] with a 10/30/60
//! EF/AF/BE DSCP mix arriving faster than it is served, and checks the
//! QoS contract: strict-priority traffic is never tail-dropped while
//! best-effort absorbs the overflow, and the WDRR weights shape the
//! residual service toward assured forwarding.
//!
//! Writes `BENCH_elastic.json` at the workspace root.

use ipbm::pm::{TmStats, TrafficManager, TM_QUEUE_CAPACITY};
use ipbm::AutoscaleConfig;
use ipsa_bench::{emit, ipsa_sharded_flow, populate_rp4_flow, render_table};
use ipsa_core::control::Device;
use ipsa_netpkt::builder::{ipv4_udp_packet, Ipv4UdpSpec};
use ipsa_netpkt::traffic::TrafficGen;
use serde::Serialize;

/// One batch of the elastic-scaling trace.
#[derive(Debug, Serialize)]
struct TraceRow {
    batch: usize,
    phase: &'static str,
    injected: usize,
    emitted: usize,
    live_shards: usize,
    target_shards: usize,
    busy_ns: u64,
    ns_per_pkt: f64,
}

#[derive(Debug, Serialize)]
struct Percentiles {
    p50_ns_per_pkt: f64,
    p99_ns_per_pkt: f64,
}

#[derive(Debug, Serialize)]
struct QosJson {
    rounds: usize,
    enqueue_per_round: usize,
    dequeue_per_round: usize,
    stats: TmStats,
}

#[derive(Debug, Serialize)]
struct ElasticJson {
    smoke: bool,
    ns_per_pkt_calibration: u64,
    grow_busy_ns: u64,
    shrink_busy_ns: u64,
    min_shards: usize,
    max_shards: usize,
    light_batch: usize,
    overload_batch: usize,
    trace: Vec<TraceRow>,
    light_latency: Percentiles,
    overload_latency: Percentiles,
    scale: ipbm::ScaleStats,
    reached_max: bool,
    returned_to_min: bool,
    qos: QosJson,
}

fn percentile(vals: &[f64], p: f64) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let mut v = vals.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v[((v.len() - 1) as f64 * p).round() as usize]
}

fn main() {
    let smoke = std::env::var("IPSA_BENCH_SMOKE").is_ok();
    const MIN_SHARDS: usize = 1;
    const MAX_SHARDS: usize = 4;
    const LIGHT_BATCH: usize = 64;
    let overload_batch = if smoke { 2_048 } else { 8_192 };

    // --- Part 1: elastic scaling under bursty Zipf/IMIX overload -------
    let mut flow = ipsa_sharded_flow(MIN_SHARDS);
    populate_rp4_flow(&mut flow, 50);
    let sw = &mut flow.device;
    // All-v4 traffic so the populated 10.1/16 route forwards everything;
    // Zipf flow popularity + IMIX sizes make the overload bursts
    // production-shaped rather than uniform.
    let mut gen = TrafficGen::new(31)
        .with_v6_percent(0)
        .with_flows(512)
        .with_zipf(1.1)
        .with_imix();

    // Warm batch compiles + publishes the epoch, then a calibration batch
    // measures the per-packet busy cost this host/build actually has.
    for (p, _) in gen.scaled_batch(64) {
        sw.inject(p);
    }
    sw.run_batch();
    assert!(sw.on_compiled_path(), "bench must run the compiled path");
    let mut prev_busy: u64 = sw.shard_busy_ns().iter().sum();
    const CAL_N: usize = 256;
    for (p, _) in gen.scaled_batch(CAL_N) {
        sw.inject(p);
    }
    sw.run_batch();
    let cal_busy: u64 = sw.shard_busy_ns().iter().sum::<u64>() - prev_busy;
    let ns_per_pkt = (cal_busy / CAL_N as u64).max(1);
    prev_busy += cal_busy;

    // Thresholds sit between the light (64-packet) and overload
    // (thousands-of-packets) per-shard busy regimes: light batches read
    // idle even at one shard, overload batches read overloaded even at
    // four.
    let grow_busy_ns = ns_per_pkt * 512;
    let shrink_busy_ns = ns_per_pkt * 128;
    sw.set_autoscale(Some(AutoscaleConfig {
        min_shards: MIN_SHARDS,
        max_shards: MAX_SHARDS,
        grow_busy_ns,
        shrink_busy_ns,
        grow_after: 1,
        shrink_after: 2,
    }))
    .expect("valid autoscale config");

    let mut trace: Vec<TraceRow> = Vec::new();
    let run_phase = |sw: &mut ipbm::ShardedSwitch,
                     gen: &mut TrafficGen,
                     prev_busy: &mut u64,
                     trace: &mut Vec<TraceRow>,
                     phase: &'static str,
                     batch: usize,
                     batches: usize,
                     stop: &dyn Fn(&ipbm::ShardedSwitch) -> bool| {
        for _ in 0..batches {
            for (p, _) in gen.scaled_batch(batch) {
                sw.inject(p);
            }
            let emitted = sw.run_batch().len();
            let total: u64 = sw.shard_busy_ns().iter().sum();
            let busy = total - *prev_busy;
            *prev_busy = total;
            trace.push(TraceRow {
                batch: trace.len(),
                phase,
                injected: batch,
                emitted,
                live_shards: sw.live_shards(),
                target_shards: sw.target_shards(),
                busy_ns: busy,
                ns_per_pkt: busy as f64 / batch as f64,
            });
            if stop(sw) {
                break;
            }
        }
    };

    // Light phase: the live set must idle at min_shards.
    run_phase(
        sw,
        &mut gen,
        &mut prev_busy,
        &mut trace,
        "light",
        LIGHT_BATCH,
        6,
        &|_| false,
    );
    // Bursty overload: run until the live set reaches max_shards, then
    // hold it there a few batches to show the plateau.
    run_phase(
        sw,
        &mut gen,
        &mut prev_busy,
        &mut trace,
        "overload",
        overload_batch,
        16,
        &|sw| sw.live_shards() == MAX_SHARDS,
    );
    let reached_max = sw.live_shards() == MAX_SHARDS;
    run_phase(
        sw,
        &mut gen,
        &mut prev_busy,
        &mut trace,
        "overload",
        overload_batch,
        3,
        &|_| false,
    );
    // Light tail: the live set must shrink back to min_shards.
    run_phase(
        sw,
        &mut gen,
        &mut prev_busy,
        &mut trace,
        "light",
        LIGHT_BATCH,
        30,
        &|sw| sw.live_shards() == MIN_SHARDS,
    );
    let returned_to_min = sw.live_shards() == MIN_SHARDS;
    let scale = sw.scale_stats();

    let lat_of = |phase: &str| -> Vec<f64> {
        trace
            .iter()
            .filter(|r| r.phase == phase)
            .map(|r| r.ns_per_pkt)
            .collect()
    };
    let light_lat = lat_of("light");
    let over_lat = lat_of("overload");
    let light_latency = Percentiles {
        p50_ns_per_pkt: percentile(&light_lat, 0.5),
        p99_ns_per_pkt: percentile(&light_lat, 0.99),
    };
    let overload_latency = Percentiles {
        p50_ns_per_pkt: percentile(&over_lat, 0.5),
        p99_ns_per_pkt: percentile(&over_lat, 0.99),
    };

    // --- Part 2: QoS contract under sustained TM overload ---------------
    // 10% EF / 30% AF11 / 60% BE arrivals at 4x the service rate: the
    // per-class queues must protect priority absolutely and shape the
    // rest 3:1 toward assured forwarding.
    let mut tm = TrafficManager::new(4, TM_QUEUE_CAPACITY).expect("valid TM config");
    let rounds = if smoke { 120 } else { 400 };
    const ENQ_PER_ROUND: usize = 32;
    const DEQ_PER_ROUND: usize = 8;
    let mut arrival = 0u32;
    for _ in 0..rounds {
        for i in 0..ENQ_PER_ROUND {
            let dscp = match i % 10 {
                0 => 46,     // EF -> strict priority
                1..=3 => 10, // AF11 -> assured
                _ => 0,      // BE
            };
            let mut p = ipv4_udp_packet(&Ipv4UdpSpec {
                src_ip: 0x0a00_0000 + arrival,
                dst_ip: 0x0a01_0000 + (arrival % 512),
                dscp,
                payload: vec![0x5A; 64],
                ..Default::default()
            });
            p.meta.egress_port = Some((i % 4) as u16);
            tm.enqueue(p);
            arrival += 1;
        }
        for _ in 0..DEQ_PER_ROUND {
            tm.dequeue();
        }
    }
    let qos = QosJson {
        rounds,
        enqueue_per_round: ENQ_PER_ROUND,
        dequeue_per_round: DEQ_PER_ROUND,
        stats: tm.stats,
    };

    // --- Report ----------------------------------------------------------
    let mut phases: Vec<&'static str> = Vec::new();
    for r in &trace {
        if phases.last() != Some(&r.phase) {
            phases.push(r.phase);
        }
    }
    let rows: Vec<Vec<String>> = phases
        .iter()
        .enumerate()
        .map(|(k, ph)| {
            // Rows summarize each contiguous phase segment.
            let seg: Vec<&TraceRow> = {
                let mut start = 0;
                let mut segs: Vec<(usize, usize)> = Vec::new();
                let mut cur = trace[0].phase;
                for (i, r) in trace.iter().enumerate() {
                    if r.phase != cur {
                        segs.push((start, i));
                        start = i;
                        cur = r.phase;
                    }
                }
                segs.push((start, trace.len()));
                trace[segs[k].0..segs[k].1].iter().collect()
            };
            let lats: Vec<f64> = seg.iter().map(|r| r.ns_per_pkt).collect();
            vec![
                ph.to_string(),
                seg.len().to_string(),
                seg.first().map(|r| r.live_shards).unwrap_or(0).to_string(),
                seg.last().map(|r| r.live_shards).unwrap_or(0).to_string(),
                format!("{:.0}", percentile(&lats, 0.5)),
                format!("{:.0}", percentile(&lats, 0.99)),
            ]
        })
        .collect();
    let mut out = render_table(
        "Elastic shard runtime — bursty Zipf/IMIX overload",
        &[
            "phase",
            "batches",
            "live@start",
            "live@end",
            "p50 ns/pkt",
            "p99 ns/pkt",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\ncalibrated {ns_per_pkt} ns/pkt; thresholds grow={grow_busy_ns} shrink={shrink_busy_ns} ns; \
         scaling: {} grows, {} shrinks, {} retired.\n\
         QoS overload ({rounds} rounds, {ENQ_PER_ROUND} in / {DEQ_PER_ROUND} out): \
         priority {}+{} enq/drop, assured {}+{}, best-effort {}+{}.\n",
        scale.grows,
        scale.shrinks,
        scale.retired,
        qos.stats.priority.enqueued,
        qos.stats.priority.tail_drops,
        qos.stats.assured.enqueued,
        qos.stats.assured.tail_drops,
        qos.stats.best_effort.enqueued,
        qos.stats.best_effort.tail_drops,
    ));

    let json = ElasticJson {
        smoke,
        ns_per_pkt_calibration: ns_per_pkt,
        grow_busy_ns,
        shrink_busy_ns,
        min_shards: MIN_SHARDS,
        max_shards: MAX_SHARDS,
        light_batch: LIGHT_BATCH,
        overload_batch,
        trace,
        light_latency,
        overload_latency,
        scale,
        reached_max,
        returned_to_min,
        qos,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_elastic.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("json serializes"),
    )
    .expect("BENCH_elastic.json written");
    println!("[written to {}]", path.display());

    emit("elastic", &out);

    // CI gates.
    assert!(
        json.reached_max,
        "sustained overload must grow the live set to max_shards"
    );
    assert!(
        json.returned_to_min,
        "an idle tail must shrink the live set back to min_shards"
    );
    assert!(json.scale.grows >= 3 && json.scale.shrinks >= 3 && json.scale.retired >= 3);
    let q = &json.qos.stats;
    assert_eq!(
        q.priority.tail_drops, 0,
        "strict-priority traffic must never tail-drop under overload"
    );
    assert!(
        q.best_effort.tail_drops > 0,
        "best-effort must be the class absorbing the overflow"
    );
    assert!(
        q.assured.dequeued > q.best_effort.dequeued,
        "WDRR must shape residual service toward assured forwarding \
         (af={} be={})",
        q.assured.dequeued,
        q.best_effort.dequeued
    );
}
