//! Embedded copies of the repository's `programs/` assets: the base design
//! in rP4 and P4, the three use-case snippets, their load scripts, and the
//! use-case-integrated full P4 variants the conventional flow recompiles.
//!
//! Embedding keeps examples, tests, and benches independent of the working
//! directory.

/// The base L2/L3 design (Fig. 4 stages A–J), rP4.
pub const BASE_RP4: &str = include_str!("../../../programs/base.rp4");
/// The base design, P4-16.
pub const BASE_P4: &str = include_str!("../../../programs/base.p4");

/// C1 — ECMP snippet (Fig. 5(a)).
pub const ECMP_RP4: &str = include_str!("../../../programs/ecmp.rp4");
/// C1 — load script (Fig. 5(b) pattern).
pub const ECMP_SCRIPT: &str = include_str!("../../../programs/ecmp.script");
/// C1 — base + ECMP integrated, full P4 (conventional flow input).
pub const BASE_ECMP_P4: &str = include_str!("../../../programs/base_ecmp.p4");

/// C2 — SRv6 snippet.
pub const SRV6_RP4: &str = include_str!("../../../programs/srv6.rp4");
/// C2 — load script (Fig. 5(c) pattern).
pub const SRV6_SCRIPT: &str = include_str!("../../../programs/srv6.script");
/// C2 — base + SRv6 integrated, full P4.
pub const BASE_SRV6_P4: &str = include_str!("../../../programs/base_srv6.p4");

/// C3 — flow-probe snippet.
pub const FLOWPROBE_RP4: &str = include_str!("../../../programs/flowprobe.rp4");
/// C3 — load script.
pub const FLOWPROBE_SCRIPT: &str = include_str!("../../../programs/flowprobe.script");
/// C3 — base + probe integrated, full P4.
pub const BASE_PROBE_P4: &str = include_str!("../../../programs/base_probe.p4");

/// Resolves the snippet file names used by the bundled scripts.
pub fn bundled_sources(name: &str) -> Option<String> {
    match name {
        "ecmp.rp4" => Some(ECMP_RP4.to_string()),
        "srv6.rp4" => Some(SRV6_RP4.to_string()),
        "flowprobe.rp4" => Some(FLOWPROBE_RP4.to_string()),
        "base.rp4" => Some(BASE_RP4.to_string()),
        _ => None,
    }
}

/// `(use case id, rP4 snippet, load script, integrated full P4)` for the
/// three evaluation use cases, in paper order.
pub fn use_cases() -> [(&'static str, &'static str, &'static str, &'static str); 3] {
    [
        ("C1-ECMP", ECMP_RP4, ECMP_SCRIPT, BASE_ECMP_P4),
        ("C2-SRv6", SRV6_RP4, SRV6_SCRIPT, BASE_SRV6_P4),
        (
            "C3-FlowProbe",
            FLOWPROBE_RP4,
            FLOWPROBE_SCRIPT,
            BASE_PROBE_P4,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rp4_assets_parse() -> Result<(), String> {
        for (name, src) in [
            ("base", BASE_RP4),
            ("ecmp", ECMP_RP4),
            ("srv6", SRV6_RP4),
            ("flowprobe", FLOWPROBE_RP4),
        ] {
            rp4_lang::parse(src).map_err(|e| format!("{name}: {e}"))?;
        }
        Ok(())
    }

    #[test]
    fn all_p4_assets_parse_and_build_hlir() -> Result<(), String> {
        for (name, src) in [
            ("base", BASE_P4),
            ("ecmp", BASE_ECMP_P4),
            ("srv6", BASE_SRV6_P4),
            ("probe", BASE_PROBE_P4),
        ] {
            let ast = p4_lang::parse_p4(src).map_err(|e| format!("{name}: {e}"))?;
            p4_lang::build_hlir(&ast).map_err(|e| format!("{name}: {e}"))?;
        }
        Ok(())
    }

    #[test]
    fn all_scripts_parse() -> Result<(), String> {
        for (name, src) in [
            ("ecmp", ECMP_SCRIPT),
            ("srv6", SRV6_SCRIPT),
            ("flowprobe", FLOWPROBE_SCRIPT),
        ] {
            crate::script::parse_script(src).map_err(|e| format!("{name}: {e}"))?;
        }
        Ok(())
    }

    #[test]
    fn base_rp4_passes_semantics() -> Result<(), String> {
        let prog = rp4_lang::parse(BASE_RP4).map_err(|e| e.to_string())?;
        rp4_lang::check(&prog, None).map_err(|e| format!("{e:?}"))?;
        Ok(())
    }

    #[test]
    fn snippets_check_against_base() -> Result<(), String> {
        let base = rp4_lang::parse(BASE_RP4).map_err(|e| e.to_string())?;
        for (name, src) in [
            ("ecmp", ECMP_RP4),
            ("srv6", SRV6_RP4),
            ("flowprobe", FLOWPROBE_RP4),
        ] {
            let snippet = rp4_lang::parse(src).map_err(|e| format!("{name}: {e}"))?;
            rp4_lang::check(&snippet, Some(&base)).map_err(|errs| format!("{name}: {errs:?}"))?;
        }
        Ok(())
    }
}
