//! The two design-flow drivers of Fig. 3.
//!
//! - [`Rp4Flow`]: the in-situ flow. Scripts compile through rp4bc's
//!   incremental path into a `Drain … Resume` message diff; only new
//!   tables need population. Compile time (t_C) is measured around the
//!   actual compiler work; load time (t_L) comes from the device's cost
//!   model.
//! - [`P4Flow`]: the conventional flow. Any change means recompiling the
//!   *entire* P4 program, swapping the whole design in, and repopulating
//!   **all** tables — the controller replays every entry it has ever
//!   installed, exactly the overhead the paper calls out under Table 1.

use std::time::Instant;

use ipsa_core::control::{ApplyReport, ControlMsg, Device};
use ipsa_core::table::TableEntry;
use ipsa_core::template::CompiledDesign;
use p4_lang::{build_hlir, parse_p4};
use pisa_bm::{pisa_compile, PisaTarget};
use rp4_lang::ast::Program;
use rp4c::api_gen::TableApi;
use rp4c::backend::{CompileError, CompilerTarget};
use rp4c::incremental::{incremental_compile, UpdateCmd, UpdateStats};
use rp4c::layout::LayoutAlgo;
use rp4c::Compilation;

use crate::script::{parse_script, ScriptCmd, ScriptError};
use crate::table_api::{build_entry, build_key, find_api, ApiError};

/// Controller-level error.
#[derive(Debug)]
pub enum ControllerError {
    /// Script syntax.
    Script(ScriptError),
    /// rP4 snippet parse failure.
    Rp4(rp4_lang::ParseError),
    /// P4 parse failure.
    P4(p4_lang::P4ParseError),
    /// HLIR construction failure.
    Hlir(p4_lang::HlirError),
    /// Compiler failure.
    Compile(CompileError),
    /// Table-API validation failure.
    Api(ApiError),
    /// Device rejected a message.
    Device(ipsa_core::error::CoreError),
    /// Device rejected a batch mid-way and rolled it back transactionally:
    /// the device's state is unchanged, so the controller's own view (table
    /// shadow, installed program) is still in sync and needs no failback.
    Rollback {
        /// Index of the failing message within the batch.
        index: usize,
        /// The device error that aborted the batch.
        cause: ipsa_core::error::CoreError,
    },
    /// Referenced snippet file not available.
    MissingSource(String),
    /// Static analysis rejected an update plan (RP4105 etc.).
    Verify(Vec<rp4_lang::Diagnostic>),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::Script(e) => write!(f, "{e}"),
            ControllerError::Rp4(e) => write!(f, "{e}"),
            ControllerError::P4(e) => write!(f, "{e}"),
            ControllerError::Hlir(e) => write!(f, "{e}"),
            ControllerError::Compile(e) => write!(f, "{e}"),
            ControllerError::Api(e) => write!(f, "{e}"),
            ControllerError::Device(e) => write!(f, "device error: {e}"),
            ControllerError::Rollback { index, cause } => write!(
                f,
                "device rolled back the control batch: message {index} failed: {cause} \
                 (device state unchanged)"
            ),
            ControllerError::MissingSource(s) => write!(f, "snippet file `{s}` not provided"),
            ControllerError::Verify(diags) => {
                writeln!(f, "{} unsafe plan message(s):", diags.len())?;
                for d in diags {
                    writeln!(f, "  {}", d.header())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ControllerError {}

impl From<ScriptError> for ControllerError {
    fn from(e: ScriptError) -> Self {
        ControllerError::Script(e)
    }
}
impl From<CompileError> for ControllerError {
    fn from(e: CompileError) -> Self {
        ControllerError::Compile(e)
    }
}
impl From<ApiError> for ControllerError {
    fn from(e: ApiError) -> Self {
        ControllerError::Api(e)
    }
}
impl From<rp4_lang::ParseError> for ControllerError {
    fn from(e: rp4_lang::ParseError) -> Self {
        ControllerError::Rp4(e)
    }
}
impl From<p4_lang::P4ParseError> for ControllerError {
    fn from(e: p4_lang::P4ParseError) -> Self {
        ControllerError::P4(e)
    }
}
impl From<p4_lang::HlirError> for ControllerError {
    fn from(e: p4_lang::HlirError) -> Self {
        ControllerError::Hlir(e)
    }
}
impl From<ipsa_core::error::CoreError> for ControllerError {
    fn from(e: ipsa_core::error::CoreError) -> Self {
        match e {
            ipsa_core::error::CoreError::RolledBack { index, cause } => ControllerError::Rollback {
                index,
                cause: *cause,
            },
            other => ControllerError::Device(other),
        }
    }
}

/// Outcome of one script run on the rP4 flow.
#[derive(Debug, Clone, Default)]
pub struct ScriptOutcome {
    /// Wall-clock compiler time across the script's update batches, µs
    /// (t_C).
    pub compile_us: f64,
    /// Merged device apply report; `load_us` is t_L.
    pub report: ApplyReport,
    /// Stats of the last structural update, if any.
    pub update_stats: Option<UpdateStats>,
}

/// A structural snapshot used for live-trial failback.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    design: CompiledDesign,
    program: Program,
    apis: Vec<TableApi>,
}

/// The rP4 / IPSA design-flow driver.
pub struct Rp4Flow<D: Device> {
    /// The managed device.
    pub device: D,
    /// Current design (rp4bc's view of the device).
    pub design: CompiledDesign,
    /// Current base program (updated on every load/unload).
    pub program: Program,
    /// Current table APIs.
    pub apis: Vec<TableApi>,
    /// Placement algorithm for incremental updates.
    pub algo: LayoutAlgo,
    /// Skip the plan safety check in [`Rp4Flow::apply_plan`] (operator
    /// override for hand-written plans; unsafe plans corrupt live traffic).
    pub force: bool,
    target: CompilerTarget,
}

impl<D: Device> Rp4Flow<D> {
    /// Installs a full compilation onto a blank device.
    pub fn install(
        mut device: D,
        compilation: Compilation,
        target: CompilerTarget,
    ) -> Result<(Self, ApplyReport), ControllerError> {
        let msgs = ipsa_core::control::full_install_msgs(&compilation.design);
        let report = device.apply(&msgs)?;
        let mut flow = Rp4Flow {
            device,
            design: compilation.design,
            program: compilation.program,
            apis: compilation.apis,
            algo: LayoutAlgo::Dp,
            force: false,
            target,
        };
        flow.refresh_facts();
        Ok((flow, report))
    }

    /// Recomputes the dataflow facts for the current design and installs
    /// them on the device. Called after every structural change so the
    /// device's fact-guided fast path is never stale: the device itself
    /// clears facts on any non-entry control message, and this puts fresh
    /// ones back.
    fn refresh_facts(&mut self) {
        let facts = rp4_dfa::design_facts(&self.design);
        self.device
            .install_facts(if facts.is_empty() { None } else { Some(facts) });
    }

    fn flush_updates(
        &mut self,
        cmds: &mut Vec<UpdateCmd>,
        outcome: &mut ScriptOutcome,
    ) -> Result<(), ControllerError> {
        if cmds.is_empty() {
            return Ok(());
        }
        let t0 = Instant::now();
        let plan = incremental_compile(&self.design, &self.program, cmds, &self.target, self.algo)?;
        outcome.compile_us += t0.elapsed().as_secs_f64() * 1e6;
        let report = self.device.apply(&plan.msgs)?;
        outcome.report.merge(&report);
        outcome.update_stats = Some(plan.stats.clone());
        self.design = plan.design;
        self.program = plan.program;
        self.apis = plan.apis;
        cmds.clear();
        self.refresh_facts();
        Ok(())
    }

    /// A checkpoint of the controller/device structural state, for the
    /// paper's "reliable failback procedure": live-trial a function, then
    /// roll back with [`Rp4Flow::rollback`].
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            design: self.design.clone(),
            program: self.program.clone(),
            apis: self.apis.clone(),
        }
    }

    /// Rolls the device back to a checkpoint by applying the minimal
    /// structural diff (entries of untouched tables survive). Returns the
    /// apply report.
    pub fn rollback(&mut self, cp: &Checkpoint) -> Result<ApplyReport, ControllerError> {
        let msgs = rp4c::design_diff(&self.design, &cp.design);
        let report = self.device.apply(&msgs)?;
        self.design = cp.design.clone();
        self.program = cp.program.clone();
        self.apis = cp.apis.clone();
        self.refresh_facts();
        Ok(report)
    }

    /// Pre-compiles a *structural* script into an update plan without
    /// touching the device — "in cases the incremental updates can be
    /// pre-compiled, t_L will dominate the performance" (Sec. 4.3). The
    /// script must not contain table operations (those are runtime-only).
    pub fn plan_script(
        &self,
        script: &str,
        sources: &dyn Fn(&str) -> Option<String>,
    ) -> Result<rp4c::UpdatePlan, ControllerError> {
        let cmds = parse_script(script)?;
        let mut update_cmds = Vec::new();
        for cmd in cmds {
            update_cmds.push(match cmd {
                ScriptCmd::Load { file, func } => {
                    let src = sources(&file)
                        .ok_or_else(|| ControllerError::MissingSource(file.clone()))?;
                    let snippet = rp4_lang::parse(&src).map_err(ControllerError::Rp4)?;
                    UpdateCmd::Load { snippet, func }
                }
                ScriptCmd::Unload { func } => UpdateCmd::Unload { func },
                ScriptCmd::Update { file, func } => {
                    let src = sources(&file)
                        .ok_or_else(|| ControllerError::MissingSource(file.clone()))?;
                    let snippet = rp4_lang::parse(&src).map_err(ControllerError::Rp4)?;
                    UpdateCmd::Replace { snippet, func }
                }
                ScriptCmd::AddLink { from, to } => UpdateCmd::AddLink { from, to },
                ScriptCmd::DelLink { from, to } => UpdateCmd::DelLink { from, to },
                ScriptCmd::LinkHeader { pre, next, tag } => {
                    UpdateCmd::LinkHeader { pre, next, tag }
                }
                ScriptCmd::UnlinkHeader { pre, next } => UpdateCmd::UnlinkHeader { pre, next },
                other => {
                    return Err(ControllerError::Script(ScriptError {
                        line: 0,
                        msg: format!("table operation {other:?} cannot be pre-compiled"),
                    }))
                }
            });
        }
        Ok(incremental_compile(
            &self.design,
            &self.program,
            &update_cmds,
            &self.target,
            self.algo,
        )?)
    }

    /// Applies a pre-compiled plan. Only t_L is paid here; the plan must
    /// have been computed against the current design (enforced by checking
    /// the template baseline).
    ///
    /// Plans from [`Rp4Flow::plan_script`] are safe by construction, but
    /// this method also accepts deserialized or hand-assembled plans — so
    /// unless [`Rp4Flow::force`] is set it re-verifies that every
    /// structural message sits inside a `Drain … Resume` window (RP4105)
    /// and that the plan is a *translation-validated* update: stages of
    /// functions the plan does not touch must behave identically before
    /// and after (`rp4-equiv`, RP42xx). It also enumerates the feasible
    /// paths of both designs and rejects plans that regress the static
    /// worst-case per-packet cost bound disproportionately (`rp4-cover`,
    /// RP4404).
    pub fn apply_plan(&mut self, plan: rp4c::UpdatePlan) -> Result<ApplyReport, ControllerError> {
        if !self.force {
            let unsafe_msgs: Vec<_> = rp4_verify::verify_msgs(&plan.msgs)
                .into_iter()
                .filter(|d| d.severity == rp4_lang::Severity::Error)
                .collect();
            if !unsafe_msgs.is_empty() {
                return Err(ControllerError::Verify(unsafe_msgs));
            }
            let divergent: Vec<_> = rp4_equiv::check_design_design(
                &self.design,
                &plan.design,
                &rp4_equiv::EquivOptions::default(),
            )
            .into_iter()
            .filter(|d| d.severity == rp4_lang::Severity::Error)
            .collect();
            if !divergent.is_empty() {
                return Err(ControllerError::Verify(divergent));
            }
            // RP4306: the plan must not orphan a metadata field some
            // surviving stage still reads (dataflow fact regression).
            let regressions = rp4_dfa::check_plan(&self.program, &plan.program);
            if !regressions.is_empty() {
                return Err(ControllerError::Verify(regressions));
            }
            // RP4404: the plan must not regress the static worst-case
            // per-packet cost bound beyond the allowed slack (path
            // enumeration over both designs, `rp4-cover`).
            let wcet = rp4_cover::check_plan_wcet(
                &self.design,
                &plan.design,
                Some(&plan.program),
                &rp4_cover::CoverOptions::default(),
            );
            if !wcet.is_empty() {
                return Err(ControllerError::Verify(wcet));
            }
        }
        let report = self.device.apply(&plan.msgs)?;
        self.design = plan.design;
        self.program = plan.program;
        self.apis = plan.apis;
        self.refresh_facts();
        Ok(report)
    }

    /// Runs a script. `sources` resolves snippet file names to rP4 text.
    pub fn run_script(
        &mut self,
        script: &str,
        sources: &dyn Fn(&str) -> Option<String>,
    ) -> Result<ScriptOutcome, ControllerError> {
        let cmds = parse_script(script)?;
        let mut outcome = ScriptOutcome::default();
        let mut pending: Vec<UpdateCmd> = Vec::new();
        for cmd in cmds {
            match cmd {
                ScriptCmd::Load { file, func } => {
                    let src = sources(&file)
                        .ok_or_else(|| ControllerError::MissingSource(file.clone()))?;
                    // Snippet parse time is part of the measured compile.
                    let t0 = Instant::now();
                    let snippet = rp4_lang::parse(&src).map_err(ControllerError::Rp4)?;
                    outcome.compile_us += t0.elapsed().as_secs_f64() * 1e6;
                    pending.push(UpdateCmd::Load { snippet, func });
                }
                ScriptCmd::Unload { func } => pending.push(UpdateCmd::Unload { func }),
                ScriptCmd::Update { file, func } => {
                    let src = sources(&file)
                        .ok_or_else(|| ControllerError::MissingSource(file.clone()))?;
                    let t0 = Instant::now();
                    let snippet = rp4_lang::parse(&src).map_err(ControllerError::Rp4)?;
                    outcome.compile_us += t0.elapsed().as_secs_f64() * 1e6;
                    pending.push(UpdateCmd::Replace { snippet, func });
                }
                ScriptCmd::AddLink { from, to } => pending.push(UpdateCmd::AddLink { from, to }),
                ScriptCmd::DelLink { from, to } => pending.push(UpdateCmd::DelLink { from, to }),
                ScriptCmd::LinkHeader { pre, next, tag } => {
                    pending.push(UpdateCmd::LinkHeader { pre, next, tag });
                }
                ScriptCmd::UnlinkHeader { pre, next } => {
                    pending.push(UpdateCmd::UnlinkHeader { pre, next });
                }
                ScriptCmd::TableAdd {
                    table,
                    action,
                    keys,
                    args,
                    priority,
                } => {
                    self.flush_updates(&mut pending, &mut outcome)?;
                    let api = find_api(&self.apis, &table)?;
                    let entry = build_entry(api, &action, &keys, &args, priority)?;
                    let r = self
                        .device
                        .apply(&[ControlMsg::AddEntry { table, entry }])?;
                    outcome.report.merge(&r);
                }
                ScriptCmd::TableDel { table, keys } => {
                    self.flush_updates(&mut pending, &mut outcome)?;
                    let api = find_api(&self.apis, &table)?;
                    let key = build_key(api, &keys)?;
                    let r = self.device.apply(&[ControlMsg::DelEntry { table, key }])?;
                    outcome.report.merge(&r);
                }
                ScriptCmd::TableDefault {
                    table,
                    action,
                    args,
                } => {
                    self.flush_updates(&mut pending, &mut outcome)?;
                    let r = self.device.apply(&[ControlMsg::SetDefaultAction {
                        table,
                        action: ipsa_core::table::ActionCall::new(action, args),
                    }])?;
                    outcome.report.merge(&r);
                }
            }
        }
        self.flush_updates(&mut pending, &mut outcome)?;
        Ok(outcome)
    }
}

/// The conventional P4 / PISA design-flow driver.
pub struct P4Flow<D: Device> {
    /// The managed device.
    pub device: D,
    /// Current full P4 source.
    pub source: String,
    /// Current table APIs (regenerated on each compile).
    pub apis: Vec<TableApi>,
    target: PisaTarget,
    /// Every installed entry, replayed after each reload.
    entries: Vec<(String, TableEntry)>,
    design: Option<CompiledDesign>,
}

impl<D: Device> P4Flow<D> {
    /// Creates the flow and loads the initial program.
    pub fn new(
        device: D,
        source: impl Into<String>,
        target: PisaTarget,
    ) -> Result<(Self, f64, ApplyReport), ControllerError> {
        let mut flow = P4Flow {
            device,
            source: String::new(),
            apis: vec![],
            target,
            entries: vec![],
            design: None,
        };
        let (t_c, report) = flow.update_source(source.into())?;
        Ok((flow, t_c, report))
    }

    /// Current design.
    pub fn design(&self) -> Option<&CompiledDesign> {
        self.design.as_ref()
    }

    /// Replaces the program: full recompile, whole-design swap, and
    /// repopulation of every table entry. Returns `(t_C µs, report)`.
    pub fn update_source(&mut self, source: String) -> Result<(f64, ApplyReport), ControllerError> {
        // t_C: the whole front end + back end, every time.
        let t0 = Instant::now();
        let ast = parse_p4(&source).map_err(ControllerError::P4)?;
        let hlir = build_hlir(&ast).map_err(ControllerError::Hlir)?;
        let design = pisa_compile(&hlir, &self.target)?;
        let t_c = t0.elapsed().as_secs_f64() * 1e6;

        // t_L: swap + repopulate ALL tables.
        let mut msgs = vec![ControlMsg::LoadFullDesign(Box::new(design.clone()))];
        for (table, entry) in &self.entries {
            // Entries for tables that no longer exist are dropped.
            if design.tables.contains_key(table) {
                msgs.push(ControlMsg::AddEntry {
                    table: table.clone(),
                    entry: entry.clone(),
                });
            }
        }
        // The swap path must stay plan-safe too: LoadFullDesign quiesces by
        // itself and entry adds are non-structural, so this never fires
        // unless the message assembly above regresses.
        let unsafe_msgs: Vec<_> = rp4_verify::verify_msgs(&msgs)
            .into_iter()
            .filter(|d| d.severity == rp4_lang::Severity::Error)
            .collect();
        if !unsafe_msgs.is_empty() {
            return Err(ControllerError::Verify(unsafe_msgs));
        }
        let report = self.device.apply(&msgs)?;
        self.entries
            .retain(|(table, _)| design.tables.contains_key(table));
        self.apis = rp4c::generate_apis(&design);
        self.design = Some(design);
        self.source = source;
        Ok((t_c, report))
    }

    /// Adds a table entry (validated, recorded for future repopulations).
    pub fn table_add(
        &mut self,
        table: &str,
        action: &str,
        keys: &[crate::script::KeyToken],
        args: &[u128],
        priority: i32,
    ) -> Result<ApplyReport, ControllerError> {
        let api = find_api(&self.apis, table)?;
        let entry = build_entry(api, action, keys, args, priority)?;
        let r = self.device.apply(&[ControlMsg::AddEntry {
            table: table.to_string(),
            entry: entry.clone(),
        }])?;
        self.entries.push((table.to_string(), entry));
        Ok(r)
    }

    /// Number of entries the controller would replay on a reload.
    pub fn tracked_entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipbm::{IpbmConfig, IpbmSwitch};
    use ipsa_core::error::CoreError;

    /// A mid-batch device failure is transactional on the device side, and
    /// the controller surfaces it as the typed `Rollback` variant (state
    /// unchanged — no failback needed) rather than a generic device error.
    #[test]
    fn device_rollback_surfaces_as_typed_controller_error() {
        let mut dev = IpbmSwitch::new(IpbmConfig::default());
        let err = dev
            .apply(&[ControlMsg::Drain, ControlMsg::ClearSlot { slot: 999 }])
            .expect_err("clearing slot 999 must fail");
        let ce = ControllerError::from(err);
        assert!(
            matches!(&ce, ControllerError::Rollback { index: 1, .. }),
            "expected Rollback at index 1, got {ce}"
        );
        assert!(
            ce.to_string().contains("device state unchanged"),
            "operators must see the no-failback-needed guarantee: {ce}"
        );
        assert!(
            !dev.pm.draining,
            "the Drain that preceded the failure rolled back"
        );

        // Errors with no rollback semantics still map to `Device`.
        let plain = ControllerError::from(CoreError::Config("x".into()));
        assert!(matches!(plain, ControllerError::Device(_)));
    }
}
