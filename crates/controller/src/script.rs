//! The controller's command/script language.
//!
//! Mirrors the scripts of Fig. 5(b) and 5(c), plus table operations:
//!
//! ```text
//! load ecmp.rp4 --func_name ecmp
//! add_link ipv4_lpm ecmp
//! del_link ipv4_lpm nexthop
//! link_header --pre ipv6 --next srh --tag 43
//! unlink_header --pre ipv6 --next srh
//! unload --func_name ecmp
//! update probe_v2.rp4 --func_name probe
//! table_add fib set_nh 0x0a000000/8 => 42
//! table_add acl deny 0x0a000002&&&0xffffffff 53 prio=10
//! table_del fib 0x0a000000/8
//! table_default fib set_nh 1
//! ```
//!
//! Keys: `V` (exact/hash member), `V/len` (LPM), `V&&&M` (ternary).
//! `#` and `//` start comments.

/// One key field token of a table command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyToken {
    /// Exact value (also selector member index).
    Exact(u128),
    /// LPM prefix.
    Lpm {
        /// Prefix value.
        value: u128,
        /// Prefix length.
        prefix_len: usize,
    },
    /// Ternary value & mask.
    Ternary {
        /// Match value.
        value: u128,
        /// Care mask.
        mask: u128,
    },
}

/// One parsed script command.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptCmd {
    /// `load <file> --func_name <f>`
    Load {
        /// Snippet file name (resolved by the driver).
        file: String,
        /// Function name.
        func: String,
    },
    /// `unload --func_name <f>`
    Unload {
        /// Function name.
        func: String,
    },
    /// `update <file> --func_name <f>` — replace a loaded function with a
    /// revised snippet in one drain window (unload + load; the paper notes
    /// such changes "usually require less compiling time and data-plane
    /// modifications").
    Update {
        /// Revised snippet file.
        file: String,
        /// Function name.
        func: String,
    },
    /// `add_link <from> <to>`
    AddLink {
        /// Source stage.
        from: String,
        /// Destination stage.
        to: String,
    },
    /// `del_link <from> <to>`
    DelLink {
        /// Source stage.
        from: String,
        /// Destination stage.
        to: String,
    },
    /// `link_header --pre <h> --next <h> --tag <v>`
    LinkHeader {
        /// Predecessor header.
        pre: String,
        /// Successor header.
        next: String,
        /// Selector tag.
        tag: u128,
    },
    /// `unlink_header --pre <h> --next <h>`
    UnlinkHeader {
        /// Predecessor header.
        pre: String,
        /// Successor header.
        next: String,
    },
    /// `table_add <table> <action> <keys…> [=> <args…>] [prio=N]`
    TableAdd {
        /// Table name.
        table: String,
        /// Action name.
        action: String,
        /// Key fields.
        keys: Vec<KeyToken>,
        /// Action data.
        args: Vec<u128>,
        /// Ternary priority.
        priority: i32,
    },
    /// `table_del <table> <keys…>`
    TableDel {
        /// Table name.
        table: String,
        /// Key fields.
        keys: Vec<KeyToken>,
    },
    /// `table_default <table> <action> [args…]`
    TableDefault {
        /// Table name.
        table: String,
        /// Action name.
        action: String,
        /// Action data.
        args: Vec<u128>,
    },
}

/// Script parse error with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ScriptError {}

fn parse_int(s: &str) -> Option<u128> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        u128::from_str_radix(bin, 2).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_key(s: &str) -> Option<KeyToken> {
    if let Some((v, m)) = s.split_once("&&&") {
        return Some(KeyToken::Ternary {
            value: parse_int(v)?,
            mask: parse_int(m)?,
        });
    }
    if let Some((v, l)) = s.split_once('/') {
        return Some(KeyToken::Lpm {
            value: parse_int(v)?,
            prefix_len: l.parse().ok()?,
        });
    }
    Some(KeyToken::Exact(parse_int(s)?))
}

/// Reads a `--flag value` pair set from tokens.
fn flag<'a>(tokens: &'a [&str], name: &str) -> Option<&'a str> {
    tokens
        .iter()
        .position(|t| *t == name)
        .and_then(|i| tokens.get(i + 1).copied())
}

/// Parses a full script.
pub fn parse_script(src: &str) -> Result<Vec<ScriptCmd>, ScriptError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split("//").next().unwrap_or("");
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: String| ScriptError { line: line_no, msg };
        let cmd = match toks[0] {
            "load" => {
                let file = toks
                    .get(1)
                    .filter(|t| !t.starts_with("--"))
                    .ok_or_else(|| err("load needs a file".into()))?;
                let func = flag(&toks, "--func_name")
                    .ok_or_else(|| err("load needs --func_name".into()))?;
                ScriptCmd::Load {
                    file: file.to_string(),
                    func: func.to_string(),
                }
            }
            "update" => {
                let file = toks
                    .get(1)
                    .filter(|t| !t.starts_with("--"))
                    .ok_or_else(|| err("update needs a file".into()))?;
                let func = flag(&toks, "--func_name")
                    .ok_or_else(|| err("update needs --func_name".into()))?;
                ScriptCmd::Update {
                    file: file.to_string(),
                    func: func.to_string(),
                }
            }
            "unload" => {
                let func = flag(&toks, "--func_name")
                    .or_else(|| toks.get(1).copied().filter(|t| !t.starts_with("--")))
                    .ok_or_else(|| err("unload needs --func_name".into()))?;
                ScriptCmd::Unload {
                    func: func.to_string(),
                }
            }
            "add_link" | "del_link" => {
                let (from, to) = match (toks.get(1), toks.get(2)) {
                    (Some(a), Some(b)) => (a.to_string(), b.to_string()),
                    _ => return Err(err(format!("{} needs <from> <to>", toks[0]))),
                };
                if toks[0] == "add_link" {
                    ScriptCmd::AddLink { from, to }
                } else {
                    ScriptCmd::DelLink { from, to }
                }
            }
            "link_header" => {
                let pre = flag(&toks, "--pre").ok_or_else(|| err("needs --pre".into()))?;
                let next = flag(&toks, "--next").ok_or_else(|| err("needs --next".into()))?;
                let tag = flag(&toks, "--tag")
                    .and_then(parse_int)
                    .ok_or_else(|| err("needs --tag <int>".into()))?;
                ScriptCmd::LinkHeader {
                    pre: pre.to_string(),
                    next: next.to_string(),
                    tag,
                }
            }
            "unlink_header" => {
                let pre = flag(&toks, "--pre").ok_or_else(|| err("needs --pre".into()))?;
                let next = flag(&toks, "--next").ok_or_else(|| err("needs --next".into()))?;
                ScriptCmd::UnlinkHeader {
                    pre: pre.to_string(),
                    next: next.to_string(),
                }
            }
            "table_add" => {
                let table = toks.get(1).ok_or_else(|| err("needs <table>".into()))?;
                let action = toks.get(2).ok_or_else(|| err("needs <action>".into()))?;
                let mut keys = Vec::new();
                let mut args = Vec::new();
                let mut priority = 0i32;
                let mut in_args = false;
                for t in &toks[3..] {
                    if *t == "=>" {
                        in_args = true;
                    } else if let Some(p) = t.strip_prefix("prio=") {
                        priority = p.parse().map_err(|_| err(format!("bad priority `{p}`")))?;
                    } else if in_args {
                        args.push(parse_int(t).ok_or_else(|| err(format!("bad arg `{t}`")))?);
                    } else {
                        keys.push(parse_key(t).ok_or_else(|| err(format!("bad key `{t}`")))?);
                    }
                }
                ScriptCmd::TableAdd {
                    table: table.to_string(),
                    action: action.to_string(),
                    keys,
                    args,
                    priority,
                }
            }
            "table_del" => {
                let table = toks.get(1).ok_or_else(|| err("needs <table>".into()))?;
                let keys = toks[2..]
                    .iter()
                    .map(|t| parse_key(t).ok_or_else(|| err(format!("bad key `{t}`"))))
                    .collect::<Result<Vec<_>, _>>()?;
                ScriptCmd::TableDel {
                    table: table.to_string(),
                    keys,
                }
            }
            "table_default" => {
                let table = toks.get(1).ok_or_else(|| err("needs <table>".into()))?;
                let action = toks.get(2).ok_or_else(|| err("needs <action>".into()))?;
                let args = toks[3..]
                    .iter()
                    .map(|t| parse_int(t).ok_or_else(|| err(format!("bad arg `{t}`"))))
                    .collect::<Result<Vec<_>, _>>()?;
                ScriptCmd::TableDefault {
                    table: table.to_string(),
                    action: action.to_string(),
                    args,
                }
            }
            other => return Err(err(format!("unknown command `{other}`"))),
        };
        out.push(cmd);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The script of Fig. 5(b), adapted to our base design's stage names.
    #[test]
    fn parses_fig5b_style_script() -> Result<(), ScriptError> {
        let src = r#"
            load ecmp.rp4 --func_name ecmp
            add_link ipv4_lpm ecmp
            add_link ipv6_lpm ecmp
            del_link ipv4_lpm nexthop
            add_link ecmp l2_l3_rewrite
            del_link nexthop l2_l3_rewrite
            // omit ipv6's links
        "#;
        let cmds = parse_script(src)?;
        assert_eq!(cmds.len(), 6);
        assert_eq!(
            cmds[0],
            ScriptCmd::Load {
                file: "ecmp.rp4".into(),
                func: "ecmp".into()
            }
        );
        assert_eq!(
            cmds[3],
            ScriptCmd::DelLink {
                from: "ipv4_lpm".into(),
                to: "nexthop".into()
            }
        );
        Ok(())
    }

    /// The script of Fig. 5(c).
    #[test]
    fn parses_fig5c_style_script() -> Result<(), ScriptError> {
        let src = r#"
            load srv6.rp4 --func_name srv6
            link_header --pre ipv6 --next srh --tag 43
            link_header --pre srh --next ipv6 --tag 41 # inner IPv6
            link_header --pre srh --next ipv4 --tag 4  # inner IPv4
        "#;
        let cmds = parse_script(src)?;
        assert_eq!(cmds.len(), 4);
        assert_eq!(
            cmds[1],
            ScriptCmd::LinkHeader {
                pre: "ipv6".into(),
                next: "srh".into(),
                tag: 43
            }
        );
        Ok(())
    }

    #[test]
    fn parses_table_commands() -> Result<(), ScriptError> {
        let cmds = parse_script(
            r#"
            table_add fib set_nh 0x0a000000/8 => 42
            table_add acl deny 0x0a000002&&&0xffffffff 53 prio=10
            table_del fib 0x0a000000/8
            table_default fib set_nh 7
        "#,
        )?;
        assert_eq!(
            cmds[0],
            ScriptCmd::TableAdd {
                table: "fib".into(),
                action: "set_nh".into(),
                keys: vec![KeyToken::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8
                }],
                args: vec![42],
                priority: 0,
            }
        );
        let ScriptCmd::TableAdd {
            keys,
            priority,
            args,
            ..
        } = &cmds[1]
        else {
            return Err(ScriptError {
                line: 0,
                msg: format!("expected TableAdd, got {:?}", cmds[1]),
            });
        };
        assert_eq!(keys.len(), 2);
        assert!(matches!(keys[0], KeyToken::Ternary { .. }));
        assert_eq!(keys[1], KeyToken::Exact(53));
        assert_eq!(*priority, 10);
        assert!(args.is_empty());
        assert!(matches!(&cmds[2], ScriptCmd::TableDel { keys, .. } if keys.len() == 1));
        assert!(matches!(&cmds[3], ScriptCmd::TableDefault { args, .. } if args == &[7]));
        Ok(())
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_script("add_link a b\nwarp_drive on").expect_err("unknown command");
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("warp_drive"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() -> Result<(), ScriptError> {
        let cmds = parse_script("\n# full comment\n  // another\nunload --func_name f\n")?;
        assert_eq!(cmds.len(), 1);
        Ok(())
    }

    #[test]
    fn update_command_parses() -> Result<(), ScriptError> {
        let cmds = parse_script("update probe2.rp4 --func_name probe")?;
        assert_eq!(
            cmds[0],
            ScriptCmd::Update {
                file: "probe2.rp4".into(),
                func: "probe".into()
            }
        );
        assert!(parse_script("update --func_name probe").is_err());
        Ok(())
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The script parser never panics on arbitrary near-grammar
            /// input.
            #[test]
            fn parser_total(src in "[a-z0-9_ /&#=>.\\n-]{0,300}") {
                let _ = parse_script(&src);
            }

            /// table_add commands roundtrip through formatting: rendering a
            /// parsed command back to text reparses identically.
            #[test]
            fn table_add_roundtrip(
                table in "[a-z][a-z0-9_]{0,8}",
                action in "[a-z][a-z0-9_]{0,8}",
                exact in any::<u64>(),
                plen in 0usize..=128,
                value in any::<u64>(),
                args in proptest::collection::vec(any::<u64>(), 0..3),
                prio in 0i32..1000,
            ) {
                let args_s = if args.is_empty() {
                    String::new()
                } else {
                    format!(
                        " => {}",
                        args.iter().map(|a| format!("{a:#x}")).collect::<Vec<_>>().join(" ")
                    )
                };
                let line = format!(
                    "table_add {table} {action} {exact:#x} {value:#x}/{plen}{args_s} prio={prio}"
                );
                let cmds = parse_script(&line).map_err(|e| {
                    proptest::test_runner::TestCaseError::Fail(e.to_string())
                })?;
                prop_assert_eq!(
                    &cmds[0],
                    &ScriptCmd::TableAdd {
                        table: table.clone(),
                        action: action.clone(),
                        keys: vec![
                            KeyToken::Exact(exact as u128),
                            KeyToken::Lpm { value: value as u128, prefix_len: plen },
                        ],
                        args: args.iter().map(|a| *a as u128).collect(),
                        priority: prio,
                    }
                );
            }
        }
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(parse_script("load x.rp4").is_err());
        assert!(parse_script("link_header --pre a --next b").is_err());
        assert!(parse_script("table_add t a zzz").is_err());
    }
}
