//! # ipsa-controller — the runtime controller
//!
//! "The controller is used for runtime configuration and in-situ
//! programming … allowing users to load or offload on-demand protocols and
//! functions at runtime." (Sec. 4.1)
//!
//! - [`script`]: the Fig. 5(b)/(c) command language plus table operations;
//! - [`table_api`]: typed entry construction validated against rp4bc's
//!   generated APIs;
//! - [`driver`]: the two design flows of Fig. 3 — [`driver::Rp4Flow`]
//!   (incremental, in-situ) and [`driver::P4Flow`] (full recompile + swap +
//!   repopulate);
//! - [`programs`]: the bundled base design, use-case snippets, and scripts.

#![warn(missing_docs)]

pub mod driver;
pub mod programs;
pub mod script;
pub mod table_api;

pub use driver::{Checkpoint, ControllerError, P4Flow, Rp4Flow, ScriptOutcome};
pub use script::{parse_script, KeyToken, ScriptCmd};

#[cfg(test)]
mod flow_tests {
    use super::*;
    use ipbm::{IpbmConfig, IpbmSwitch};
    use ipsa_core::timing::CostModel;
    use pisa_bm::{PisaSwitch, PisaTarget};
    use rp4c::{full_compile, CompilerTarget};

    fn rp4_flow() -> Result<Rp4Flow<IpbmSwitch>, ControllerError> {
        let prog = rp4_lang::parse(programs::BASE_RP4)?;
        let target = CompilerTarget::ipbm();
        let compilation = full_compile(&prog, &target)?;
        let device = IpbmSwitch::new(IpbmConfig::default());
        let (flow, report) = Rp4Flow::install(device, compilation, target)?;
        assert!(report.msgs > 10);
        Ok(flow)
    }

    #[test]
    fn base_design_compiles_with_expected_merges() -> Result<(), ControllerError> {
        let flow = rp4_flow()?;
        // The v4/v6 FIB pairs merged; Fig. 4's ~7-TSP mapping (we land on
        // 8: 7 ingress + 1 egress).
        let names: Vec<&str> = flow
            .design
            .programmed()
            .map(|(_, t)| t.stage_name.as_str())
            .collect();
        assert!(names.contains(&"ipv4_lpm+ipv6_lpm"), "{names:?}");
        assert!(names.contains(&"ipv4_host+ipv6_host"), "{names:?}");
        assert_eq!(names.len(), 8, "{names:?}");
        Ok(())
    }

    #[test]
    fn ecmp_script_runs_in_situ() -> Result<(), ControllerError> {
        let mut flow = rp4_flow()?;
        let before: Vec<String> = flow
            .design
            .programmed()
            .map(|(_, t)| t.stage_name.clone())
            .collect();
        let outcome = flow.run_script(programs::ECMP_SCRIPT, &programs::bundled_sources)?;
        assert!(outcome.compile_us > 0.0);
        assert!(outcome.report.load_us > 0.0);
        let stats = outcome.update_stats.as_ref().ok_or_else(|| {
            ControllerError::MissingSource("expected update stats from a structural script".into())
        })?;
        // Incremental: only a couple of template writes, not a redeploy.
        assert!(stats.template_writes <= 3, "{stats:?}");
        assert!(stats.new_tables.contains(&"ecmp_ipv4".to_string()));
        assert!(stats.removed_tables.contains(&"nexthop".to_string()));
        let after: Vec<String> = flow
            .design
            .programmed()
            .map(|(_, t)| t.stage_name.clone())
            .collect();
        assert!(after.iter().any(|n| n == "ecmp"), "{after:?}");
        assert!(!after.iter().any(|n| n == "nexthop"), "{after:?}");
        assert_ne!(before, after);
        // Table ops now validate against the regenerated APIs.
        flow.run_script(
            "table_add ecmp_ipv4 set_bd_dmac 0 0 0 0 => 2 0x020202030301",
            &programs::bundled_sources,
        )?;
        Ok(())
    }

    #[test]
    fn srv6_script_links_headers() -> Result<(), ControllerError> {
        let mut flow = rp4_flow()?;
        flow.run_script(programs::SRV6_SCRIPT, &programs::bundled_sources)?;
        let edges = flow.design.linkage.edges();
        assert!(edges.contains(&("ipv6".to_string(), 43, "srh".to_string())));
        assert!(edges.contains(&("srh".to_string(), 41, "ipv6".to_string())));
        // Reserved plain-L3 linkage still present.
        assert!(edges.contains(&("ipv6".to_string(), 17, "udp".to_string())));
        // Device-side linkage matches the controller's view.
        assert!(flow
            .device
            .linkage
            .edges()
            .contains(&("ipv6".to_string(), 43, "srh".to_string())));
        Ok(())
    }

    #[test]
    fn probe_script_then_unload_roundtrip() -> Result<(), ControllerError> {
        let mut flow = rp4_flow()?;
        flow.run_script(programs::FLOWPROBE_SCRIPT, &programs::bundled_sources)?;
        assert!(flow.design.tables.contains_key("flow_probe"));
        let n_with_probe = flow.design.programmed().count();
        let out = flow.run_script("unload --func_name probe", &programs::bundled_sources)?;
        let stats = out.update_stats.as_ref().ok_or_else(|| {
            ControllerError::MissingSource("expected update stats from unload".into())
        })?;
        assert!(stats.removed_tables.contains(&"flow_probe".to_string()));
        assert_eq!(flow.design.programmed().count(), n_with_probe - 1);
        // The bridged graph keeps the base pipeline functional.
        flow.design.validate()?;
        Ok(())
    }

    #[test]
    fn rp4_flow_drives_sharded_runtime() -> Result<(), ControllerError> {
        use ipsa_core::control::Device;
        // The whole controller flow — install, in-situ update scripts,
        // table population — runs unchanged against the multi-core sharded
        // runtime, which takes each plan through its epoch barrier.
        let prog = rp4_lang::parse(programs::BASE_RP4)?;
        let target = CompilerTarget::ipbm();
        let compilation = full_compile(&prog, &target)?;
        let device = ipbm::ShardedSwitch::new(IpbmConfig::default(), 4);
        let (mut flow, report) = Rp4Flow::install(device, compilation, target)?;
        assert!(report.msgs > 10);
        let outcome = flow.run_script(programs::FLOWPROBE_SCRIPT, &programs::bundled_sources)?;
        assert!(outcome.report.load_us > 0.0);
        assert!(flow.design.tables.contains_key("flow_probe"));
        // Traffic still flows after the mid-stream in-situ update, on the
        // compiled per-shard paths.
        flow.run_script(
            "table_add port_map set_ifindex 0 => 10\n\
             table_add bd_vrf set_bd_vrf 10 => 1 1",
            &programs::bundled_sources,
        )?;
        for p in ipsa_netpkt::traffic::TrafficGen::new(3)
            .with_v6_percent(0)
            .with_flows(16)
            .batch(64)
        {
            flow.device.inject(p);
        }
        let out = flow.device.run_batch();
        assert!(flow.device.on_compiled_path());
        let rep = flow.device.report();
        assert_eq!(rep.pipeline.received, 64);
        assert_eq!(rep.pipeline.emitted as usize, out.len());
        Ok(())
    }

    #[test]
    fn tampered_plan_rejected_unless_forced() -> Result<(), ControllerError> {
        use ipsa_core::control::ControlMsg;
        // Strip the Drain…Resume window so every structural write lands on
        // a live pipeline — exactly what RP4105 exists to catch.
        let tamper = |plan: &mut rp4c::UpdatePlan| {
            plan.msgs
                .retain(|m| !matches!(m, ControlMsg::Drain | ControlMsg::Resume));
        };
        let mut flow = rp4_flow()?;
        let mut plan = flow.plan_script(programs::ECMP_SCRIPT, &programs::bundled_sources)?;
        tamper(&mut plan);
        let e = flow
            .apply_plan(plan)
            .expect_err("a drain-stripped plan must be rejected");
        let ControllerError::Verify(diags) = &e else {
            // Any other rejection is the wrong code path — surface it.
            return Err(e);
        };
        assert!(!diags.is_empty());
        assert!(
            diags
                .iter()
                .all(|d| d.code == rp4_verify::codes::PLAN_UNSAFE),
            "{diags:?}"
        );
        // The rejected apply must not have touched the flow's state.
        assert!(flow.design.tables.contains_key("nexthop"));
        // An operator override skips the check and the plan goes through.
        let mut plan = flow.plan_script(programs::ECMP_SCRIPT, &programs::bundled_sources)?;
        tamper(&mut plan);
        flow.force = true;
        flow.apply_plan(plan)?;
        assert!(flow.design.tables.contains_key("ecmp_ipv4"));
        Ok(())
    }

    #[test]
    fn bad_table_add_rejected_before_device() -> Result<(), ControllerError> {
        let mut flow = rp4_flow()?;
        let e = flow
            .run_script("table_add port_map set_ifindex 1 2 => 3", &|_| None)
            .expect_err("arity-mismatched table_add must be rejected");
        assert!(matches!(e, ControllerError::Api(_)), "{e}");
        Ok(())
    }

    #[test]
    fn p4_flow_update_repopulates_everything() -> Result<(), ControllerError> {
        let (mut flow, t_c0, r0) = P4Flow::new(
            PisaSwitch::new(CostModel::software()),
            programs::BASE_P4,
            PisaTarget::bmv2(),
        )?;
        assert!(t_c0 > 0.0);
        assert!(r0.load_us > 0.0);
        // Install some entries.
        flow.table_add("port_map", "set_ifindex", &[KeyToken::Exact(0)], &[10], 0)?;
        flow.table_add("bd_vrf", "set_bd_vrf", &[KeyToken::Exact(10)], &[1, 1], 0)?;
        assert_eq!(flow.tracked_entries(), 2);

        // "Update" to the ECMP variant: full recompile + swap + repopulate.
        let (t_c1, r1) = flow.update_source(programs::BASE_ECMP_P4.to_string())?;
        assert!(t_c1 > 0.0);
        assert_eq!(r1.entries_written, 2, "all entries replayed");
        assert!(r1.stall_us > 0.0);
        // Device really holds the replayed entries.
        let port_map = flow
            .device
            .table("port_map")
            .ok_or_else(|| ControllerError::MissingSource("port_map missing".into()))?;
        assert_eq!(port_map.len(), 1);
        assert!(flow.device.table("ecmp_ipv4").is_some());
        Ok(())
    }
}
