//! `rp4c` — the rP4 compiler command-line front end.
//!
//! ```text
//! rp4c compile <file.rp4> [--target ipbm|fpga] [-o design.json] [--apis apis.json]
//! rp4c translate <file.p4> [-o out.rp4]                # rp4fc: P4 -> rP4
//! rp4c check <file.rp4> [--base <base.rp4>]            # parse + semantics
//! rp4c cover <file.rp4> [-o corpus.json]               # path coverage corpus
//! rp4c plan --base <base.rp4> --script <file.script>   # incremental compile
//!          [--snippets <dir>] [--algo dp|greedy] [-o design.json]
//! ```
//!
//! `compile` runs the full rp4bc pipeline and emits the TSP template
//! parameters in JSON (the paper's specified output format). `plan` runs
//! the in-situ path: it prints the Drain…Resume message summary, the
//! updated base design (rp4bc's "first output"), and placement statistics.
//! `cover` enumerates every feasible execution path of the compiled design
//! and dumps the witness corpus (`check --cover` runs the same enumeration
//! for its RP44xx diagnostics and coverage summary).

use std::collections::HashMap;
use std::process::ExitCode;

use ipsa_controller::{parse_script, ScriptCmd};
use rp4c::{CompilerTarget, LayoutAlgo, UpdateCmd};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rp4c compile <file.rp4> [--target ipbm|fpga] [-o design.json] [--apis apis.json]\n  \
         rp4c translate <file.p4> [-o out.rp4]\n  \
         rp4c check <file.rp4> [--base <base.rp4>] [--target ipbm|fpga] [--deny-warnings] [--equiv] [--cover]\n  \
         rp4c cover <file.rp4> [--target ipbm|fpga] [--max-paths N] [-o corpus.json]\n  \
         rp4c plan --base <base.rp4> --script <file.script> [--snippets <dir>] [--algo dp|greedy] [-o design.json]"
    );
    ExitCode::from(2)
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["deny-warnings", "equiv", "cover"];

/// Minimal flag parser: positional args plus `--flag value` pairs
/// (boolean flags in [`BOOL_FLAGS`] consume no value).
fn parse_args(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.insert(name.to_string(), String::new());
                i += 1;
            } else if let Some(v) = args.get(i + 1) {
                flags.insert(name.to_string(), v.clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else if a == "-o" {
            if let Some(v) = args.get(i + 1) {
                flags.insert("out".to_string(), v.clone());
                i += 2;
            } else {
                i += 1;
            }
        } else {
            pos.push(a.clone());
            i += 1;
        }
    }
    (pos, flags)
}

fn target_of(flags: &HashMap<String, String>) -> Result<CompilerTarget, String> {
    match flags.get("target").map(String::as_str).unwrap_or("ipbm") {
        "ipbm" => Ok(CompilerTarget::ipbm()),
        "fpga" => Ok(CompilerTarget::fpga()),
        other => Err(format!("unknown target `{other}` (ipbm|fpga)")),
    }
}

fn write_or_print(flags: &HashMap<String, String>, key: &str, content: &str) -> Result<(), String> {
    match flags.get(key) {
        Some(path) => std::fs::write(path, content)
            .map_err(|e| format!("cannot write {path}: {e}"))
            .map(|()| println!("wrote {path}")),
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_compile(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let file = pos.first().ok_or("compile needs a file")?;
    let src = read(file)?;
    let prog = rp4_lang::parse(&src).map_err(|e| e.to_string())?;
    let target = target_of(flags)?;
    let c = rp4c::full_compile(&prog, &target).map_err(|e| e.to_string())?;
    eprintln!(
        "compiled `{file}` for target `{}`: {} logical stages -> {} TSPs, {} blocks \
         (merged: {:?})",
        target.name,
        c.report.merge.before,
        c.report.tsps_used,
        c.report.blocks_used,
        c.report.merge.merged_groups
    );
    write_or_print(flags, "out", &c.design.to_json())?;
    if flags.contains_key("apis") {
        write_or_print(flags, "apis", &rp4c::api_gen::apis_to_json(&c.apis))?;
    }
    Ok(())
}

fn cmd_translate(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let file = pos.first().ok_or("translate needs a file")?;
    let src = read(file)?;
    let ast = p4_lang::parse_p4(&src).map_err(|e| e.to_string())?;
    let hlir = p4_lang::build_hlir(&ast).map_err(|e| e.to_string())?;
    let prog = rp4c::rp4fc(&hlir, "main");
    eprintln!(
        "translated `{file}`: {} headers, {} tables, {} stages",
        prog.headers.len(),
        prog.tables.len(),
        prog.stages().count()
    );
    write_or_print(flags, "out", &rp4_lang::print(&prog))
}

fn cmd_check(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let file = pos.first().ok_or("check needs a file")?;
    let src = read(file)?;
    let prog = rp4_lang::parse(&src).map_err(|e| e.to_string())?;
    let base = match flags.get("base") {
        Some(b) => Some(rp4_lang::parse(&read(b)?).map_err(|e| e.to_string())?),
        None => None,
    };

    // Phase 1: semantic check, rendered rustc-style against the source.
    if let Err(errs) = rp4_lang::check(&prog, base.as_ref()) {
        let diags: Vec<_> = errs.iter().map(|e| e.to_diagnostic()).collect();
        eprint!("{}", rp4_lang::render_all(&diags, Some(&src), file));
        return Err(format!("{} semantic error(s)", errs.len()));
    }

    // Phase 2: static analysis. Snippets are linted in the context of the
    // absorbed base design (a snippet alone has nothing to verify against);
    // mixing two source files breaks span offsets, so the absorbed case
    // renders without source excerpts.
    let (checked, verify_src) = match base {
        Some(mut b) => {
            b.absorb(&prog);
            // The snippet's stages become a function named after its file,
            // as a runtime `load` would make them.
            let func = std::path::Path::new(file)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("snippet")
                .to_string();
            b.claim_unowned_stages(&func);
            (b, None)
        }
        None => (prog.clone(), Some(src.as_str())),
    };
    let env = rp4_lang::check(&checked, None)
        .map_err(|errs| format!("{} error(s) in the absorbed design", errs.len()))?;
    let target = target_of(flags)?;
    let limits = rp4c::verify_limits(&target);
    let mut diags = rp4_verify::verify_program(&checked, &env, &limits);
    let (tables, actions) = rp4c::lower_registries(&env, &checked).map_err(|e| e.to_string())?;
    diags.extend(rp4_verify::verify_pool(
        &tables,
        &actions,
        &limits,
        Some(&checked.spans),
    ));
    let dfa = rp4_dfa::analyze_program(&checked, &env);
    diags.extend(rp4_dfa::merge_findings(&diags, dfa));

    // Phases 3/4 (--equiv, --cover) both run over the compiled design;
    // compile once, only when requested and the program is error-free.
    let equiv = flags.contains_key("equiv");
    let do_cover = flags.contains_key("cover");
    let mut coverage_line = None;
    if (equiv || do_cover)
        && !diags
            .iter()
            .any(|d| d.severity == rp4_lang::Severity::Error)
    {
        let c = rp4c::full_compile(&checked, &target)
            .map_err(|e| format!("--equiv/--cover: compilation failed: {e:?}"))?;
        // Phase 3 (--equiv): prove the design behaves identically to the
        // checked program in every symbolic world (rp4-equiv).
        if equiv {
            diags.extend(rp4_equiv::check_program_design(
                &checked,
                &env,
                &c.design,
                &rp4_equiv::EquivOptions::default(),
            ));
        }
        // Phase 4 (--cover): enumerate every feasible execution path,
        // concretize a witness per path, and report the RP44xx findings
        // (deduplicated against the dataflow block above).
        if do_cover {
            let facts = rp4_dfa::design_facts(&c.design);
            let cov = rp4_cover::cover_design(
                &c.design,
                Some(&facts),
                Some(&checked),
                &rp4_cover::CoverOptions::default(),
            );
            diags.extend(rp4_dfa::merge_findings(&diags, cov.diags.clone()));
            coverage_line = Some(format!(
                "coverage: {}/{} feasible paths witnessed ({} pruned infeasible), WCET {:.0} ns",
                cov.covered(),
                cov.feasible(),
                cov.pruned_infeasible,
                cov.wcet_ns,
            ));
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == rp4_lang::Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if !diags.is_empty() {
        eprint!("{}", rp4_lang::render_all(&diags, verify_src, file));
    }
    if errors > 0 {
        return Err(format!("{errors} verifier error(s)"));
    }
    if warnings > 0 && flags.contains_key("deny-warnings") {
        return Err(format!("{warnings} warning(s) denied by --deny-warnings"));
    }
    println!(
        "{file}: OK ({} headers, {} tables, {} actions, {} stages{}{})",
        prog.headers.len(),
        prog.tables.len(),
        prog.actions.len(),
        prog.stages().count(),
        if equiv { ", equivalence proven" } else { "" },
        if warnings > 0 {
            format!(", {warnings} warning(s)")
        } else {
            String::new()
        }
    );
    if let Some(line) = coverage_line {
        println!("{line}");
    }
    Ok(())
}

fn cmd_cover(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let file = pos.first().ok_or("cover needs a file")?;
    let src = read(file)?;
    let prog = rp4_lang::parse(&src).map_err(|e| e.to_string())?;
    rp4_lang::check(&prog, None).map_err(|errs| format!("{} semantic error(s)", errs.len()))?;
    let target = target_of(flags)?;
    let c = rp4c::full_compile(&prog, &target).map_err(|e| e.to_string())?;
    let facts = rp4_dfa::design_facts(&c.design);
    let mut opts = rp4_cover::CoverOptions::default();
    if let Some(n) = flags.get("max-paths") {
        opts.max_paths = n
            .parse()
            .map_err(|_| format!("--max-paths: `{n}` is not a number"))?;
    }
    let cov = rp4_cover::cover_design(&c.design, Some(&facts), Some(&prog), &opts);
    if !cov.diags.is_empty() {
        eprint!("{}", rp4_lang::render_all(&cov.diags, Some(&src), file));
    }
    eprintln!(
        "{file}: {}/{} feasible paths witnessed ({} pruned infeasible), WCET {:.0} ns",
        cov.covered(),
        cov.feasible(),
        cov.pruned_infeasible,
        cov.wcet_ns,
    );
    write_or_print(flags, "out", &rp4_cover::corpus_json(&cov))?;
    if !cov.fully_covered() {
        return Err(format!(
            "coverage incomplete: {}/{} paths witnessed{}",
            cov.covered(),
            cov.feasible(),
            if cov.overflowed {
                " (enumeration over budget)"
            } else {
                ""
            }
        ));
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let base_path = flags.get("base").ok_or("plan needs --base")?;
    let script_path = flags.get("script").ok_or("plan needs --script")?;
    let base_src = read(base_path)?;
    let base = rp4_lang::parse(&base_src).map_err(|e| e.to_string())?;
    let target = target_of(flags)?;
    let algo = match flags.get("algo").map(String::as_str).unwrap_or("dp") {
        "dp" => LayoutAlgo::Dp,
        "greedy" => LayoutAlgo::Greedy,
        other => return Err(format!("unknown algo `{other}` (dp|greedy)")),
    };
    let compilation = rp4c::full_compile(&base, &target).map_err(|e| e.to_string())?;

    // Snippet resolution: --snippets dir, then the script's directory.
    let script_src = read(script_path)?;
    let script_dir = std::path::Path::new(script_path)
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_default();
    let snippet_dir = flags.get("snippets").map(std::path::PathBuf::from);
    let resolve = |name: &str| -> Option<String> {
        if let Some(d) = &snippet_dir {
            if let Ok(s) = std::fs::read_to_string(d.join(name)) {
                return Some(s);
            }
        }
        std::fs::read_to_string(script_dir.join(name)).ok()
    };

    let cmds = parse_script(&script_src).map_err(|e| e.to_string())?;
    let mut update_cmds = Vec::new();
    for cmd in cmds {
        update_cmds.push(match cmd {
            ScriptCmd::Load { file, func } => {
                let src = resolve(&file).ok_or(format!("snippet `{file}` not found"))?;
                let snippet = rp4_lang::parse(&src).map_err(|e| e.to_string())?;
                UpdateCmd::Load { snippet, func }
            }
            ScriptCmd::Unload { func } => UpdateCmd::Unload { func },
            ScriptCmd::AddLink { from, to } => UpdateCmd::AddLink { from, to },
            ScriptCmd::DelLink { from, to } => UpdateCmd::DelLink { from, to },
            ScriptCmd::LinkHeader { pre, next, tag } => UpdateCmd::LinkHeader { pre, next, tag },
            ScriptCmd::UnlinkHeader { pre, next } => UpdateCmd::UnlinkHeader { pre, next },
            other => return Err(format!("table operation {other:?} is runtime-only")),
        });
    }
    let plan = rp4c::incremental_compile(
        &compilation.design,
        &compilation.program,
        &update_cmds,
        &target,
        algo,
    )
    .map_err(|e| e.to_string())?;

    eprintln!(
        "plan: {} control messages ({} template writes, {} clears, new tables {:?}, \
         removed {:?}, placement {:.1} µs, {:?})",
        plan.msgs.len(),
        plan.stats.template_writes,
        plan.stats.slot_clears,
        plan.stats.new_tables,
        plan.stats.removed_tables,
        plan.stats.placement_us,
        plan.stats.algo,
    );
    for m in &plan.msgs {
        let kind = format!("{m:?}");
        let kind = kind.split([' ', '(', '{']).next().unwrap_or("?");
        eprintln!("  - {kind} ({} bytes)", m.payload_bytes());
    }
    println!("// --- updated base design (rp4bc output 1) ---");
    println!("{}", rp4_lang::print(&plan.program));
    if flags.contains_key("out") {
        write_or_print(flags, "out", &plan.design.to_json())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let (pos, flags) = parse_args(&args[1..]);
    let result = match cmd.as_str() {
        "compile" => cmd_compile(&pos, &flags),
        "translate" => cmd_translate(&pos, &flags),
        "check" => cmd_check(&pos, &flags),
        "cover" => cmd_cover(&pos, &flags),
        "plan" => cmd_plan(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rp4c: {e}");
            ExitCode::FAILURE
        }
    }
}
