//! `ipsa-ctl` — run an in-process ipbm switch and program it at runtime.
//!
//! ```text
//! ipsa-ctl run --base <base.rp4> [--script <file.script>]... [--snippets <dir>]
//!              [--packets N] [--seed N] [--v6 PCT] [--flows N]
//!              [--target ipbm|fpga] [--report switch.json] [--demo-tables]
//!              [--force]
//! ```
//!
//! Loads the base design onto a fresh ipbm device, optionally populates the
//! demo forwarding state (`--demo-tables`), applies each script *in order
//! with traffic between them*, and prints a forwarding/update report. This
//! is the zero-to-aha path: one command shows an in-service functional
//! update with zero packet loss.

use std::process::ExitCode;

use ipbm::{IpbmConfig, IpbmSwitch};
use ipsa_controller::{programs, Rp4Flow};
use ipsa_core::control::Device;
use ipsa_netpkt::traffic::TrafficGen;
use rp4c::CompilerTarget;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ipsa-ctl run --base <base.rp4> [--script <file.script>]... \
         [--snippets <dir>] [--packets N] [--seed N] [--v6 PCT] [--flows N] \
         [--target ipbm|fpga] [--report out.json] [--demo-tables] [--force]"
    );
    ExitCode::from(2)
}

struct Args {
    base: String,
    scripts: Vec<String>,
    snippets: Option<String>,
    packets: usize,
    seed: u64,
    v6: u8,
    flows: u32,
    target: String,
    report: Option<String>,
    demo_tables: bool,
    force: bool,
}

fn parse_args(args: &[String]) -> Option<Args> {
    let mut out = Args {
        base: String::new(),
        scripts: vec![],
        snippets: None,
        packets: 500,
        seed: 42,
        v6: 20,
        flows: 32,
        target: "ipbm".into(),
        report: None,
        demo_tables: false,
        force: false,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned().inspect(|_| *i += 1)
        };
        match args[i].as_str() {
            "--base" => out.base = take(&mut i)?,
            "--script" => out.scripts.push(take(&mut i)?),
            "--snippets" => out.snippets = Some(take(&mut i)?),
            "--packets" => out.packets = take(&mut i)?.parse().ok()?,
            "--seed" => out.seed = take(&mut i)?.parse().ok()?,
            "--v6" => out.v6 = take(&mut i)?.parse().ok()?,
            "--flows" => out.flows = take(&mut i)?.parse().ok()?,
            "--target" => out.target = take(&mut i)?,
            "--report" => out.report = Some(take(&mut i)?),
            "--demo-tables" => {
                out.demo_tables = true;
                i += 1;
            }
            "--force" => {
                out.force = true;
                i += 1;
            }
            _ => return None,
        }
    }
    if out.base.is_empty() {
        return None;
    }
    Some(out)
}

/// Demo forwarding state matching the repository's base design and the
/// traffic generator's flows (see `rp4::demo`).
fn demo_population() -> String {
    let mut s = String::new();
    for p in 0..8 {
        s.push_str(&format!(
            "table_add port_map set_ifindex {p} => {}\n",
            10 + p
        ));
        s.push_str(&format!("table_add bd_vrf set_bd_vrf {} => 1 1\n", 10 + p));
    }
    s.push_str("table_add fwd_mode set_l3 1 0x020000000002 =>\n");
    s.push_str("table_add ipv4_lpm set_nexthop 1 0x0a010000/16 => 7\n");
    s.push_str("table_add ipv6_lpm set_nexthop 1 0xfc010000000000000000000000000000/16 => 9\n");
    s.push_str("table_add nexthop set_bd_dmac 7 => 2 0x020202030301\n");
    s.push_str("table_add nexthop set_bd_dmac 9 => 3 0x020202030302\n");
    s.push_str("table_add dmac set_port 2 0x020202030301 => 2\n");
    s.push_str("table_add dmac set_port 3 0x020202030302 => 3\n");
    s.push_str("table_add l2_l3_rewrite rewrite_l3 2 => 0x020a0a0a0a0a\n");
    s.push_str("table_add l2_l3_rewrite rewrite_l3 3 => 0x020a0a0a0a0a\n");
    s
}

fn run(a: Args) -> Result<(), String> {
    let base_src =
        std::fs::read_to_string(&a.base).map_err(|e| format!("cannot read {}: {e}", a.base))?;
    let prog = rp4_lang::parse(&base_src).map_err(|e| e.to_string())?;
    let target = match a.target.as_str() {
        "ipbm" => CompilerTarget::ipbm(),
        "fpga" => CompilerTarget::fpga(),
        other => return Err(format!("unknown target `{other}`")),
    };
    let compilation = rp4c::full_compile(&prog, &target).map_err(|e| e.to_string())?;
    let device = IpbmSwitch::new(IpbmConfig {
        slots: target.slots,
        sram_blocks: target.sram_blocks,
        tcam_blocks: target.tcam_blocks,
        ..IpbmConfig::default()
    });
    let (mut flow, install) =
        Rp4Flow::install(device, compilation, target).map_err(|e| e.to_string())?;
    flow.force = a.force;
    if a.force {
        eprintln!("warning: --force disables the update-plan safety check (RP4105)");
    }
    println!(
        "installed `{}`: {} msgs, simulated load {:.1} ms, {} TSPs",
        a.base,
        install.msgs,
        install.load_us / 1000.0,
        flow.design.programmed().count()
    );

    // Snippet resolver: --snippets dir, each script's own dir, bundled.
    let snippet_dirs: Vec<std::path::PathBuf> = a
        .snippets
        .iter()
        .map(std::path::PathBuf::from)
        .chain(
            a.scripts
                .iter()
                .filter_map(|s| std::path::Path::new(s).parent().map(|p| p.to_path_buf())),
        )
        .collect();
    let resolve = move |name: &str| -> Option<String> {
        for d in &snippet_dirs {
            if let Ok(s) = std::fs::read_to_string(d.join(name)) {
                return Some(s);
            }
        }
        programs::bundled_sources(name)
    };

    if a.demo_tables {
        flow.run_script(&demo_population(), &resolve)
            .map_err(|e| format!("demo population: {e}"))?;
        println!("demo tables populated");
    }

    let mut gen = TrafficGen::new(a.seed)
        .with_v6_percent(a.v6)
        .with_flows(a.flows);
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    let mut run_traffic = |flow: &mut Rp4Flow<IpbmSwitch>, label: &str| {
        for p in gen.batch(a.packets) {
            flow.device.inject(p);
        }
        total_in += a.packets;
        let out = flow.device.run();
        total_out += out.len();
        println!("[{label}] {} in / {} out", a.packets, out.len());
    };

    run_traffic(&mut flow, "baseline");
    for script in &a.scripts {
        let src =
            std::fs::read_to_string(script).map_err(|e| format!("cannot read {script}: {e}"))?;
        let outcome = flow
            .run_script(&src, &resolve)
            .map_err(|e| format!("{script}: {e}"))?;
        match &outcome.update_stats {
            Some(s) => println!(
                "[{script}] t_C {:.2} ms, t_L {:.2} ms, {} template writes, new tables {:?}",
                outcome.compile_us / 1000.0,
                outcome.report.load_us / 1000.0,
                s.template_writes,
                s.new_tables
            ),
            None => println!(
                "[{script}] {} msgs applied ({} entries)",
                outcome.report.msgs, outcome.report.entries_written
            ),
        }
        run_traffic(&mut flow, script);
    }

    println!("\ntotal: {total_in} injected, {total_out} forwarded");
    let report = flow.device.report();
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    match &a.report {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("report written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("run") {
        return usage();
    }
    match parse_args(&args[1..]) {
        Some(a) => match run(a) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ipsa-ctl: {e}");
                ExitCode::FAILURE
            }
        },
        None => usage(),
    }
}
