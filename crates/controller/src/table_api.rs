//! Typed table-entry construction against generated APIs.
//!
//! The controller validates every `table_add`/`table_del` against the API
//! descriptors rp4bc emitted — field counts, match kinds, widths, action
//! arity — before any message reaches a device.

use ipsa_core::table::{ActionCall, KeyMatch, TableEntry};
use ipsa_netpkt::bitfield::width_mask;
use rp4c::api_gen::TableApi;

use crate::script::KeyToken;

/// API-level validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table API error: {}", self.msg)
    }
}

impl std::error::Error for ApiError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ApiError> {
    Err(ApiError { msg: msg.into() })
}

/// Finds a table's API descriptor.
pub fn find_api<'a>(apis: &'a [TableApi], table: &str) -> Result<&'a TableApi, ApiError> {
    apis.iter()
        .find(|a| a.table == table)
        .ok_or_else(|| ApiError {
            msg: format!("unknown table `{table}`"),
        })
}

/// Converts script key tokens into validated [`KeyMatch`]es for a table.
pub fn build_key(api: &TableApi, keys: &[KeyToken]) -> Result<Vec<KeyMatch>, ApiError> {
    if keys.len() != api.key.len() {
        return err(format!(
            "table `{}` takes {} key fields, got {}",
            api.table,
            api.key.len(),
            keys.len()
        ));
    }
    keys.iter()
        .zip(&api.key)
        .map(|(tok, field)| {
            let mask = width_mask(field.bits);
            let check = |v: u128, what: &str| -> Result<u128, ApiError> {
                if v & !mask != 0 {
                    err(format!(
                        "table `{}` field `{}`: {what} {v:#x} exceeds {} bits",
                        api.table, field.name, field.bits
                    ))
                } else {
                    Ok(v)
                }
            };
            match (tok, field.kind.as_str()) {
                (KeyToken::Exact(v), "exact" | "hash") => Ok(KeyMatch::Exact(check(*v, "value")?)),
                (KeyToken::Lpm { value, prefix_len }, "lpm") => {
                    if *prefix_len > field.bits {
                        return err(format!(
                            "table `{}` field `{}`: /{prefix_len} exceeds width {}",
                            api.table, field.name, field.bits
                        ));
                    }
                    Ok(KeyMatch::Lpm {
                        value: check(*value, "value")?,
                        prefix_len: *prefix_len,
                    })
                }
                (KeyToken::Ternary { value, mask: m }, "ternary") => Ok(KeyMatch::Ternary {
                    value: check(*value, "value")?,
                    mask: check(*m, "mask")?,
                }),
                (tok, kind) => err(format!(
                    "table `{}` field `{}` is `{kind}`, got {tok:?}",
                    api.table, field.name
                )),
            }
        })
        .collect()
}

/// Builds a fully validated entry from script tokens.
pub fn build_entry(
    api: &TableApi,
    action: &str,
    keys: &[KeyToken],
    args: &[u128],
    priority: i32,
) -> Result<TableEntry, ApiError> {
    let act = api
        .actions
        .iter()
        .find(|a| a.name == action)
        .ok_or_else(|| ApiError {
            msg: format!("table `{}` does not offer action `{action}`", api.table),
        })?;
    if args.len() != act.params.len() {
        return err(format!(
            "action `{action}` takes {} args, got {}",
            act.params.len(),
            args.len()
        ));
    }
    for (v, (pname, bits)) in args.iter().zip(&act.params) {
        if *v & !width_mask(*bits) != 0 {
            return err(format!(
                "action `{action}` param `{pname}`: {v:#x} exceeds {bits} bits"
            ));
        }
    }
    Ok(TableEntry {
        key: build_key(api, keys)?,
        priority,
        action: ActionCall::new(action, args.to_vec()),
        counter: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp4c::api_gen::{ApiAction, ApiKeyField};

    fn api() -> TableApi {
        TableApi {
            table: "fib".into(),
            key: vec![ApiKeyField {
                name: "ipv4.dst_addr".into(),
                bits: 32,
                kind: "lpm".into(),
            }],
            actions: vec![ApiAction {
                name: "set_nh".into(),
                tag: 1,
                params: vec![("nh".into(), 16)],
            }],
            size: 128,
            counters: false,
        }
    }

    #[test]
    fn builds_valid_entry() -> Result<(), ApiError> {
        let e = build_entry(
            &api(),
            "set_nh",
            &[KeyToken::Lpm {
                value: 0x0a000000,
                prefix_len: 8,
            }],
            &[42],
            0,
        )?;
        assert_eq!(e.action.args, vec![42]);
        assert!(matches!(e.key[0], KeyMatch::Lpm { prefix_len: 8, .. }));
        Ok(())
    }

    #[test]
    fn rejects_wrong_kind_arity_width() {
        let a = api();
        assert!(build_entry(&a, "set_nh", &[KeyToken::Exact(1)], &[42], 0).is_err());
        assert!(build_entry(
            &a,
            "set_nh",
            &[KeyToken::Lpm {
                value: 0,
                prefix_len: 8
            }],
            &[],
            0
        )
        .is_err());
        assert!(build_entry(
            &a,
            "set_nh",
            &[KeyToken::Lpm {
                value: 0,
                prefix_len: 8
            }],
            &[0x1_0000],
            0
        )
        .is_err());
        assert!(build_entry(
            &a,
            "set_nh",
            &[KeyToken::Lpm {
                value: 0,
                prefix_len: 40
            }],
            &[1],
            0
        )
        .is_err());
        assert!(build_entry(
            &a,
            "ghost",
            &[KeyToken::Lpm {
                value: 0,
                prefix_len: 8
            }],
            &[1],
            0
        )
        .is_err());
    }

    #[test]
    fn unknown_table_reported() {
        assert!(find_api(&[api()], "nope").is_err());
        assert!(find_api(&[api()], "fib").is_ok());
    }
}
