//! Integration tests for the command-line binaries (`rp4c-cli` and
//! `ipsa-ctl`), driven through real subprocesses against the bundled
//! program assets.

use std::path::PathBuf;
use std::process::Command;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs")
}

fn rp4c(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rp4c-cli"))
        .args(args)
        .output()
        .expect("rp4c-cli runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn ipsa_ctl(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ipsa-ctl"))
        .args(args)
        .output()
        .expect("ipsa-ctl runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn rp4c_check_and_compile() {
    let base = programs_dir().join("base.rp4");
    let base = base.to_str().unwrap();

    let (ok, stdout, _) = rp4c(&["check", base]);
    assert!(ok);
    assert!(stdout.contains("OK"), "{stdout}");

    let out_json = std::env::temp_dir().join("rp4c_cli_design.json");
    let (ok, _, stderr) = rp4c(&[
        "compile",
        base,
        "--target",
        "fpga",
        "-o",
        out_json.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("TSPs"), "{stderr}");
    // The emitted JSON is a valid, loadable design.
    let json = std::fs::read_to_string(&out_json).unwrap();
    let design = ipsa_core::template::CompiledDesign::from_json(&json).unwrap();
    design.validate().unwrap();
}

#[test]
fn rp4c_translate_output_is_compilable() {
    let p4 = programs_dir().join("base.p4");
    let out_rp4 = std::env::temp_dir().join("rp4c_cli_translated.rp4");
    let (ok, _, stderr) = rp4c(&[
        "translate",
        p4.to_str().unwrap(),
        "-o",
        out_rp4.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    // And the translation passes `check`.
    let (ok, stdout, stderr) = rp4c(&["check", out_rp4.to_str().unwrap()]);
    assert!(ok, "{stdout}{stderr}");
}

#[test]
fn rp4c_plan_prints_msgs_and_updated_design() {
    let dir = programs_dir();
    let (ok, stdout, stderr) = rp4c(&[
        "plan",
        "--base",
        dir.join("base.rp4").to_str().unwrap(),
        "--script",
        dir.join("ecmp.script").to_str().unwrap(),
        "--target",
        "fpga",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("WriteTemplate"), "{stderr}");
    assert!(stderr.contains("template writes"), "{stderr}");
    // rp4bc's first output: the updated base design, re-parseable.
    let marker = "// --- updated base design (rp4bc output 1) ---";
    let updated = stdout.split(marker).nth(1).expect("updated design printed");
    let prog = rp4_lang::parse(updated).expect("updated design parses");
    assert!(prog.stage("ecmp").is_some());
    assert!(prog.stage("nexthop").is_none(), "replaced stage dropped");
}

#[test]
fn rp4c_rejects_bad_input() {
    let (ok, _, stderr) = rp4c(&["check", "/nonexistent/file.rp4"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let bad = std::env::temp_dir().join("rp4c_cli_bad.rp4");
    std::fs::write(
        &bad,
        "stage s { parser { ghost; } matcher { } executor { default: NoAction; } }",
    )
    .unwrap();
    let (ok, _, stderr) = rp4c(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("ghost"), "{stderr}");
}

#[test]
fn ipsa_ctl_runs_the_full_story() {
    let dir = programs_dir();
    let report = std::env::temp_dir().join("ipsa_ctl_report.json");
    let (ok, stdout, stderr) = ipsa_ctl(&[
        "run",
        "--base",
        dir.join("base.rp4").to_str().unwrap(),
        "--demo-tables",
        "--script",
        dir.join("ecmp.script").to_str().unwrap(),
        "--script",
        dir.join("ecmp_members.script").to_str().unwrap(),
        "--packets",
        "150",
        "--v6",
        "0",
        "--report",
        report.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}\n{stdout}");
    assert!(stdout.contains("[baseline] 150 in / 150 out"), "{stdout}");
    // After members are installed, traffic forwards again.
    assert!(
        stdout.contains("ecmp_members.script] 150 in / 150 out"),
        "{stdout}"
    );
    // The report is valid JSON with the expected totals.
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
    assert_eq!(json["pipeline"]["received"], 450);
}
