//! Throughput model (Sec. 5, "Throughput").
//!
//! Both prototypes run at 200 MHz and neither realizes ideal
//! one-cycle-per-packet. Throughput = clock / cycles-per-packet, where
//! cycles-per-packet is set by the slowest pipeline stage:
//!
//! - **PISA**: a stage does one integrated-memory lookup; the front parser
//!   adds a small serialization overhead growing with the parse datapath.
//!   Paper: 187.33 / 153.71 / 191.93 Mpps for C1/C2/C3.
//! - **IPSA**: the slowest TSP additionally pays (a) extra memory beats
//!   when the widest table entry exceeds the data bus ("the table entry
//!   size exceeds the data bus width") and (b) one per-packet template
//!   parameter fetch ("the extra time for loading the per-packet
//!   configuration parameters"). Paper: 65.81 / 51.36 / 86.62 Mpps.
//!
//! The paper also names the fixes — widening the bus and pipelining the
//! TSP internals — so the model exposes both knobs for the ablation bench.

use serde::Serialize;

use crate::params::{Arch, DesignParams};

/// Prototype clock, MHz.
pub const CLOCK_MHZ: f64 = 200.0;
/// Parser serialization cycles per kilobit of parsed headers (PISA front
/// parser and IPSA distributed parsers alike — both touch the same bits).
const PARSE_CYCLES_PER_KBIT: f64 = 0.09;
/// Cycles one template-parameter fetch costs an unpipelined TSP.
const TEMPLATE_FETCH_CYCLES: f64 = 1.0;
/// Extra scheduling cycles per active TSP beyond the first (unpipelined
/// TSP internals; eliminated by `pipelined_tsp`).
const TSP_SCHED_CYCLES: f64 = 0.028;

/// Throughput-model knobs (the paper's proposed improvements).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ThroughputOptions {
    /// Pipeline the TSP internal design, hiding the template fetch.
    pub pipelined_tsp: bool,
    /// Override the memory bus width (bits); `None` = design's bus.
    pub bus_bits: Option<usize>,
}

/// Throughput report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ThroughputReport {
    /// Cycles per packet of the limiting stage.
    pub cycles_per_packet: f64,
    /// Throughput in Mpps at 200 MHz.
    pub mpps: f64,
}

/// Computes throughput for a design on an architecture.
pub fn throughput(arch: Arch, p: &DesignParams, opts: ThroughputOptions) -> ThroughputReport {
    let parse_cycles = PARSE_CYCLES_PER_KBIT * p.total_header_bits as f64 / 1000.0;
    let bus = opts.bus_bits.unwrap_or(p.bus_bits).max(1);
    let cpp = match arch {
        Arch::Pisa => {
            // Integrated per-stage memory: one access per lookup regardless
            // of entry width (the stage's RAM is as wide as its entry).
            1.0 + parse_cycles
        }
        Arch::Ipsa => {
            let extra_beats = (p.max_entry_bits().div_ceil(bus).max(1) - 1) as f64;
            let fetch = if opts.pipelined_tsp {
                0.0
            } else {
                TEMPLATE_FETCH_CYCLES
            };
            let sched = if opts.pipelined_tsp {
                0.0
            } else {
                TSP_SCHED_CYCLES * p.active_stages.saturating_sub(1) as f64
            };
            1.0 + parse_cycles + extra_beats + fetch + sched
        }
    };
    ThroughputReport {
        cycles_per_packet: cpp,
        mpps: CLOCK_MHZ / cpp,
    }
}

/// Per-packet pipeline *latency* in cycles (distinct from throughput: how
/// long one packet spends in the pipe).
///
/// PISA: every physical stage sits in the fixed pipeline, functional or
/// not, plus the front parser's serialization. IPSA: bypassed TSPs are
/// excluded from the chain, "which offsets the extra … latency introduced
/// by the crossbar and distributed parser" (Sec. 5 discussion) — each
/// active TSP pays its template fetch and crossbar traversal instead.
pub fn pipeline_latency_cycles(arch: Arch, p: &DesignParams) -> f64 {
    /// Cycles one match-action stage adds to the transit time.
    const STAGE_CYCLES: f64 = 3.0;
    /// Crossbar traversal cycles per table access.
    const XBAR_CYCLES: f64 = 1.0;
    let parse_cycles = PARSE_CYCLES_PER_KBIT * p.total_header_bits as f64 / 1000.0;
    match arch {
        Arch::Pisa => {
            // Front parser + every physical stage, active or not.
            parse_cycles * 10.0 + STAGE_CYCLES * p.stages as f64
        }
        Arch::Ipsa => {
            // Only active TSPs; each pays fetch + crossbar + its share of
            // the distributed parsing.
            let per_tsp = STAGE_CYCLES + TEMPLATE_FETCH_CYCLES + XBAR_CYCLES;
            parse_cycles * 10.0 + per_tsp * p.active_stages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TableParams;

    fn params(max_entry_bits: usize, header_bits: usize) -> DesignParams {
        DesignParams {
            stages: 8,
            active_stages: 7,
            parser_states: 7,
            total_header_bits: header_bits,
            parse_edges: 8,
            tables: vec![TableParams {
                entry_bits: max_entry_bits,
                entries: 1024,
                tcam: false,
                blocks: 2,
            }],
            crossbar_ports: 8 * 27,
            bus_bits: 128,
        }
    }

    #[test]
    fn magnitudes_match_section5() {
        // C1-like design: ~1 extra beat (entry slightly over the bus).
        let p = params(160, 960);
        let pisa = throughput(Arch::Pisa, &p, Default::default());
        let ipsa = throughput(Arch::Ipsa, &p, Default::default());
        assert!((150.0..=200.0).contains(&pisa.mpps), "pisa {}", pisa.mpps);
        assert!((50.0..=100.0).contains(&ipsa.mpps), "ipsa {}", ipsa.mpps);
        let ratio = pisa.mpps / ipsa.mpps;
        assert!((1.8..=3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wider_entries_hurt_ipsa_not_pisa() {
        let narrow = params(100, 960);
        let wide = params(300, 960);
        let p_n = throughput(Arch::Pisa, &narrow, Default::default());
        let p_w = throughput(Arch::Pisa, &wide, Default::default());
        assert!((p_n.mpps - p_w.mpps).abs() < 1e-9);
        let i_n = throughput(Arch::Ipsa, &narrow, Default::default());
        let i_w = throughput(Arch::Ipsa, &wide, Default::default());
        assert!(i_w.mpps < i_n.mpps);
    }

    #[test]
    fn paper_fixes_recover_throughput() {
        let p = params(300, 960);
        let base = throughput(Arch::Ipsa, &p, Default::default());
        // Fix 1: widen the bus.
        let wide_bus = throughput(
            Arch::Ipsa,
            &p,
            ThroughputOptions {
                bus_bits: Some(512),
                ..Default::default()
            },
        );
        assert!(wide_bus.mpps > base.mpps);
        // Fix 2: pipeline the TSP (hides the template fetch).
        let pipelined = throughput(
            Arch::Ipsa,
            &p,
            ThroughputOptions {
                pipelined_tsp: true,
                bus_bits: Some(512),
            },
        );
        assert!(pipelined.mpps > wide_bus.mpps);
        // Both fixes together approach PISA.
        let pisa = throughput(Arch::Pisa, &p, Default::default());
        assert!(pipelined.mpps / pisa.mpps > 0.95);
    }

    #[test]
    fn latency_shape_matches_discussion() {
        // Full pipelines: IPSA pays extra per-stage latency (fetch+xbar).
        let mut p = params(100, 960);
        p.active_stages = 8;
        let full_pisa = pipeline_latency_cycles(Arch::Pisa, &p);
        let full_ipsa = pipeline_latency_cycles(Arch::Ipsa, &p);
        assert!(full_ipsa > full_pisa);
        // Small designs: bypassed TSPs leave the chain, so IPSA's latency
        // drops below PISA's fixed pipeline — the discussion's offset.
        p.active_stages = 3;
        let small_ipsa = pipeline_latency_cycles(Arch::Ipsa, &p);
        assert!(small_ipsa < full_pisa);
        assert!(
            (pipeline_latency_cycles(Arch::Pisa, &p) - full_pisa).abs() < 1e-9,
            "PISA latency is independent of how many stages the app uses"
        );
    }

    #[test]
    fn heavier_parsing_slows_both() {
        let light = params(100, 500);
        let heavy = params(100, 2000);
        for arch in [Arch::Pisa, Arch::Ipsa] {
            let l = throughput(arch, &light, Default::default());
            let h = throughput(arch, &heavy, Default::default());
            assert!(h.mpps < l.mpps);
        }
    }
}
