//! # ipsa-hwmodel — the FPGA/ASIC analytical model
//!
//! Substitutes the paper's Xilinx Alveo U280 prototypes (see DESIGN.md §4):
//! first-order hardware cost equations over parameters extracted from the
//! *actual compiled designs* ([`params::DesignParams::from_design`]),
//! calibrated to the paper's reported magnitudes:
//!
//! - [`resource`] — LUT/FF utilization (Table 2);
//! - [`mod@power`] — watts per component and the power-vs-stages series
//!   (Table 3 and Fig. 6);
//! - [`mod@throughput`] — Mpps at 200 MHz with the paper's two improvement
//!   knobs, bus widening and TSP pipelining (Sec. 5).
//!
//! Per-use-case differences (C1/C2/C3) come from the designs themselves —
//! table widths, parse-graph size, active stages — not per-case constants.

#![warn(missing_docs)]

pub mod params;
pub mod power;
pub mod resource;
pub mod throughput;

pub use params::{Arch, DesignParams, TableParams};
pub use power::{fig6_series, power, PowerReport};
pub use resource::{resources, LutFf, ResourceReport};
pub use throughput::{pipeline_latency_cycles, throughput, ThroughputOptions, ThroughputReport};

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::params::TableParams;
    use proptest::prelude::*;

    prop_compose! {
        fn params_strategy()(
            stages in 2usize..16,
            active in 1usize..16,
            states in 1usize..12,
            header_bits in 100usize..4000,
            n_tables in 1usize..12,
            entry_bits in 16usize..512,
            ports in 0usize..200,
        ) -> DesignParams {
            DesignParams {
                stages,
                active_stages: active.min(stages),
                parser_states: states,
                total_header_bits: header_bits,
                parse_edges: states,
                tables: (0..n_tables).map(|i| TableParams {
                    entry_bits: entry_bits + i,
                    entries: 1024,
                    tcam: false,
                    blocks: 1 + i / 3,
                }).collect(),
                crossbar_ports: ports,
                bus_bits: 128,
            }
        }
    }

    proptest! {
        /// Structural invariants of the hardware model over arbitrary
        /// designs: components are non-negative, totals are sums, PISA is
        /// never slower than IPSA, and the architecture-specific components
        /// are zero on the other architecture.
        #[test]
        fn model_invariants(p in params_strategy()) {
            let rp = resources(Arch::Pisa, &p);
            let ri = resources(Arch::Ipsa, &p);
            prop_assert!(rp.front_parser.lut_pct > 0.0);
            prop_assert!(ri.front_parser.lut_pct == 0.0);
            prop_assert!(rp.crossbar.lut_pct == 0.0);
            prop_assert!(ri.crossbar.lut_pct >= 0.0);
            for r in [&rp, &ri] {
                let sum = r.front_parser.lut_pct + r.processors.lut_pct + r.crossbar.lut_pct;
                prop_assert!((r.total.lut_pct - sum).abs() < 1e-9);
            }

            let tp = throughput(Arch::Pisa, &p, Default::default());
            let ti = throughput(Arch::Ipsa, &p, Default::default());
            prop_assert!(tp.mpps >= ti.mpps, "PISA {} vs IPSA {}", tp.mpps, ti.mpps);
            prop_assert!(ti.mpps > 0.0);

            // Fig. 6 monotonicity: IPSA power non-decreasing in stages.
            let series = fig6_series(&p);
            for w in series.windows(2) {
                prop_assert!(w[1].2 >= w[0].2 - 1e-12);
            }
        }
    }
}
