//! Design parameters extracted from a compiled design.
//!
//! The hardware model is driven by the *actual* compiled artifacts — stage
//! counts, parse-graph size, table geometries, crossbar fan-out — so that
//! per-use-case differences (C1 vs C2 vs C3) come from the designs
//! themselves, not hand-tuned per-case constants.

use ipsa_core::memory::{blocks_needed, BlockKind};
use ipsa_core::template::CompiledDesign;
use serde::Serialize;

/// Which architecture a prototype implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Arch {
    /// Fixed pipeline, front parser, integrated memory.
    Pisa,
    /// Elastic TSP pipeline, distributed parsing, pooled memory + crossbar.
    Ipsa,
}

/// One table's hardware-relevant geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TableParams {
    /// Stored entry width in bits.
    pub entry_bits: usize,
    /// Capacity in entries.
    pub entries: usize,
    /// True for TCAM tables.
    pub tcam: bool,
    /// Memory blocks the table occupies.
    pub blocks: usize,
}

/// Hardware-relevant parameters of one compiled design on one prototype.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DesignParams {
    /// Physical stage processors implemented on the chip.
    pub stages: usize,
    /// Stages actually active (programmed + selected) for this design.
    pub active_stages: usize,
    /// Header types in the parse graph.
    pub parser_states: usize,
    /// Total bits across all header types (parser datapath width driver).
    pub total_header_bits: usize,
    /// Parse-graph edges (transition count).
    pub parse_edges: usize,
    /// Table geometries.
    pub tables: Vec<TableParams>,
    /// Crossbar fabric size: potential TSP→block ports the interconnect
    /// must implement so every stage can reach the design's blocks
    /// (`stages × blocks` for a full crossbar; divided by the cluster
    /// count for clustered fabrics). 0 for PISA.
    pub crossbar_ports: usize,
    /// TSP↔memory data bus width, bits.
    pub bus_bits: usize,
}

impl DesignParams {
    /// Extracts parameters from a compiled design.
    ///
    /// `physical_stages` is the chip's stage count (both paper prototypes
    /// implement 8); `bus_bits` the memory data bus.
    pub fn from_design(design: &CompiledDesign, physical_stages: usize, bus_bits: usize) -> Self {
        let tables: Vec<TableParams> = design
            .tables
            .values()
            .map(|def| {
                let entry_bits = def.entry_width_bits(design.table_data_bits(&def.name));
                let kind = BlockKind::for_table(def);
                TableParams {
                    entry_bits,
                    entries: def.size,
                    tcam: def.is_ternary(),
                    blocks: blocks_needed(kind.geometry(), entry_bits, def.size),
                }
            })
            .collect();
        let total_blocks: usize = tables.iter().map(|t| t.blocks).sum();
        DesignParams {
            stages: physical_stages,
            active_stages: design.selector.active_count().min(physical_stages),
            parser_states: design.linkage.len(),
            total_header_bits: design.linkage.iter().map(|h| h.fixed_bits()).sum(),
            parse_edges: design.linkage.edges().len(),
            tables,
            crossbar_ports: physical_stages * total_blocks,
            bus_bits,
        }
    }

    /// Total memory blocks across tables.
    pub fn total_blocks(&self) -> usize {
        self.tables.iter().map(|t| t.blocks).sum()
    }

    /// The widest stored entry (drives the worst-stage memory access count).
    pub fn max_entry_bits(&self) -> usize {
        self.tables.iter().map(|t| t.entry_bits).max().unwrap_or(0)
    }

    /// Memory accesses the worst table costs per lookup on this bus.
    pub fn worst_accesses(&self) -> usize {
        self.max_entry_bits().div_ceil(self.bus_bits.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::table::{ActionCall, KeyField, MatchKind, TableDef};
    use ipsa_core::value::ValueRef;

    fn design() -> CompiledDesign {
        let mut d = CompiledDesign::empty("x", 8);
        d.linkage = ipsa_netpkt::HeaderLinkage::standard();
        d.tables.insert(
            "wide".into(),
            TableDef {
                name: "wide".into(),
                key: vec![KeyField {
                    source: ValueRef::field("ipv6", "dst_addr"),
                    bits: 128,
                    kind: MatchKind::Exact,
                }],
                size: 2048,
                actions: vec![],
                default_action: ActionCall::no_action(),
                with_counters: false,
            },
        );
        d.selector = ipsa_core::pipeline_cfg::SelectorConfig::split(8, 3, 2).unwrap();
        d.crossbar.insert(0, vec![0, 1, 2]);
        d.crossbar.insert(1, vec![3]);
        d
    }

    #[test]
    fn extraction_reflects_design() {
        let p = DesignParams::from_design(&design(), 8, 128);
        assert_eq!(p.stages, 8);
        assert_eq!(p.active_stages, 5);
        assert_eq!(p.parser_states, 7);
        // Fabric: 8 stages x 4 blocks.
        assert_eq!(p.crossbar_ports, 32);
        // 128-bit key + 8 tag = 136 bits -> 2 accesses on a 128-bit bus.
        assert_eq!(p.worst_accesses(), 2);
        // 136 bits over 112-wide SRAM = 2 cols; 2048 deep = 2 groups -> 4.
        assert_eq!(p.total_blocks(), 4);
    }
}
