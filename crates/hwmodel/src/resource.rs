//! FPGA resource model (Table 2).
//!
//! First-order LUT/FF cost equations over design parameters, calibrated so
//! the paper's base design on the 8-stage Alveo U280 prototypes lands on
//! Table 2's magnitudes:
//!
//! | component     | PISA (LUT/FF)  | IPSA (LUT/FF)  |
//! |---------------|----------------|----------------|
//! | Front parser  | 0.88% / 0.10%  | —              |
//! | Processors    | 5.32% / 0.47%  | 5.83% / 0.85%  |
//! | Crossbar      | —              | 1.29% / 0.07%  |
//! | Total         | 6.20% / 0.57%  | 7.12% / 0.92%  |
//!
//! The qualitative claims the model must preserve: IPSA pays a LUT/FF
//! premium per processor for the distributed parser + template machinery
//! (≈ +15% LUT / +61% FF total), PISA pays a front parser IPSA doesn't
//! have, and only IPSA pays for a crossbar that grows with its port count.

use serde::Serialize;

use crate::params::{Arch, DesignParams};

/// Alveo U280 LUT capacity.
pub const LUT_TOTAL: f64 = 1_304_000.0;
/// Alveo U280 FF capacity.
pub const FF_TOTAL: f64 = 2_607_000.0;

// --- Front parser (PISA only) -------------------------------------------
/// LUTs per parser state (header type) in the front-end parser.
const FP_LUT_PER_STATE: f64 = 900.0;
/// LUTs per header bit of parser datapath.
const FP_LUT_PER_BIT: f64 = 4.0;
/// FFs per header bit held in the parsed-header vector.
const FP_FF_PER_BIT: f64 = 2.2;

// --- Stage processors ----------------------------------------------------
/// Base LUTs of one PISA match-action stage.
const PISA_STAGE_LUT: f64 = 8_300.0;
/// Base FFs of one PISA stage.
const PISA_STAGE_FF: f64 = 1_450.0;
/// Extra LUTs per table hosted by a stage (key mux + action units).
const STAGE_LUT_PER_TABLE: f64 = 180.0;
/// Extra LUTs of one IPSA TSP over a PISA stage: the per-stage parser
/// sub-module and the template interpretation logic.
const TSP_EXTRA_LUT: f64 = 800.0;
/// Extra FFs of one IPSA TSP: template parameter registers dominate.
const TSP_EXTRA_FF: f64 = 1_250.0;

// --- Crossbar (IPSA only) ------------------------------------------------
/// LUTs per fabric port (mux tree share per TSP↔block pair).
const XBAR_LUT_PER_PORT: f64 = 62.0;
/// Flat LUT cost of the crossbar control plane.
const XBAR_LUT_BASE: f64 = 2_600.0;
/// FFs per fabric port (config registers).
const XBAR_FF_PER_PORT: f64 = 7.0;

/// A LUT/FF pair, as percentages of chip capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LutFf {
    /// Percent of LUTs.
    pub lut_pct: f64,
    /// Percent of flip-flops.
    pub ff_pct: f64,
}

impl LutFf {
    fn from_abs(lut: f64, ff: f64) -> Self {
        LutFf {
            lut_pct: 100.0 * lut / LUT_TOTAL,
            ff_pct: 100.0 * ff / FF_TOTAL,
        }
    }

    /// Component-wise sum.
    pub fn plus(self, other: LutFf) -> LutFf {
        LutFf {
            lut_pct: self.lut_pct + other.lut_pct,
            ff_pct: self.ff_pct + other.ff_pct,
        }
    }
}

/// Table 2-shaped resource report.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ResourceReport {
    /// Front parser (zero for IPSA).
    pub front_parser: LutFf,
    /// Stage processors.
    pub processors: LutFf,
    /// Crossbar (zero for PISA).
    pub crossbar: LutFf,
    /// Total.
    pub total: LutFf,
}

/// Computes the resource report for a design on an architecture.
pub fn resources(arch: Arch, p: &DesignParams) -> ResourceReport {
    let tables_per_stage = p.tables.len() as f64 / p.stages.max(1) as f64;
    let mut report = ResourceReport::default();
    match arch {
        Arch::Pisa => {
            report.front_parser = LutFf::from_abs(
                FP_LUT_PER_STATE * p.parser_states as f64
                    + FP_LUT_PER_BIT * p.total_header_bits as f64,
                FP_FF_PER_BIT * p.total_header_bits as f64,
            );
            report.processors = LutFf::from_abs(
                p.stages as f64 * (PISA_STAGE_LUT + STAGE_LUT_PER_TABLE * tables_per_stage),
                p.stages as f64 * PISA_STAGE_FF,
            );
        }
        Arch::Ipsa => {
            // No front parser: its function is distributed into the TSPs
            // (accounted in the TSP premium).
            report.processors = LutFf::from_abs(
                p.stages as f64
                    * (PISA_STAGE_LUT + TSP_EXTRA_LUT + STAGE_LUT_PER_TABLE * tables_per_stage),
                p.stages as f64 * (PISA_STAGE_FF + TSP_EXTRA_FF),
            );
            report.crossbar = LutFf::from_abs(
                XBAR_LUT_BASE + XBAR_LUT_PER_PORT * p.crossbar_ports as f64,
                XBAR_FF_PER_PORT * p.crossbar_ports as f64,
            );
        }
    }
    report.total = report
        .front_parser
        .plus(report.processors)
        .plus(report.crossbar);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TableParams;

    /// Parameters approximating the paper's base L2/L3 design on the
    /// 8-stage prototypes.
    pub fn base_like() -> DesignParams {
        DesignParams {
            stages: 8,
            active_stages: 7,
            parser_states: 7,
            total_header_bits: 960,
            parse_edges: 8,
            tables: (0..10)
                .map(|i| TableParams {
                    entry_bits: 80 + 16 * i,
                    entries: 1024,
                    tcam: false,
                    blocks: 2,
                })
                .collect(),
            crossbar_ports: 8 * 27,
            bus_bits: 128,
        }
    }

    #[test]
    fn pisa_magnitudes_match_table2() {
        let r = resources(Arch::Pisa, &base_like());
        assert!((0.6..=1.2).contains(&r.front_parser.lut_pct), "{r:?}");
        assert!((4.5..=6.5).contains(&r.processors.lut_pct), "{r:?}");
        assert!((5.0..=7.5).contains(&r.total.lut_pct), "{r:?}");
        assert!((0.3..=0.8).contains(&r.total.ff_pct), "{r:?}");
        assert_eq!(r.crossbar, LutFf::default());
    }

    #[test]
    fn ipsa_magnitudes_match_table2() {
        let r = resources(Arch::Ipsa, &base_like());
        assert_eq!(r.front_parser, LutFf::default());
        assert!((5.0..=7.0).contains(&r.processors.lut_pct), "{r:?}");
        assert!((0.8..=2.0).contains(&r.crossbar.lut_pct), "{r:?}");
        assert!((6.0..=8.5).contains(&r.total.lut_pct), "{r:?}");
        assert!((0.6..=1.2).contains(&r.total.ff_pct), "{r:?}");
    }

    #[test]
    fn ipsa_premium_shape_holds() {
        let p = base_like();
        let pisa = resources(Arch::Pisa, &p);
        let ipsa = resources(Arch::Ipsa, &p);
        let lut_premium = ipsa.total.lut_pct / pisa.total.lut_pct;
        let ff_premium = ipsa.total.ff_pct / pisa.total.ff_pct;
        // Paper: +14.84% LUT, +61.40% FF.
        assert!(
            (1.05..=1.35).contains(&lut_premium),
            "LUT premium {lut_premium}"
        );
        assert!((1.3..=2.1).contains(&ff_premium), "FF premium {ff_premium}");
        assert!(
            ff_premium > lut_premium,
            "FF premium dominates (template regs)"
        );
    }

    #[test]
    fn crossbar_grows_with_ports() {
        let mut p = base_like();
        let small = resources(Arch::Ipsa, &p);
        p.crossbar_ports *= 4;
        let big = resources(Arch::Ipsa, &p);
        assert!(big.crossbar.lut_pct > small.crossbar.lut_pct);
        assert!(big.total.lut_pct > small.total.lut_pct);
    }

    #[test]
    fn parser_grows_with_headers() {
        let mut p = base_like();
        let small = resources(Arch::Pisa, &p);
        p.parser_states = 14;
        p.total_header_bits = 2200;
        let big = resources(Arch::Pisa, &p);
        assert!(big.front_parser.lut_pct > small.front_parser.lut_pct);
        // IPSA resources are unchanged by a bigger parse graph (distributed
        // parsing is part of the TSP budget).
        assert_eq!(
            resources(Arch::Ipsa, &p).processors,
            resources(Arch::Ipsa, &base_like()).processors
        );
    }
}
