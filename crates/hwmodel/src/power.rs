//! Power model (Table 3 and Fig. 6).
//!
//! Vivado-style decomposition into a static floor plus per-component
//! dynamic power. The qualitative behaviour the paper reports, which this
//! model must preserve:
//!
//! - at full utilization IPSA consumes ≈ 10% more than PISA (Table 3);
//! - PISA's power is nearly **flat** in the number of effective pipeline
//!   stages — non-functional stages remain in the fixed pipeline;
//! - IPSA's power **scales with active TSPs**: bypassed TSPs idle in low
//!   power, so designs using fewer stages consume proportionally less
//!   (Fig. 6), with the crossbar as a small fixed overhead.

use serde::Serialize;

use crate::params::{Arch, DesignParams};

/// Device static power floor, W (shared by both prototypes).
const STATIC_W: f64 = 0.62;
/// Front-parser dynamic power, W per kilobit of parsed header datapath.
const FP_W_PER_KBIT: f64 = 0.16;
/// Dynamic power of one PISA stage, W (always spinning: fixed pipeline).
const PISA_STAGE_W: f64 = 0.205;
/// Dynamic power of one *active* IPSA TSP, W (slightly above a PISA stage:
/// distributed parser + template logic).
const TSP_ACTIVE_W: f64 = 0.25;
/// Power of a bypassed TSP held in idle state, W.
const TSP_IDLE_W: f64 = 0.012;
/// Crossbar power, W per fabric port.
const XBAR_W_PER_PORT: f64 = 0.0006;
/// Memory power, W per allocated block (both architectures).
const MEM_W_PER_BLOCK: f64 = 0.009;

/// Power report in watts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct PowerReport {
    /// Static floor.
    pub static_w: f64,
    /// Parser contribution (front parser for PISA; folded into TSPs for
    /// IPSA, reported as 0).
    pub parser_w: f64,
    /// Stage processors.
    pub processors_w: f64,
    /// Crossbar (IPSA only).
    pub crossbar_w: f64,
    /// Table memory.
    pub memory_w: f64,
    /// Total.
    pub total_w: f64,
}

/// Computes power for a design on an architecture.
///
/// `effective_stages` is the number of stages the running application
/// actually uses (the Fig. 6 x-axis); for PISA all physical stages burn
/// power regardless, for IPSA only the active TSPs do.
pub fn power(arch: Arch, p: &DesignParams, effective_stages: usize) -> PowerReport {
    let mut r = PowerReport {
        static_w: STATIC_W,
        memory_w: MEM_W_PER_BLOCK * p.total_blocks() as f64,
        ..PowerReport::default()
    };
    match arch {
        Arch::Pisa => {
            r.parser_w = FP_W_PER_KBIT * p.total_header_bits as f64 / 1000.0;
            // The fixed pipeline burns all stages; activity adds a small
            // per-effective-stage increment.
            r.processors_w =
                PISA_STAGE_W * p.stages as f64 + 0.004 * effective_stages.min(p.stages) as f64;
        }
        Arch::Ipsa => {
            let active = effective_stages.min(p.stages);
            let idle = p.stages - active;
            r.processors_w = TSP_ACTIVE_W * active as f64 + TSP_IDLE_W * idle as f64;
            r.crossbar_w = XBAR_W_PER_PORT * p.crossbar_ports as f64;
        }
    }
    r.total_w = r.static_w + r.parser_w + r.processors_w + r.crossbar_w + r.memory_w;
    r
}

/// The Fig. 6 series: total power at each effective stage count 1..=stages,
/// for both architectures.
pub fn fig6_series(p: &DesignParams) -> Vec<(usize, f64, f64)> {
    (1..=p.stages)
        .map(|n| {
            (
                n,
                power(Arch::Pisa, p, n).total_w,
                power(Arch::Ipsa, p, n).total_w,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TableParams;

    fn base_like() -> DesignParams {
        DesignParams {
            stages: 8,
            active_stages: 7,
            parser_states: 7,
            total_header_bits: 960,
            parse_edges: 8,
            tables: (0..10)
                .map(|_| TableParams {
                    entry_bits: 96,
                    entries: 1024,
                    tcam: false,
                    blocks: 1,
                })
                .collect(),
            crossbar_ports: 8 * 27,
            bus_bits: 128,
        }
    }

    #[test]
    fn full_pipeline_ipsa_premium_about_ten_percent() {
        let p = base_like();
        let pisa = power(Arch::Pisa, &p, 8).total_w;
        let ipsa = power(Arch::Ipsa, &p, 8).total_w;
        let ratio = ipsa / pisa;
        assert!((1.02..=1.25).contains(&ratio), "premium ratio {ratio}");
        // Magnitudes in Table 3's ballpark (a few watts).
        assert!((2.0..=4.0).contains(&pisa), "pisa {pisa} W");
    }

    #[test]
    fn pisa_flat_ipsa_scales_with_stages() {
        let p = base_like();
        let s = fig6_series(&p);
        let pisa_spread = s.last().unwrap().1 - s[0].1;
        let ipsa_spread = s.last().unwrap().2 - s[0].2;
        assert!(
            pisa_spread < 0.1,
            "PISA must be ~flat, spread {pisa_spread}"
        );
        assert!(ipsa_spread > 1.0, "IPSA must scale, spread {ipsa_spread}");
        // Crossover: IPSA cheaper at low stage counts, premium at full.
        assert!(s[0].2 < s[0].1, "IPSA wins at 1 stage");
        assert!(s.last().unwrap().2 > s.last().unwrap().1, "PISA wins at 8");
    }

    #[test]
    fn idle_tsps_cost_almost_nothing() {
        let p = base_like();
        let three = power(Arch::Ipsa, &p, 3);
        let eight = power(Arch::Ipsa, &p, 8);
        let per_extra = (eight.processors_w - three.processors_w) / 5.0;
        assert!((0.2..=0.3).contains(&per_extra));
        assert!(three.processors_w < 0.85);
    }

    #[test]
    fn memory_power_follows_blocks() {
        let mut p = base_like();
        let small = power(Arch::Ipsa, &p, 8).memory_w;
        for t in &mut p.tables {
            t.blocks = 4;
        }
        let big = power(Arch::Ipsa, &p, 8).memory_w;
        assert!(big > small * 3.0);
    }

    #[test]
    fn totals_are_component_sums() {
        let p = base_like();
        for arch in [Arch::Pisa, Arch::Ipsa] {
            let r = power(arch, &p, 6);
            let sum = r.static_w + r.parser_w + r.processors_w + r.crossbar_w + r.memory_w;
            assert!((r.total_w - sum).abs() < 1e-12);
        }
    }
}
