//! AST-level abstract interpretation: the RP4301–RP4305 diagnostics.
//!
//! The stage chain (ingress stages in pipeline order, then egress stages —
//! metadata and parse state persist across the Traffic Manager) is the CFG;
//! the product state [`AbsState`] carries three lattices: a may-removed
//! header set (validity), a may-written metadata set (uninitialized-read
//! taint), and per-field value intervals. Transfer functions interpret
//! every action a stage can reach as a *weak* update (the action may not
//! run), interpreting each body sequentially with strong local updates.

use std::collections::{BTreeMap, BTreeSet};

use rp4_lang::ast::{ActionDecl, CmpOpAst, Expr, MatcherArm, PredExpr, Program, StageDecl, Stmt};
use rp4_lang::semantic::{Env, INTRINSIC_META};
use rp4_lang::{Diagnostic, ItemKind};

use crate::codes;
use crate::engine::{fixpoint, Cfg};
use crate::lattice::{max_value, AbsState, CmpKind, Interval, Lattice};

/// Runs every AST analysis over the checked program and returns the RP43xx
/// findings, in stage order. `env` must come from the same `check` that
/// accepted the program.
pub fn analyze_program(prog: &Program, env: &Env) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Stage-level reachability: with a `user_funcs` section, unclaimed
    // stages have no inbound pipeline edge. (RP4106 reports the same root
    // cause; `merge_findings` keeps only one of the two.)
    if prog.user_funcs.is_some() {
        for s in prog.stages() {
            if prog.func_of_stage(&s.name).is_empty() {
                diags.push(
                    Diagnostic::warning(
                        codes::UNREACHABLE,
                        format!(
                            "stage `{}` is unreachable: no `user_funcs` entry claims it, so it is never linked into the pipeline",
                            s.name
                        ),
                    )
                    .with_span(prog.spans.get(ItemKind::Stage, &s.name))
                    .with_note("an unclaimed stage has no inbound pipeline edge"),
                );
            }
        }
    }

    let live = live_stages(prog);
    let cfg = Cfg::chain(live.len());
    let fx = fixpoint(&cfg, &AbsState::default(), |i, s| {
        transfer_stage(live[i], prog, env, s)
    });

    let mut uninit_seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (i, stage) in live.iter().enumerate() {
        check_stage(stage, prog, env, &fx.input[i], &mut uninit_seen, &mut diags);
    }
    check_dead_stores(prog, &live, &mut diags);
    diags
}

/// Stages actually linked into the pipeline, ingress chain first. Without
/// a `user_funcs` section every stage is considered live.
fn live_stages(prog: &Program) -> Vec<&StageDecl> {
    prog.stages()
        .filter(|s| prog.user_funcs.is_none() || !prog.func_of_stage(&s.name).is_empty())
        .collect()
}

fn is_intrinsic(field: &str) -> bool {
    INTRINSIC_META.iter().any(|(n, _)| *n == field)
}

/// Metadata fields a builtin call writes.
fn builtin_meta_writes(name: &str) -> &'static [&'static str] {
    match name {
        "forward" => &["egress_port"],
        "mark" | "mark_if_count_over" => &["mark"],
        "drop" => &["drop"],
        _ => &[],
    }
}

/// Action names a stage can reach: executor arms plus every applied
/// table's offered and default actions.
fn stage_action_names(stage: &StageDecl, prog: &Program) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let push = |n: &str, out: &mut Vec<String>| {
        if !out.iter().any(|x| x == n) {
            out.push(n.to_string());
        }
    };
    for (_, a, _) in &stage.executor {
        push(a, &mut out);
    }
    for arm in &stage.matcher {
        if let Some(t) = arm.table.as_ref().and_then(|t| prog.table(t)) {
            for a in &t.actions {
                push(a, &mut out);
            }
            if let Some((a, _)) = &t.default_action {
                push(a, &mut out);
            }
        }
    }
    out
}

/// Action names one matcher arm can trigger (its table's actions and
/// default, dispatched through the stage executor).
fn arm_action_names(stage: &StageDecl, arm: &MatcherArm, prog: &Program) -> Vec<String> {
    let Some(t) = arm.table.as_ref().and_then(|t| prog.table(t)) else {
        return Vec::new();
    };
    let mut out: Vec<String> = Vec::new();
    let push = |n: &str, out: &mut Vec<String>| {
        if !out.iter().any(|x| x == n) {
            out.push(n.to_string());
        }
    };
    for a in &t.actions {
        push(a, &mut out);
    }
    if let Some((a, _)) = &t.default_action {
        push(a, &mut out);
    }
    for (_, a, _) in &stage.executor {
        push(a, &mut out);
    }
    out
}

// ---------------------------------------------------------------- transfer

fn transfer_stage(stage: &StageDecl, prog: &Program, env: &Env, input: &AbsState) -> AbsState {
    let mut out = input.clone();
    for name in stage_action_names(stage, prog) {
        if let Some(a) = prog.action(&name) {
            out = out.join(&action_effect(a, env, input));
        }
    }
    out
}

/// Interprets one action body sequentially (strong local updates) starting
/// from `input`; the caller joins the result back in (weak update, since
/// the action may not run).
fn action_effect(a: &ActionDecl, env: &Env, input: &AbsState) -> AbsState {
    let mut st = input.clone();
    for stmt in &a.body {
        match stmt {
            Stmt::Assign { lval, expr } => {
                if lval.scope == env.meta_alias {
                    let w = env.width_of(&lval.scope, &lval.field).unwrap_or(128);
                    let v = clamp(eval_expr(expr, env, Some(a), &st), w);
                    st.intervals.insert(lval.field.clone(), v);
                    st.may_written.insert(lval.field.clone());
                }
            }
            Stmt::Call { name, args } => {
                if name == "remove_header" {
                    if let Some(Expr::Ident(h) | Expr::Qualified(h, _)) = args.first() {
                        st.may_removed.insert(h.clone());
                    }
                }
                for f in builtin_meta_writes(name) {
                    let w = INTRINSIC_META
                        .iter()
                        .find(|(n, _)| n == f)
                        .map_or(128, |(_, b)| *b);
                    st.intervals.insert((*f).to_string(), Interval::top(w));
                    st.may_written.insert((*f).to_string());
                }
            }
        }
    }
    st
}

fn clamp(iv: Interval, bits: usize) -> Interval {
    if iv.hi <= max_value(bits) {
        iv
    } else {
        Interval::top(bits)
    }
}

/// Interval of an expression under `st`. `action` supplies parameter
/// widths when the expression sits in an action body.
fn eval_expr(e: &Expr, env: &Env, action: Option<&ActionDecl>, st: &AbsState) -> Interval {
    match e {
        Expr::Int(c) => Interval::constant(*c),
        Expr::Qualified(scope, field) => {
            if scope == &env.meta_alias {
                if is_intrinsic(field) && !st.intervals.contains_key(field) {
                    // Intrinsics (e.g. ingress_port) are environment-set,
                    // not zero-initialized.
                    let w = env.width_of(scope, field).unwrap_or(128);
                    Interval::top(w)
                } else {
                    st.interval_of(field)
                }
            } else {
                Interval::top(env.width_of(scope, field).unwrap_or(128))
            }
        }
        Expr::Ident(p) => {
            let w = action
                .and_then(|a| a.params.iter().find(|(n, _)| n == p))
                .map_or(128, |(_, b)| *b);
            Interval::top(w)
        }
        Expr::Bin { op, lhs, rhs } => {
            let l = eval_expr(lhs, env, action, st);
            let r = eval_expr(rhs, env, action, st);
            if l.is_constant() && r.is_constant() {
                use rp4_lang::ast::BinOp;
                let v = match op {
                    BinOp::Add => l.lo.wrapping_add(r.lo),
                    BinOp::Sub => l.lo.wrapping_sub(r.lo),
                    BinOp::And => l.lo & r.lo,
                    BinOp::Or => l.lo | r.lo,
                    BinOp::Xor => l.lo ^ r.lo,
                    BinOp::Shl => l.lo.wrapping_shl((r.lo as u32).min(127)),
                    BinOp::Shr => l.lo.wrapping_shr((r.lo as u32).min(127)),
                    BinOp::Mod if r.lo != 0 => l.lo % r.lo,
                    BinOp::Mod => return Interval::top(128),
                };
                Interval::constant(v)
            } else {
                Interval::top(128)
            }
        }
        Expr::Hash(_) => Interval::top(128),
    }
}

/// Three-valued predicate evaluation under the interval state.
fn eval_pred(p: &PredExpr, env: &Env, st: &AbsState) -> Option<bool> {
    match p {
        PredExpr::IsValid(_) => None,
        PredExpr::Not(q) => eval_pred(q, env, st).map(|b| !b),
        PredExpr::And(a, b) => match (eval_pred(a, env, st), eval_pred(b, env, st)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        PredExpr::Or(a, b) => match (eval_pred(a, env, st), eval_pred(b, env, st)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        PredExpr::Cmp { lhs, op, rhs } => {
            let l = eval_expr(lhs, env, None, st);
            let r = eval_expr(rhs, env, None, st);
            l.compare(cmp_kind(*op), &r)
        }
    }
}

fn cmp_kind(op: CmpOpAst) -> CmpKind {
    match op {
        CmpOpAst::Eq => CmpKind::Eq,
        CmpOpAst::Ne => CmpKind::Ne,
        CmpOpAst::Lt => CmpKind::Lt,
        CmpOpAst::Le => CmpKind::Le,
        CmpOpAst::Gt => CmpKind::Gt,
        CmpOpAst::Ge => CmpKind::Ge,
    }
}

/// Top-level conjunction factors of a guard.
fn conjuncts(p: &PredExpr) -> Vec<&PredExpr> {
    match p {
        PredExpr::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other],
    }
}

/// True when two conjunction factors can provably never both hold.
fn factors_contradict(a: &PredExpr, b: &PredExpr) -> bool {
    match (a, b) {
        (PredExpr::IsValid(h), PredExpr::Not(q)) | (PredExpr::Not(q), PredExpr::IsValid(h)) => {
            matches!(&**q, PredExpr::IsValid(h2) if h2 == h)
        }
        (
            PredExpr::Cmp {
                lhs: l1,
                op: CmpOpAst::Eq,
                rhs: Expr::Int(c1),
            },
            PredExpr::Cmp {
                lhs: l2,
                op: CmpOpAst::Eq,
                rhs: Expr::Int(c2),
            },
        ) => l1 == l2 && c1 != c2,
        _ => false,
    }
}

fn self_contradictory(p: &PredExpr) -> bool {
    let fs = conjuncts(p);
    for (i, a) in fs.iter().enumerate() {
        for b in &fs[i + 1..] {
            if factors_contradict(a, b) {
                return true;
            }
        }
    }
    false
}

// ------------------------------------------------------------- read sets

fn expr_meta_reads(e: &Expr, env: &Env, out: &mut BTreeSet<String>) {
    match e {
        Expr::Qualified(scope, field) if scope == &env.meta_alias => {
            out.insert(field.clone());
        }
        Expr::Bin { lhs, rhs, .. } => {
            expr_meta_reads(lhs, env, out);
            expr_meta_reads(rhs, env, out);
        }
        Expr::Hash(es) => {
            for e in es {
                expr_meta_reads(e, env, out);
            }
        }
        _ => {}
    }
}

fn pred_meta_reads(p: &PredExpr, env: &Env, out: &mut BTreeSet<String>) {
    match p {
        PredExpr::Not(q) => pred_meta_reads(q, env, out),
        PredExpr::And(a, b) | PredExpr::Or(a, b) => {
            pred_meta_reads(a, env, out);
            pred_meta_reads(b, env, out);
        }
        PredExpr::Cmp { lhs, rhs, .. } => {
            expr_meta_reads(lhs, env, out);
            expr_meta_reads(rhs, env, out);
        }
        PredExpr::IsValid(_) => {}
    }
}

/// Header *field* accesses (header name only) — `isValid()` checks are
/// excluded: inspecting validity of a removed header is well-defined.
fn expr_header_reads(e: &Expr, env: &Env, out: &mut BTreeSet<String>) {
    match e {
        Expr::Qualified(scope, _) if env.headers.contains_key(scope) => {
            out.insert(scope.clone());
        }
        Expr::Bin { lhs, rhs, .. } => {
            expr_header_reads(lhs, env, out);
            expr_header_reads(rhs, env, out);
        }
        Expr::Hash(es) => {
            for e in es {
                expr_header_reads(e, env, out);
            }
        }
        _ => {}
    }
}

fn pred_header_reads(p: &PredExpr, env: &Env, out: &mut BTreeSet<String>) {
    match p {
        PredExpr::Not(q) => pred_header_reads(q, env, out),
        PredExpr::And(a, b) | PredExpr::Or(a, b) => {
            pred_header_reads(a, env, out);
            pred_header_reads(b, env, out);
        }
        PredExpr::Cmp { lhs, rhs, .. } => {
            expr_header_reads(lhs, env, out);
            expr_header_reads(rhs, env, out);
        }
        PredExpr::IsValid(_) => {}
    }
}

/// Headers whose validity a guard's top-level conjunction proves.
fn proven_valid(guard: Option<&PredExpr>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let Some(g) = guard {
        for f in conjuncts(g) {
            if let PredExpr::IsValid(h) = f {
                out.insert(h.clone());
            }
        }
    }
    out
}

// ---------------------------------------------------------------- checks

fn check_stage(
    stage: &StageDecl,
    prog: &Program,
    env: &Env,
    input: &AbsState,
    uninit_seen: &mut BTreeSet<(String, String)>,
    diags: &mut Vec<Diagnostic>,
) {
    let stage_span = prog.spans.get(ItemKind::Stage, &stage.name);

    // --- RP4302: reads of metadata nothing earlier may write -------------
    let mut report_uninit = |field: &str, site: String, span, diags: &mut Vec<Diagnostic>| {
        if input.may_written.contains(field) || is_intrinsic(field) {
            return;
        }
        if uninit_seen.insert((stage.name.clone(), field.to_string())) {
            diags.push(
                Diagnostic::warning(
                    codes::UNINIT_META_READ,
                    format!(
                        "{site} reads `{}.{field}` but no reachable earlier action writes it",
                        env.meta_alias
                    ),
                )
                .with_span(span)
                .with_note("metadata is zero-initialized; if the zero is intended, write it explicitly in an earlier stage"),
            );
        }
    };

    for arm in &stage.matcher {
        let mut reads = BTreeSet::new();
        if let Some(g) = &arm.guard {
            pred_meta_reads(g, env, &mut reads);
        }
        for f in &reads {
            report_uninit(
                f,
                format!("guard in stage `{}`", stage.name),
                stage_span,
                diags,
            );
        }
        if let Some(t) = arm.table.as_ref().and_then(|t| prog.table(t)) {
            let mut reads = BTreeSet::new();
            for (e, _) in &t.key {
                expr_meta_reads(e, env, &mut reads);
            }
            for f in &reads {
                report_uninit(
                    f,
                    format!("table `{}` key (stage `{}`)", t.name, stage.name),
                    prog.spans.get(ItemKind::Table, &t.name).or(stage_span),
                    diags,
                );
            }
        }
    }
    for name in stage_action_names(stage, prog) {
        let Some(a) = prog.action(&name) else {
            continue;
        };
        let mut local: BTreeSet<String> = input.may_written.clone();
        for stmt in &a.body {
            let mut reads = BTreeSet::new();
            match stmt {
                Stmt::Assign { lval, expr } => {
                    expr_meta_reads(expr, env, &mut reads);
                    for f in &reads {
                        if !local.contains(f) {
                            report_uninit(
                                f,
                                format!("action `{}` (stage `{}`)", a.name, stage.name),
                                prog.spans.get(ItemKind::Action, &a.name).or(stage_span),
                                diags,
                            );
                        }
                    }
                    if lval.scope == env.meta_alias {
                        local.insert(lval.field.clone());
                    }
                }
                Stmt::Call { name, args } => {
                    for e in args {
                        expr_meta_reads(e, env, &mut reads);
                    }
                    for f in &reads {
                        if !local.contains(f) {
                            report_uninit(
                                f,
                                format!("action `{}` (stage `{}`)", a.name, stage.name),
                                prog.spans.get(ItemKind::Action, &a.name).or(stage_span),
                                diags,
                            );
                        }
                    }
                    for f in builtin_meta_writes(name) {
                        local.insert((*f).to_string());
                    }
                }
            }
        }
    }

    // --- RP4301: access to a possibly-removed header without a guard -----
    if !input.may_removed.is_empty() {
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for arm in &stage.matcher {
            let proven = proven_valid(arm.guard.as_ref());
            let mut touched = BTreeSet::new();
            if let Some(g) = &arm.guard {
                pred_header_reads(g, env, &mut touched);
            }
            if let Some(t) = arm.table.as_ref().and_then(|t| prog.table(t)) {
                for (e, _) in &t.key {
                    expr_header_reads(e, env, &mut touched);
                }
            }
            for name in arm_action_names(stage, arm, prog) {
                if let Some(a) = prog.action(&name) {
                    for stmt in &a.body {
                        match stmt {
                            Stmt::Assign { lval, expr } => {
                                if env.headers.contains_key(&lval.scope) {
                                    touched.insert(lval.scope.clone());
                                }
                                expr_header_reads(expr, env, &mut touched);
                            }
                            // Builtins re-check validity at runtime.
                            Stmt::Call { .. } => {}
                        }
                    }
                }
            }
            for h in &touched {
                if input.may_removed.contains(h)
                    && !proven.contains(h)
                    && reported.insert(h.clone())
                {
                    diags.push(
                        Diagnostic::error(
                            codes::INVALID_HEADER_USE,
                            format!(
                                "stage `{}` accesses `{h}` fields, but an earlier stage's action may have removed `{h}`",
                                stage.name
                            ),
                        )
                        .with_span(stage_span)
                        .with_note(format!(
                            "guard the arm with `{h}.isValid()` so removed packets skip the access"
                        )),
                    );
                }
            }
        }
    }

    // --- RP4304 / RP4305: arm reachability and no-op guards --------------
    let mut saw_uncond: Option<usize> = None;
    let mut saw_taut = false;
    for (j, arm) in stage.matcher.iter().enumerate() {
        if let Some(m) = saw_uncond {
            if arm.table.is_some() {
                let t = arm.table.as_deref().unwrap_or_default();
                diags.push(
                    Diagnostic::warning(
                        codes::UNREACHABLE,
                        format!(
                            "arm {} of stage `{}` is unreachable: arm {m} is unconditional, so table `{t}` is never applied from it",
                            j, stage.name
                        ),
                    )
                    .with_span(stage_span)
                    .with_note("matcher arms are tried in order; the first true guard wins"),
                );
            }
            continue;
        }
        if saw_taut {
            // The tautological arm was already reported (RP4305); don't
            // re-report every shadowed arm for the same root cause.
            continue;
        }
        let Some(g) = &arm.guard else {
            saw_uncond = Some(j);
            continue;
        };
        let dup = stage.matcher[..j]
            .iter()
            .position(|p| p.guard.as_ref() == Some(g));
        if let Some(m) = dup {
            if arm.table.is_some() {
                diags.push(
                    Diagnostic::warning(
                        codes::UNREACHABLE,
                        format!(
                            "arm {} of stage `{}` repeats the guard of arm {m}, so it can never be the first match",
                            j, stage.name
                        ),
                    )
                    .with_span(stage_span),
                );
                continue;
            }
        }
        if self_contradictory(g) {
            diags.push(
                Diagnostic::warning(
                    codes::UNREACHABLE,
                    format!(
                        "guard of arm {} in stage `{}` is self-contradictory and can never hold",
                        j, stage.name
                    ),
                )
                .with_span(stage_span),
            );
            continue;
        }
        match eval_pred(g, env, input) {
            Some(false) => {
                diags.push(
                    Diagnostic::warning(
                        codes::UNREACHABLE,
                        format!(
                            "guard of arm {} in stage `{}` is provably false under the inferred value intervals",
                            j, stage.name
                        ),
                    )
                    .with_span(stage_span),
                );
            }
            Some(true) => {
                diags.push(
                    Diagnostic::warning(
                        codes::TAUTOLOGICAL_GUARD,
                        format!(
                            "guard of arm {} in stage `{}` is provably always true",
                            j, stage.name
                        ),
                    )
                    .with_span(stage_span)
                    .with_note("the comparison can never fail for the field's possible values; drop the guard or tighten it"),
                );
                saw_taut = true;
            }
            None => {}
        }
    }
}

/// RP4303: stores overwritten before any read within one action body.
fn check_dead_stores(prog: &Program, live: &[&StageDecl], diags: &mut Vec<Diagnostic>) {
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for s in live {
        referenced.extend(stage_action_names(s, prog));
    }
    for a in &prog.actions {
        if !referenced.contains(&a.name) {
            continue; // an unused action is RP4106's finding, not ours
        }
        let mut pending: BTreeMap<(String, String), usize> = BTreeMap::new();
        for (idx, stmt) in a.body.iter().enumerate() {
            match stmt {
                Stmt::Assign { lval, expr } => {
                    let mut reads = BTreeSet::new();
                    field_reads(expr, &mut reads);
                    for r in &reads {
                        pending.remove(r);
                    }
                    let key = (lval.scope.clone(), lval.field.clone());
                    if pending.insert(key, idx).is_some() {
                        diags.push(
                            Diagnostic::warning(
                                codes::DEAD_STORE,
                                format!(
                                    "action `{}` stores to `{}.{}` twice with no intervening read; the first store is dead",
                                    a.name, lval.scope, lval.field
                                ),
                            )
                            .with_span(prog.spans.get(ItemKind::Action, &a.name)),
                        );
                    }
                }
                Stmt::Call { args, .. } => {
                    let mut reads = BTreeSet::new();
                    for e in args {
                        field_reads(e, &mut reads);
                    }
                    for r in &reads {
                        pending.remove(r);
                    }
                    // Builtins may read any field — conservative barrier.
                    pending.clear();
                }
            }
        }
    }
}

/// All `scope.field` reads in an expression, meta and header alike.
fn field_reads(e: &Expr, out: &mut BTreeSet<(String, String)>) {
    match e {
        Expr::Qualified(scope, field) => {
            out.insert((scope.clone(), field.clone()));
        }
        Expr::Bin { lhs, rhs, .. } => {
            field_reads(lhs, out);
            field_reads(rhs, out);
        }
        Expr::Hash(es) => {
            for e in es {
                field_reads(e, out);
            }
        }
        _ => {}
    }
}

/// Must-uninitialized metadata reads of a program: fields some live stage
/// reads that **no** action reachable from any live stage writes. Order-
/// insensitive (quantifies over the whole pipeline), so it is stable under
/// the controller's stage relinking. Returns `field → reading stage`.
pub(crate) fn must_uninit_reads(prog: &Program, env: &Env) -> BTreeMap<String, String> {
    let live = live_stages(prog);
    let mut written: BTreeSet<String> = INTRINSIC_META.iter().map(|(n, _)| n.to_string()).collect();
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for s in &live {
        referenced.extend(stage_action_names(s, prog));
    }
    for a in &prog.actions {
        if !referenced.contains(&a.name) {
            continue;
        }
        for stmt in &a.body {
            match stmt {
                Stmt::Assign { lval, .. } if lval.scope == env.meta_alias => {
                    written.insert(lval.field.clone());
                }
                Stmt::Call { name, .. } => {
                    written.extend(builtin_meta_writes(name).iter().map(|f| f.to_string()));
                }
                Stmt::Assign { .. } => {}
            }
        }
    }
    let mut out = BTreeMap::new();
    for s in &live {
        let mut reads = BTreeSet::new();
        for arm in &s.matcher {
            if let Some(g) = &arm.guard {
                pred_meta_reads(g, env, &mut reads);
            }
            if let Some(t) = arm.table.as_ref().and_then(|t| prog.table(t)) {
                for (e, _) in &t.key {
                    expr_meta_reads(e, env, &mut reads);
                }
            }
        }
        for name in stage_action_names(s, prog) {
            if let Some(a) = prog.action(&name) {
                for stmt in &a.body {
                    match stmt {
                        Stmt::Assign { expr, .. } => expr_meta_reads(expr, env, &mut reads),
                        Stmt::Call { args, .. } => {
                            for e in args {
                                expr_meta_reads(e, env, &mut reads);
                            }
                        }
                    }
                }
            }
        }
        for f in reads {
            if !written.contains(&f) {
                out.entry(f).or_insert_with(|| s.name.clone());
            }
        }
    }
    out
}
