//! Design-level fact extraction: distills what the analysis proves about a
//! [`CompiledDesign`] into the [`ProgramFacts`] artifact the epoch compiler
//! consumes.
//!
//! Everything here must be *exact* with respect to observable behavior —
//! the fast path built with these facts produces bit-identical outputs
//! **and statistics** to the plain one. That drives two conservatisms:
//!
//! - Facts quantify over *all* registered actions and tables, not just the
//!   currently-installed entries: `insert_entry` does not re-validate an
//!   entry's action against the analysis, so entry churn (which does *not*
//!   clear facts — see [`ControlMsg::is_entry_op`]) must never invalidate
//!   a fact.
//! - Dead-store candidates are restricted to windows where no in-between
//!   primitive can error or drop, because `execute` aborts mid-body on
//!   both; eliding a store that precedes an abort would resurrect it.
//!
//! [`ControlMsg::is_entry_op`]: ipsa_core::control::ControlMsg::is_entry_op

use std::collections::BTreeSet;

use ipsa_core::action::{ActionDef, Primitive};
use ipsa_core::facts::ProgramFacts;
use ipsa_core::predicate::Predicate;
use ipsa_core::template::CompiledDesign;
use ipsa_core::value::{LValueRef, ValueRef};

/// Computes the facts artifact for a compiled design. Deterministic and
/// pure; the controller re-runs it on every design change and reinstalls
/// the result.
pub fn design_facts(design: &CompiledDesign) -> ProgramFacts {
    let mut facts = ProgramFacts {
        stable_headers: stable_headers(design),
        ..Default::default()
    };

    // Header kill set: headers some registered action may add or remove.
    // A header in this set can lose (or gain) validity mid-pipeline, so
    // its parse state must be re-checked at every slot that needs it.
    let killed = killed_headers(design);

    // Parse elision: walk each path (all ingress slots feed every egress
    // slot — parse state persists across the Traffic Manager), tracking
    // the union of headers already ensured by strictly-earlier slots.
    let mut order = design.selector.ingress_slots();
    order.extend(design.selector.egress_slots());
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for slot in order {
        let Some(t) = design.templates.get(slot).and_then(|t| t.as_ref()) else {
            continue;
        };
        let reqs = t.parse_requirements();
        let elide: Vec<String> = reqs
            .iter()
            .filter(|h| seen.contains(*h) && !killed.contains(*h))
            .cloned()
            .collect();
        let unreachable = unreachable_arms(t.branches.iter().map(|b| &b.pred));
        if !elide.is_empty() || !unreachable.is_empty() {
            let sf = facts.slots.entry(t.stage_name.clone()).or_default();
            sf.elide_parse = elide;
            sf.unreachable_arms = unreachable;
        }
        seen.extend(reqs.iter().cloned());
    }

    for (name, a) in &design.actions {
        for idx in dead_stores(a) {
            facts.dead_stores.push((name.clone(), idx));
        }
    }
    facts
}

/// True when no registered action can add or remove a header.
fn stable_headers(design: &CompiledDesign) -> bool {
    design.actions.values().all(|a| {
        a.body.iter().all(|p| {
            !matches!(
                p,
                Primitive::InsertHeaderAfter { .. } | Primitive::RemoveHeader { .. }
            )
        })
    })
}

/// Headers some registered action may add or remove.
fn killed_headers(design: &CompiledDesign) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for a in design.actions.values() {
        for p in &a.body {
            match p {
                Primitive::InsertHeaderAfter { header, .. }
                | Primitive::RemoveHeader { header } => {
                    out.insert(header.clone());
                }
                _ => {}
            }
        }
    }
    out
}

/// Branch indices that can never be the first true predicate: shadowed by
/// an earlier always-true or structurally identical guard, or themselves
/// self-contradictory. Uses only decidable structural rules, so a proven
/// index is unreachable for *every* packet and entry population.
fn unreachable_arms<'a>(preds: impl Iterator<Item = &'a Predicate>) -> Vec<usize> {
    let preds: Vec<&Predicate> = preds.collect();
    let mut out = Vec::new();
    let mut shadow_from: Option<usize> = None;
    for (j, p) in preds.iter().enumerate() {
        if let Some(_m) = shadow_from {
            out.push(j);
            continue;
        }
        // `p.mutually_exclusive(p)` pairs every conjunction factor of `p`
        // with every other, so it is exactly "self-contradictory".
        if p.mutually_exclusive(p) {
            out.push(j);
            continue;
        }
        if preds[..j].contains(p) {
            out.push(j);
            continue;
        }
        if matches!(p, Predicate::True) {
            shadow_from = Some(j);
        }
    }
    out
}

/// Primitives `execute` can run without erroring or dropping regardless of
/// packet or entry contents — the only ones allowed between a dead store
/// and its overwrite. Reading a `Param` may be out of bounds and reading a
/// header `Field` may hit an absent header; both abort the body.
fn prim_is_safe(p: &Primitive) -> bool {
    let v_safe = |v: &ValueRef| matches!(v, ValueRef::Const(_) | ValueRef::Meta(_));
    match p {
        Primitive::NoAction => true,
        Primitive::Set {
            dst: LValueRef::Meta(_),
            src,
        } => v_safe(src),
        Primitive::Alu {
            dst: LValueRef::Meta(_),
            a,
            b,
            ..
        } => v_safe(a) && v_safe(b),
        Primitive::Hash {
            dst: LValueRef::Meta(_),
            inputs,
            ..
        } => inputs.iter().all(v_safe),
        Primitive::Forward { port } => v_safe(port),
        Primitive::Mark { value } => v_safe(value),
        _ => false,
    }
}

/// Metadata a safe primitive reads.
fn safe_prim_reads(p: &Primitive, out: &mut BTreeSet<String>) {
    let v = |v: &ValueRef, out: &mut BTreeSet<String>| {
        if let ValueRef::Meta(m) = v {
            out.insert(m.clone());
        }
    };
    match p {
        Primitive::Set { src, .. } => v(src, out),
        Primitive::Alu { a, b, .. } => {
            v(a, out);
            v(b, out);
        }
        Primitive::Hash { inputs, .. } => {
            for i in inputs {
                v(i, out);
            }
        }
        Primitive::Forward { port } => v(port, out),
        Primitive::Mark { value } => v(value, out),
        _ => {}
    }
}

/// Metadata field a safe primitive writes.
fn safe_prim_write(p: &Primitive) -> Option<String> {
    match p {
        Primitive::Set {
            dst: LValueRef::Meta(m),
            ..
        }
        | Primitive::Alu {
            dst: LValueRef::Meta(m),
            ..
        }
        | Primitive::Hash {
            dst: LValueRef::Meta(m),
            ..
        } => Some(m.clone()),
        Primitive::Forward { .. } => Some("egress_port".into()),
        Primitive::Mark { .. } => Some("mark".into()),
        _ => None,
    }
}

/// Indices of provably dead metadata stores in one action body.
///
/// A store at `i` is dead when a later store at `j` targets the same
/// metadata field, every primitive in `(i, j]` is [safe](prim_is_safe)
/// (cannot error or drop, so the body provably reaches `j`), and none of
/// them reads the field. The caller substitutes `NoAction` — never removes
/// the primitive — so `ActionOutcome::primitives` counts are unchanged.
fn dead_stores(a: &ActionDef) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, p) in a.body.iter().enumerate() {
        // Only plain meta-to-meta/const copies qualify as the *elided*
        // store: its own evaluation must also be side-effect free.
        let Primitive::Set {
            dst: LValueRef::Meta(field),
            src: ValueRef::Const(_) | ValueRef::Meta(_),
        } = p
        else {
            continue;
        };
        let mut provable = false;
        for q in &a.body[i + 1..] {
            if !prim_is_safe(q) {
                break;
            }
            let mut reads = BTreeSet::new();
            safe_prim_reads(q, &mut reads);
            if reads.contains(field) {
                break;
            }
            if safe_prim_write(q).as_deref() == Some(field) {
                provable = true;
                break;
            }
        }
        if provable {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsa_core::predicate::CmpOp;
    use ipsa_core::template::{MatcherBranch, TspTemplate};

    fn set_meta(field: &str, v: u128) -> Primitive {
        Primitive::Set {
            dst: LValueRef::Meta(field.into()),
            src: ValueRef::Const(v),
        }
    }

    #[test]
    fn dead_store_found_and_windows_respected() {
        let a = ActionDef {
            name: "a".into(),
            params: vec![],
            body: vec![
                set_meta("x", 1),
                Primitive::NoAction,
                set_meta("x", 2), // kills index 0
            ],
        };
        assert_eq!(dead_stores(&a), vec![0]);

        // An intervening read keeps the first store alive.
        let b = ActionDef {
            name: "b".into(),
            params: vec![],
            body: vec![
                set_meta("x", 1),
                Primitive::Set {
                    dst: LValueRef::Meta("y".into()),
                    src: ValueRef::Meta("x".into()),
                },
                set_meta("x", 2),
            ],
        };
        assert!(dead_stores(&b).is_empty());

        // An unsafe primitive (may error) in the window blocks the proof.
        let c = ActionDef {
            name: "c".into(),
            params: vec![],
            body: vec![
                set_meta("x", 1),
                Primitive::Set {
                    dst: LValueRef::Meta("y".into()),
                    src: ValueRef::Param(0),
                },
                set_meta("x", 2),
            ],
        };
        assert!(dead_stores(&c).is_empty());
    }

    #[test]
    fn unreachable_after_unconditional_and_duplicates() {
        let p_true = Predicate::True;
        let cmp = Predicate::Cmp {
            lhs: ValueRef::Meta("x".into()),
            op: CmpOp::Eq,
            rhs: ValueRef::Const(1),
        };
        let contradiction = Predicate::and(
            Predicate::IsValid("h".into()),
            Predicate::Not(Box::new(Predicate::IsValid("h".into()))),
        );
        // [cmp, cmp(dup), contradiction, True, cmp] → 1, 2, 4 unreachable.
        let preds = [&cmp, &cmp, &contradiction, &p_true, &cmp];
        assert_eq!(unreachable_arms(preds.iter().copied()), vec![1, 2, 4]);
    }

    #[test]
    fn facts_for_two_slot_design() {
        let mut d = CompiledDesign::empty("t", 2);
        let mut t0 = TspTemplate::passthrough("s0");
        t0.parse = vec!["ethernet".into(), "ipv4".into()];
        let mut t1 = TspTemplate::passthrough("s1");
        t1.parse = vec!["ipv4".into()];
        t1.branches = vec![
            MatcherBranch {
                pred: Predicate::True,
                table: None,
            },
            MatcherBranch {
                pred: Predicate::IsValid("ipv4".into()),
                table: None,
            },
        ];
        d.templates[0] = Some(t0);
        d.templates[1] = Some(t1);
        d.selector = ipsa_core::pipeline_cfg::SelectorConfig::split(2, 1, 1).unwrap();
        let f = design_facts(&d);
        assert!(f.stable_headers);
        let s1 = f.slot("s1").expect("slot facts for s1");
        assert_eq!(s1.elide_parse, vec!["ipv4".to_string()]);
        assert_eq!(s1.unreachable_arms, vec![1]);
        assert!(f.slot("s0").is_none());
    }

    #[test]
    fn header_mutators_disable_stability_and_elision() {
        let mut d = CompiledDesign::empty("t", 2);
        let mut t0 = TspTemplate::passthrough("s0");
        t0.parse = vec!["ipv4".into()];
        let mut t1 = TspTemplate::passthrough("s1");
        t1.parse = vec!["ipv4".into()];
        d.templates[0] = Some(t0);
        d.templates[1] = Some(t1);
        d.selector = ipsa_core::pipeline_cfg::SelectorConfig::split(2, 1, 1).unwrap();
        d.actions.insert(
            "decap".into(),
            ActionDef {
                name: "decap".into(),
                params: vec![],
                body: vec![Primitive::RemoveHeader {
                    header: "ipv4".into(),
                }],
            },
        );
        let f = design_facts(&d);
        assert!(!f.stable_headers);
        // ipv4 is in the kill set, so its re-ensure cannot be elided.
        assert!(f.slot("s1").is_none());
    }
}
