//! Abstract-interpretation dataflow analysis for rP4.
//!
//! This crate adds the third diagnostic block (RP43xx) on top of the
//! semantic checker (RP40xx), resource verifier (RP41xx), and update
//! verifier (RP42xx): a worklist fixpoint over the stage-chain CFG with
//! pluggable abstract domains ([`lattice`]), run in two settings:
//!
//! 1. **AST level** ([`analyze_program`]): RP4301–RP4305 over a checked
//!    [`Program`], gated exactly like the other blocks in `rp4c check`,
//!    `apply_plan`, and CI. [`check_plan`] adds RP4306, the plan-level
//!    regression check.
//! 2. **Design level** ([`design_facts`]): distills proofs about a
//!    [`CompiledDesign`] into a serialized [`ProgramFacts`] artifact the
//!    device's epoch compiler uses to skip statically-redundant work —
//!    recomputed by the controller on every design change, never stale.
//!
//! [`Program`]: rp4_lang::Program
//! [`CompiledDesign`]: ipsa_core::template::CompiledDesign
//! [`ProgramFacts`]: ipsa_core::facts::ProgramFacts

pub mod design;
pub mod engine;
pub mod lattice;
pub mod plan;
pub mod program;

pub use design::design_facts;
pub use plan::check_plan;
pub use program::analyze_program;

use rp4_lang::Diagnostic;

/// Diagnostic codes of the dataflow block.
pub mod codes {
    /// Access to a header an earlier stage may have removed, without an
    /// `isValid` guard (error).
    pub const INVALID_HEADER_USE: &str = "RP4301";
    /// Read of a metadata field no reachable earlier action writes
    /// (warning).
    pub const UNINIT_META_READ: &str = "RP4302";
    /// Store overwritten before any read in the same action body
    /// (warning).
    pub const DEAD_STORE: &str = "RP4303";
    /// Unreachable matcher arm, table, or stage (warning).
    pub const UNREACHABLE: &str = "RP4304";
    /// Guard provably always true — a no-op filter (warning).
    pub const TAUTOLOGICAL_GUARD: &str = "RP4305";
    /// Update plan invalidates a dataflow fact the surviving program
    /// relies on (error).
    pub const PLAN_FACT_REGRESSION: &str = "RP4306";
}

/// Merges dataflow findings into an existing finding list, dropping RP43xx
/// findings that re-report a root cause RP4106 (dead code) already covers.
///
/// Both lints can fire on one unclaimed stage or unused item; the subject
/// of every finding is its first backtick-quoted name, so a dataflow
/// finding whose subject matches an RP4106 finding's subject is the same
/// root cause reported twice. The RP4106 finding wins (it carries the
/// removal guidance).
pub fn merge_findings(existing: &[Diagnostic], dfa: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let dead_subjects: Vec<String> = existing
        .iter()
        .filter(|d| d.code == "RP4106")
        .filter_map(|d| first_backticked(&d.message))
        .collect();
    dfa.into_iter()
        .filter(|d| {
            !d.code.starts_with("RP43")
                || first_backticked(&d.message).is_none_or(|s| !dead_subjects.contains(&s))
        })
        .collect()
}

/// First backtick-quoted token of a diagnostic message.
fn first_backticked(msg: &str) -> Option<String> {
    let start = msg.find('`')? + 1;
    let len = msg[start..].find('`')?;
    Some(msg[start..start + len].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp4_lang::Diagnostic;

    #[test]
    fn merge_drops_duplicate_root_cause() {
        let existing = vec![Diagnostic::warning(
            "RP4106",
            "stage `floating` is defined but not part of any function",
        )];
        let dfa = vec![
            Diagnostic::warning(
                "RP4304",
                "stage `floating` is unreachable: no `user_funcs` entry claims it",
            ),
            Diagnostic::warning(
                "RP4304",
                "arm 1 of stage `fwd` is unreachable: arm 0 is unconditional",
            ),
        ];
        let merged = merge_findings(&existing, dfa);
        assert_eq!(merged.len(), 1);
        assert!(merged[0].message.contains("`fwd`"));
    }

    #[test]
    fn merge_keeps_unrelated_findings() {
        let existing = vec![Diagnostic::warning("RP4106", "action `spare` is unused")];
        let dfa = vec![Diagnostic::warning(
            "RP4302",
            "guard in stage `s` reads `meta.ghost` but no reachable earlier action writes it",
        )];
        assert_eq!(merge_findings(&existing, dfa).len(), 1);
    }
}
