//! Abstract-interpretation dataflow analysis for rP4.
//!
//! This crate adds the third diagnostic block (RP43xx) on top of the
//! semantic checker (RP40xx), resource verifier (RP41xx), and update
//! verifier (RP42xx): a worklist fixpoint over the stage-chain CFG with
//! pluggable abstract domains ([`lattice`]), run in two settings:
//!
//! 1. **AST level** ([`analyze_program`]): RP4301–RP4305 over a checked
//!    [`Program`], gated exactly like the other blocks in `rp4c check`,
//!    `apply_plan`, and CI. [`check_plan`] adds RP4306, the plan-level
//!    regression check.
//! 2. **Design level** ([`design_facts`]): distills proofs about a
//!    [`CompiledDesign`] into a serialized [`ProgramFacts`] artifact the
//!    device's epoch compiler uses to skip statically-redundant work —
//!    recomputed by the controller on every design change, never stale.
//!
//! [`Program`]: rp4_lang::Program
//! [`CompiledDesign`]: ipsa_core::template::CompiledDesign
//! [`ProgramFacts`]: ipsa_core::facts::ProgramFacts

pub mod design;
pub mod engine;
pub mod lattice;
pub mod plan;
pub mod program;

pub use design::design_facts;
pub use plan::check_plan;
pub use program::analyze_program;

use rp4_lang::Diagnostic;

/// Diagnostic codes of the dataflow block.
pub mod codes {
    /// Access to a header an earlier stage may have removed, without an
    /// `isValid` guard (error).
    pub const INVALID_HEADER_USE: &str = "RP4301";
    /// Read of a metadata field no reachable earlier action writes
    /// (warning).
    pub const UNINIT_META_READ: &str = "RP4302";
    /// Store overwritten before any read in the same action body
    /// (warning).
    pub const DEAD_STORE: &str = "RP4303";
    /// Unreachable matcher arm, table, or stage (warning).
    pub const UNREACHABLE: &str = "RP4304";
    /// Guard provably always true — a no-op filter (warning).
    pub const TAUTOLOGICAL_GUARD: &str = "RP4305";
    /// Update plan invalidates a dataflow fact the surviving program
    /// relies on (error).
    pub const PLAN_FACT_REGRESSION: &str = "RP4306";
}

/// Merges dataflow findings into an existing finding list, dropping
/// findings that re-report a root cause an earlier analysis block already
/// covers:
///
/// * RP43xx findings whose subject matches an RP4106 (dead code) finding —
///   both fire on one unclaimed stage or unused item, and RP4106 carries
///   the removal guidance;
/// * RP4403 (statically-dead action, from path coverage) findings naming
///   an item an RP4106/RP4303/RP4304 finding already names — an action is
///   often dead exactly because its store is dead (RP4303) or because the
///   only arm applying its table is unreachable (RP4304), and the narrower
///   dataflow finding explains *why*.
///
/// The subject of a finding is its first backtick-quoted name; RP4403
/// dedup compares every backtick-quoted token on both sides (RP4403 names
/// the action then the table; RP4304 leads with the stage but also names
/// the table).
pub fn merge_findings(existing: &[Diagnostic], dfa: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let dead_subjects: Vec<String> = existing
        .iter()
        .filter(|d| d.code == "RP4106")
        .filter_map(|d| first_backticked(&d.message))
        .collect();
    let dfa: Vec<Diagnostic> = dfa
        .into_iter()
        .filter(|d| {
            !d.code.starts_with("RP43")
                || first_backticked(&d.message).is_none_or(|s| !dead_subjects.contains(&s))
        })
        .collect();
    let mut known: Vec<String> = dead_subjects;
    for d in existing.iter().chain(dfa.iter()) {
        if d.code == "RP4303" || d.code == "RP4304" {
            known.extend(backticked_all(&d.message));
        }
    }
    dfa.into_iter()
        .filter(|d| {
            d.code != "RP4403" || !backticked_all(&d.message).iter().any(|s| known.contains(s))
        })
        .collect()
}

/// First backtick-quoted token of a diagnostic message.
fn first_backticked(msg: &str) -> Option<String> {
    backticked_all(msg).into_iter().next()
}

/// Every backtick-quoted token of a diagnostic message, in order.
fn backticked_all(msg: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = msg;
    while let Some(start) = rest.find('`') {
        let tail = &rest[start + 1..];
        let Some(len) = tail.find('`') else { break };
        out.push(tail[..len].to_string());
        rest = &tail[len + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp4_lang::Diagnostic;

    #[test]
    fn merge_drops_duplicate_root_cause() {
        let existing = vec![Diagnostic::warning(
            "RP4106",
            "stage `floating` is defined but not part of any function",
        )];
        let dfa = vec![
            Diagnostic::warning(
                "RP4304",
                "stage `floating` is unreachable: no `user_funcs` entry claims it",
            ),
            Diagnostic::warning(
                "RP4304",
                "arm 1 of stage `fwd` is unreachable: arm 0 is unconditional",
            ),
        ];
        let merged = merge_findings(&existing, dfa);
        assert_eq!(merged.len(), 1);
        assert!(merged[0].message.contains("`fwd`"));
    }

    #[test]
    fn merge_dedups_dead_action_against_dead_store() {
        // One dead action can fire both RP4303 (its store is dead, from
        // dataflow) and RP4403 (no feasible path selects it, from path
        // coverage); only the narrower dataflow finding survives.
        let existing = vec![Diagnostic::warning(
            "RP4303",
            "action `set_ttl` stores to `ipv4.ttl` twice with no intervening read; the first store is dead",
        )];
        let dfa = vec![
            Diagnostic::warning(
                "RP4403",
                "action `set_ttl` of table `fwd` is selected on no feasible path",
            ),
            Diagnostic::warning(
                "RP4403",
                "action `mark_ecn` of table `qos` is selected on no feasible path",
            ),
        ];
        let merged = merge_findings(&existing, dfa);
        assert_eq!(merged.len(), 1);
        assert!(merged[0].message.contains("`mark_ecn`"));
    }

    #[test]
    fn merge_dedups_dead_action_against_unreachable_arm() {
        // RP4304 names the stage first but also the table; an RP4403 on
        // any action of that table is the same root cause.
        let existing = vec![Diagnostic::warning(
            "RP4304",
            "arm 1 of stage `fwd` is unreachable: arm 0 is unconditional, so table `acl` is never applied from it",
        )];
        let dfa = vec![Diagnostic::warning(
            "RP4403",
            "action `punt` of table `acl` is selected on no feasible path",
        )];
        assert!(merge_findings(&existing, dfa).is_empty());
    }

    #[test]
    fn merge_keeps_unrelated_findings() {
        let existing = vec![Diagnostic::warning("RP4106", "action `spare` is unused")];
        let dfa = vec![Diagnostic::warning(
            "RP4302",
            "guard in stage `s` reads `meta.ghost` but no reachable earlier action writes it",
        )];
        assert_eq!(merge_findings(&existing, dfa).len(), 1);
    }
}
