//! Update-plan fact checking: the RP4306 diagnostic.
//!
//! An in-situ update can silently orphan a metadata field: the snippet
//! replaces or removes every action that wrote `meta.f`, while some
//! surviving stage still reads it — after the update the read always sees
//! the zero-initialized value. Each side of the comparison uses the
//! order-insensitive *must-uninitialized* read set (fields read by live
//! stages that **no** action reachable from a live stage writes), so the
//! verdict is stable under the controller's stage relinking and absorbed-
//! snippet placement. Only *new* uninitialized reads are errors: a field
//! that was already writer-less before the update is pre-existing debt,
//! not a plan regression.

use rp4_lang::ast::Program;
use rp4_lang::semantic::Env;
use rp4_lang::{Diagnostic, ItemKind};

use crate::codes;
use crate::program::must_uninit_reads;

/// Compares the post-update program against the pre-update one and reports
/// an RP4306 error for every metadata field whose last writer the update
/// removes while a live stage still reads it.
pub fn check_plan(pre: &Program, post: &Program) -> Vec<Diagnostic> {
    let pre_env = Env::build(None, pre);
    let post_env = Env::build(None, post);
    let pre_uninit = must_uninit_reads(pre, &pre_env);
    let post_uninit = must_uninit_reads(post, &post_env);
    let mut diags = Vec::new();
    for (field, stage) in &post_uninit {
        if pre_uninit.contains_key(field) {
            continue;
        }
        diags.push(
            Diagnostic::error(
                codes::PLAN_FACT_REGRESSION,
                format!(
                    "update removes every writer of `{}.{field}`, which stage `{stage}` still reads",
                    post_env.meta_alias
                ),
            )
            .with_span(
                post.spans
                    .get(ItemKind::Stage, stage)
                    .or_else(|| pre.spans.get(ItemKind::Stage, stage)),
            )
            .with_note(
                "after this update the read always sees the zero-initialized value; keep a writer or drop the read (or pass --force to apply anyway)",
            ),
        );
    }
    diags
}
