//! The abstract domains the fixpoint engine runs over.
//!
//! Each domain is a join-semilattice: `join` is the least upper bound used
//! when control-flow paths merge, and `⊤` means "the analysis knows
//! nothing". All transfer functions in this crate only ever move values
//! *up* these lattices, so the worklist iteration terminates.

use std::collections::{BTreeMap, BTreeSet};

/// A join-semilattice: values merge at control-flow joins via `join`.
pub trait Lattice: Clone + PartialEq {
    /// Least upper bound of `self` and `other`.
    fn join(&self, other: &Self) -> Self;
}

/// Three-valued header-validity abstraction at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validity {
    /// The header is valid (parsed and not removed) on every path.
    Valid,
    /// The header is invalid (never parsed, or removed) on every path.
    Invalid,
    /// Paths disagree, or nothing is known.
    Top,
}

impl Lattice for Validity {
    fn join(&self, other: &Self) -> Self {
        if self == other {
            *self
        } else {
            Validity::Top
        }
    }
}

/// An unsigned interval `[lo, hi]` over a field's value space.
///
/// Fields are at most 128 bits, so `u128` bounds are exact. The abstraction
/// is the classic interval domain without widening — transfer functions
/// here only join against constants and width-derived tops, so chains are
/// finite and widening is unnecessary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u128,
    /// Largest possible value.
    pub hi: u128,
}

impl Interval {
    /// The single value `v`.
    pub fn constant(v: u128) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The full range of a `bits`-wide field.
    pub fn top(bits: usize) -> Self {
        Interval {
            lo: 0,
            hi: max_value(bits),
        }
    }

    /// True when the interval holds exactly one value.
    pub fn is_constant(&self) -> bool {
        self.lo == self.hi
    }

    /// Three-valued comparison against another interval: `Some(true)` when
    /// the relation holds for every value pair, `Some(false)` when it holds
    /// for none, `None` otherwise.
    pub fn compare(&self, op: CmpKind, rhs: &Interval) -> Option<bool> {
        use CmpKind::*;
        match op {
            Eq => {
                if self.is_constant() && rhs.is_constant() && self.lo == rhs.lo {
                    Some(true)
                } else if self.hi < rhs.lo || rhs.hi < self.lo {
                    Some(false)
                } else {
                    None
                }
            }
            Ne => self.compare(Eq, rhs).map(|b| !b),
            Lt => {
                if self.hi < rhs.lo {
                    Some(true)
                } else if self.lo >= rhs.hi {
                    Some(false)
                } else {
                    None
                }
            }
            Le => {
                if self.hi <= rhs.lo {
                    Some(true)
                } else if self.lo > rhs.hi {
                    Some(false)
                } else {
                    None
                }
            }
            Gt => rhs.compare(Lt, self),
            Ge => rhs.compare(Le, self),
        }
    }
}

/// Comparison kinds shared by the AST and design predicate languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Largest value a `bits`-wide field can hold.
pub fn max_value(bits: usize) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

impl Lattice for Interval {
    fn join(&self, other: &Self) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// The product state threaded through the stage CFG by `program.rs`.
///
/// Missing map keys carry the *initial* abstract value, not ⊥: metadata is
/// zero-initialized at packet entry, so an absent interval means `[0,0]`
/// and an absent `may_written` entry means "never written yet".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AbsState {
    /// Headers some reachable earlier action may have removed.
    pub may_removed: BTreeSet<String>,
    /// Metadata fields some earlier stage may have written.
    pub may_written: BTreeSet<String>,
    /// Per-metadata-field value intervals (absent = `[0,0]`).
    pub intervals: BTreeMap<String, Interval>,
}

impl AbsState {
    /// Interval of a metadata field under this state.
    pub fn interval_of(&self, field: &str) -> Interval {
        self.intervals
            .get(field)
            .copied()
            .unwrap_or(Interval::constant(0))
    }
}

impl Lattice for AbsState {
    fn join(&self, other: &Self) -> Self {
        let mut out = AbsState {
            may_removed: self
                .may_removed
                .union(&other.may_removed)
                .cloned()
                .collect(),
            may_written: self
                .may_written
                .union(&other.may_written)
                .cloned()
                .collect(),
            intervals: BTreeMap::new(),
        };
        let keys: BTreeSet<&String> = self
            .intervals
            .keys()
            .chain(other.intervals.keys())
            .collect();
        for k in keys {
            out.intervals
                .insert(k.clone(), self.interval_of(k).join(&other.interval_of(k)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_join() {
        assert_eq!(Validity::Valid.join(&Validity::Valid), Validity::Valid);
        assert_eq!(Validity::Valid.join(&Validity::Invalid), Validity::Top);
        assert_eq!(Validity::Top.join(&Validity::Invalid), Validity::Top);
    }

    #[test]
    fn interval_compare_three_valued() {
        let a = Interval { lo: 0, hi: 255 };
        let full = Interval::top(8);
        assert_eq!(a.compare(CmpKind::Le, &Interval::constant(255)), Some(true));
        assert_eq!(
            a.compare(CmpKind::Gt, &Interval::constant(255)),
            Some(false)
        );
        assert_eq!(a.compare(CmpKind::Eq, &Interval::constant(7)), None);
        assert_eq!(
            full.compare(CmpKind::Lt, &Interval::constant(256)),
            Some(true)
        );
        assert_eq!(
            Interval::constant(3).compare(CmpKind::Eq, &Interval::constant(3)),
            Some(true)
        );
        assert_eq!(
            Interval::constant(3).compare(CmpKind::Ne, &Interval::constant(3)),
            Some(false)
        );
    }

    #[test]
    fn state_join_defaults_to_initial_zero() {
        let mut a = AbsState::default();
        a.intervals.insert("x".into(), Interval::constant(9));
        let b = AbsState::default(); // x absent = [0,0]
        let j = a.join(&b);
        assert_eq!(j.interval_of("x"), Interval { lo: 0, hi: 9 });
    }

    #[test]
    fn width_tops() {
        assert_eq!(max_value(1), 1);
        assert_eq!(max_value(8), 255);
        assert_eq!(max_value(128), u128::MAX);
    }
}
