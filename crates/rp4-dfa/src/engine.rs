//! A small forward worklist fixpoint engine.
//!
//! The control-flow graphs this crate analyzes are the rP4 stage chains
//! (linear today, but the engine takes arbitrary edges so parser DAGs and
//! future branching controls reuse it). Nodes hold one abstract state from
//! a [`Lattice`]; `transfer` maps a node's in-state to its out-state; the
//! in-state of a node is the join of its predecessors' out-states (or the
//! entry state for roots). Iteration runs to fixpoint, which exists and is
//! reached because `transfer` is monotone for every analysis here and the
//! lattices have finite height.

use std::collections::VecDeque;

use crate::lattice::Lattice;

/// A control-flow graph over `n` nodes, described by its edge list.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Successors of each node.
    pub succs: Vec<Vec<usize>>,
    /// Predecessors of each node.
    pub preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// A graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Cfg {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// A straight-line chain `0 → 1 → … → n-1`.
    pub fn chain(n: usize) -> Self {
        let mut g = Cfg::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// Adds a directed edge.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.succs[from].push(to);
        self.preds[to].push(from);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Per-node result of a fixpoint run.
#[derive(Debug, Clone)]
pub struct Fixpoint<L> {
    /// In-state of each node (join of predecessors, or entry for roots).
    pub input: Vec<L>,
    /// Out-state of each node (`transfer` applied to the in-state).
    pub output: Vec<L>,
}

/// Runs `transfer` to fixpoint over `cfg`, starting every root (node with
/// no predecessors) from `entry`. Returns the stable in/out states.
pub fn fixpoint<L: Lattice>(
    cfg: &Cfg,
    entry: &L,
    mut transfer: impl FnMut(usize, &L) -> L,
) -> Fixpoint<L> {
    let n = cfg.len();
    let mut input: Vec<L> = vec![entry.clone(); n];
    let mut output: Vec<L> = (0..n).map(|i| transfer(i, &input[i])).collect();
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        let mut inp = entry.clone();
        let mut first = true;
        for &p in &cfg.preds[i] {
            if first {
                inp = output[p].clone();
                first = false;
            } else {
                inp = inp.join(&output[p]);
            }
        }
        let out = transfer(i, &inp);
        input[i] = inp;
        if out != output[i] {
            output[i] = out;
            for &s in &cfg.succs[i] {
                if !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    Fixpoint { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Interval;

    #[test]
    fn chain_propagates_in_one_pass() {
        // Each node widens the interval's hi by its index.
        let cfg = Cfg::chain(4);
        let fx = fixpoint(&cfg, &Interval::constant(0), |i, s| Interval {
            lo: s.lo,
            hi: s.hi.max(i as u128),
        });
        assert_eq!(fx.input[3].hi, 2);
        assert_eq!(fx.output[3].hi, 3);
    }

    #[test]
    fn diamond_joins_both_branches() {
        //   0
        //  / \
        // 1   2
        //  \ /
        //   3
        let mut cfg = Cfg::new(4);
        cfg.add_edge(0, 1);
        cfg.add_edge(0, 2);
        cfg.add_edge(1, 3);
        cfg.add_edge(2, 3);
        let fx = fixpoint(&cfg, &Interval::constant(0), |i, s| match i {
            1 => Interval::constant(10),
            2 => Interval::constant(3),
            _ => *s,
        });
        // Node 3 sees the hull of both branch constants.
        assert_eq!(fx.input[3], Interval { lo: 3, hi: 10 });
    }

    #[test]
    fn cyclic_graph_terminates_at_fixpoint() {
        // 0 → 1 → 2 → 1 (loop); transfer is monotone (join with a constant).
        let mut cfg = Cfg::new(3);
        cfg.add_edge(0, 1);
        cfg.add_edge(1, 2);
        cfg.add_edge(2, 1);
        use crate::lattice::Lattice;
        let fx = fixpoint(&cfg, &Interval::constant(1), |i, s| {
            if i == 2 {
                s.join(&Interval::constant(40))
            } else {
                *s
            }
        });
        assert_eq!(fx.input[1], Interval { lo: 1, hi: 40 });
    }
}
